# Empty compiler generated dependencies file for hlock_node.
# This may be replaced when dependencies are built.
