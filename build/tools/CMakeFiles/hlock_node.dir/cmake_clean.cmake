file(REMOVE_RECURSE
  "CMakeFiles/hlock_node.dir/hlock_node.cpp.o"
  "CMakeFiles/hlock_node.dir/hlock_node.cpp.o.d"
  "hlock_node"
  "hlock_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
