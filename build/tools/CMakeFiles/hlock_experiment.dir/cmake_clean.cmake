file(REMOVE_RECURSE
  "CMakeFiles/hlock_experiment.dir/hlock_experiment.cpp.o"
  "CMakeFiles/hlock_experiment.dir/hlock_experiment.cpp.o.d"
  "hlock_experiment"
  "hlock_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
