# Empty dependencies file for hlock_experiment.
# This may be replaced when dependencies are built.
