# Empty dependencies file for quick_sweep.
# This may be replaced when dependencies are built.
