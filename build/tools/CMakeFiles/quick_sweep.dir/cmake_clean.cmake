file(REMOVE_RECURSE
  "CMakeFiles/quick_sweep.dir/quick_sweep.cpp.o"
  "CMakeFiles/quick_sweep.dir/quick_sweep.cpp.o.d"
  "quick_sweep"
  "quick_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
