file(REMOVE_RECURSE
  "libhlock_workload.a"
)
