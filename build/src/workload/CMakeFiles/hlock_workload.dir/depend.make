# Empty dependencies file for hlock_workload.
# This may be replaced when dependencies are built.
