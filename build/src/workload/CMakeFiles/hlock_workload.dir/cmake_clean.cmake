file(REMOVE_RECURSE
  "CMakeFiles/hlock_workload.dir/airline.cpp.o"
  "CMakeFiles/hlock_workload.dir/airline.cpp.o.d"
  "CMakeFiles/hlock_workload.dir/generator.cpp.o"
  "CMakeFiles/hlock_workload.dir/generator.cpp.o.d"
  "libhlock_workload.a"
  "libhlock_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
