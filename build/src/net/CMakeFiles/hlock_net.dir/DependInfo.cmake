
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cluster.cpp" "src/net/CMakeFiles/hlock_net.dir/cluster.cpp.o" "gcc" "src/net/CMakeFiles/hlock_net.dir/cluster.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/hlock_net.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/hlock_net.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/net/CMakeFiles/hlock_net.dir/framing.cpp.o" "gcc" "src/net/CMakeFiles/hlock_net.dir/framing.cpp.o.d"
  "/root/repo/src/net/tcp_node.cpp" "src/net/CMakeFiles/hlock_net.dir/tcp_node.cpp.o" "gcc" "src/net/CMakeFiles/hlock_net.dir/tcp_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/hlock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core_modes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
