# Empty compiler generated dependencies file for hlock_net.
# This may be replaced when dependencies are built.
