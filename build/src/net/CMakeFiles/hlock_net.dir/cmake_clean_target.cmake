file(REMOVE_RECURSE
  "libhlock_net.a"
)
