file(REMOVE_RECURSE
  "CMakeFiles/hlock_net.dir/cluster.cpp.o"
  "CMakeFiles/hlock_net.dir/cluster.cpp.o.d"
  "CMakeFiles/hlock_net.dir/event_loop.cpp.o"
  "CMakeFiles/hlock_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/hlock_net.dir/framing.cpp.o"
  "CMakeFiles/hlock_net.dir/framing.cpp.o.d"
  "CMakeFiles/hlock_net.dir/tcp_node.cpp.o"
  "CMakeFiles/hlock_net.dir/tcp_node.cpp.o.d"
  "libhlock_net.a"
  "libhlock_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
