file(REMOVE_RECURSE
  "libhlock_sim.a"
)
