
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/reliable.cpp" "src/sim/CMakeFiles/hlock_sim.dir/reliable.cpp.o" "gcc" "src/sim/CMakeFiles/hlock_sim.dir/reliable.cpp.o.d"
  "/root/repo/src/sim/simnet.cpp" "src/sim/CMakeFiles/hlock_sim.dir/simnet.cpp.o" "gcc" "src/sim/CMakeFiles/hlock_sim.dir/simnet.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/hlock_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hlock_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hlock_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hlock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core_modes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
