# Empty dependencies file for hlock_sim.
# This may be replaced when dependencies are built.
