file(REMOVE_RECURSE
  "CMakeFiles/hlock_sim.dir/reliable.cpp.o"
  "CMakeFiles/hlock_sim.dir/reliable.cpp.o.d"
  "CMakeFiles/hlock_sim.dir/simnet.cpp.o"
  "CMakeFiles/hlock_sim.dir/simnet.cpp.o.d"
  "CMakeFiles/hlock_sim.dir/simulator.cpp.o"
  "CMakeFiles/hlock_sim.dir/simulator.cpp.o.d"
  "libhlock_sim.a"
  "libhlock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
