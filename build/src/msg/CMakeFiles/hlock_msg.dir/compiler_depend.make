# Empty compiler generated dependencies file for hlock_msg.
# This may be replaced when dependencies are built.
