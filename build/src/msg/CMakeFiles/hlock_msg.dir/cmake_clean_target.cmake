file(REMOVE_RECURSE
  "libhlock_msg.a"
)
