file(REMOVE_RECURSE
  "CMakeFiles/hlock_msg.dir/message.cpp.o"
  "CMakeFiles/hlock_msg.dir/message.cpp.o.d"
  "libhlock_msg.a"
  "libhlock_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
