# Empty compiler generated dependencies file for hlock_common.
# This may be replaced when dependencies are built.
