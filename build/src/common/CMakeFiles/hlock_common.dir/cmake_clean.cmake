file(REMOVE_RECURSE
  "CMakeFiles/hlock_common.dir/bytes.cpp.o"
  "CMakeFiles/hlock_common.dir/bytes.cpp.o.d"
  "CMakeFiles/hlock_common.dir/logging.cpp.o"
  "CMakeFiles/hlock_common.dir/logging.cpp.o.d"
  "CMakeFiles/hlock_common.dir/rng.cpp.o"
  "CMakeFiles/hlock_common.dir/rng.cpp.o.d"
  "CMakeFiles/hlock_common.dir/stats.cpp.o"
  "CMakeFiles/hlock_common.dir/stats.cpp.o.d"
  "libhlock_common.a"
  "libhlock_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
