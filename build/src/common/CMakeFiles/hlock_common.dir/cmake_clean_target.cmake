file(REMOVE_RECURSE
  "libhlock_common.a"
)
