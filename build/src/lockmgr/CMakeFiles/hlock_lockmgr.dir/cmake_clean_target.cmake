file(REMOVE_RECURSE
  "libhlock_lockmgr.a"
)
