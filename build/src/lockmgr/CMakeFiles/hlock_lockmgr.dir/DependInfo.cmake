
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lockmgr/hierarchy.cpp" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/hierarchy.cpp.o" "gcc" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/hierarchy.cpp.o.d"
  "/root/repo/src/lockmgr/plan_session.cpp" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/plan_session.cpp.o" "gcc" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/plan_session.cpp.o.d"
  "/root/repo/src/lockmgr/session.cpp" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/session.cpp.o" "gcc" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/session.cpp.o.d"
  "/root/repo/src/lockmgr/waitgraph.cpp" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/waitgraph.cpp.o" "gcc" "src/lockmgr/CMakeFiles/hlock_lockmgr.dir/waitgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hlock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/naimi/CMakeFiles/hlock_naimi.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hlock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core_modes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
