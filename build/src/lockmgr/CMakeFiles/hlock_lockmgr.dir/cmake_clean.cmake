file(REMOVE_RECURSE
  "CMakeFiles/hlock_lockmgr.dir/hierarchy.cpp.o"
  "CMakeFiles/hlock_lockmgr.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hlock_lockmgr.dir/plan_session.cpp.o"
  "CMakeFiles/hlock_lockmgr.dir/plan_session.cpp.o.d"
  "CMakeFiles/hlock_lockmgr.dir/session.cpp.o"
  "CMakeFiles/hlock_lockmgr.dir/session.cpp.o.d"
  "CMakeFiles/hlock_lockmgr.dir/waitgraph.cpp.o"
  "CMakeFiles/hlock_lockmgr.dir/waitgraph.cpp.o.d"
  "libhlock_lockmgr.a"
  "libhlock_lockmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_lockmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
