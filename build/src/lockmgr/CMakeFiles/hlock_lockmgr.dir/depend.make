# Empty dependencies file for hlock_lockmgr.
# This may be replaced when dependencies are built.
