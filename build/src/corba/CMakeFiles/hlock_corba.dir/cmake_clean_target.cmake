file(REMOVE_RECURSE
  "libhlock_corba.a"
)
