# Empty dependencies file for hlock_corba.
# This may be replaced when dependencies are built.
