file(REMOVE_RECURSE
  "CMakeFiles/hlock_corba.dir/concurrency.cpp.o"
  "CMakeFiles/hlock_corba.dir/concurrency.cpp.o.d"
  "libhlock_corba.a"
  "libhlock_corba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_corba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
