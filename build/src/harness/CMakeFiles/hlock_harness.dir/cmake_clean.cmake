file(REMOVE_RECURSE
  "CMakeFiles/hlock_harness.dir/cluster.cpp.o"
  "CMakeFiles/hlock_harness.dir/cluster.cpp.o.d"
  "CMakeFiles/hlock_harness.dir/deadlock.cpp.o"
  "CMakeFiles/hlock_harness.dir/deadlock.cpp.o.d"
  "CMakeFiles/hlock_harness.dir/experiment.cpp.o"
  "CMakeFiles/hlock_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/hlock_harness.dir/invariants.cpp.o"
  "CMakeFiles/hlock_harness.dir/invariants.cpp.o.d"
  "CMakeFiles/hlock_harness.dir/json.cpp.o"
  "CMakeFiles/hlock_harness.dir/json.cpp.o.d"
  "CMakeFiles/hlock_harness.dir/trace.cpp.o"
  "CMakeFiles/hlock_harness.dir/trace.cpp.o.d"
  "libhlock_harness.a"
  "libhlock_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
