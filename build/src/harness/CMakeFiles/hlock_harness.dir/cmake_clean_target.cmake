file(REMOVE_RECURSE
  "libhlock_harness.a"
)
