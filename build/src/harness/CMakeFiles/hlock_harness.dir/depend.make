# Empty dependencies file for hlock_harness.
# This may be replaced when dependencies are built.
