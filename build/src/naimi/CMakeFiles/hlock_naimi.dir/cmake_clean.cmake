file(REMOVE_RECURSE
  "CMakeFiles/hlock_naimi.dir/naimi_engine.cpp.o"
  "CMakeFiles/hlock_naimi.dir/naimi_engine.cpp.o.d"
  "CMakeFiles/hlock_naimi.dir/naimi_node.cpp.o"
  "CMakeFiles/hlock_naimi.dir/naimi_node.cpp.o.d"
  "libhlock_naimi.a"
  "libhlock_naimi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_naimi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
