file(REMOVE_RECURSE
  "libhlock_naimi.a"
)
