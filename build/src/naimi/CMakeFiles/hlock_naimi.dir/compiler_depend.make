# Empty compiler generated dependencies file for hlock_naimi.
# This may be replaced when dependencies are built.
