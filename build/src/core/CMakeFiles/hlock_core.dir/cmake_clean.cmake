file(REMOVE_RECURSE
  "CMakeFiles/hlock_core.dir/hls_engine.cpp.o"
  "CMakeFiles/hlock_core.dir/hls_engine.cpp.o.d"
  "CMakeFiles/hlock_core.dir/hls_node.cpp.o"
  "CMakeFiles/hlock_core.dir/hls_node.cpp.o.d"
  "libhlock_core.a"
  "libhlock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
