# Empty dependencies file for hlock_core.
# This may be replaced when dependencies are built.
