file(REMOVE_RECURSE
  "libhlock_core.a"
)
