file(REMOVE_RECURSE
  "libhlock_core_modes.a"
)
