file(REMOVE_RECURSE
  "CMakeFiles/hlock_core_modes.dir/mode.cpp.o"
  "CMakeFiles/hlock_core_modes.dir/mode.cpp.o.d"
  "libhlock_core_modes.a"
  "libhlock_core_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlock_core_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
