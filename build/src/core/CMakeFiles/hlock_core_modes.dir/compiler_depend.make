# Empty compiler generated dependencies file for hlock_core_modes.
# This may be replaced when dependencies are built.
