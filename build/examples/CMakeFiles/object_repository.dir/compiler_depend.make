# Empty compiler generated dependencies file for object_repository.
# This may be replaced when dependencies are built.
