file(REMOVE_RECURSE
  "CMakeFiles/object_repository.dir/object_repository.cpp.o"
  "CMakeFiles/object_repository.dir/object_repository.cpp.o.d"
  "object_repository"
  "object_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
