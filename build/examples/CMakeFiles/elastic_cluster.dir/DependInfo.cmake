
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/elastic_cluster.cpp" "examples/CMakeFiles/elastic_cluster.dir/elastic_cluster.cpp.o" "gcc" "examples/CMakeFiles/elastic_cluster.dir/elastic_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corba/CMakeFiles/hlock_corba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hlock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hlock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core_modes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
