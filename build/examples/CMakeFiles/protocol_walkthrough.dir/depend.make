# Empty dependencies file for protocol_walkthrough.
# This may be replaced when dependencies are built.
