# Empty dependencies file for priority_arbitration.
# This may be replaced when dependencies are built.
