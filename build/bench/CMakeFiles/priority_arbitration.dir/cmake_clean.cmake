file(REMOVE_RECURSE
  "CMakeFiles/priority_arbitration.dir/priority_arbitration.cpp.o"
  "CMakeFiles/priority_arbitration.dir/priority_arbitration.cpp.o.d"
  "priority_arbitration"
  "priority_arbitration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
