# Empty compiler generated dependencies file for priority_arbitration.
# This may be replaced when dependencies are built.
