# Empty dependencies file for path_length.
# This may be replaced when dependencies are built.
