file(REMOVE_RECURSE
  "CMakeFiles/path_length.dir/path_length.cpp.o"
  "CMakeFiles/path_length.dir/path_length.cpp.o.d"
  "path_length"
  "path_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
