file(REMOVE_RECURSE
  "CMakeFiles/granularity.dir/granularity.cpp.o"
  "CMakeFiles/granularity.dir/granularity.cpp.o.d"
  "granularity"
  "granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
