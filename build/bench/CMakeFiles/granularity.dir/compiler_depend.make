# Empty compiler generated dependencies file for granularity.
# This may be replaced when dependencies are built.
