# Empty dependencies file for permode_latency.
# This may be replaced when dependencies are built.
