file(REMOVE_RECURSE
  "CMakeFiles/permode_latency.dir/permode_latency.cpp.o"
  "CMakeFiles/permode_latency.dir/permode_latency.cpp.o.d"
  "permode_latency"
  "permode_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
