file(REMOVE_RECURSE
  "CMakeFiles/tables_rules.dir/tables_rules.cpp.o"
  "CMakeFiles/tables_rules.dir/tables_rules.cpp.o.d"
  "tables_rules"
  "tables_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
