# Empty compiler generated dependencies file for tables_rules.
# This may be replaced when dependencies are built.
