# Empty dependencies file for loss_resilience.
# This may be replaced when dependencies are built.
