file(REMOVE_RECURSE
  "CMakeFiles/loss_resilience.dir/loss_resilience.cpp.o"
  "CMakeFiles/loss_resilience.dir/loss_resilience.cpp.o.d"
  "loss_resilience"
  "loss_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
