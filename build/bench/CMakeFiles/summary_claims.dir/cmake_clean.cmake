file(REMOVE_RECURSE
  "CMakeFiles/summary_claims.dir/summary_claims.cpp.o"
  "CMakeFiles/summary_claims.dir/summary_claims.cpp.o.d"
  "summary_claims"
  "summary_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
