# Empty compiler generated dependencies file for summary_claims.
# This may be replaced when dependencies are built.
