# Empty dependencies file for fig5_message_overhead.
# This may be replaced when dependencies are built.
