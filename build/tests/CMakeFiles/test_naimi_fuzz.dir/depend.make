# Empty dependencies file for test_naimi_fuzz.
# This may be replaced when dependencies are built.
