file(REMOVE_RECURSE
  "CMakeFiles/test_naimi_fuzz.dir/test_naimi_fuzz.cpp.o"
  "CMakeFiles/test_naimi_fuzz.dir/test_naimi_fuzz.cpp.o.d"
  "test_naimi_fuzz"
  "test_naimi_fuzz.pdb"
  "test_naimi_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naimi_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
