# Empty compiler generated dependencies file for test_corba_advanced.
# This may be replaced when dependencies are built.
