file(REMOVE_RECURSE
  "CMakeFiles/test_corba_advanced.dir/test_corba_advanced.cpp.o"
  "CMakeFiles/test_corba_advanced.dir/test_corba_advanced.cpp.o.d"
  "test_corba_advanced"
  "test_corba_advanced.pdb"
  "test_corba_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corba_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
