file(REMOVE_RECURSE
  "CMakeFiles/test_cancel.dir/test_cancel.cpp.o"
  "CMakeFiles/test_cancel.dir/test_cancel.cpp.o.d"
  "test_cancel"
  "test_cancel.pdb"
  "test_cancel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cancel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
