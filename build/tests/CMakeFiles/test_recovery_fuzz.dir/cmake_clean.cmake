file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_fuzz.dir/test_recovery_fuzz.cpp.o"
  "CMakeFiles/test_recovery_fuzz.dir/test_recovery_fuzz.cpp.o.d"
  "test_recovery_fuzz"
  "test_recovery_fuzz.pdb"
  "test_recovery_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
