# Empty dependencies file for test_recovery_fuzz.
# This may be replaced when dependencies are built.
