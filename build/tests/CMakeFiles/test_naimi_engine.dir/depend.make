# Empty dependencies file for test_naimi_engine.
# This may be replaced when dependencies are built.
