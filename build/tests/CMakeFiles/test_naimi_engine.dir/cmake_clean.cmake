file(REMOVE_RECURSE
  "CMakeFiles/test_naimi_engine.dir/test_naimi_engine.cpp.o"
  "CMakeFiles/test_naimi_engine.dir/test_naimi_engine.cpp.o.d"
  "test_naimi_engine"
  "test_naimi_engine.pdb"
  "test_naimi_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naimi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
