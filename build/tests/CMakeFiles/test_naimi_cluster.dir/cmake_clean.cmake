file(REMOVE_RECURSE
  "CMakeFiles/test_naimi_cluster.dir/test_naimi_cluster.cpp.o"
  "CMakeFiles/test_naimi_cluster.dir/test_naimi_cluster.cpp.o.d"
  "test_naimi_cluster"
  "test_naimi_cluster.pdb"
  "test_naimi_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naimi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
