# Empty compiler generated dependencies file for test_naimi_cluster.
# This may be replaced when dependencies are built.
