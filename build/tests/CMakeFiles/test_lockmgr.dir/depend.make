# Empty dependencies file for test_lockmgr.
# This may be replaced when dependencies are built.
