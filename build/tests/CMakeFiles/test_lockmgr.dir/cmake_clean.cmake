file(REMOVE_RECURSE
  "CMakeFiles/test_lockmgr.dir/test_lockmgr.cpp.o"
  "CMakeFiles/test_lockmgr.dir/test_lockmgr.cpp.o.d"
  "test_lockmgr"
  "test_lockmgr.pdb"
  "test_lockmgr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
