# Empty dependencies file for test_table2a_behavior.
# This may be replaced when dependencies are built.
