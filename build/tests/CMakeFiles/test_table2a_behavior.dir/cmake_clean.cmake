file(REMOVE_RECURSE
  "CMakeFiles/test_table2a_behavior.dir/test_table2a_behavior.cpp.o"
  "CMakeFiles/test_table2a_behavior.dir/test_table2a_behavior.cpp.o.d"
  "test_table2a_behavior"
  "test_table2a_behavior.pdb"
  "test_table2a_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table2a_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
