file(REMOVE_RECURSE
  "CMakeFiles/test_hls_engine.dir/test_hls_engine.cpp.o"
  "CMakeFiles/test_hls_engine.dir/test_hls_engine.cpp.o.d"
  "test_hls_engine"
  "test_hls_engine.pdb"
  "test_hls_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
