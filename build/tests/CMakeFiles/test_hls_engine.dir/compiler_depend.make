# Empty compiler generated dependencies file for test_hls_engine.
# This may be replaced when dependencies are built.
