# Empty compiler generated dependencies file for test_corba.
# This may be replaced when dependencies are built.
