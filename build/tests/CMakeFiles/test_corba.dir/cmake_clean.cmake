file(REMOVE_RECURSE
  "CMakeFiles/test_corba.dir/test_corba.cpp.o"
  "CMakeFiles/test_corba.dir/test_corba.cpp.o.d"
  "test_corba"
  "test_corba.pdb"
  "test_corba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
