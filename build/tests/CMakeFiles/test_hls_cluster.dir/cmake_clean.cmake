file(REMOVE_RECURSE
  "CMakeFiles/test_hls_cluster.dir/test_hls_cluster.cpp.o"
  "CMakeFiles/test_hls_cluster.dir/test_hls_cluster.cpp.o.d"
  "test_hls_cluster"
  "test_hls_cluster.pdb"
  "test_hls_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
