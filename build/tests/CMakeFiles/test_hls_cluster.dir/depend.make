# Empty dependencies file for test_hls_cluster.
# This may be replaced when dependencies are built.
