
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hlock_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/lockmgr/CMakeFiles/hlock_lockmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hlock_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/naimi/CMakeFiles/hlock_naimi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hlock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hlock_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlock_core_modes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
