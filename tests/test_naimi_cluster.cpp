// Integration tests of the Naimi baselines under the full workload
// harness: liveness, determinism, and the structural properties the
// comparison in §4 relies on.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace hlock::harness {
namespace {

ClusterConfig config_for(std::size_t nodes, std::uint64_t seed) {
  ClusterConfig c;
  c.nodes = nodes;
  c.spec.seed = seed;
  c.spec.ops_per_node = 20;
  return c;
}

TEST(NaimiCluster, PureCompletesAllOps) {
  NaimiCluster cluster(config_for(8, 1), /*pure=*/true);
  cluster.run();
  const auto r = cluster.result();
  EXPECT_EQ(r.app_ops, 160u);
  // Pure: exactly one lock request per op.
  EXPECT_EQ(r.lock_requests, r.app_ops);
}

TEST(NaimiCluster, SameWorkCompletesAllOps) {
  NaimiCluster cluster(config_for(6, 2), /*pure=*/false);
  cluster.run();
  const auto r = cluster.result();
  EXPECT_EQ(r.app_ops, 120u);
  // Same work issues >= 1 request per op and n per table-level op.
  EXPECT_GT(r.lock_requests, r.app_ops);
}

TEST(NaimiCluster, Deterministic) {
  auto run_once = [](bool pure) {
    NaimiCluster cluster(config_for(6, 5), pure);
    cluster.run();
    const auto r = cluster.result();
    return std::make_pair(r.messages, r.virtual_end);
  };
  EXPECT_EQ(run_once(true), run_once(true));
  EXPECT_EQ(run_once(false), run_once(false));
}

TEST(NaimiCluster, OnlyNaimiMessageKindsOnTheWire) {
  NaimiCluster cluster(config_for(5, 3), /*pure=*/true);
  cluster.run();
  const auto& counts = cluster.result().messages_by_kind;
  EXPECT_GT(counts.get("naimi_request"), 0u);
  EXPECT_GT(counts.get("naimi_token"), 0u);
  EXPECT_EQ(counts.get("grant"), 0u);
  EXPECT_EQ(counts.get("freeze"), 0u);
}

TEST(NaimiCluster, SingleNodeNeedsNoMessages) {
  NaimiCluster cluster(config_for(1, 4), /*pure=*/true);
  cluster.run();
  EXPECT_EQ(cluster.result().messages, 0u);
}

TEST(Comparison, OursBeatsPureOnMessagesAtScale) {
  // The §4 headline: at large n our protocol's per-request message count
  // undercuts Naimi pure despite the added functionality.
  workload::WorkloadSpec spec;
  spec.ops_per_node = 30;
  const auto ours = run_experiment(Protocol::kHls, 60, spec);
  const auto pure = run_experiment(Protocol::kNaimiPure, 60, spec);
  EXPECT_LT(ours.msgs_per_lock_request(), pure.msgs_per_lock_request());
}

TEST(Comparison, SameWorkLatencyIsWorstAndSuperlinear) {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 15;
  const auto same20 = run_experiment(Protocol::kNaimiSameWork, 20, spec);
  const auto same40 = run_experiment(Protocol::kNaimiSameWork, 40, spec);
  const auto ours40 = run_experiment(Protocol::kHls, 40, spec);
  // Superlinear: doubling n more than doubles the latency factor.
  EXPECT_GT(same40.latency_factor.mean(),
            2.0 * same20.latency_factor.mean());
  EXPECT_GT(same40.latency_factor.mean(), ours40.latency_factor.mean());
}

TEST(Comparison, OursScalesFlatInMessages) {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 30;
  const auto at30 = run_experiment(Protocol::kHls, 30, spec);
  const auto at90 = run_experiment(Protocol::kHls, 90, spec);
  // Logarithmic asymptote: tripling nodes grows per-request messages by
  // well under 50%.
  EXPECT_LT(at90.msgs_per_lock_request(),
            1.5 * at30.msgs_per_lock_request());
}

}  // namespace
}  // namespace hlock::harness
