// Priority-arbitration extension tests (EngineOptions::enable_priorities):
// queued requests are served highest-priority-first, FIFO within a level;
// upgrades still precede everything; default build keeps pure FIFO.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

struct Net {
  explicit Net(EngineOptions opts_in) : opts(opts_in) {}

  HlsEngine& add(char name, char root) {
    EngineCallbacks cbs;
    cbs.on_acquired = [this, name](RequestId, Mode mode) {
      grants.emplace_back(name, mode);
    };
    auto engine = std::make_unique<HlsEngine>(LockId{0}, id_of(name),
                                              id_of(root),
                                              bus.port(id_of(name)), opts,
                                              std::move(cbs));
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
    return *raw;
  }
  HlsEngine& operator[](char c) { return *engines.at(c); }
  void pump() { bus.deliver_all(); }

  EngineOptions opts;
  testing::TestBus bus;
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::vector<std::pair<char, Mode>> grants;
};

EngineOptions with_priorities() {
  EngineOptions opts;
  opts.enable_priorities = true;
  return opts;
}

TEST(Priority, HigherPriorityServedFirstFromQueue) {
  Net net(with_priorities());
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  // A holds W so every request queues at the root.
  const RequestId wa = net['A'].request_lock(Mode::kW);
  net.grants.clear();
  (void)net['B'].request_lock(Mode::kR, /*priority=*/0);
  net.pump();
  (void)net['C'].request_lock(Mode::kR, /*priority=*/5);
  net.pump();
  (void)net['D'].request_lock(Mode::kR, /*priority=*/3);
  net.pump();
  ASSERT_EQ(net['A'].queue().size(), 3u);
  EXPECT_EQ(net['A'].queue()[0].priority, 5);
  EXPECT_EQ(net['A'].queue()[1].priority, 3);
  EXPECT_EQ(net['A'].queue()[2].priority, 0);

  net['A'].unlock(wa);
  net.pump();
  // All three are compatible R's; service order must follow priority.
  ASSERT_EQ(net.grants.size(), 3u);
  EXPECT_EQ(net.grants[0].first, 'C');
  EXPECT_EQ(net.grants[1].first, 'D');
  EXPECT_EQ(net.grants[2].first, 'B');
}

TEST(Priority, FifoWithinSamePriorityLevel) {
  Net net(with_priorities());
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  const RequestId wa = net['A'].request_lock(Mode::kW);
  net.grants.clear();
  (void)net['B'].request_lock(Mode::kR, 2);
  net.pump();
  (void)net['C'].request_lock(Mode::kR, 2);
  net.pump();
  net['A'].unlock(wa);
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[0].first, 'B');  // earlier stamp wins the tie
  EXPECT_EQ(net.grants[1].first, 'C');
}

TEST(Priority, DisabledKeepsPureFifo) {
  Net net(EngineOptions{});
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  const RequestId wa = net['A'].request_lock(Mode::kW);
  net.grants.clear();
  (void)net['B'].request_lock(Mode::kR, 0);
  net.pump();
  (void)net['C'].request_lock(Mode::kR, 9);  // ignored without the option
  net.pump();
  net['A'].unlock(wa);
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[0].first, 'B');
  EXPECT_EQ(net.grants[1].first, 'C');
}

TEST(Priority, UpgradeStillPrecedesHighPriorityRequests) {
  Net net(with_priorities());
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ua = net['A'].request_lock(Mode::kU);
  net.grants.clear();
  (void)net['B'].request_lock(Mode::kW, 200);  // queued behind the U
  net.pump();
  net['A'].upgrade(ua);
  net.pump();
  // The upgrade wins even against priority 200 (deadlock avoidance).
  EXPECT_EQ(net['A'].holds().at(ua), Mode::kW);
  EXPECT_TRUE(net.grants.empty());
  net['A'].unlock(ua);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].first, 'B');
}

TEST(Priority, PriorityOrderSurvivesTokenTransfer) {
  Net net(with_priorities());
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  const RequestId ia = net['A'].request_lock(Mode::kIR);
  net.grants.clear();
  // W requests queue (incompatible with IR); different priorities.
  (void)net['C'].request_lock(Mode::kW, 1);
  net.pump();
  (void)net['D'].request_lock(Mode::kW, 7);
  net.pump();
  ASSERT_EQ(net['A'].queue().size(), 2u);
  EXPECT_EQ(net['A'].queue()[0].priority, 7);
  // A releases: token goes to D (head = highest priority), shipping C's
  // request along; C is served after D.
  net['A'].unlock(ia);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].first, 'D');
  net['D'].unlock(net['D'].holds().begin()->first);
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].first, 'C');
}

TEST(Priority, CodecCarriesPriority) {
  Message m;
  m.kind = MsgKind::kRequest;
  m.req.priority = 42;
  const Message out = decode(encode(m));
  EXPECT_EQ(out.req.priority, 42);
}

}  // namespace
}  // namespace hlock::core
