// Discrete-event simulator and simulated-network tests.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

namespace hlock::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(Simulator, EqualTimesRunInInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator s;
  int hits = 0;
  std::function<void()> chain = [&] {
    ++hits;
    if (hits < 5) s.schedule_after(10, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(hits, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int hits = 0;
  s.schedule_at(10, [&] { ++hits; });
  s.schedule_at(100, [&] { ++hits; });
  s.run_until(50);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(s.now(), 50);
  s.run_all();
  EXPECT_EQ(hits, 2);
}

TEST(Simulator, PostEventHookFiresPerEvent) {
  Simulator s;
  int hooks = 0;
  s.post_event_hook = [&] { ++hooks; };
  s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  s.run_all();
  EXPECT_EQ(hooks, 2);
}

TEST(Simulator, LivelockCapThrows) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_all(1000), std::runtime_error);
}

// ----------------------------------------------------------------- net --

struct NetFixture {
  NetFixture(Duration mean = msec(150),
             std::unique_ptr<LatencyModel> model = nullptr)
      : net(sim,
            model ? std::move(model)
                  : std::make_unique<UniformLatency>(mean),
            Rng(1)) {}
  Simulator sim;
  SimNetwork net;
};

TEST(SimNetwork, DeliversToRegisteredHandler) {
  NetFixture f;
  std::vector<std::uint32_t> got;
  f.net.register_node(NodeId{1}, [&](const Message& m) {
    got.push_back(m.lock.value);
  });
  f.net.register_node(NodeId{0}, [](const Message&) {});
  Message m;
  m.lock = LockId{5};
  f.net.send(NodeId{0}, NodeId{1}, m);
  f.sim.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 5u);
  EXPECT_EQ(f.net.messages_sent(), 1u);
}

TEST(SimNetwork, SetsFromField) {
  NetFixture f;
  NodeId seen_from;
  f.net.register_node(NodeId{2}, [&](const Message& m) { seen_from = m.from; });
  f.net.register_node(NodeId{7}, [](const Message&) {});
  Message m;
  f.net.send(NodeId{7}, NodeId{2}, m);
  f.sim.run_all();
  EXPECT_EQ(seen_from, NodeId{7});
}

TEST(SimNetwork, ChannelFifoEvenWithRandomLatency) {
  NetFixture f;
  std::vector<std::uint32_t> got;
  f.net.register_node(NodeId{1}, [&](const Message& m) {
    got.push_back(m.lock.value);
  });
  f.net.register_node(NodeId{0}, [](const Message&) {});
  for (std::uint32_t i = 0; i < 100; ++i) {
    Message m;
    m.lock = LockId{i};
    f.net.send(NodeId{0}, NodeId{1}, m);
  }
  f.sim.run_all();
  ASSERT_EQ(got.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(SimNetwork, UnregisteredDestinationThrows) {
  NetFixture f;
  f.net.register_node(NodeId{0}, [](const Message&) {});
  Message m;
  EXPECT_THROW(f.net.send(NodeId{0}, NodeId{9}, m), std::logic_error);
}

TEST(SimNetwork, DoubleRegistrationThrows) {
  NetFixture f;
  f.net.register_node(NodeId{0}, [](const Message&) {});
  EXPECT_THROW(f.net.register_node(NodeId{0}, [](const Message&) {}),
               std::logic_error);
}

TEST(SimNetwork, CountsByKind) {
  NetFixture f;
  f.net.register_node(NodeId{0}, [](const Message&) {});
  f.net.register_node(NodeId{1}, [](const Message&) {});
  Message req;
  req.kind = MsgKind::kRequest;
  Message tok;
  tok.kind = MsgKind::kToken;
  f.net.send(NodeId{0}, NodeId{1}, req);
  f.net.send(NodeId{0}, NodeId{1}, req);
  f.net.send(NodeId{1}, NodeId{0}, tok);
  f.sim.run_all();
  EXPECT_EQ(f.net.message_counts().get("request"), 2u);
  EXPECT_EQ(f.net.message_counts().get("token"), 1u);
  EXPECT_EQ(f.net.message_counts().get("grant"), 0u);
}

TEST(SimNetwork, OnDeliverHookObservesTraffic) {
  NetFixture f;
  int seen = 0;
  f.net.register_node(NodeId{0}, [](const Message&) {});
  f.net.register_node(NodeId{1}, [](const Message&) {});
  f.net.on_deliver = [&](NodeId, NodeId, const Message&) { ++seen; };
  Message m;
  f.net.send(NodeId{0}, NodeId{1}, m);
  f.sim.run_all();
  EXPECT_EQ(seen, 1);
}

TEST(LatencyModels, RespectBoundsAndMeans) {
  Rng rng(3);
  UniformLatency uniform(msec(150));
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const Duration d = uniform.sample(rng);
    ASSERT_GE(d, msec(75));
    ASSERT_LE(d, msec(225));
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / 20000, static_cast<double>(msec(150)),
              static_cast<double>(msec(2)));

  ConstantLatency constant(msec(10));
  EXPECT_EQ(constant.sample(rng), msec(10));

  ExponentialLatency expo(msec(150), msec(15));
  double esum = 0;
  for (int i = 0; i < 50000; ++i) {
    const Duration d = expo.sample(rng);
    ASSERT_GE(d, msec(15));
    esum += static_cast<double>(d);
  }
  EXPECT_NEAR(esum / 50000, static_cast<double>(msec(150)),
              static_cast<double>(msec(3)));
}

}  // namespace
}  // namespace hlock::sim
