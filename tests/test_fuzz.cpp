// Interleaving fuzzer: random application ops against random cross-channel
// message interleavings (per-channel FIFO preserved, everything else
// adversarial). After every delivered message the global mutual-exclusion
// invariant is checked; at the end the system must quiesce with every
// issued request granted exactly once.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

struct FuzzParams {
  std::size_t nodes;
  std::uint64_t seed;
  int steps;
  bool priorities;
};

class EngineFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(EngineFuzz, MutualExclusionUnderRandomInterleavings) {
  const FuzzParams p = GetParam();
  Rng rng(p.seed);

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  // Per node: live holds and their modes (mirrors of on_acquired).
  std::vector<std::map<RequestId, Mode>> held(p.nodes);
  std::vector<std::set<RequestId>> upgradeable(p.nodes);
  std::uint64_t issued = 0, granted = 0, upgrades_done = 0;

  EngineOptions opts;
  opts.enable_priorities = p.priorities;
  for (std::size_t i = 0; i < p.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EngineCallbacks cbs;
    cbs.on_acquired = [&, i](RequestId rid, Mode mode) {
      held[i][rid] = mode;
      if (mode == Mode::kU) upgradeable[i].insert(rid);
      ++granted;
    };
    cbs.on_upgraded = [&, i](RequestId rid) {
      held[i][rid] = Mode::kW;
      ++upgrades_done;
    };
    engines.push_back(std::make_unique<HlsEngine>(
        LockId{0}, id, NodeId{0}, bus.port(id), opts, std::move(cbs)));
    HlsEngine* raw = engines.back().get();
    bus.register_handler(id, [raw](const Message& m) { raw->handle(m); });
  }

  auto check_mutex = [&] {
    for (std::size_t a = 0; a < p.nodes; ++a) {
      for (const auto& [ra, ma] : held[a]) {
        for (std::size_t b = 0; b < p.nodes; ++b) {
          for (const auto& [rb, mb] : held[b]) {
            if (a == b && ra == rb) continue;
            ASSERT_TRUE(compatible(ma, mb))
                << "incompatible " << ma << "@" << a << " and " << mb << "@"
                << b << " seed " << p.seed;
          }
        }
      }
    }
  };

  for (int step = 0; step < p.steps; ++step) {
    const std::size_t i = rng.next_below(p.nodes);
    const double dice = rng.next_double();
    if (dice < 0.40) {
      // Issue a new request (bounded outstanding per node).
      if (engines[i]->backlog_size() < 3) {
        const Mode mode = kRealModes[rng.next_below(5)];
        const auto prio = static_cast<std::uint8_t>(rng.next_below(4));
        (void)engines[i]->request_lock(mode, prio);
        ++issued;
      }
    } else if (dice < 0.65) {
      // Release a random hold (not one with an upgrade pending).
      if (!held[i].empty()) {
        auto it = held[i].begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.next_below(held[i].size())));
        const RequestId rid = it->first;
        try {
          engines[i]->unlock(rid);
          held[i].erase(rid);
          upgradeable[i].erase(rid);
        } catch (const std::logic_error&) {
          // Upgrade in flight on this hold; fine.
        }
      }
    } else if (dice < 0.72) {
      // Upgrade a held U.
      if (!upgradeable[i].empty()) {
        const RequestId rid = *upgradeable[i].begin();
        upgradeable[i].erase(rid);
        try {
          engines[i]->upgrade(rid);
        } catch (const std::logic_error&) {
        }
      }
    } else {
      // Deliver 0-3 messages in random channel order.
      const std::size_t count = rng.next_below(4);
      for (std::size_t k = 0; k < count; ++k) {
        if (!bus.deliver_random(rng)) break;
        check_mutex();
      }
    }
  }

  // Drain: release everything, finish all deliveries, repeatedly — a
  // request may be granted only after other nodes release.
  for (int round = 0; round < 10000; ++round) {
    bool progress = false;
    while (bus.deliver_random(rng)) {
      check_mutex();
      progress = true;
    }
    for (std::size_t i = 0; i < p.nodes; ++i) {
      std::vector<RequestId> rids;
      for (const auto& [rid, mode] : held[i]) rids.push_back(rid);
      for (const RequestId rid : rids) {
        try {
          engines[i]->unlock(rid);
          held[i].erase(rid);
          upgradeable[i].erase(rid);
          progress = true;
        } catch (const std::logic_error&) {
        }
      }
    }
    bool quiet = bus.pending() == 0;
    for (std::size_t i = 0; i < p.nodes && quiet; ++i) {
      quiet = held[i].empty() && !engines[i]->has_pending() &&
              engines[i]->backlog_size() == 0;
    }
    if (quiet) break;
    if (!progress && bus.pending() == 0) break;
  }

  // Liveness: every issued request was eventually granted (upgrades keep
  // their original id, so they don't add to `granted`).
  EXPECT_EQ(granted, issued) << "seed " << p.seed;
  // Exactly one token at the end.
  std::size_t tokens = 0;
  for (const auto& e : engines) tokens += e->is_token_node() ? 1 : 0;
  EXPECT_EQ(tokens, 1u);
  for (std::size_t i = 0; i < p.nodes; ++i) {
    EXPECT_TRUE(engines[i]->queue().empty()) << "node " << i;
    EXPECT_TRUE(engines[i]->children().empty()) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Fuzz with dynamic membership: nodes randomly leave mid-run.
// ---------------------------------------------------------------------------

class MembershipFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembershipFuzz, LeavesDuringTrafficStaySafeAndLive) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr std::size_t kNodes = 6;

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  std::vector<std::map<RequestId, Mode>> held(kNodes);
  std::vector<bool> departed(kNodes, false);
  std::uint64_t issued = 0, granted = 0;

  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EngineCallbacks cbs;
    cbs.on_acquired = [&, i](RequestId rid, Mode mode) {
      held[i][rid] = mode;
      ++granted;
    };
    engines.push_back(std::make_unique<HlsEngine>(
        LockId{0}, id, NodeId{0}, bus.port(id), EngineOptions{},
        std::move(cbs)));
    HlsEngine* raw = engines.back().get();
    bus.register_handler(id, [raw](const Message& m) { raw->handle(m); });
  }

  auto check_mutex = [&] {
    for (std::size_t a = 0; a < kNodes; ++a) {
      for (const auto& [ra, ma] : held[a]) {
        for (std::size_t b = 0; b < kNodes; ++b) {
          for (const auto& [rb, mb] : held[b]) {
            if (a == b && ra == rb) continue;
            ASSERT_TRUE(compatible(ma, mb)) << "seed " << seed;
          }
        }
      }
    }
  };
  auto live_count = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kNodes; ++i) n += departed[i] ? 0 : 1;
    return n;
  };

  for (int step = 0; step < 1500; ++step) {
    const std::size_t i = rng.next_below(kNodes);
    const double dice = rng.next_double();
    if (departed[i]) continue;
    if (dice < 0.35) {
      if (engines[i]->backlog_size() < 2) {
        (void)engines[i]->request_lock(kRealModes[rng.next_below(5)]);
        ++issued;
      }
    } else if (dice < 0.60) {
      if (!held[i].empty()) {
        const RequestId rid = held[i].begin()->first;
        try {
          engines[i]->unlock(rid);
          held[i].erase(rid);
        } catch (const std::logic_error&) {
        }
      }
    } else if (dice < 0.66 && live_count() > 2) {
      // Try to leave: pick another live node as successor for the token
      // case. Refused (holds/pending) -> fine, try later.
      std::size_t succ = rng.next_below(kNodes);
      while (succ == i || departed[succ]) succ = rng.next_below(kNodes);
      try {
        engines[i]->leave(NodeId{static_cast<std::uint32_t>(succ)});
        departed[i] = true;
      } catch (const std::logic_error&) {
        // also covers invalid_argument (refused leave)
      }
    } else {
      for (std::size_t k = rng.next_below(4); k-- > 0;) {
        if (!bus.deliver_random(rng)) break;
        check_mutex();
      }
    }
  }

  // Drain.
  for (int round = 0; round < 10000; ++round) {
    while (bus.deliver_random(rng)) check_mutex();
    bool any = false;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (departed[i]) continue;
      std::vector<RequestId> rids;
      for (const auto& [rid, mode] : held[i]) rids.push_back(rid);
      for (const RequestId rid : rids) {
        engines[i]->unlock(rid);
        held[i].erase(rid);
        any = true;
      }
    }
    bool quiet = bus.pending() == 0 && !any;
    for (std::size_t i = 0; i < kNodes && quiet; ++i) {
      if (departed[i]) continue;
      quiet = held[i].empty() && !engines[i]->has_pending() &&
              engines[i]->backlog_size() == 0;
    }
    if (quiet) break;
  }

  EXPECT_EQ(granted, issued) << "seed " << seed;
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (!departed[i] && engines[i]->is_token_node()) ++tokens;
  }
  EXPECT_EQ(tokens, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

std::vector<FuzzParams> fuzz_params() {
  std::vector<FuzzParams> out;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    out.push_back({4, seed, 800, false});
  }
  for (std::uint64_t seed = 21; seed <= 30; ++seed) {
    out.push_back({8, seed, 1200, false});
  }
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    out.push_back({5, seed, 800, true});  // with priority arbitration
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::ValuesIn(fuzz_params()),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.nodes) +
                                  "_s" + std::to_string(pinfo.param.seed) +
                                  (pinfo.param.priorities ? "_prio" : "");
                         });

}  // namespace
}  // namespace hlock::core
