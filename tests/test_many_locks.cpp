// ShardedSimulator and the many-lock forest harness: the load-bearing
// property is that results are bitwise-invariant to the shard count and
// the thread count (the CI oracle cmp depends on it), plus the lazy
// engine materialization that keeps 10^5-lock forests cheap.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "harness/many_locks_cluster.hpp"
#include "sim/sharded.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

ManyLocksConfig small_config() {
  ManyLocksConfig cfg;
  cfg.nodes = 3;
  cfg.trees = 6;
  cfg.levels = 4;
  cfg.spec.lock_count = 6 * 200;
  cfg.spec.zipf_theta = 0.9;
  cfg.spec.ops_per_node = 8;
  cfg.spec.seed = 0xf00d;
  return cfg;
}

ManyLocksResult run_with(ManyLocksConfig cfg, std::size_t shards,
                         std::size_t threads = 0) {
  cfg.shards = shards;
  cfg.run_threads = threads;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  return cluster.result();
}

}  // namespace

TEST(ShardedSimulator, SingleShardMatchesPlainRunAll) {
  // The same event program, run windowed (lookahead rounds) and plain.
  std::vector<int> windowed;
  std::vector<int> plain;
  auto program = [](sim::Simulator& s, std::vector<int>& out) {
    for (int i = 0; i < 5; ++i) {
      s.schedule_at(i * 100, [&out, &s, i] {
        out.push_back(i);
        s.schedule_after(50, [&out, i] { out.push_back(100 + i); });
      });
    }
  };
  sim::ShardedSimulator sharded(1);
  program(sharded.shard(0), windowed);
  sharded.run_all(/*lookahead=*/30, /*threads=*/1);
  sim::Simulator reference;
  program(reference, plain);
  reference.run_all();
  EXPECT_EQ(windowed, plain);
  EXPECT_EQ(sharded.events_processed(), reference.events_processed());
}

TEST(ShardedSimulator, ShardsAdvanceIndependently) {
  sim::ShardedSimulator sharded(3);
  std::vector<int> order;
  sharded.shard(0).schedule_at(10, [&] { order.push_back(0); });
  sharded.shard(1).schedule_at(20, [&] { order.push_back(1); });
  sharded.shard(2).schedule_at(5, [&] { order.push_back(2); });
  sharded.run_all(/*lookahead=*/1, /*threads=*/1);
  // Serial path visits shards in index order within a round; with a tight
  // lookahead the global windows order cross-shard work by virtual time.
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(sharded.events_processed(), 3u);
  EXPECT_GE(sharded.rounds(), 3u);
}

TEST(ShardedSimulator, ParallelRunExecutesEverything) {
  sim::ShardedSimulator sharded(4);
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 50; ++i) {
      sharded.shard(s).schedule_at(i * 10, [&sharded, &ran, s] {
        ran.fetch_add(1, std::memory_order_relaxed);
        sharded.shard(s).schedule_after(5, [&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
  }
  sharded.run_all(/*lookahead=*/25, /*threads=*/4);
  EXPECT_EQ(ran.load(), 400);
  EXPECT_EQ(sharded.events_processed(), 400u);
}

TEST(ShardedSimulator, EventCapThrows) {
  sim::ShardedSimulator sharded(2);
  // Self-rescheduling event: only the cap stops it.
  std::function<void()> again = [&] {
    sharded.shard(0).schedule_after(1, again);
  };
  sharded.shard(0).schedule_at(0, again);
  EXPECT_THROW(sharded.run_all(10, 1, /*max_events=*/1000),
               std::runtime_error);
}

TEST(ManyLocks, CompletesEveryOp) {
  const ManyLocksResult r = run_with(small_config(), 1);
  EXPECT_EQ(r.ops, 6u * 3 * 8);
  EXPECT_GT(r.lock_requests, r.ops);  // >= 3 locks per op
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.virtual_end, 0);
  EXPECT_EQ(r.latency_factor.count(), r.ops);
}

TEST(ManyLocks, ResultInvariantToShardCount) {
  const ManyLocksConfig cfg = small_config();
  const ManyLocksResult serial = run_with(cfg, 1);
  // 2 and 3 shards exercise uneven tree -> shard partitions.
  EXPECT_EQ(serial, run_with(cfg, 2));
  EXPECT_EQ(serial, run_with(cfg, 3));
  EXPECT_EQ(serial, run_with(cfg, 6));
}

TEST(ManyLocks, ResultInvariantToThreadCount) {
  const ManyLocksConfig cfg = small_config();
  const ManyLocksResult serial = run_with(cfg, 4, 1);
  EXPECT_EQ(serial, run_with(cfg, 4, 2));
  EXPECT_EQ(serial, run_with(cfg, 4, 4));
  EXPECT_EQ(serial, run_with(cfg, 4, 8));  // more threads than shards
}

TEST(ManyLocks, LazyEnginesMaterializeOnlyTouchedLocks) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 6 * 5000;  // big id space, few ops
  cfg.spec.ops_per_node = 4;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  const ManyLocksResult r = cluster.result();
  EXPECT_EQ(r.locks_total, 6u * 5000);
  // Zipf-hot pages plus ancestors: a tiny touched set. Full eager
  // instantiation would be locks_total * nodes engines.
  EXPECT_LT(r.engines_materialized, r.locks_total);
  EXPECT_GT(r.engines_materialized, 0u);
}

TEST(ManyLocks, ZipfSkewShrinksTouchedSet) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 6 * 2000;
  ManyLocksConfig uniform = cfg;
  uniform.spec.zipf_theta = 0.0;
  ManyLocksConfig hot = cfg;
  hot.spec.zipf_theta = 1.2;
  EXPECT_LT(run_with(hot, 1).engines_materialized,
            run_with(uniform, 1).engines_materialized);
}

TEST(ManyLocks, RejectsBadConfig) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.trees = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.levels = 5;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.nodes = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
}

TEST(ManyLocks, ThreeLevelForestRuns) {
  ManyLocksConfig cfg = small_config();
  cfg.levels = 3;
  const ManyLocksResult serial = run_with(cfg, 1);
  EXPECT_EQ(serial.ops, 6u * 3 * 8);
  EXPECT_EQ(serial, run_with(cfg, 3));
}
