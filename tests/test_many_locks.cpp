// ShardedSimulator and the many-lock forest harness: the load-bearing
// property is that results are bitwise-invariant to the shard count and
// the thread count (the CI oracle cmp depends on it), plus the lazy
// engine materialization that keeps 10^5-lock forests cheap.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "harness/many_locks_cluster.hpp"
#include "sim/sharded.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

ManyLocksConfig small_config() {
  ManyLocksConfig cfg;
  cfg.nodes = 3;
  cfg.trees = 6;
  cfg.levels = 4;
  cfg.spec.lock_count = 6 * 200;
  cfg.spec.zipf_theta = 0.9;
  cfg.spec.ops_per_node = 8;
  cfg.spec.seed = 0xf00d;
  return cfg;
}

ManyLocksResult run_with(ManyLocksConfig cfg, std::size_t shards,
                         std::size_t threads = 0) {
  cfg.shards = shards;
  cfg.run_threads = threads;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  return cluster.result();
}

}  // namespace

TEST(ShardedSimulator, SingleShardMatchesPlainRunAll) {
  // The same event program, run windowed (lookahead rounds) and plain.
  std::vector<int> windowed;
  std::vector<int> plain;
  auto program = [](sim::Simulator& s, std::vector<int>& out) {
    for (int i = 0; i < 5; ++i) {
      s.schedule_at(i * 100, [&out, &s, i] {
        out.push_back(i);
        s.schedule_after(50, [&out, i] { out.push_back(100 + i); });
      });
    }
  };
  sim::ShardedSimulator sharded(1);
  program(sharded.shard(0), windowed);
  sharded.run_all(/*lookahead=*/30, /*threads=*/1);
  sim::Simulator reference;
  program(reference, plain);
  reference.run_all();
  EXPECT_EQ(windowed, plain);
  EXPECT_EQ(sharded.events_processed(), reference.events_processed());
}

TEST(ShardedSimulator, ShardsAdvanceIndependently) {
  sim::ShardedSimulator sharded(3);
  std::vector<int> order;
  sharded.shard(0).schedule_at(10, [&] { order.push_back(0); });
  sharded.shard(1).schedule_at(20, [&] { order.push_back(1); });
  sharded.shard(2).schedule_at(5, [&] { order.push_back(2); });
  sharded.run_all(/*lookahead=*/1, /*threads=*/1);
  // Serial path visits shards in index order within a round; with a tight
  // lookahead the global windows order cross-shard work by virtual time.
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(sharded.events_processed(), 3u);
  EXPECT_GE(sharded.rounds(), 3u);
}

TEST(ShardedSimulator, ParallelRunExecutesEverything) {
  sim::ShardedSimulator sharded(4);
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 50; ++i) {
      sharded.shard(s).schedule_at(i * 10, [&sharded, &ran, s] {
        ran.fetch_add(1, std::memory_order_relaxed);
        sharded.shard(s).schedule_after(5, [&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
  }
  sharded.run_all(/*lookahead=*/25, /*threads=*/4);
  EXPECT_EQ(ran.load(), 400);
  EXPECT_EQ(sharded.events_processed(), 400u);
}

TEST(ShardedSimulator, EventCapThrows) {
  sim::ShardedSimulator sharded(2);
  // Self-rescheduling event: only the cap stops it.
  std::function<void()> again = [&] {
    sharded.shard(0).schedule_after(1, again);
  };
  sharded.shard(0).schedule_at(0, again);
  EXPECT_THROW(sharded.run_all(10, 1, /*max_events=*/1000),
               std::runtime_error);
}

TEST(ShardedSimulator, CrossPostOrdersByKeyNotInsertionTime) {
  // The same three events — two posted cross-shard (keys 2 and 1) and one
  // scheduled locally — all landing at t=100 on shard 1. Locals (key 0)
  // run first, then keyed events by key, regardless of the fact that the
  // cross events ride a mailbox and are inserted at a later barrier.
  sim::ShardedSimulator sharded(2);
  std::vector<int> order;
  sharded.shard(1).schedule_at(100, [&] { order.push_back(0); });
  sharded.shard(0).schedule_at(10, [&] {
    sharded.post(0, 1, 100, /*key=*/2, [&] { order.push_back(2); });
    sharded.post(0, 1, 100, /*key=*/1, [&] { order.push_back(1); });
  });
  sharded.run_all(/*lookahead=*/5, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sharded.mailbox_events(), 2u);
  EXPECT_EQ(sharded.cross_posts(), 2u);
}

TEST(ShardedSimulator, SameShardPostMatchesMailboxPost) {
  // A post whose source and destination share a shard inserts directly;
  // the execution order must be identical to the cross-shard run above.
  sim::ShardedSimulator sharded(1);
  std::vector<int> order;
  sharded.shard(0).schedule_at(100, [&] { order.push_back(0); });
  sharded.shard(0).schedule_at(10, [&] {
    sharded.post(0, 0, 100, /*key=*/2, [&] { order.push_back(2); });
    sharded.post(0, 0, 100, /*key=*/1, [&] { order.push_back(1); });
  });
  sharded.run_all(/*lookahead=*/5, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sharded.mailbox_events(), 0u);  // direct insertion
  EXPECT_EQ(sharded.cross_posts(), 2u);
}

TEST(ShardedSimulator, ArrivalInsideExecutedHorizonThrows) {
  // Shard 1 executes up to t=100 in the first window (lookahead 100);
  // shard 0 posts an arrival at t=60, behind shard 1's last executed
  // event — a causality violation the drain must refuse to paper over.
  sim::ShardedSimulator sharded(2);
  sharded.shard(1).schedule_at(0, [] {});
  sharded.shard(1).schedule_at(100, [] {});
  sharded.shard(0).schedule_at(50, [&] {
    sharded.post(0, 1, 60, /*key=*/1, [] {});
  });
  EXPECT_THROW(sharded.run_all(/*lookahead=*/100, /*threads=*/1),
               std::runtime_error);
}

TEST(ShardedSimulator, IdleOvershootRevalidatesTheWindow) {
  // Shard 1's clock coasts to the horizon (t=100) with nothing executed
  // past t=0; an arrival at t=60 is then sound — the drain rolls the
  // idle clock back, counts a revalidation, and the event runs.
  sim::ShardedSimulator sharded(2);
  bool ran = false;
  sharded.shard(1).schedule_at(0, [] {});
  sharded.shard(0).schedule_at(50, [&] {
    sharded.post(0, 1, 60, /*key=*/1, [&] { ran = true; });
  });
  sharded.run_all(/*lookahead=*/100, /*threads=*/1);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sharded.window_revalidations(), 1u);
}

TEST(ShardedSimulator, ZeroLookaheadLivelockStopsAtTheEventBudget) {
  // A same-time rescheduling loop never leaves its window, so only the
  // per-round budget (plumbed into run_until) can stop it. Without that
  // plumbing this test hangs instead of throwing.
  sim::ShardedSimulator sharded(2);
  std::function<void()> again = [&] {
    sharded.shard(0).schedule_after(0, again);
  };
  sharded.shard(0).schedule_at(5, again);
  EXPECT_THROW(sharded.run_all(/*lookahead=*/0, /*threads=*/1,
                               /*max_events=*/1000),
               std::runtime_error);
}

TEST(ManyLocks, CompletesEveryOp) {
  const ManyLocksResult r = run_with(small_config(), 1);
  EXPECT_EQ(r.ops, 6u * 3 * 8);
  EXPECT_GT(r.lock_requests, r.ops);  // >= 3 locks per op
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.virtual_end, 0);
  EXPECT_EQ(r.latency_factor.count(), r.ops);
}

TEST(ManyLocks, ResultInvariantToShardCount) {
  const ManyLocksConfig cfg = small_config();
  const ManyLocksResult serial = run_with(cfg, 1);
  // 2 and 3 shards exercise uneven tree -> shard partitions.
  EXPECT_EQ(serial, run_with(cfg, 2));
  EXPECT_EQ(serial, run_with(cfg, 3));
  EXPECT_EQ(serial, run_with(cfg, 6));
}

TEST(ManyLocks, ResultInvariantToThreadCount) {
  const ManyLocksConfig cfg = small_config();
  const ManyLocksResult serial = run_with(cfg, 4, 1);
  EXPECT_EQ(serial, run_with(cfg, 4, 2));
  EXPECT_EQ(serial, run_with(cfg, 4, 4));
  EXPECT_EQ(serial, run_with(cfg, 4, 8));  // more threads than shards
}

TEST(ManyLocks, LazyEnginesMaterializeOnlyTouchedLocks) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 6 * 5000;  // big id space, few ops
  cfg.spec.ops_per_node = 4;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  const ManyLocksResult r = cluster.result();
  EXPECT_EQ(r.locks_total, 6u * 5000);
  // Zipf-hot pages plus ancestors: a tiny touched set. Full eager
  // instantiation would be locks_total * nodes engines.
  EXPECT_LT(r.engines_materialized, r.locks_total);
  EXPECT_GT(r.engines_materialized, 0u);
}

TEST(ManyLocks, ZipfSkewShrinksTouchedSet) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 6 * 2000;
  ManyLocksConfig uniform = cfg;
  uniform.spec.zipf_theta = 0.0;
  ManyLocksConfig hot = cfg;
  hot.spec.zipf_theta = 1.2;
  EXPECT_LT(run_with(hot, 1).engines_materialized,
            run_with(uniform, 1).engines_materialized);
}

TEST(ManyLocks, RejectsBadConfig) {
  ManyLocksConfig cfg = small_config();
  cfg.spec.lock_count = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.trees = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.levels = 5;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.nodes = 0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
}

TEST(ManyLocks, ThreeLevelForestRuns) {
  ManyLocksConfig cfg = small_config();
  cfg.levels = 3;
  const ManyLocksResult serial = run_with(cfg, 1);
  EXPECT_EQ(serial.ops, 6u * 3 * 8);
  EXPECT_EQ(serial, run_with(cfg, 3));
}

// --- multi-tree transactions (coupled shards) -------------------------

TEST(ManyLocks, CoupledResultInvariantToShardAndThreadCount) {
  // With cross-tree ops the trees are no longer disjoint: invariance now
  // rests on the keyed (t, key) event order and the conservative window,
  // not on per-tree isolation. This is the serial oracle property the CI
  // coupled cmp step checks at the binary level.
  ManyLocksConfig cfg = small_config();
  cfg.cross_tree_pct = 25.0;
  const ManyLocksResult serial = run_with(cfg, 1);
  EXPECT_GT(serial.cross_tree_ops, 0u);
  EXPECT_EQ(serial.ops, 6u * 3 * 8);  // cross ops count once, at home
  EXPECT_EQ(serial.deadlock_cycles, 0u);
  EXPECT_EQ(serial, run_with(cfg, 2));
  EXPECT_EQ(serial, run_with(cfg, 3));
  EXPECT_EQ(serial, run_with(cfg, 6));
  EXPECT_EQ(serial, run_with(cfg, 6, 4));  // parallel workers
}

TEST(ManyLocks, CoupledRunsProduceCrossShardTraffic) {
  ManyLocksConfig cfg = small_config();
  cfg.cross_tree_pct = 25.0;
  cfg.shards = 3;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  // Legs, replies and releases between trees on different shards must
  // ride the mailboxes — the lookahead barrier is load-bearing here.
  EXPECT_GT(cluster.sharded().cross_posts(), 0u);
  EXPECT_GT(cluster.sharded().mailbox_events(), 0u);
}

TEST(ManyLocks, UncoupledConfigPostsNoCrossEvents) {
  ManyLocksConfig cfg = small_config();
  cfg.shards = 3;
  ManyLocksCluster cluster(cfg);
  cluster.run();
  EXPECT_EQ(cluster.sharded().cross_posts(), 0u);
  EXPECT_EQ(cluster.sharded().mailbox_events(), 0u);
}

namespace {

/// High-contention two-tree config: tiny page space, heavy skew, every
/// op spanning both trees — the regime where acquisition order decides
/// between completion and deadlock.
ManyLocksConfig contended_cross_config() {
  ManyLocksConfig cfg;
  cfg.nodes = 4;
  cfg.trees = 2;
  cfg.levels = 4;
  cfg.spec.lock_count = 64;
  cfg.spec.zipf_theta = 1.2;
  cfg.spec.ops_per_node = 20;
  cfg.spec.seed = 1;
  cfg.cross_tree_pct = 100.0;
  return cfg;
}

}  // namespace

TEST(ManyLocks, OrderedCrossTreeOpsNeverDeadlock) {
  // Ordered mode acquires trees in tree-id order — a total order over
  // resources, so even 100% cross traffic on two tiny trees completes.
  const ManyLocksResult r = run_with(contended_cross_config(), 2);
  EXPECT_EQ(r.ops, 2u * 4 * 20);
  EXPECT_EQ(r.cross_tree_ops, r.ops);
  EXPECT_EQ(r.deadlock_cycles, 0u);
}

TEST(ManyLocks, UnorderedCrossTreeDeadlockIsDetectedNotHung) {
  // Home-tree-first acquisition is a textbook ordering bug: opposite
  // transactions hold-and-wait across the trees. The run must DRAIN
  // (conservative windows keep advancing), diagnose the cycle in the
  // forest-wide wait-for graph, and report it instead of throwing.
  ManyLocksConfig cfg = contended_cross_config();
  cfg.cross_tree_unordered = true;
  ManyLocksCluster cluster(cfg);
  cluster.run();  // must not throw and must not hang
  const ManyLocksResult r = cluster.result();
  EXPECT_GE(r.deadlock_cycles, 1u);
  EXPECT_LT(r.ops, 2u * 4 * 20);  // the deadlocked ops never finished
  const auto cycle = cluster.wait_graph().find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);
}

TEST(ManyLocks, UnorderedDeadlockRunIsStillShardInvariant) {
  ManyLocksConfig cfg = contended_cross_config();
  cfg.cross_tree_unordered = true;
  const ManyLocksResult serial = run_with(cfg, 1);
  EXPECT_EQ(serial, run_with(cfg, 2));
  EXPECT_EQ(serial, run_with(cfg, 2, 2));
}

TEST(ManyLocks, LookaheadDerivedFromModelsNotHardcodedMean) {
  // Flat forest: floor is uniform's mean/2, minus one for the inclusive
  // horizon. Clustered forest: the intra-cluster floor governs — the old
  // hard-coded net_latency_mean / 2 window would overshoot it 150-fold
  // and tear the determinism guarantee (arrivals inside executed
  // history).
  ManyLocksConfig flat = small_config();
  {
    ManyLocksCluster cluster(flat);
    EXPECT_EQ(cluster.lookahead(), flat.spec.net_latency_mean / 2 - 1);
  }
  ManyLocksConfig clustered = small_config();
  clustered.clusters = 2;
  clustered.intra_latency_mean = usec(1000);
  {
    ManyLocksCluster cluster(clustered);
    EXPECT_EQ(cluster.lookahead(), usec(1000) / 2 - 1);
    EXPECT_LT(cluster.lookahead(), clustered.spec.net_latency_mean / 2);
  }
}

TEST(ManyLocks, ClusteredCoupledForestStaysDeterministic) {
  // The regression the derived lookahead exists for: clustered topology
  // (intra floor far below the flat mean) plus cross-shard coupling.
  ManyLocksConfig cfg = small_config();
  cfg.clusters = 2;
  cfg.intra_latency_mean = usec(1000);
  cfg.cross_tree_pct = 20.0;
  const ManyLocksResult serial = run_with(cfg, 1);
  EXPECT_EQ(serial.ops, 6u * 3 * 8);
  EXPECT_GT(serial.cross_tree_ops, 0u);
  EXPECT_EQ(serial, run_with(cfg, 3));
  EXPECT_EQ(serial, run_with(cfg, 6, 4));
}

TEST(ManyLocks, RejectsBadCrossTreeConfig) {
  ManyLocksConfig cfg = small_config();
  cfg.cross_tree_pct = 101.0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.cross_tree_pct = -1.0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.trees = 1;
  cfg.spec.lock_count = 200;
  cfg.cross_tree_pct = 10.0;
  EXPECT_THROW(ManyLocksCluster{cfg}, std::invalid_argument);
}
