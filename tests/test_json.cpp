// JSON layer regressions: doubles must be emitted at round-trip
// precision (the old default-precision stream output truncated every
// metric to 6 significant digits), non-finite values must become `null`
// (bare `nan`/`inf` tokens are invalid JSON), and the reader must parse
// back exactly what the writers emit — including integers beyond 2^53.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/stats.hpp"
#include "harness/json.hpp"
#include "harness/metrics.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

TEST(JsonDouble, RoundTripsExactly) {
  for (const double v :
       {0.0, 1.0, 0.1, 1.0 / 3.0, 2.0 / 3.0, 1e-300, 1e300, 123456.789,
        0.30000000000000004, -5.5, 3.0609375314898458}) {
    const std::string text = json_double(v);
    const auto parsed = parse_json(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    const auto back = parsed->as_double();
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(v, *back) << text;  // bit-exact, not approximate
  }
}

TEST(JsonDouble, ShortestFormStaysHuman) {
  // to_chars emits the shortest text that parses back exactly; simple
  // values must not turn into 17-digit monsters.
  EXPECT_EQ(json_double(0.1), "0.1");
  EXPECT_EQ(json_double(3.0), "3");
  EXPECT_EQ(json_double(0.5), "0.5");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, ResultJsonIsValidAndExact) {
  ExperimentResult r;
  r.nodes = 7;
  r.app_ops = 140;
  r.lock_requests = 3;  // msgs_per_lock_request becomes a long fraction
  r.messages = 1000;
  r.wire_bytes = 0xFFFFFFFFFFFFull;
  r.messages_by_kind.inc("request", 600);
  r.messages_by_kind.inc("grant", 400);
  r.latency_factor.add(1.1);
  r.latency_factor.add(2.2);
  r.latency_factor.add(2.2000000000000002);  // adjacent double
  r.latency_factor.seal();
  r.virtual_end = 123456789;

  const std::string json = to_json(r);
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;

  // The derived ratio must round-trip through the emitted text exactly.
  const JsonValue* ratio = doc->find("msgs_per_lock_request");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->as_double(), r.msgs_per_lock_request());

  const JsonValue* factor = doc->find("latency_factor");
  ASSERT_NE(factor, nullptr);
  EXPECT_EQ(factor->find("mean")->as_double(), r.latency_factor.mean());
  EXPECT_EQ(factor->find("p95")->as_double(), r.latency_factor.percentile(0.95));
}

TEST(JsonWriter, TopologySplitEmittedOnlyForClusteredRuns) {
  ExperimentResult flat;
  flat.messages = 10;
  // Flat run: counters all zero -> the split is omitted entirely, keeping
  // flat output byte-identical to the pre-topology emitter.
  const std::string flat_json = to_json(flat);
  EXPECT_EQ(flat_json.find("cross_cluster"), std::string::npos) << flat_json;

  ExperimentResult clustered;
  clustered.messages = 10;
  clustered.intra_cluster_messages = 7;
  clustered.cross_cluster_messages = 3;
  clustered.intra_cluster_bytes = 700;
  clustered.cross_cluster_bytes = 300;
  const std::string json = to_json(clustered);
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->find("intra_cluster_messages")->as_u64(), 7u);
  EXPECT_EQ(doc->find("cross_cluster_messages")->as_u64(), 3u);
  EXPECT_EQ(doc->find("intra_cluster_bytes")->as_u64(), 700u);
  EXPECT_EQ(doc->find("cross_cluster_bytes")->as_u64(), 300u);
  EXPECT_EQ(doc->find("cross_cluster_fraction")->as_double(), 0.3);
}

TEST(JsonWriter, NonFiniteSummaryStaysValidJson) {
  // A Summary restored with poisoned sums exercises the writer's null
  // mapping end to end: the document must still parse.
  ExperimentResult r;
  r.latency_factor = Summary::restore(
      {1.0, 2.0}, true, std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity());
  const std::string json = to_json(r);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->find("latency_factor")->find("mean")->kind,
            JsonValue::Kind::kNull);
}

TEST(JsonParser, ParsesScalarsObjectsArrays) {
  const auto doc = parse_json(
      R"({"a":1,"b":[true,false,null],"c":{"nested":"va\"lue"},"d":-2.5e3})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->as_u64(), 1u);
  ASSERT_EQ(doc->find("b")->elements.size(), 3u);
  EXPECT_EQ(doc->find("b")->elements[0].as_bool(), true);
  EXPECT_EQ(doc->find("b")->elements[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->find("c")->find("nested")->text, "va\"lue");
  EXPECT_EQ(doc->find("d")->as_double(), -2500.0);
}

TEST(JsonParser, FullWidthIntegersSurvive) {
  // 2^64 - 1 cannot round-trip through a double; the parser keeps the
  // raw token so counters stay exact.
  const auto doc = parse_json(R"({"v":18446744073709551615})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("v")->as_u64(), 18446744073709551615ull);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json("[1,2,]").has_value());
  EXPECT_FALSE(parse_json("nan").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
}

TEST(SummaryStddev, NearConstantSamplesNeverGoNaN) {
  // Catastrophic cancellation: E[x^2] - E[x]^2 for near-identical large
  // samples can come out a hair negative; sqrt of that is NaN unless the
  // variance is clamped at zero.
  Summary s;
  for (int i = 0; i < 3; ++i) s.add(1e8 + 0.1);
  EXPECT_FALSE(std::isnan(s.stddev()));
  EXPECT_GE(s.stddev(), 0.0);

  // Deterministic worst case: internal sums restored such that the raw
  // variance expression is exactly negative.
  const Summary poisoned =
      Summary::restore({1.0, 1.0}, true, 2.0, 1.9999999999999996);
  EXPECT_FALSE(std::isnan(poisoned.stddev()));
  EXPECT_EQ(poisoned.stddev(), 0.0);

  // And the JSON it feeds stays valid (this was the source of the
  // invalid `nan` tokens).
  EXPECT_NE(json_double(poisoned.stddev()), "null");
}

}  // namespace
