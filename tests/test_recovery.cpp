// Crash-recovery (view change) tests: an external membership service
// declares nodes dead and drives begin_recovery on every survivor; the
// tree is rebuilt from authoritative survivor state, stale-view traffic
// is fenced, and all surviving work completes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/cluster_map.hpp"
#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

struct Net {
  Net() = default;
  Net(EngineOptions o, const ClusterMap* map) : opts(o), clusters(map) {}

  HlsEngine& add(char name, char root) {
    EngineCallbacks cbs;
    cbs.on_acquired = [this, name](RequestId id, Mode mode) {
      acquired[name].emplace_back(id, mode);
    };
    cbs.on_upgraded = [this, name](RequestId id) {
      upgraded[name].push_back(id);
    };
    auto engine = std::make_unique<HlsEngine>(LockId{0}, id_of(name),
                                              id_of(root),
                                              bus.port(id_of(name)),
                                              opts, std::move(cbs));
    engine->set_cluster_map(clusters);
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
    return *raw;
  }
  HlsEngine& operator[](char c) { return *engines.at(c); }
  void pump() { bus.deliver_all(); }

  /// Simulate a crash: the node stops processing anything.
  void crash(char name) {
    bus.register_handler(id_of(name), [](const Message&) {});
    crashed.insert(name);
  }

  /// View service: recover every survivor with `new_root` as the root.
  void recover(std::uint32_t view, char new_root) {
    std::set<NodeId> survivors;
    for (auto& [name, engine] : engines) {
      if (!crashed.count(name)) survivors.insert(id_of(name));
    }
    for (auto& [name, engine] : engines) {
      if (crashed.count(name)) continue;
      engine->begin_recovery(view, id_of(new_root), survivors);
    }
    pump();
  }

  testing::TestBus bus;
  EngineOptions opts{};
  const ClusterMap* clusters{nullptr};
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::map<char, std::vector<std::pair<RequestId, Mode>>> acquired;
  std::map<char, std::vector<RequestId>> upgraded;
  std::set<char> crashed;
};

TEST(Recovery, CrashOfIdleNodeIsInvisible) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.crash('C');
  net.recover(1, 'A');
  (void)net['B'].request_lock(Mode::kW);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 1u);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
}

TEST(Recovery, DeadReadersHoldVanishes) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  // C wants W: blocked by B's R.
  (void)net['C'].request_lock(Mode::kW);
  net.pump();
  EXPECT_TRUE(net.acquired['C'].empty());
  // B crashes while holding R; view service recovers around it.
  net.crash('B');
  net.recover(1, 'A');
  // C re-issued its pending W; with B's hold gone it must be served.
  ASSERT_EQ(net.acquired['C'].size(), 1u);
  EXPECT_EQ(net.acquired['C'][0].second, Mode::kW);
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
}

TEST(Recovery, TokenHolderCrashRegeneratesToken) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  // Move the token to C.
  (void)net['C'].request_lock(Mode::kW);
  net.pump();
  ASSERT_TRUE(net['C'].is_token_node());
  // B queues a request behind C's W.
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  EXPECT_TRUE(net.acquired['B'].empty());
  // C crashes with the token and a queued request.
  net.crash('C');
  net.recover(1, 'A');
  // B's pending was re-issued to the regenerated root and served (the
  // fresh token immediately travels to B, the strongest requester).
  ASSERT_EQ(net.acquired['B'].size(), 1u);
  EXPECT_EQ(net.acquired['B'][0].second, Mode::kR);
  // Exactly one token among the survivors.
  const int tokens = (net['A'].is_token_node() ? 1 : 0) +
                     (net['B'].is_token_node() ? 1 : 0);
  EXPECT_EQ(tokens, 1);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
}

TEST(Recovery, SurvivorHoldsAreReattachedAndStillBlockWriters) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  (void)net['B'].request_lock(Mode::kIR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);
  net.pump();
  // A (the root) crashes. B and C keep their IR holds.
  net.crash('A');
  net.recover(1, 'B');
  ASSERT_TRUE(net['B'].is_token_node());
  EXPECT_EQ(net['B'].children().count(id_of('C')), 1u);
  // A writer must still wait for BOTH survivors' IR holds.
  (void)net['D'].request_lock(Mode::kW);
  net.pump();
  EXPECT_TRUE(net.acquired['D'].empty());
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
  EXPECT_TRUE(net.acquired['D'].empty());  // B's IR still out
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  ASSERT_EQ(net.acquired['D'].size(), 1u);
  net['D'].unlock(net.acquired['D'][0].first);
  net.pump();
}

TEST(Recovery, StaleViewTokenIsFenced) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  // Craft a view-0 token aimed at B, delivered after recovery to view 1.
  Message stale;
  stale.kind = MsgKind::kToken;
  stale.lock = LockId{0};
  stale.from = id_of('A');
  stale.mode = Mode::kW;
  stale.view = 0;
  net.recover(1, 'A');
  net['B'].handle(stale);  // must be dropped silently
  EXPECT_FALSE(net['B'].is_token_node());
  // Exactly one token in the system.
  EXPECT_TRUE(net['A'].is_token_node());
}

TEST(Recovery, PendingUpgradeSurvivesCrashOfBlockingReader) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  const RequestId ua = net['A'].request_lock(Mode::kU);
  (void)net['B'].request_lock(Mode::kR);  // compatible reader
  net.pump();
  net['A'].upgrade(ua);
  net.pump();
  EXPECT_TRUE(net.upgraded['A'].empty());  // blocked by B
  net.crash('B');
  net.recover(1, 'A');
  // B's R is gone; the re-queued upgrade completes.
  ASSERT_EQ(net.upgraded['A'].size(), 1u);
  EXPECT_EQ(net['A'].holds().at(ua), Mode::kW);
  net['A'].unlock(ua);
  net.pump();
}

TEST(Recovery, SuccessiveCrashesAndRecoveries) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  net.crash('A');
  net.recover(1, 'B');
  (void)net['C'].request_lock(Mode::kR);
  net.pump();
  ASSERT_EQ(net.acquired['C'].size(), 1u);
  net.crash('B');
  net.recover(2, 'C');
  ASSERT_TRUE(net['C'].is_token_node());
  (void)net['D'].request_lock(Mode::kIR);
  net.pump();
  ASSERT_EQ(net.acquired['D'].size(), 1u);
  net['C'].unlock(net.acquired['C'][0].first);
  net['D'].unlock(net.acquired['D'][0].first);
  net.pump();
}

// The head-bypass streak is token state: a regenerated token must start
// with a fresh streak or the fairness cap misbehaves across the view
// change (a maxed-out pre-crash streak would suppress legal post-recovery
// bypasses; regression for the begin_recovery reset).
TEST(Recovery, LocalityStreakResetsWithRegeneratedToken) {
  EngineOptions opts;
  opts.locality_bias = true;
  opts.locality_fairness_cap = 1;
  // A,B in cluster 0; C,D in cluster 1.
  const ClusterMap map = ClusterMap::make(4, 2, ClusterPlacement::kBlock);
  Net net(opts, &map);
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');

  // A (root, token) piles up R holds; remote C's W queues at the head and
  // freezes R, so same-cluster B's R queues behind it. Releasing one of
  // A's spare holds triggers queue service: the biased pick copy-grants B
  // past the blocked head, maxing the streak at the cap.
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId ra2 = net['A'].request_lock(Mode::kR);
  const RequestId ra3 = net['A'].request_lock(Mode::kR);
  net.pump();
  (void)net['C'].request_lock(Mode::kW);
  net.pump();
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  EXPECT_TRUE(net.acquired['B'].empty());  // R frozen by the queued W
  net['A'].unlock(ra3);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 1u);  // bypassed C's queued W
  EXPECT_EQ(net['A'].locality_streak(), 1u);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();

  // Idle D crashes; the view change regenerates the token at A. C's
  // pending W is re-issued and queues again behind A's surviving R holds.
  net.crash('D');
  net.recover(1, 'A');
  EXPECT_TRUE(net['A'].is_token_node());
  EXPECT_TRUE(net.acquired['C'].empty());
  EXPECT_EQ(net['A'].locality_streak(), 0u);

  // Behavioral pin: with the streak reset, B's next same-cluster R may
  // again bypass the head at the next service point; with a stale streak
  // (== cap) it would sit blocked behind C's W until A fully released.
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  net['A'].unlock(ra2);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 2u);
  EXPECT_TRUE(net.acquired['C'].empty());

  // Unwind: readers drain, then C's W is finally served head-first.
  net['B'].unlock(net.acquired['B'][1].first);
  net['A'].unlock(ra);
  net.pump();
  ASSERT_EQ(net.acquired['C'].size(), 1u);
  EXPECT_EQ(net.acquired['C'][0].second, Mode::kW);
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
}

// Requests and attaches stamped with a pre-recovery view must be fenced,
// not queued — a crashed node's in-flight traffic cannot leak into the
// rebuilt tree.
TEST(Recovery, StaleViewRequestAndAttachAreFenced) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.crash('C');
  net.recover(1, 'A');

  // View-0 request from the dead C, delivered late.
  Message req;
  req.kind = MsgKind::kRequest;
  req.lock = LockId{0};
  req.from = id_of('C');
  req.req = QueuedRequest{id_of('C'), Mode::kW, LamportStamp{1, id_of('C')}};
  req.view = 0;
  net['A'].handle(req);
  // View-0 attach claiming a W hold, delivered late.
  Message att;
  att.kind = MsgKind::kAttach;
  att.lock = LockId{0};
  att.from = id_of('C');
  att.mode = Mode::kW;
  att.view = 0;
  net['A'].handle(att);

  // Neither fenced message left a trace: C is not a child, and a live
  // writer is served instantly (nothing queued ahead of it, nothing
  // phantom-held against it).
  EXPECT_EQ(net['A'].children().count(id_of('C')), 0u);
  (void)net['B'].request_lock(Mode::kW);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 1u);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
}

// A second crash during an open recovery barrier: the new view supersedes
// the half-finished one, view-1 attaches are fenced at the view-2 root,
// and exactly one token emerges.
TEST(Recovery, SecondRecoveryBeforeFirstBarrierCompletes) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  (void)net['B'].request_lock(Mode::kR);
  net.pump();

  net.crash('D');
  // View 1 starts on every survivor, but its attaches are NOT delivered:
  // C dies mid-barrier and view 2 begins first.
  const std::set<NodeId> v1{id_of('A'), id_of('B'), id_of('C')};
  net['A'].begin_recovery(1, id_of('A'), v1);
  net['B'].begin_recovery(1, id_of('A'), v1);
  net['C'].begin_recovery(1, id_of('A'), v1);
  net.crash('C');
  const std::set<NodeId> v2{id_of('A'), id_of('B')};
  net['A'].begin_recovery(2, id_of('A'), v2);
  net['B'].begin_recovery(2, id_of('A'), v2);
  // Everything lands at once: C's (and B's) view-1 attaches are stale at
  // the view-2 root; B's view-2 attach closes the barrier.
  net.pump();

  EXPECT_TRUE(net['A'].is_token_node());
  EXPECT_FALSE(net['B'].is_token_node());
  EXPECT_EQ(net['A'].children().count(id_of('C')), 0u);
  // B's R hold survived both recoveries and still blocks a writer.
  (void)net['A'].request_lock(Mode::kW);
  net.pump();
  EXPECT_TRUE(net.acquired['A'].empty());
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  ASSERT_EQ(net.acquired['A'].size(), 1u);
  net['A'].unlock(net.acquired['A'][0].first);
  net.pump();
}

TEST(Recovery, ApiValidation) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const std::set<NodeId> both{id_of('A'), id_of('B')};
  net['A'].begin_recovery(1, id_of('A'), both);
  EXPECT_THROW(net['A'].begin_recovery(1, id_of('A'), both),
               std::invalid_argument);
  EXPECT_THROW(net['A'].begin_recovery(0, id_of('A'), both),
               std::invalid_argument);
  EXPECT_THROW(net['A'].begin_recovery(7, id_of('A'), {id_of('B')}),
               std::invalid_argument);
  net['B'].leave();
  EXPECT_THROW(net['B'].begin_recovery(5, id_of('A'), both),
               std::logic_error);
}

}  // namespace
}  // namespace hlock::core
