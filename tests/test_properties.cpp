// Property sweep: the safety probe stays green and the system quiesces
// cleanly across node counts x seeds x workload mixes x latency models x
// engine-option ablations. Every configuration must also be bit-
// deterministic across two runs.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/invariants.hpp"

namespace hlock::harness {
namespace {

struct Mix {
  const char* name;
  double entry_read, table_read, upgrade, entry_write, table_write;
};

constexpr Mix kMixes[] = {
    {"paper", 0.80, 0.10, 0.04, 0.05, 0.01},
    {"read_only", 0.90, 0.10, 0.00, 0.00, 0.00},
    {"write_heavy", 0.20, 0.10, 0.10, 0.40, 0.20},
    {"upgrade_heavy", 0.40, 0.10, 0.40, 0.05, 0.05},
    {"table_only", 0.00, 0.60, 0.20, 0.00, 0.20},
};

struct Param {
  std::size_t nodes;
  std::uint64_t seed;
  int mix;
  LatencyKind latency;
  int ablation;  // 0 = full, 1..4 = one toggle off
  std::string label() const {
    const char* lat = latency == LatencyKind::kUniform      ? "uni"
                      : latency == LatencyKind::kConstant   ? "const"
                                                            : "exp";
    return "n" + std::to_string(nodes) + "_s" + std::to_string(seed) + "_" +
           kMixes[mix].name + "_" + lat + "_a" + std::to_string(ablation);
  }
};

core::EngineOptions ablation_opts(int ablation) {
  core::EngineOptions opts;
  switch (ablation) {
    case 1: opts.allow_child_grants = false; break;
    case 2: opts.allow_local_queues = false; break;
    case 3: opts.enable_freezing = false; break;
    case 4: opts.lazy_release = false; break;
    default: break;
  }
  return opts;
}

ClusterConfig make_config(const Param& p) {
  ClusterConfig config;
  config.nodes = p.nodes;
  config.latency = p.latency;
  config.engine_opts = ablation_opts(p.ablation);
  config.spec.seed = p.seed * 7919 + static_cast<std::uint64_t>(p.mix);
  config.spec.ops_per_node = 12;
  const Mix& mix = kMixes[p.mix];
  config.spec.p_entry_read = mix.entry_read;
  config.spec.p_table_read = mix.table_read;
  config.spec.p_upgrade = mix.upgrade;
  config.spec.p_entry_write = mix.entry_write;
  config.spec.p_table_write = mix.table_write;
  return config;
}

class ProtocolProperties : public ::testing::TestWithParam<Param> {};

TEST_P(ProtocolProperties, SafeLiveQuiescentDeterministic) {
  const ClusterConfig config = make_config(GetParam());

  HlsCluster cluster(config);
  install_safety_probe(cluster);
  ASSERT_NO_THROW(cluster.run());
  EXPECT_EQ(check_quiescent(cluster), "");
  const auto first = cluster.result();

  // Determinism: identical messages, virtual end time and latency stats.
  HlsCluster again(config);
  again.run();
  const auto second = again.result();
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.virtual_end, second.virtual_end);
  EXPECT_EQ(first.latency_factor.mean(), second.latency_factor.mean());
}

std::vector<Param> make_params() {
  std::vector<Param> out;
  // Mix & latency coverage at two scales, full protocol.
  for (int mix = 0; mix < 5; ++mix) {
    for (const auto lat : {LatencyKind::kUniform, LatencyKind::kConstant,
                           LatencyKind::kExponential}) {
      out.push_back({6, 1, mix, lat, 0});
    }
  }
  // Seed sweep at the paper mix.
  for (std::uint64_t seed = 2; seed <= 9; ++seed) {
    out.push_back({8, seed, 0, LatencyKind::kUniform, 0});
  }
  // Ablations stay correct (they only trade performance).
  for (int ablation = 1; ablation <= 4; ++ablation) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      out.push_back({7, seed, 0, LatencyKind::kUniform, ablation});
      out.push_back({7, seed, 2, LatencyKind::kUniform, ablation});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolProperties,
                         ::testing::ValuesIn(make_params()),
                         [](const auto& pinfo) { return pinfo.param.label(); });

}  // namespace
}  // namespace hlock::harness
