// Tests for the simulator's index-heap-over-slab event core (PR 3):
// equal-timestamp FIFO across slot reuse, run_until boundary behavior,
// free-list recycling under churn, queue-buffer pooling, and the
// zero-steady-state-allocation guarantee.
//
// This file overrides the global allocation functions to count heap
// traffic. Each test file builds into its own executable (see
// tests/CMakeLists.txt), so the override cannot leak into other tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/simulator.hpp"

namespace {
// Not atomic: the simulator and these tests are single-threaded.
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hlock::sim {
namespace {

// A capture-less deliver callback: bumps a per-test counter through ctx.
void count_delivery(void* ctx, NodeId /*from*/, NodeId /*to*/,
                    Message& /*m*/) {
  ++*static_cast<int*>(ctx);
}

TEST(EventSlab, EqualTimestampFifoSurvivesSlotReuse) {
  Simulator s;
  // Churn first so the free list is populated and non-trivially ordered:
  // six events at distinct times leave free_ = [0..5], handed back out in
  // *reverse* (stack) order. Slot indices assigned below therefore
  // decrease while insertion order increases — FIFO must follow seq, not
  // slot.
  for (int i = 0; i < 6; ++i) s.schedule_at(i + 1, [] {});
  s.run_all();
  ASSERT_GE(s.free_slots(), 6u);

  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "slot reuse broke FIFO";
  }
}

TEST(EventSlab, RunUntilIncludesBoundaryExcludesLater) {
  Simulator s;
  int hits = 0;
  s.schedule_at(49, [&] { ++hits; });
  s.schedule_at(50, [&] { ++hits; });  // exactly at the deadline: runs
  s.schedule_at(51, [&] { ++hits; });  // past the deadline: stays queued
  s.run_until(50);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), 50);
  EXPECT_FALSE(s.empty());
  // The boundary event's slot was recycled; the t=51 event still occupies
  // its own slab slot.
  EXPECT_EQ(s.slab_size() - s.free_slots(), 1u);
  s.run_all();
  EXPECT_EQ(hits, 3);
}

TEST(EventSlab, FreeListRecyclesSlotsUnderChurn) {
  Simulator s;
  // Never more than 4 outstanding events, across 1000 schedule/step
  // cycles: the slab must plateau at the high-water mark, not grow with
  // total event count.
  for (int round = 0; round < 250; ++round) {
    for (int i = 0; i < 4; ++i) s.schedule_after(1, [] {});
    while (s.step()) {
    }
  }
  EXPECT_EQ(s.events_processed(), 1000u);
  EXPECT_LE(s.slab_size(), 4u);
  // Drained: every slot is back on the free list.
  EXPECT_EQ(s.free_slots(), s.slab_size());
}

TEST(EventSlab, DeliveredQueueStorageIsPooledAndReissued) {
  Simulator s;
  EXPECT_EQ(s.pooled_queue_buffers(), 0u);
  // Pool starts empty, so the first acquire mints a fresh (capacity-0)
  // vector.
  std::vector<QueuedRequest> q = s.acquire_queue_buffer();
  EXPECT_EQ(q.capacity(), 0u);
  q.push_back(QueuedRequest{NodeId{7}, Mode::kW, {}, false, 0});
  const std::size_t cap = q.capacity();
  ASSERT_GT(cap, 0u);

  int delivered = 0;
  Message m;
  m.queue = std::move(q);
  s.schedule_deliver_at(1, &count_delivery, &delivered, NodeId{0}, NodeId{1},
                        std::move(m));
  s.run_all();
  EXPECT_EQ(delivered, 1);
  // The drained queue's storage came back to the pool...
  ASSERT_EQ(s.pooled_queue_buffers(), 1u);
  // ...and the next acquire hands it back out: empty, capacity retained.
  std::vector<QueuedRequest> reused = s.acquire_queue_buffer();
  EXPECT_EQ(s.pooled_queue_buffers(), 0u);
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), cap);
}

TEST(EventSlab, QueuePoolIgnoresEmptyAndRespectsCap) {
  Simulator s;
  // Capacity-0 vectors carry nothing worth pooling.
  s.recycle_queue_buffer({});
  EXPECT_EQ(s.pooled_queue_buffers(), 0u);
  // The pool is bounded: recycling far more buffers than the cap must not
  // hoard memory.
  for (int i = 0; i < 200; ++i) {
    std::vector<QueuedRequest> q;
    q.reserve(4);
    s.recycle_queue_buffer(std::move(q));
  }
  EXPECT_LE(s.pooled_queue_buffers(), 64u);
  EXPECT_GT(s.pooled_queue_buffers(), 0u);
}

TEST(EventSlab, SteadyStateSchedulesWithZeroHeapAllocations) {
  Simulator s;
  int delivered = 0;
  // One schedule/step cycle of the dominant event shape: a message
  // delivery shipping a small queue, drawn from and returned to the pool.
  const auto churn_once = [&] {
    Message m;
    m.queue = s.acquire_queue_buffer();
    m.queue.push_back(QueuedRequest{NodeId{3}, Mode::kR, {}, false, 0});
    s.schedule_deliver_at(s.now() + 1, &count_delivery, &delivered, NodeId{0},
                          NodeId{1}, std::move(m));
    s.step();
  };
  // Warm up: first cycles mint the queue buffer (the heap/slab/free-list
  // vectors are pre-reserved by the constructor).
  for (int i = 0; i < 100; ++i) churn_once();
  ASSERT_EQ(delivered, 100);

  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) churn_once();
  const std::uint64_t after = g_allocs;
  EXPECT_EQ(delivered, 1100);
  EXPECT_EQ(after - before, 0u)
      << "steady-state event churn must not touch the heap";
}

}  // namespace
}  // namespace hlock::sim
