// Session state-machine tests over the simulator: each op kind drives the
// right lock sequence with the right modes, and the stats are accurate.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/invariants.hpp"

namespace hlock::harness {
namespace {

/// Run one specific op on node `who` of a small HLS cluster and return its
/// stats; the cluster's generators are bypassed.
lockmgr::OpStats run_single_op(lockmgr::Op op, std::size_t nodes = 3,
                               std::size_t who = 1) {
  ClusterConfig config;
  config.nodes = nodes;
  config.spec.ops_per_node = 0;  // no generated traffic
  HlsCluster cluster(config);
  install_safety_probe(cluster);

  lockmgr::OpStats result;
  bool done = false;
  SimExecutor exec(cluster.simulator());
  lockmgr::HierSession session(cluster.node(who), cluster.layout(), exec);
  cluster.simulator().schedule_at(0, [&] {
    session.start(op, [&](const lockmgr::OpStats& stats) {
      result = stats;
      done = true;
    });
  });
  cluster.simulator().run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(check_quiescent(cluster), "");
  return result;
}

TEST(HierSession, TableReadIsOneLockRequest) {
  lockmgr::Op op;
  op.kind = lockmgr::OpKind::kTableRead;
  op.cs = msec(5);
  const auto stats = run_single_op(op);
  EXPECT_EQ(stats.lock_requests, 1u);
  EXPECT_GT(stats.acquire_latency, 0);
}

TEST(HierSession, EntryOpsTakeIntentPlusLeaf) {
  for (const auto kind :
       {lockmgr::OpKind::kEntryRead, lockmgr::OpKind::kEntryWrite}) {
    lockmgr::Op op;
    op.kind = kind;
    op.entry = 2;
    op.cs = msec(5);
    const auto stats = run_single_op(op);
    EXPECT_EQ(stats.lock_requests, 2u) << to_string(kind);
  }
}

TEST(HierSession, UpgradeOpCompletesBothPhases) {
  lockmgr::Op op;
  op.kind = lockmgr::OpKind::kTableUpgrade;
  op.cs = msec(10);
  const auto stats = run_single_op(op);
  EXPECT_EQ(stats.lock_requests, 1u);
}

TEST(HierSession, RejectsConcurrentOps) {
  ClusterConfig config;
  config.nodes = 1;
  config.spec.ops_per_node = 0;
  HlsCluster cluster(config);
  SimExecutor exec(cluster.simulator());
  lockmgr::HierSession session(cluster.node(0), cluster.layout(), exec);
  lockmgr::Op op;
  op.kind = lockmgr::OpKind::kTableRead;
  op.cs = msec(5);
  cluster.simulator().schedule_at(0, [&] {
    session.start(op, [](const lockmgr::OpStats&) {});
    EXPECT_THROW(session.start(op, [](const lockmgr::OpStats&) {}),
                 std::logic_error);
  });
  cluster.simulator().run_all();
}

// ---------------------------------------------------------------------------

TEST(NaimiSessions, OrderedTableOpTakesEveryEntryLock) {
  ClusterConfig config;
  config.nodes = 4;
  config.spec.ops_per_node = 0;
  config.spec.entries_per_node = 2;  // 8 entries
  NaimiCluster cluster(config, /*pure=*/false);
  SimExecutor exec(cluster.simulator());
  lockmgr::ResourceLayout layout(8);
  lockmgr::NaimiOrderedSession session(cluster.node(1), layout, exec);
  lockmgr::Op op;
  op.kind = lockmgr::OpKind::kTableWrite;
  op.cs = msec(5);
  lockmgr::OpStats result;
  cluster.simulator().schedule_at(0, [&] {
    session.start(op, [&](const lockmgr::OpStats& s) { result = s; });
  });
  cluster.simulator().run_all();
  EXPECT_EQ(result.lock_requests, 8u);
}

TEST(NaimiSessions, OrderedEntryOpTakesOneLock) {
  ClusterConfig config;
  config.nodes = 4;
  config.spec.ops_per_node = 0;
  NaimiCluster cluster(config, /*pure=*/false);
  SimExecutor exec(cluster.simulator());
  lockmgr::ResourceLayout layout(4);
  lockmgr::NaimiOrderedSession session(cluster.node(2), layout, exec);
  lockmgr::Op op;
  op.kind = lockmgr::OpKind::kEntryRead;
  op.entry = 3;
  op.cs = msec(5);
  lockmgr::OpStats result;
  cluster.simulator().schedule_at(0, [&] {
    session.start(op, [&](const lockmgr::OpStats& s) { result = s; });
  });
  cluster.simulator().run_all();
  EXPECT_EQ(result.lock_requests, 1u);
}

TEST(NaimiSessions, PureAlwaysOneLock) {
  ClusterConfig config;
  config.nodes = 3;
  config.spec.ops_per_node = 0;
  NaimiCluster cluster(config, /*pure=*/true);
  SimExecutor exec(cluster.simulator());
  lockmgr::NaimiPureSession session(cluster.node(1), LockId{0}, exec);
  for (const auto kind :
       {lockmgr::OpKind::kTableWrite, lockmgr::OpKind::kEntryRead}) {
    lockmgr::Op op;
    op.kind = kind;
    op.cs = msec(2);
    lockmgr::OpStats result;
    bool done = false;
    cluster.simulator().schedule_after(0, [&] {
      session.start(op, [&](const lockmgr::OpStats& s) {
        result = s;
        done = true;
      });
    });
    cluster.simulator().run_all();
    EXPECT_TRUE(done);
    EXPECT_EQ(result.lock_requests, 1u);
  }
}

}  // namespace
}  // namespace hlock::harness
