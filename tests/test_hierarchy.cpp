// Multi-level hierarchy and PlanSession tests: lock-plan computation,
// intent-mode selection, and end-to-end 3-level runs on the simulator
// with the safety probe.
#include <gtest/gtest.h>

#include <memory>

#include "harness/sim_executor.hpp"
#include "lockmgr/hierarchy.hpp"
#include "lockmgr/plan_session.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

namespace hlock::lockmgr {
namespace {

Hierarchy three_level() {
  Hierarchy h("db");
  const ResourceId t0 = h.add_child(h.root(), "table0");
  const ResourceId t1 = h.add_child(h.root(), "table1");
  h.add_child(t0, "row0");
  h.add_child(t0, "row1");
  h.add_child(t1, "row2");
  return h;
}

TEST(Hierarchy, StructureAndNames) {
  const Hierarchy h = three_level();
  EXPECT_EQ(h.resource_count(), 6u);
  EXPECT_EQ(h.name_of(h.root()), "db");
  EXPECT_EQ(h.depth_of(h.root()), 0u);
  EXPECT_EQ(h.depth_of(ResourceId{3}), 2u);  // row0
  EXPECT_EQ(h.parent_of(ResourceId{3}), ResourceId{1});
  EXPECT_FALSE(h.parent_of(h.root()).valid());
  EXPECT_EQ(h.children_of(h.root()).size(), 2u);
  EXPECT_EQ(h.children_of(ResourceId{1}).size(), 2u);
  EXPECT_THROW(h.name_of(ResourceId{9}), std::out_of_range);
}

TEST(Hierarchy, PathToLeaf) {
  const Hierarchy h = three_level();
  const auto path = h.path_to(ResourceId{5});  // row2
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], h.root());
  EXPECT_EQ(path[1], ResourceId{2});  // table1
  EXPECT_EQ(path[2], ResourceId{5});
}

TEST(Hierarchy, IntentModeSelection) {
  EXPECT_EQ(intent_for(Mode::kR), Mode::kIR);
  EXPECT_EQ(intent_for(Mode::kIR), Mode::kIR);
  EXPECT_EQ(intent_for(Mode::kW), Mode::kIW);
  EXPECT_EQ(intent_for(Mode::kIW), Mode::kIW);
  EXPECT_EQ(intent_for(Mode::kU), Mode::kIW);
  EXPECT_THROW(intent_for(Mode::kNone), std::invalid_argument);
}

TEST(Hierarchy, LockPlansForEveryLevel) {
  const Hierarchy h = three_level();
  // Leaf write: IW on db, IW on table, W on row.
  const auto leaf = lock_plan(h, ResourceId{3}, Mode::kW);
  ASSERT_EQ(leaf.size(), 3u);
  EXPECT_EQ(leaf[0], (PlanStep{LockId{0}, Mode::kIW}));
  EXPECT_EQ(leaf[1], (PlanStep{LockId{1}, Mode::kIW}));
  EXPECT_EQ(leaf[2], (PlanStep{LockId{3}, Mode::kW}));
  // Table scan: IR on db, R on table.
  const auto scan = lock_plan(h, ResourceId{2}, Mode::kR);
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_EQ(scan[0], (PlanStep{LockId{0}, Mode::kIR}));
  EXPECT_EQ(scan[1], (PlanStep{LockId{2}, Mode::kR}));
  // Whole-database op: single step.
  const auto whole = lock_plan(h, h.root(), Mode::kU);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], (PlanStep{LockId{0}, Mode::kU}));
}

TEST(Hierarchy, PlanCompatibilityAcrossDisjointSubtrees) {
  // The whole point of intents: writers on rows of DIFFERENT tables must
  // be pairwise compatible at every shared level.
  const Hierarchy h = three_level();
  const auto w0 = lock_plan(h, ResourceId{3}, Mode::kW);  // table0/row0
  const auto w2 = lock_plan(h, ResourceId{5}, Mode::kW);  // table1/row2
  for (const auto& a : w0) {
    for (const auto& b : w2) {
      if (a.lock != b.lock) continue;
      EXPECT_TRUE(compatible(a.mode, b.mode))
          << a.mode << " vs " << b.mode << " on lock " << a.lock;
    }
  }
  // Same-table writers conflict exactly at the row (disjoint rows: no
  // conflict anywhere).
  const auto w1 = lock_plan(h, ResourceId{4}, Mode::kW);  // table0/row1
  for (const auto& a : w0) {
    for (const auto& b : w1) {
      if (a.lock != b.lock) continue;
      EXPECT_TRUE(compatible(a.mode, b.mode));
    }
  }
}

// ---------------------------------------------------------------------------

struct PlanFixture {
  PlanFixture()
      : net(sim, std::make_unique<sim::UniformLatency>(msec(10)), Rng(4)),
        exec(sim),
        hierarchy(three_level()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const NodeId id{i};
      transports.push_back(std::make_unique<sim::SimTransport>(net, id));
      nodes.push_back(
          std::make_unique<core::HlsNode>(id, *transports.back()));
      for (std::uint32_t l = 0; l < hierarchy.resource_count(); ++l) {
        nodes.back()->add_lock(LockId{l}, NodeId{0});
      }
      net.register_node(id, [n = nodes.back().get()](const Message& m) {
        n->handle(m);
      });
    }
    for (auto& n : nodes) {
      sessions.push_back(std::make_unique<PlanSession>(*n, exec));
    }
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  harness::SimExecutor exec;
  Hierarchy hierarchy;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsNode>> nodes;
  std::vector<std::unique_ptr<PlanSession>> sessions;
};

TEST(PlanSession, ExecutesThreeLevelPlan) {
  PlanFixture f;
  bool done = false;
  f.sim.schedule_at(0, [&] {
    f.sessions[1]->run(lock_plan(f.hierarchy, ResourceId{3}, Mode::kW),
                       msec(5), [&](const PlanSession::Result& r) {
                         EXPECT_EQ(r.lock_requests, 3u);
                         EXPECT_GT(r.acquire_latency, 0);
                         done = true;
                       });
  });
  f.sim.run_all();
  EXPECT_TRUE(done);
  // All released.
  for (auto& n : f.nodes) {
    for (std::uint32_t l = 0; l < f.hierarchy.resource_count(); ++l) {
      EXPECT_TRUE(n->engine(LockId{l}).holds().empty());
    }
  }
}

TEST(PlanSession, DisjointRowWritersOverlap) {
  PlanFixture f;
  TimePoint acquired1 = 0, acquired2 = 0, done1 = 0, done2 = 0;
  f.sim.schedule_at(0, [&] {
    f.sessions[1]->run(lock_plan(f.hierarchy, ResourceId{3}, Mode::kW),
                       msec(200), [&](const PlanSession::Result& r) {
                         acquired1 = r.acquire_latency;
                         done1 = f.sim.now();
                       });
  });
  f.sim.schedule_at(0, [&] {
    f.sessions[2]->run(lock_plan(f.hierarchy, ResourceId{5}, Mode::kW),
                       msec(200), [&](const PlanSession::Result& r) {
                         acquired2 = r.acquire_latency;
                         done2 = f.sim.now();
                       });
  });
  f.sim.run_all();
  ASSERT_GT(done1, 0);
  ASSERT_GT(done2, 0);
  // Concurrent: the 200 ms critical sections overlapped (IW is
  // compatible with IW at db level; rows are disjoint) — end times
  // within one CS of each other rather than serialized.
  EXPECT_LT(std::max(done1, done2), msec(200) * 2);
}

TEST(PlanSession, SameRowWritersSerialize) {
  PlanFixture f;
  TimePoint done1 = 0, done2 = 0;
  for (const std::size_t who : {std::size_t{1}, std::size_t{2}}) {
    f.sim.schedule_at(0, [&, who] {
      f.sessions[who]->run(lock_plan(f.hierarchy, ResourceId{3}, Mode::kW),
                           msec(200), [&, who](const PlanSession::Result&) {
                             (who == 1 ? done1 : done2) = f.sim.now();
                           });
    });
  }
  f.sim.run_all();
  ASSERT_GT(done1, 0);
  ASSERT_GT(done2, 0);
  EXPECT_GE(std::max(done1, done2), msec(400));  // serialized
}

TEST(PlanSession, RejectsBadUse) {
  PlanFixture f;
  f.sim.schedule_at(0, [&] {
    EXPECT_THROW(f.sessions[0]->run({}, msec(1), nullptr),
                 std::invalid_argument);
    f.sessions[0]->run(lock_plan(f.hierarchy, ResourceId{1}, Mode::kR),
                       msec(5), nullptr);
    EXPECT_THROW(f.sessions[0]->run(
                     lock_plan(f.hierarchy, ResourceId{1}, Mode::kR),
                     msec(5), nullptr),
                 std::logic_error);
  });
  f.sim.run_all();
}

}  // namespace
}  // namespace hlock::lockmgr
