// Paper-scale smoke tests: the full 120-node configuration completes,
// quiesces cleanly, and hits the paper's headline numbers within loose
// shape bounds. (The per-event safety probe is O(locks·nodes²) and is
// exercised at smaller scales in test_hls_cluster; here we assert the end
// state and the metrics.)
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/invariants.hpp"

namespace hlock::harness {
namespace {

TEST(Scale, HundredTwentyNodesPaperWorkload) {
  ClusterConfig config;
  config.nodes = 120;
  config.spec.ops_per_node = 40;
  HlsCluster cluster(config);
  cluster.run();
  EXPECT_EQ(check_quiescent(cluster), "");
  const auto r = cluster.result();
  EXPECT_EQ(r.app_ops, 4800u);
  // Headline shape bounds (generous: different seeds move these a little).
  EXPECT_GT(r.msgs_per_lock_request(), 2.0);
  EXPECT_LT(r.msgs_per_lock_request(), 4.5);
  EXPECT_GT(r.latency_factor.mean(), 10.0);
  EXPECT_LT(r.latency_factor.mean(), 200.0);
}

TEST(Scale, LogarithmicAsymptoteHolds) {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 40;
  const auto at60 = run_experiment(Protocol::kHls, 60, spec);
  const auto at120 = run_experiment(Protocol::kHls, 120, spec);
  // Doubling nodes must grow per-request messages by < 25% (§6: the
  // logarithmic asymptote survives hierarchical modes).
  EXPECT_LT(at120.msgs_per_lock_request(),
            1.25 * at60.msgs_per_lock_request());
}

TEST(Scale, OursBeatsNaimiPureAtPaperScale) {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 40;
  const auto ours = run_experiment(Protocol::kHls, 120, spec);
  const auto pure = run_experiment(Protocol::kNaimiPure, 120, spec);
  EXPECT_LT(ours.msgs_per_lock_request(), pure.msgs_per_lock_request());
  EXPECT_LT(ours.latency_factor.mean(), pure.latency_factor.mean());
}

TEST(Scale, LossyHundredNodesStillCompletes) {
  ClusterConfig config;
  config.nodes = 100;
  config.spec.ops_per_node = 15;
  config.loss_rate = 0.05;
  HlsCluster cluster(config);
  cluster.run();
  EXPECT_EQ(check_quiescent(cluster), "");
}

}  // namespace
}  // namespace hlock::harness
