// Behavioral coverage of Table 2(a): for EVERY (pending M1, incoming M2)
// cell, a non-token node with a pending M1 request receives an M2 request
// and must queue it locally or forward it exactly as the table says —
// verified by observing the actual message flow, not the lookup function.
// Each cell additionally checks liveness: once the root unblocks, both
// requests are eventually served.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

struct Cell {
  Mode pending;   // M1 at node B (kNone = no pending request)
  Mode incoming;  // M2 arriving from node D
};

class Table2aBehavior : public ::testing::TestWithParam<Cell> {};

TEST_P(Table2aBehavior, QueueOrForwardMatchesTheTable) {
  const Cell cell = GetParam();

  testing::TestBus bus;
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::map<char, std::vector<std::pair<RequestId, Mode>>> acquired;
  auto add = [&](char name, char parent) {
    EngineCallbacks cbs;
    cbs.on_acquired = [&acquired, name](RequestId id, Mode mode) {
      acquired[name].emplace_back(id, mode);
    };
    auto engine = std::make_unique<HlsEngine>(
        LockId{0}, id_of(name), id_of('A'), bus.port(id_of(name)),
        EngineOptions{}, std::move(cbs),
        parent == '\0' ? NodeId::invalid() : id_of(parent));
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
  };
  add('A', '\0');  // root
  add('B', '\0');
  add('D', 'B');  // D's probable owner is B

  // Root holds W: every request stalls, so B's M1 stays pending.
  const RequestId wa = engines['A' ]->request_lock(Mode::kW);

  if (cell.pending != Mode::kNone) {
    (void)engines['B']->request_lock(cell.pending);
    bus.deliver_all();  // request travels to A and is queued there
    ASSERT_TRUE(engines['B']->has_pending());
  }

  // D's request reaches B (exactly one hop on the D->B channel).
  (void)engines['D']->request_lock(cell.incoming);
  ASSERT_GE(bus.pending(), 1u);
  // Deliver only D's request (it is the newest message; find it).
  bool delivered = false;
  for (std::size_t i = 0; i < bus.in_flight().size(); ++i) {
    const auto& f = bus.in_flight()[i];
    if (f.msg.kind == MsgKind::kRequest &&
        f.msg.req.requester == id_of('D') && f.to == id_of('B')) {
      bus.deliver_at(i);
      delivered = true;
      break;
    }
  }
  ASSERT_TRUE(delivered);

  const bool queued = !engines['B']->queue().empty();
  const bool expect_queue =
      queue_or_forward(cell.pending, cell.incoming) == PendingAction::kQueue;
  EXPECT_EQ(queued, expect_queue)
      << "pending " << cell.pending << ", incoming " << cell.incoming;

  // Liveness: release the root's W; every request must come through.
  bus.deliver_all();
  engines['A']->unlock(wa);
  bus.deliver_all();
  // Progress can need several unlock/serve rounds (e.g. incompatible
  // modes serve strictly one after another).
  for (int round = 0; round < 10; ++round) {
    const std::size_t want = cell.pending != Mode::kNone ? 2u : 1u;
    std::size_t got = acquired['B'].size() + acquired['D'].size();
    if (got >= want) break;
    // Release whatever is held to let the queue advance.
    for (const char n : {'B', 'D'}) {
      while (!engines[n]->holds().empty()) {
        engines[n]->unlock(engines[n]->holds().begin()->first);
        bus.deliver_all();
      }
    }
  }
  if (cell.pending != Mode::kNone) {
    EXPECT_EQ(acquired['B'].size(), 1u) << "B's pending was lost";
  }
  EXPECT_EQ(acquired['D'].size(), 1u) << "D's request was lost";
}

std::vector<Cell> all_cells() {
  std::vector<Cell> out;
  const Mode pendings[6] = {Mode::kNone, Mode::kIR, Mode::kR,
                            Mode::kU,    Mode::kIW, Mode::kW};
  for (const Mode m1 : pendings) {
    for (const Mode m2 : kRealModes) out.push_back({m1, m2});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCells, Table2aBehavior,
                         ::testing::ValuesIn(all_cells()),
                         [](const auto& pinfo) {
                           std::string name = "p";
                           name += to_string(pinfo.param.pending);
                           name += "_r";
                           name += to_string(pinfo.param.incoming);
                           // '-' is not a valid gtest name char.
                           for (char& c : name) {
                             if (c == '-') c = '0';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hlock::core
