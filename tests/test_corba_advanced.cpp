// Advanced facade tests: timeout locking (try_lock_for), ScopedLock RAII
// guards, and a multi-thread stress over real sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "corba/concurrency.hpp"
#include "net/cluster.hpp"

namespace hlock::corba {
namespace {

constexpr LockId kLock{0};

struct Fixture {
  explicit Fixture(std::size_t n) : cluster(n) {
    for (std::size_t i = 0; i < n; ++i) {
      services.push_back(
          std::make_unique<ConcurrencyService>(cluster.node(i)));
      services.back()->create_lock_set(kLock, NodeId{0});
    }
  }
  net::InProcessCluster cluster;
  std::vector<std::unique_ptr<ConcurrencyService>> services;
};

TEST(TryLockFor, SucceedsWhenUncontended) {
  Fixture f(2);
  LockSet b = f.services[1]->lock_set(kLock);
  const auto h = b.try_lock_for(LockMode::kWrite, msec(2000));
  ASSERT_TRUE(h.has_value());
  b.unlock(*h);
}

TEST(TryLockFor, TimesOutUnderConflict) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kLock);
  LockSet b = f.services[1]->lock_set(kLock);
  const LockHandle hw = a.lock(LockMode::kWrite);
  const auto start = std::chrono::steady_clock::now();
  const auto h = b.try_lock_for(LockMode::kRead, msec(100));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(h.has_value());
  EXPECT_GE(waited, std::chrono::milliseconds(90));
  EXPECT_LT(waited, std::chrono::seconds(5));
  a.unlock(hw);
  // The cancelled request must not leave residue: a normal lock works.
  const LockHandle hb = b.lock(LockMode::kRead);
  b.unlock(hb);
}

TEST(TryLockFor, LateGrantAfterTimeoutIsNotLeaked) {
  // Repeat a tight-timeout acquisition under contention many times; every
  // outcome must either hold-and-release or cleanly time out. Afterwards
  // a writer from the other node must get through (nothing leaked).
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kLock);
  LockSet b = f.services[1]->lock_set(kLock);
  std::atomic<bool> stop{false};
  std::thread holder([&] {
    while (!stop.load()) {
      const LockHandle h = a.lock(LockMode::kWrite);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      a.unlock(h);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  int granted = 0, timed_out = 0;
  for (int i = 0; i < 50; ++i) {
    const auto h = b.try_lock_for(LockMode::kWrite, msec(1));
    if (h) {
      ++granted;
      b.unlock(*h);
    } else {
      ++timed_out;
    }
  }
  stop.store(true);
  holder.join();
  EXPECT_EQ(granted + timed_out, 50);
  const LockHandle final_w = a.lock(LockMode::kWrite);
  a.unlock(final_w);
}

TEST(ScopedLock, ReleasesOnScopeExit) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kLock);
  LockSet b = f.services[1]->lock_set(kLock);
  {
    const ScopedLock guard(a, LockMode::kWrite);
    EXPECT_EQ(guard.mode(), Mode::kW);
    EXPECT_FALSE(b.try_lock(LockMode::kRead).has_value());
  }
  // Guard destroyed: the other node can take the lock.
  const LockHandle hb = b.lock(LockMode::kWrite);
  b.unlock(hb);
}

TEST(ScopedLock, UpgradeAndEarlyRelease) {
  Fixture f(1);
  LockSet a = f.services[0]->lock_set(kLock);
  ScopedLock guard(a, LockMode::kUpgrade);
  EXPECT_EQ(guard.mode(), Mode::kU);
  guard.upgrade();
  EXPECT_EQ(guard.mode(), Mode::kW);
  guard.downgrade(LockMode::kRead);
  EXPECT_EQ(guard.mode(), Mode::kR);
  guard.release();
  // Double release is a no-op; destructor must not throw.
  guard.release();
}

TEST(ScopedLock, MoveTransfersOwnership) {
  Fixture f(1);
  LockSet a = f.services[0]->lock_set(kLock);
  ScopedLock first(a, LockMode::kRead);
  ScopedLock second(std::move(first));
  EXPECT_EQ(second.mode(), Mode::kR);
  // `first` must not release in its destructor (handle moved out).
}

TEST(FacadeStress, ManyThreadsManyNodesMixedModes) {
  Fixture f(4);
  std::atomic<int> writers_inside{0};
  std::atomic<bool> broken{false};
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < 4; ++n) {
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, n, t] {
        LockSet set = f.services[n]->lock_set(kLock);
        for (int round = 0; round < 8; ++round) {
          if ((t + round) % 3 == 0) {
            const ScopedLock guard(set, LockMode::kWrite);
            if (writers_inside.fetch_add(1) != 0) broken.store(true);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            writers_inside.fetch_sub(1);
          } else {
            const ScopedLock guard(set, LockMode::kRead);
            if (writers_inside.load() != 0) broken.store(true);
            std::this_thread::sleep_for(std::chrono::microseconds(300));
          }
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(broken.load());
}

TEST(Recovery, CrashedNodeOverTcpIsRecoveredAround) {
  Fixture f(3);
  LockSet a = f.services[0]->lock_set(kLock);
  LockSet c = f.services[2]->lock_set(kLock);

  // Node 1 takes the token with W, then "crashes" (its loop stops; its
  // sockets go quiet).
  {
    LockSet b = f.services[1]->lock_set(kLock);
    const LockHandle hb = b.lock(LockMode::kWrite);
    (void)hb;  // crashed while holding
  }
  f.cluster.node(1).loop().stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // View service recovers nodes 0 and 2 with node 0 as the new root.
  const std::set<NodeId> survivors{NodeId{0}, NodeId{2}};
  f.services[0]->recover(kLock, 1, NodeId{0}, survivors);
  f.services[2]->recover(kLock, 1, NodeId{0}, survivors);

  // The dead writer's hold is gone; survivors can lock again.
  const LockHandle ha = a.lock(LockMode::kWrite);
  a.unlock(ha);
  const LockHandle hc = c.lock(LockMode::kRead);
  c.unlock(hc);
}

}  // namespace
}  // namespace hlock::corba
