// Unit tests for the Naimi/Trehel/Arnold baseline: mutual exclusion, path
// reversal, distributed queueing through next pointers.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "naimi/naimi_engine.hpp"
#include "test_util.hpp"

namespace hlock::naimi {
namespace {

struct Net {
  NaimiEngine& add(std::uint32_t i, std::uint32_t root) {
    NaimiCallbacks cbs;
    cbs.on_acquired = [this, i](RequestId id) { acquired[i].push_back(id); };
    auto engine = std::make_unique<NaimiEngine>(
        LockId{0}, NodeId{i}, NodeId{root}, bus.port(NodeId{i}),
        std::move(cbs));
    NaimiEngine* raw = engine.get();
    bus.register_handler(NodeId{i},
                         [raw](const Message& m) { raw->handle(m); });
    engines[i] = std::move(engine);
    return *raw;
  }
  NaimiEngine& operator[](std::uint32_t i) { return *engines.at(i); }
  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::map<std::uint32_t, std::unique_ptr<NaimiEngine>> engines;
  std::map<std::uint32_t, std::vector<RequestId>> acquired;
};

TEST(NaimiEngine, RootEntersImmediately) {
  Net net;
  net.add(0, 0);
  const RequestId id = net[0].request();
  EXPECT_EQ(net.acquired[0].size(), 1u);
  EXPECT_EQ(net.bus.total_sent(), 0u);
  net[0].release(id);
}

TEST(NaimiEngine, RemoteAcquireMovesToken) {
  Net net;
  net.add(0, 0);
  net.add(1, 0);
  (void)net[1].request();
  net.pump();
  EXPECT_EQ(net.acquired[1].size(), 1u);
  EXPECT_TRUE(net[1].has_token());
  EXPECT_FALSE(net[0].has_token());
  // Path reversal: node 0's probable owner now points at node 1.
  EXPECT_EQ(net[0].father(), NodeId{1});
  net[1].release(net.acquired[1][0]);
}

TEST(NaimiEngine, WaitersFormDistributedQueue) {
  Net net;
  net.add(0, 0);
  net.add(1, 0);
  net.add(2, 0);
  const RequestId r0 = net[0].request();  // root holds CS
  (void)net[1].request();
  net.pump();
  EXPECT_EQ(net[0].next(), NodeId{1});  // 1 queued behind the holder
  (void)net[2].request();
  net.pump();
  EXPECT_EQ(net[1].next(), NodeId{2});  // 2 queued behind 1
  EXPECT_TRUE(net.acquired[1].empty());
  net[0].release(r0);
  net.pump();
  ASSERT_EQ(net.acquired[1].size(), 1u);
  EXPECT_TRUE(net.acquired[2].empty());
  net[1].release(net.acquired[1][0]);
  net.pump();
  ASSERT_EQ(net.acquired[2].size(), 1u);
  net[2].release(net.acquired[2][0]);
}

TEST(NaimiEngine, MutualExclusionOverManyRounds) {
  Net net;
  constexpr std::uint32_t kNodes = 8;
  for (std::uint32_t i = 0; i < kNodes; ++i) net.add(i, 0);

  int in_cs = 0;
  bool overlap = false;
  std::vector<std::pair<std::uint32_t, RequestId>> to_release;

  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      (void)net[i].request();
    }
    // Drain: each node releases as soon as it acquires.
    std::size_t served = 0;
    while (served < kNodes) {
      for (std::uint32_t i = 0; i < kNodes; ++i) {
        auto& log = net.acquired[i];
        if (!log.empty()) {
          ++in_cs;
          if (in_cs > 1) overlap = true;
          --in_cs;
          net[i].release(log.front());
          log.clear();
          ++served;
        }
      }
      if (served < kNodes && !net.bus.deliver_one()) {
        // No progress possible: fail loudly.
        FAIL() << "protocol stuck with " << served << "/" << kNodes;
      }
    }
    net.pump();
  }
  EXPECT_FALSE(overlap);
}

TEST(NaimiEngine, BacklogServesLocalRequestsInOrder) {
  Net net;
  net.add(0, 0);
  const RequestId a = net[0].request();
  const RequestId b = net[0].request();  // backlog
  EXPECT_EQ(net[0].backlog_size(), 1u);
  EXPECT_EQ(net.acquired[0].size(), 1u);
  net[0].release(a);
  ASSERT_EQ(net.acquired[0].size(), 2u);
  EXPECT_EQ(net.acquired[0][1], b);
  net[0].release(b);
}

TEST(NaimiEngine, ApiMisuseThrows) {
  Net net;
  net.add(0, 0);
  const RequestId id = net[0].request();
  net[0].release(id);
  EXPECT_THROW(net[0].release(id), std::logic_error);
  Message wrong;
  wrong.lock = LockId{3};
  EXPECT_THROW(net[0].handle(wrong), std::logic_error);
}

TEST(NaimiEngine, TokenPassesDirectlyWhenIdle) {
  Net net;
  net.add(0, 0);
  net.add(1, 0);
  net.add(2, 0);
  // 1 acquires and releases; then 2 requests — the request is forwarded
  // along probable owners to 1, which passes the token directly.
  (void)net[1].request();
  net.pump();
  net[1].release(net.acquired[1][0]);
  (void)net[2].request();
  net.pump();
  EXPECT_EQ(net.acquired[2].size(), 1u);
  EXPECT_TRUE(net[2].has_token());
  net[2].release(net.acquired[2][0]);
}

}  // namespace
}  // namespace hlock::naimi
