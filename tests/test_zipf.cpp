// Zipf sampler and forest layout: seed reproducibility, agreement with
// the analytic distribution, and the determinism of the tree -> shard /
// lock -> home assignments the sharded harness builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/forest.hpp"
#include "workload/zipf.hpp"

using namespace hlock;
using namespace hlock::workload;

TEST(Zipf, SameSeedSameDraws) {
  const ZipfTable table(1000, 0.9);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(table.sample(a), table.sample(b)) << "draw " << i;
}

TEST(Zipf, DifferentSeedsDiffer) {
  const ZipfTable table(1000, 0.9);
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 200; ++i)
    if (table.sample(a) != table.sample(b)) ++differing;
  EXPECT_GT(differing, 100);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  for (const double theta : {0.0, 0.5, 0.9, 1.2}) {
    const ZipfTable table(512, theta);
    double sum = 0;
    for (std::uint32_t k = 0; k < table.size(); ++k)
      sum += table.probability(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta " << theta;
  }
}

TEST(Zipf, FrequenciesMatchAnalyticCdf) {
  // Sampled rank frequencies must track probability(k) — binomial
  // std-dev for the hot ranks at n draws is ~sqrt(p/n), so 5 sigma
  // tolerance keeps this deterministic-seed test far from flaky while
  // still catching an off-by-one in the CDF inversion.
  const ZipfTable table(100, 0.9);
  Rng rng(7);
  constexpr int kDraws = 200'000;
  std::vector<int> hist(table.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++hist[table.sample(rng)];
  for (const std::uint32_t k : {0u, 1u, 2u, 10u, 50u, 99u}) {
    const double p = table.probability(k);
    const double expected = p * kDraws;
    const double sigma = std::sqrt(p * (1 - p) * kDraws);
    EXPECT_NEAR(hist[k], expected, 5 * sigma + 1) << "rank " << k;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  const ZipfTable table(64, 0.0);
  for (std::uint32_t k = 0; k < table.size(); ++k)
    EXPECT_DOUBLE_EQ(table.probability(k), 1.0 / 64);
  Rng rng(3);
  std::vector<int> hist(table.size(), 0);
  for (int i = 0; i < 64 * 1000; ++i) ++hist[table.sample(rng)];
  for (const int count : hist) EXPECT_NEAR(count, 1000, 250);
}

TEST(Zipf, SkewConcentratesMass) {
  const ZipfTable uniform(1000, 0.0);
  const ZipfTable skewed(1000, 0.99);
  EXPECT_GT(skewed.probability(0), 10 * uniform.probability(0));
  EXPECT_LT(skewed.probability(999), uniform.probability(999));
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfTable(0, 0.9), std::invalid_argument);
  EXPECT_THROW(ZipfTable(10, -0.1), std::invalid_argument);
}

TEST(ForestLayout, PartitionsIdSpaceExactly) {
  for (const std::uint32_t levels : {3u, 4u}) {
    for (const std::uint32_t locks : {64u, 3125u, 50'000u}) {
      const ForestLayout layout(locks, levels);
      EXPECT_EQ(layout.locks_per_tree(),
                1 + layout.dbs() + layout.collections() + layout.pages());
      EXPECT_EQ(layout.locks_per_tree(), locks);
      EXPECT_EQ(layout.dbs() == 0, levels == 3);
      // Level-order ids tile [0, locks) with no gaps or overlaps.
      EXPECT_EQ(layout.top_lock().value, 0u);
      if (levels == 4) EXPECT_EQ(layout.db_lock(0).value, 1u);
      EXPECT_EQ(layout.collection_lock(0).value, 1 + layout.dbs());
      EXPECT_EQ(layout.page_lock(layout.pages() - 1).value, locks - 1);
    }
  }
}

TEST(ForestLayout, MostLocksAreLeaves) {
  const ForestLayout layout(100'000, 4);
  EXPECT_GT(layout.pages(), 85'000u);
  EXPECT_GT(layout.collections(), layout.dbs());
}

TEST(ForestLayout, ShardAndHomeAssignmentsAreDeterministic) {
  for (std::uint32_t tree = 0; tree < 32; ++tree) {
    EXPECT_EQ(ForestLayout::shard_of(tree, 4), tree % 4);
    EXPECT_EQ(ForestLayout::shard_of(tree, 1), 0u);
  }
  const ForestLayout layout(1000, 3);
  for (std::uint32_t v = 0; v < layout.locks_per_tree(); ++v) {
    const NodeId home = ForestLayout::home_of(LockId{v}, 8);
    EXPECT_LT(home.value, 8u);
    EXPECT_EQ(home.value, ForestLayout::home_of(LockId{v}, 8).value);
  }
}

TEST(ForestLayout, RejectsBadShapes) {
  EXPECT_THROW(ForestLayout(7, 3), std::invalid_argument);
  EXPECT_THROW(ForestLayout(100, 2), std::invalid_argument);
  EXPECT_THROW(ForestLayout(100, 5), std::invalid_argument);
}

TEST(ForestOpGen, PlansAreTopDownAndLevelCorrect) {
  const ForestLayout layout(5000, 4);
  const ZipfTable zipf(layout.pages(), 0.9);
  WorkloadSpec spec;
  ForestOpGen gen(spec, zipf, Rng(11));
  std::vector<lockmgr::PlanStep> plan;
  for (int i = 0; i < 500; ++i) {
    const ForestOp op = gen.next();
    ForestOpGen::plan_for(layout, op, plan);
    ASSERT_EQ(plan.size(), op.collection_scope ? 3u : 4u);
    EXPECT_EQ(plan[0].lock.value, layout.top_lock().value);
    // Every non-leaf step carries an intent mode; the leaf the op's mode.
    for (std::size_t s = 0; s + 1 < plan.size(); ++s)
      EXPECT_EQ(plan[s].mode, lockmgr::intent_for(op.leaf_mode));
    EXPECT_EQ(plan.back().mode, op.leaf_mode);
    if (!op.collection_scope)
      EXPECT_EQ(plan.back().lock.value, layout.page_lock(op.page).value);
  }
}

TEST(ForestOpGen, SameSeedSameStream) {
  const ForestLayout layout(1000, 3);
  const ZipfTable zipf(layout.pages(), 0.5);
  WorkloadSpec spec;
  ForestOpGen a(spec, zipf, Rng(99));
  ForestOpGen b(spec, zipf, Rng(99));
  for (int i = 0; i < 300; ++i) {
    const ForestOp oa = a.next();
    const ForestOp ob = b.next();
    EXPECT_EQ(oa.page, ob.page);
    EXPECT_EQ(oa.leaf_mode, ob.leaf_mode);
    EXPECT_EQ(oa.collection_scope, ob.collection_scope);
    EXPECT_EQ(oa.cs, ob.cs);
    EXPECT_EQ(a.next_idle(), b.next_idle());
  }
}
