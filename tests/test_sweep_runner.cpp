// SweepRunner: parallel execution must be invisible in the results —
// bit-identical ExperimentResults in submission order at any thread
// count — and the memo cache must collapse duplicate points without
// changing what callers see.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

workload::WorkloadSpec small_spec() {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 20;
  return spec;
}

/// The fig5 point set, shrunk for test time: all three protocols at the
/// standard node counts up to 40.
std::vector<SweepPoint> fig5_points() {
  const workload::WorkloadSpec spec = small_spec();
  std::vector<SweepPoint> points;
  for (const std::size_t n : sweep_node_counts(40)) {
    points.push_back(make_point(Protocol::kHls, n, spec));
    points.push_back(make_point(Protocol::kNaimiPure, n, spec));
    points.push_back(make_point(Protocol::kNaimiSameWork, n, spec));
  }
  return points;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.app_ops, b.app_ops);
  EXPECT_EQ(a.lock_requests, b.lock_requests);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.messages_by_kind.all(), b.messages_by_kind.all());
  ASSERT_EQ(a.latency_factor.count(), b.latency_factor.count());
  EXPECT_EQ(a.latency_factor.mean(), b.latency_factor.mean());
  EXPECT_EQ(a.latency_factor.percentile(0.95),
            b.latency_factor.percentile(0.95));
  ASSERT_EQ(a.latency_by_kind.size(), b.latency_by_kind.size());
  for (const auto& [kind, summary] : a.latency_by_kind) {
    const auto it = b.latency_by_kind.find(kind);
    ASSERT_NE(it, b.latency_by_kind.end()) << kind;
    EXPECT_EQ(summary.count(), it->second.count()) << kind;
    EXPECT_EQ(summary.mean(), it->second.mean()) << kind;
  }
}

TEST(SweepRunner, MatchesSerialPathAtEveryThreadCount) {
  const auto points = fig5_points();

  // Ground truth: the plain serial path every bench used before.
  std::vector<ExperimentResult> serial;
  for (const SweepPoint& p : points)
    serial.push_back(run_experiment(p.protocol, p.config));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);
    const auto parallel = runner.run(points);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " point=" + std::to_string(i));
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder) {
  // Mixed sizes so completion order differs from submission order.
  const workload::WorkloadSpec spec = small_spec();
  std::vector<SweepPoint> points;
  for (const std::size_t n : {40ul, 2ul, 20ul, 5ul, 10ul})
    points.push_back(make_point(Protocol::kHls, n, spec));

  SweepOptions opts;
  opts.threads = 4;
  SweepRunner runner(opts);
  const auto results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(results[i].nodes, points[i].config.nodes);
}

TEST(SweepRunner, MemoCacheHitsDuplicatePoints) {
  const workload::WorkloadSpec spec = small_spec();
  const SweepPoint a = make_point(Protocol::kHls, 10, spec);
  const SweepPoint b = make_point(Protocol::kNaimiPure, 10, spec);

  SweepOptions opts;
  opts.threads = 1;
  SweepRunner runner(opts);
  const auto first = runner.run({a, b, a});
  EXPECT_EQ(runner.memo_misses(), 2u);
  EXPECT_EQ(runner.memo_hits(), 1u);
  expect_identical(first[0], first[2]);

  // The cache persists across run() calls on the same runner.
  const auto second = runner.run({a, b});
  EXPECT_EQ(runner.memo_misses(), 2u);
  EXPECT_EQ(runner.memo_hits(), 3u);
  expect_identical(first[0], second[0]);
  expect_identical(first[1], second[1]);
}

TEST(SweepRunner, MemoDistinguishesEveryKeyComponent) {
  const workload::WorkloadSpec spec = small_spec();
  workload::WorkloadSpec other_seed = spec;
  other_seed.seed = 7;
  core::EngineOptions no_freeze;
  no_freeze.enable_freezing = false;

  SweepOptions opts;
  opts.threads = 2;
  SweepRunner runner(opts);
  const auto results = runner.run({
      make_point(Protocol::kHls, 10, spec),
      make_point(Protocol::kNaimiPure, 10, spec),   // protocol differs
      make_point(Protocol::kHls, 20, spec),         // nodes differ
      make_point(Protocol::kHls, 10, other_seed),   // spec differs
      make_point(Protocol::kHls, 10, spec, no_freeze),  // opts differ
  });
  EXPECT_EQ(runner.memo_misses(), 5u);
  EXPECT_EQ(runner.memo_hits(), 0u);
  // Sanity: the distinct configurations really produced distinct runs.
  EXPECT_NE(results[0].messages, results[2].messages);
  EXPECT_NE(results[0].messages, results[3].messages);
}

TEST(SweepRunner, MemoCanBeDisabled) {
  const SweepPoint a = make_point(Protocol::kHls, 10, small_spec());
  SweepOptions opts;
  opts.threads = 2;
  opts.memoize = false;
  SweepRunner runner(opts);
  const auto results = runner.run({a, a, a});
  EXPECT_EQ(runner.memo_misses(), 0u);
  EXPECT_EQ(runner.memo_hits(), 0u);
  expect_identical(results[0], results[1]);
  expect_identical(results[0], results[2]);
}

TEST(SweepRunner, RepeatReevaluatesAndDisablesMemo) {
  const SweepPoint a = make_point(Protocol::kHls, 5, small_spec());
  SweepOptions opts;
  opts.threads = 1;
  opts.repeat = 3;
  SweepRunner runner(opts);
  const auto repeated = runner.run({a, a});
  EXPECT_EQ(runner.memo_hits(), 0u);
  EXPECT_EQ(runner.memo_misses(), 0u);
  // Repetition must not perturb the (deterministic) result.
  const ExperimentResult once = run_experiment(a.protocol, a.config);
  expect_identical(once, repeated[0]);
  expect_identical(once, repeated[1]);
}

TEST(SweepRunner, ForEachIndexCoversAllIndicesOnce) {
  for (const std::size_t threads : {1u, 4u}) {
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);
    std::vector<int> counts(100, 0);
    runner.for_each_index(counts.size(),
                          [&](std::size_t i) { counts[i]++; });
    for (std::size_t i = 0; i < counts.size(); ++i)
      EXPECT_EQ(counts[i], 1) << "i=" << i << " threads=" << threads;
  }
}

TEST(SweepRunner, PropagatesExceptionsFromPoints) {
  workload::WorkloadSpec bad = small_spec();
  bad.p_entry_read = 2.0;  // mode mix no longer sums to 1 -> validate throws
  SweepOptions opts;
  opts.threads = 2;
  SweepRunner runner(opts);
  EXPECT_THROW(runner.run({make_point(Protocol::kHls, 4, bad)}),
               std::invalid_argument);
}

}  // namespace
