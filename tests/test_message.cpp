// Wire codec tests: every message kind round-trips; malformed frames are
// rejected; parameterized sweep across kinds and payload shapes.
#include <gtest/gtest.h>

#include "msg/message.hpp"

namespace hlock {
namespace {

Message base_message(MsgKind kind) {
  Message m;
  m.kind = kind;
  m.lock = LockId{12};
  m.from = NodeId{3};
  m.req.requester = NodeId{9};
  m.req.mode = Mode::kU;
  m.req.stamp = LamportStamp{777, NodeId{9}};
  m.req.upgrade = kind == MsgKind::kRequest;
  m.mode = Mode::kIW;
  m.frozen = ModeSet{Mode::kR, Mode::kU};
  m.sender_owned = Mode::kIR;
  m.grant_seq = 41;
  return m;
}

class CodecRoundTrip : public ::testing::TestWithParam<MsgKind> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  const Message m = base_message(GetParam());
  EXPECT_EQ(decode(encode(m)), m);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CodecRoundTrip,
    ::testing::Values(MsgKind::kRequest, MsgKind::kGrant, MsgKind::kToken,
                      MsgKind::kRelease, MsgKind::kFreeze,
                      MsgKind::kNaimiRequest, MsgKind::kNaimiToken),
    [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(Codec, TokenWithQueueRoundTrips) {
  Message m = base_message(MsgKind::kToken);
  for (std::uint32_t i = 0; i < 50; ++i) {
    m.queue.push_back(QueuedRequest{NodeId{i},
                                    kRealModes[i % 5],
                                    LamportStamp{i * 7, NodeId{i}},
                                    i % 11 == 0});
  }
  const Message out = decode(encode(m));
  EXPECT_EQ(out, m);
  EXPECT_EQ(out.queue.size(), 50u);
}

TEST(Codec, EmptyQueueAndDefaultsRoundTrip) {
  Message m;
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(Codec, RejectsTruncatedFrames) {
  const auto bytes = encode(base_message(MsgKind::kGrant));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(decode(bytes.data(), cut), DecodeError) << "cut " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(base_message(MsgKind::kRelease));
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(Codec, RejectsBadKind) {
  auto bytes = encode(base_message(MsgKind::kRequest));
  bytes[0] = 200;
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(Codec, RejectsBadModeByte) {
  const Message m = base_message(MsgKind::kGrant);
  auto bytes = encode(m);
  // The mode field sits right after the fixed request block; corrupt every
  // byte and require: either decode fails, or the message re-encodes to
  // the same bytes (i.e. the corruption was benign/canonical).
  int rejected = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto copy = bytes;
    copy[i] = 0xfe;
    try {
      const Message out = decode(copy);
      EXPECT_EQ(encode(out), copy) << "byte " << i;
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(MsgKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(MsgKind::kRequest), "request");
  EXPECT_STREQ(to_string(MsgKind::kGrant), "grant");
  EXPECT_STREQ(to_string(MsgKind::kToken), "token");
  EXPECT_STREQ(to_string(MsgKind::kRelease), "release");
  EXPECT_STREQ(to_string(MsgKind::kFreeze), "freeze");
  EXPECT_STREQ(to_string(MsgKind::kNaimiRequest), "naimi_request");
  EXPECT_STREQ(to_string(MsgKind::kNaimiToken), "naimi_token");
}

}  // namespace
}  // namespace hlock
