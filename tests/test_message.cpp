// Wire codec tests: every message kind round-trips; malformed frames are
// rejected; parameterized sweep across kinds and payload shapes.
#include <gtest/gtest.h>

#include <random>

#include "msg/message.hpp"

namespace hlock {
namespace {

Message base_message(MsgKind kind) {
  Message m;
  m.kind = kind;
  m.lock = LockId{12};
  m.from = NodeId{3};
  m.req.requester = NodeId{9};
  m.req.mode = Mode::kU;
  m.req.stamp = LamportStamp{777, NodeId{9}};
  m.req.upgrade = kind == MsgKind::kRequest;
  m.mode = Mode::kIW;
  m.frozen = ModeSet{Mode::kR, Mode::kU};
  m.sender_owned = Mode::kIR;
  m.grant_seq = 41;
  return m;
}

class CodecRoundTrip : public ::testing::TestWithParam<MsgKind> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  const Message m = base_message(GetParam());
  EXPECT_EQ(decode(encode(m)), m);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CodecRoundTrip,
    ::testing::Values(MsgKind::kRequest, MsgKind::kGrant, MsgKind::kToken,
                      MsgKind::kRelease, MsgKind::kFreeze,
                      MsgKind::kNaimiRequest, MsgKind::kNaimiToken),
    [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(Codec, TokenWithQueueRoundTrips) {
  Message m = base_message(MsgKind::kToken);
  for (std::uint32_t i = 0; i < 50; ++i) {
    m.queue.push_back(QueuedRequest{NodeId{i},
                                    kRealModes[i % 5],
                                    LamportStamp{i * 7, NodeId{i}},
                                    i % 11 == 0});
  }
  const Message out = decode(encode(m));
  EXPECT_EQ(out, m);
  EXPECT_EQ(out.queue.size(), 50u);
}

TEST(Codec, EmptyQueueAndDefaultsRoundTrip) {
  Message m;
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(Codec, RejectsTruncatedFrames) {
  const auto bytes = encode(base_message(MsgKind::kGrant));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(decode(bytes.data(), cut), DecodeError) << "cut " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(base_message(MsgKind::kRelease));
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(Codec, RejectsBadKind) {
  auto bytes = encode(base_message(MsgKind::kRequest));
  bytes[0] = 200;
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(Codec, RejectsBadModeByte) {
  const Message m = base_message(MsgKind::kGrant);
  auto bytes = encode(m);
  // The mode field sits right after the fixed request block; corrupt every
  // byte and require: either decode fails, or the message re-encodes to
  // the same bytes (i.e. the corruption was benign/canonical).
  int rejected = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto copy = bytes;
    copy[i] = 0xfe;
    try {
      const Message out = decode(copy);
      EXPECT_EQ(encode(out), copy) << "byte " << i;
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// encoded_size() is the arithmetic that SimNetwork uses for O(1) wire
// accounting; it must agree with the codec byte-for-byte on every message
// shape, or the simulated byte totals silently drift from the real wire.
TEST(EncodedSize, MatchesCodecOnRandomizedMessages) {
  std::mt19937_64 rng(0xe5c0dedULL);
  std::uniform_int_distribution<std::uint32_t> node(0, 1u << 20);
  std::uniform_int_distribution<std::uint64_t> u64(0, ~0ULL >> 8);
  std::uniform_int_distribution<std::size_t> kind(0, kMsgKindCount - 1);
  std::uniform_int_distribution<std::size_t> mode(0, kModeCount - 1);
  std::uniform_int_distribution<std::size_t> queue_len(0, 100);
  for (int trial = 0; trial < 2000; ++trial) {
    Message m;
    m.kind = static_cast<MsgKind>(kind(rng));
    m.lock = LockId{node(rng)};
    m.from = NodeId{node(rng)};
    m.req.requester = NodeId{node(rng)};
    m.req.mode = static_cast<Mode>(mode(rng));
    m.req.stamp = LamportStamp{u64(rng), NodeId{node(rng)}};
    m.req.upgrade = (trial & 1) != 0;
    m.req.priority = static_cast<std::uint8_t>(node(rng));
    m.mode = static_cast<Mode>(mode(rng));
    m.sender_owned = static_cast<Mode>(mode(rng));
    m.grant_seq = u64(rng);
    const std::size_t len = queue_len(rng);
    for (std::size_t i = 0; i < len; ++i) {
      m.queue.push_back(QueuedRequest{NodeId{node(rng)},
                                      static_cast<Mode>(mode(rng)),
                                      LamportStamp{u64(rng), NodeId{node(rng)}},
                                      (i & 1) != 0});
    }
    ASSERT_EQ(encoded_size(m), encode(m).size())
        << "trial " << trial << " kind " << static_cast<int>(m.kind)
        << " queue " << len;
  }
}

TEST(MsgKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(MsgKind::kRequest), "request");
  EXPECT_STREQ(to_string(MsgKind::kGrant), "grant");
  EXPECT_STREQ(to_string(MsgKind::kToken), "token");
  EXPECT_STREQ(to_string(MsgKind::kRelease), "release");
  EXPECT_STREQ(to_string(MsgKind::kFreeze), "freeze");
  EXPECT_STREQ(to_string(MsgKind::kNaimiRequest), "naimi_request");
  EXPECT_STREQ(to_string(MsgKind::kNaimiToken), "naimi_token");
}

}  // namespace
}  // namespace hlock
