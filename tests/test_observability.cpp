// TraceRecorder and JSON export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/json.hpp"
#include "harness/trace.hpp"

namespace hlock::harness {
namespace {

TEST(TraceRecorder, RecordsSendsDeliveriesAndOps) {
  ClusterConfig config;
  config.nodes = 4;
  config.spec.ops_per_node = 8;
  HlsCluster cluster(config);
  TraceRecorder trace;
  trace.attach(cluster);
  cluster.run();

  const auto r = cluster.result();
  EXPECT_GT(trace.total_recorded(), 0u);
  std::uint64_t sends = 0, delivers = 0, ops = 0;
  for (const TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case TraceEvent::Kind::kSend: ++sends; break;
      case TraceEvent::Kind::kDeliver: ++delivers; break;
      case TraceEvent::Kind::kOpDone: ++ops; break;
      default: break;
    }
  }
  EXPECT_EQ(sends, r.messages);
  EXPECT_EQ(delivers, r.messages);  // lossless network
  EXPECT_EQ(ops, r.app_ops);
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].at, trace.events()[i].at);
  }
}

TEST(TraceRecorder, RecordsDropsOnLossyNetwork) {
  ClusterConfig config;
  config.nodes = 6;
  config.spec.ops_per_node = 10;
  config.loss_rate = 0.10;
  HlsCluster cluster(config);
  TraceRecorder trace;
  trace.attach(cluster);
  cluster.run();

  std::uint64_t drops = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kDrop) ++drops;
  }
  EXPECT_EQ(drops, cluster.network().messages_dropped());
  EXPECT_GT(drops, 0u);
}

TEST(TraceRecorder, FiltersByLockAndNode) {
  ClusterConfig config;
  config.nodes = 4;
  config.spec.ops_per_node = 10;
  HlsCluster cluster(config);
  TraceRecorder trace;
  trace.attach(cluster);
  cluster.run();

  const auto table_events = trace.for_lock(LockId{0});
  EXPECT_FALSE(table_events.empty());
  for (const TraceEvent& ev : table_events) EXPECT_EQ(ev.lock, LockId{0});

  const auto node1 = trace.for_node(NodeId{1});
  EXPECT_FALSE(node1.empty());
  for (const TraceEvent& ev : node1) {
    EXPECT_TRUE(ev.from == NodeId{1} || ev.to == NodeId{1} ||
                ev.requester == NodeId{1});
  }
}

TEST(TraceRecorder, BoundedCapacity) {
  TraceRecorder trace(10);
  for (int i = 0; i < 100; ++i) {
    TraceEvent ev;
    ev.at = i;
    trace.record(ev);
  }
  EXPECT_EQ(trace.events().size(), 10u);
  EXPECT_EQ(trace.total_recorded(), 100u);
  EXPECT_EQ(trace.events().front().at, 90);
}

TEST(TraceRecorder, RendersTimeline) {
  ClusterConfig config;
  config.nodes = 3;
  config.spec.ops_per_node = 5;
  HlsCluster cluster(config);
  TraceRecorder trace;
  trace.attach(cluster);
  cluster.run();
  std::ostringstream os;
  trace.render(os, 20);
  const std::string out = os.str();
  EXPECT_FALSE(out.empty());
  EXPECT_NE(out.find("->"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(JsonExport, ContainsAllHeadlineFields) {
  ClusterConfig config;
  config.nodes = 5;
  config.spec.ops_per_node = 10;
  HlsCluster cluster(config);
  cluster.run();
  const std::string json = to_json(cluster.result());
  for (const char* key :
       {"\"nodes\":5", "\"app_ops\":50", "\"msgs_per_lock_request\":",
        "\"messages_by_kind\":", "\"request\":", "\"latency_factor\":",
        "\"p95\":", "\"latency_by_kind\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(JsonExport, ArrayOfResults) {
  std::vector<ExperimentResult> results(2);
  results[0].nodes = 1;
  results[1].nodes = 2;
  std::ostringstream os;
  write_json_array(os, results);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"nodes\":1"), std::string::npos);
  EXPECT_NE(out.find("\"nodes\":2"), std::string::npos);
}

TEST(JsonExport, IsWellBalanced) {
  ClusterConfig config;
  config.nodes = 3;
  config.spec.ops_per_node = 5;
  HlsCluster cluster(config);
  cluster.run();
  const std::string json = to_json(cluster.result());
  int braces = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    EXPECT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace hlock::harness
