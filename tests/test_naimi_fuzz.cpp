// Interleaving fuzzer for the Naimi baseline: random requests/releases
// against random channel interleavings; exactly one node in the critical
// section at any delivered point; all requests eventually served.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "naimi/naimi_engine.hpp"
#include "test_util.hpp"

namespace hlock::naimi {
namespace {

class NaimiFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NaimiFuzz, SingleHolderUnderRandomInterleavings) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr std::size_t kNodes = 6;

  testing::TestBus bus;
  std::vector<std::unique_ptr<NaimiEngine>> engines;
  std::vector<std::optional<RequestId>> in_cs(kNodes);
  std::uint64_t issued = 0, granted = 0;

  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    NaimiCallbacks cbs;
    cbs.on_acquired = [&, i](RequestId rid) {
      in_cs[i] = rid;
      ++granted;
    };
    engines.push_back(std::make_unique<NaimiEngine>(LockId{0}, id, NodeId{0},
                                                    bus.port(id),
                                                    std::move(cbs)));
    NaimiEngine* raw = engines.back().get();
    bus.register_handler(id, [raw](const Message& m) { raw->handle(m); });
  }

  auto check_single_holder = [&] {
    int holders = 0;
    for (const auto& cs : in_cs) holders += cs.has_value() ? 1 : 0;
    ASSERT_LE(holders, 1) << "seed " << seed;
  };

  for (int step = 0; step < 2000; ++step) {
    const std::size_t i = rng.next_below(kNodes);
    const double dice = rng.next_double();
    if (dice < 0.40) {
      if (engines[i]->backlog_size() < 3) {
        (void)engines[i]->request();
        ++issued;
      }
    } else if (dice < 0.65) {
      if (in_cs[i]) {
        // Reset BEFORE releasing: release() pumps the backlog and may
        // synchronously enter the next critical section (which re-sets
        // the slot); wiping afterwards would lose that hold.
        const RequestId rid = *in_cs[i];
        in_cs[i].reset();
        engines[i]->release(rid);
      }
    } else {
      for (std::size_t k = rng.next_below(4); k-- > 0;) {
        if (!bus.deliver_random(rng)) break;
        check_single_holder();
      }
    }
  }

  // Drain.
  for (int round = 0; round < 20000; ++round) {
    while (bus.deliver_random(rng)) check_single_holder();
    bool any = false;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (in_cs[i]) {
        const RequestId rid = *in_cs[i];
        in_cs[i].reset();
        engines[i]->release(rid);
        any = true;
      }
    }
    bool quiet = bus.pending() == 0 && !any;
    for (std::size_t i = 0; i < kNodes && quiet; ++i) {
      quiet = !in_cs[i] && engines[i]->backlog_size() == 0 &&
              !engines[i]->requesting();
    }
    if (quiet) break;
  }

  EXPECT_EQ(granted, issued) << "seed " << seed;
  std::size_t tokens = 0;
  for (const auto& e : engines) tokens += e->has_token() ? 1 : 0;
  EXPECT_EQ(tokens, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaimiFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hlock::naimi
