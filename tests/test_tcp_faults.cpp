// Fault-injection tests for the live TCP transport: startup races, refused
// dials, malformed frames, mid-frame resets, half-open peers, and
// connection churn under load. The invariant throughout: the process never
// dies, and no accepted send() is silently dropped while the process lives.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/cluster.hpp"
#include "net/framing.hpp"
#include "net/tcp_node.hpp"

namespace hlock::net {
namespace {

TcpConfig fast_cfg() {
  TcpConfig c;
  c.reconnect_min = msec(5);
  c.reconnect_max = msec(100);
  c.heartbeat_interval = msec(50);
  c.idle_timeout = msec(400);
  return c;
}

Message sample_message(std::uint32_t lock) {
  Message m;
  m.kind = MsgKind::kRequest;
  m.lock = LockId{lock};
  m.req.requester = NodeId{7};
  m.req.mode = Mode::kIW;
  m.req.stamp = LamportStamp{42, NodeId{7}};
  return m;
}

bool spin_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Grab an ephemeral port the kernel just handed out, then release it so a
/// node can bind it shortly after (standard late-starter trick; the race
/// window is tiny on loopback).
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A hand-driven peer: a plain blocking socket this test uses to speak (or
/// deliberately mis-speak) the wire protocol at a TcpNode.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }

  void send_prefix(const std::vector<std::uint8_t>& bytes, std::size_t n) {
    send_bytes({bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(n)});
  }

  /// Close with an RST instead of a FIN.
  void reset() {
    const linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd_);
    fd_ = -1;
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Drain inbound bytes (the node's hello/pings) until FIN or timeout;
  /// true if the peer closed the connection.
  bool closed_by_peer(int timeout_ms = 3000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::uint8_t buf[4096];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EINTR) return true;
    }
    return false;
  }

 private:
  int fd_{-1};
};

/// Records per-(sender, seq) delivery counts so tests can assert both "no
/// message lost" and "no message duplicated" across connection churn.
struct DeliveryLog {
  std::mutex mu;
  std::map<std::uint64_t, int> counts;
  std::size_t total{0};

  std::function<void(const Message&)> handler() {
    return [this](const Message& m) {
      const std::lock_guard<std::mutex> g(mu);
      ++counts[m.lock.value];
      ++total;
    };
  }
  std::size_t size() {
    const std::lock_guard<std::mutex> g(mu);
    return total;
  }
  bool exactly_once(std::size_t expected) {
    const std::lock_guard<std::mutex> g(mu);
    if (counts.size() != expected || total != expected) return false;
    for (const auto& [key, n] : counts) {
      if (n != 1) return false;
    }
    return true;
  }
};

// --- satellite 1: send() before the peer listens must retry, not crash ---

TEST(TcpFaults, SendBeforePeerListensRetriesThenDelivers) {
  const std::uint16_t port0 = reserve_port();
  TcpNode a(NodeId{1}, 0, fast_cfg());
  a.set_peers({{NodeId{0}, PeerAddress{"127.0.0.1", port0}}});
  std::thread ta([&] { a.loop().run(); });

  // Nobody listens on port0 yet: the old transport crashed the loop thread
  // here (blocking connect() -> uncaught std::system_error).
  a.send(NodeId{0}, sample_message(1));
  ASSERT_TRUE(
      spin_until([&] { return a.stats().connect_failures >= 2; }, 3000))
      << "dial should be refused and retried with backoff";

  // The late starter comes up; the parked send must arrive on its own.
  TcpNode b(NodeId{0}, port0, fast_cfg());
  DeliveryLog log;
  b.set_handler(log.handler());
  b.set_peers({{NodeId{1}, PeerAddress{"127.0.0.1", a.listen_port()}}});
  std::thread tb([&] { b.loop().run(); });

  EXPECT_TRUE(spin_until([&] { return log.size() == 1; }))
      << "parked send was not delivered after the peer came up";
  EXPECT_GE(a.stats().dials, 2u);
  EXPECT_EQ(a.stats().decode_errors, 0u);

  a.loop().stop();
  b.loop().stop();
  ta.join();
  tb.join();
}

// --- garbage bytes are contained to the offending connection ---

TEST(TcpFaults, GarbageBytesOnListenSocketAreContained) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  std::thread t([&] { n.loop().run(); });

  RawClient garbage(n.listen_port());
  garbage.send_bytes(std::vector<std::uint8_t>(64, 0xFF));
  ASSERT_TRUE(spin_until([&] { return n.stats().decode_errors >= 1; }))
      << "garbage must surface as a decode error, not a crash";
  EXPECT_TRUE(garbage.closed_by_peer())
      << "the offending connection must be dropped";

  // The node still accepts and serves a well-behaved peer.
  RawClient good(n.listen_port());
  good.send_bytes(hello_frame(NodeId{7}));
  good.send_bytes(frame(sample_message(42), 1));
  EXPECT_TRUE(spin_until([&] { return n.delivered() == 1; }));
  EXPECT_EQ(n.connected_peers(), 1u);

  n.loop().stop();
  t.join();
}

// --- satellite 4 tie-in: decoder failure closes the conn, peer recovers --

TEST(TcpFaults, MalformedFrameAfterHelloClosesConnAndPeerRecovers) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  std::thread t([&] { n.loop().run(); });

  {
    RawClient peer(n.listen_port());
    peer.send_bytes(hello_frame(NodeId{5}));
    ASSERT_TRUE(spin_until([&] { return n.connected_peers() == 1; }));
    peer.send_bytes(std::vector<std::uint8_t>(8, 0xFF));
    ASSERT_TRUE(spin_until([&] { return n.stats().decode_errors >= 1; }));
    ASSERT_TRUE(spin_until([&] { return n.connected_peers() == 0; }));
  }

  // Same peer id reconnects: the peer count must recover.
  RawClient again(n.listen_port());
  again.send_bytes(hello_frame(NodeId{5}));
  again.send_bytes(frame(sample_message(3), 1));
  EXPECT_TRUE(spin_until([&] { return n.connected_peers() == 1; }));
  EXPECT_TRUE(spin_until([&] { return n.delivered() == 1; }));
  EXPECT_GE(n.stats().reconnects, 1u);

  n.loop().stop();
  t.join();
}

// --- a mid-frame RST must not kill the node or deliver a partial frame --

TEST(TcpFaults, MidFrameResetIsContained) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  std::thread t([&] { n.loop().run(); });

  RawClient peer(n.listen_port());
  peer.send_bytes(hello_frame(NodeId{9}));
  ASSERT_TRUE(spin_until([&] { return n.connected_peers() == 1; }));
  const auto full = frame(sample_message(5), 1);
  peer.send_prefix(full, full.size() / 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  peer.reset();

  EXPECT_TRUE(spin_until([&] { return n.connected_peers() == 0; }));
  EXPECT_EQ(n.delivered(), 0u) << "a partial frame must never be delivered";

  // Node is still alive and serving.
  RawClient good(n.listen_port());
  good.send_bytes(hello_frame(NodeId{9}));
  good.send_bytes(frame(sample_message(6), 1));
  EXPECT_TRUE(spin_until([&] { return n.delivered() == 1; }));

  n.loop().stop();
  t.join();
}

// --- satellite 3: shutdown(SHUT_WR) must lead to close_conn, always -----

TEST(TcpFaults, ShutdownWrIsReapedNotLeaked) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  std::thread t([&] { n.loop().run(); });

  RawClient peer(n.listen_port());
  peer.send_bytes(hello_frame(NodeId{4}));
  ASSERT_TRUE(spin_until([&] { return n.connected_peers() == 1; }));
  peer.shutdown_write();

  // The node must observe the FIN and close rather than keeping a dead
  // watch forever (the old POLLHUP/EAGAIN path could leak the conn).
  EXPECT_TRUE(spin_until([&] { return n.connected_peers() == 0; }));
  EXPECT_TRUE(peer.closed_by_peer()) << "node should FIN back";

  n.loop().stop();
  t.join();
}

// --- half-open peers (silent, no FIN) are detected by the idle timeout --

TEST(TcpFaults, HalfOpenPeerIsReapedByIdleTimeout) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  std::thread t([&] { n.loop().run(); });

  RawClient silent(n.listen_port());
  silent.send_bytes(hello_frame(NodeId{3}));
  ASSERT_TRUE(spin_until([&] { return n.connected_peers() == 1; }));
  // The client never answers pings; last_recv stalls past idle_timeout.
  EXPECT_TRUE(spin_until([&] { return n.stats().idle_closes >= 1; }, 3000));
  EXPECT_EQ(n.connected_peers(), 0u);
  EXPECT_GE(n.stats().heartbeats_sent, 1u);

  n.loop().stop();
  t.join();
}

// --- satellite 2: a real lock with the old reserved hello id flows ------

TEST(TcpFaults, LockIdThatMatchedLegacyHelloSentinelIsDelivered) {
  InProcessCluster cluster(2, fast_cfg());
  DeliveryLog log;
  cluster.node(1).set_handler(log.handler());
  // 0xFFFFFFFE was the reserved hello lock id when the handshake rode on
  // MsgKind::kRequest; with control-frame hellos it is just another lock.
  cluster.node(0).send(NodeId{1}, sample_message(0xFFFFFFFE));
  ASSERT_TRUE(spin_until([&] { return log.size() == 1; }));
  {
    const std::lock_guard<std::mutex> g(log.mu);
    EXPECT_EQ(log.counts.count(0xFFFFFFFE), 1u)
        << "message swallowed as a handshake";
  }
  cluster.stop();
}

// --- connection churn under load: nothing lost, nothing duplicated ------

TEST(TcpFaults, KilledConnectionsRequeueUnsentFramesExactlyOnce) {
  InProcessCluster cluster(2, fast_cfg());
  DeliveryLog log;
  cluster.node(0).set_handler(log.handler());

  // Stall the receiver's loop so the sender's outbox backs up and the
  // kills below land while frames are queued (and likely mid-frame).
  cluster.node(0).loop().post(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(500)); });

  // ~380 KB per frame: far more than the kernel will buffer with a stalled
  // receiver, so the first kill is guaranteed to catch queued frames.
  constexpr std::uint32_t kCount = 60;
  Message big = sample_message(0);
  big.queue.resize(20000);
  std::uint32_t sent = 0;
  for (std::uint64_t batch = 0; batch < 3; ++batch) {
    for (std::uint32_t i = 0; i < kCount / 3; ++i) {
      big.lock = LockId{sent++};
      cluster.node(1).send(NodeId{0}, big);
    }
    // Kills only bite once the connection is up; wait for (re)establishment
    // before each one so none degenerates into a no-op.
    ASSERT_TRUE(spin_until(
        [&] { return cluster.node(1).stats().connects >= batch + 1; }))
        << "connection " << batch + 1 << " never established";
    cluster.node(1).close_peer_connection(NodeId{0});
  }
  // Mid-delivery churn: once frames start landing, kill whatever
  // connection is carrying them and let the window re-transmit.
  ASSERT_TRUE(spin_until([&] { return log.size() >= kCount / 3; }, 10000));
  cluster.node(1).close_peer_connection(NodeId{0});

  EXPECT_TRUE(spin_until([&] { return log.size() >= kCount; }, 10000))
      << "lost sends: got " << log.size() << " of " << kCount;
  EXPECT_TRUE(log.exactly_once(kCount))
      << "sends were lost or duplicated across reconnects";

  // The kills above may all land on connections the stalled receiver never
  // completed a handshake on, which reconnects (hello-gated) does not
  // count. Wait for the acks to drain — acks follow the hello on the same
  // stream, so unacked()==0 proves the live connection greeted — then kill
  // that one: its successor must re-greet, and that is a reconnect.
  ASSERT_TRUE(spin_until([&] { return cluster.node(1).unacked() == 0; }))
      << "acks never drained after full delivery";
  cluster.node(1).close_peer_connection(NodeId{0});
  EXPECT_TRUE(spin_until(
      [&] { return cluster.node(1).stats().reconnects >= 1; }, 10000))
      << "killed greeted connection never re-established";
  const TcpStats s = cluster.node(1).stats();
  EXPECT_GE(s.requeued_frames, 1u)
      << "kills should have caught frames in the outbox";
  cluster.stop();
}

// --- the acceptance scenario: 4-node mesh, late starter, garbage, kills --

TEST(TcpFaults, FourNodeMeshSurvivesLateStartGarbageAndResets) {
  const TcpConfig cfg = fast_cfg();
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kPerPair = 50;
  const std::uint16_t late_port = reserve_port();  // node 0 starts late

  std::map<NodeId, PeerAddress> book;
  std::vector<std::unique_ptr<TcpNode>> nodes(kNodes);
  std::vector<std::thread> threads;
  std::vector<DeliveryLog> logs(kNodes);

  for (std::uint32_t i = 1; i < kNodes; ++i) {
    nodes[i] = std::make_unique<TcpNode>(NodeId{i}, 0, cfg);
    book[NodeId{i}] = PeerAddress{"127.0.0.1", nodes[i]->listen_port()};
  }
  book[NodeId{0}] = PeerAddress{"127.0.0.1", late_port};
  for (std::uint32_t i = 1; i < kNodes; ++i) {
    auto peers = book;
    peers.erase(NodeId{i});
    nodes[i]->set_handler(logs[i].handler());
    nodes[i]->set_peers(peers);
    threads.emplace_back([n = nodes[i].get()] { n->loop().run(); });
  }

  // Early nodes start their workload immediately; sends to node 0 are
  // refused at dial time and must park + retry.
  auto send_burst = [&](std::uint32_t from) {
    for (std::uint32_t to = 0; to < kNodes; ++to) {
      if (to == from) continue;
      for (std::uint32_t seq = 0; seq < kPerPair; ++seq) {
        nodes[from]->send(NodeId{to},
                          sample_message(from * 100000 + to * 1000 + seq));
      }
    }
  };
  for (std::uint32_t i = 1; i < kNodes; ++i) send_burst(i);

  // One peer sends 64 garbage bytes at node 1 mid-run.
  RawClient garbage(nodes[1]->listen_port());
  garbage.send_bytes(std::vector<std::uint8_t>(64, 0xFF));

  // Kill two live connections mid-traffic; the transport must salvage any
  // queued frames and reconnect. Wait for the early mesh to form so the
  // kills hit established connections.
  ASSERT_TRUE(spin_until([&] {
    return nodes[2]->connected_peers() >= 2 && nodes[3]->connected_peers() >= 2;
  }));
  nodes[3]->close_peer_connection(NodeId{2});
  nodes[2]->close_peer_connection(NodeId{1});

  // The late starter appears ~2s of simulated tardiness compressed to
  // 300ms (the backoff schedule is scaled down by fast_cfg the same way).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_GE(nodes[1]->stats().connect_failures +
                nodes[2]->stats().connect_failures +
                nodes[3]->stats().connect_failures,
            1u)
      << "dials at the late starter should have been refused";
  nodes[0] = std::make_unique<TcpNode>(NodeId{0}, late_port, cfg);
  {
    auto peers = book;
    peers.erase(NodeId{0});
    nodes[0]->set_handler(logs[0].handler());
    nodes[0]->set_peers(peers);
  }
  threads.emplace_back([n = nodes[0].get()] { n->loop().run(); });
  send_burst(0);

  const std::size_t expected = (kNodes - 1) * kPerPair;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(spin_until([&] { return logs[i].size() >= expected; }, 15000))
        << "node " << i << " got " << logs[i].size() << " of " << expected;
    EXPECT_TRUE(logs[i].exactly_once(expected))
        << "node " << i << ": sends lost or duplicated";
  }
  EXPECT_GE(nodes[1]->stats().decode_errors, 1u);
  std::uint64_t reconnects = 0;
  for (const auto& n : nodes) reconnects += n->stats().reconnects;
  EXPECT_GE(reconnects, 1u);

  for (auto& n : nodes) n->loop().stop();
  for (auto& t : threads) t.join();
}

// --- send-window backpressure -------------------------------------------

TEST(TcpFaults, SendWindowCapRejectsThenDrainsOverLiveSocket) {
  TcpConfig cfg = fast_cfg();
  cfg.send_window_limit = 2;
  const std::uint16_t peer_port = reserve_port();

  TcpNode sender(NodeId{1}, 0, cfg);  // id 1 dials id 0
  std::thread sender_loop([&] { sender.loop().run(); });
  sender.set_peers({{NodeId{0}, {"127.0.0.1", peer_port}}});

  // The peer is down: nothing can be acked, so the third send must hit
  // the cap and be rejected without joining the window.
  EXPECT_TRUE(sender.send(NodeId{0}, sample_message(1)));
  EXPECT_TRUE(sender.send(NodeId{0}, sample_message(2)));
  EXPECT_FALSE(sender.send(NodeId{0}, sample_message(3)));
  EXPECT_FALSE(sender.send(NodeId{0}, sample_message(4)));
  EXPECT_EQ(sender.stats().sends_rejected, 2u);
  EXPECT_TRUE(spin_until([&] { return sender.unacked() == 2; }));

  // Bring the peer up on the reserved port: the backoff re-dial connects,
  // the two accepted frames deliver exactly once, their acks drain the
  // window, and send() admits traffic again.
  std::mutex mu;
  std::vector<std::uint32_t> got;
  TcpNode receiver(NodeId{0}, peer_port, fast_cfg());
  receiver.set_handler([&](const Message& m) {
    std::lock_guard<std::mutex> lk(mu);
    got.push_back(m.lock.value);
  });
  std::thread receiver_loop([&] { receiver.loop().run(); });

  EXPECT_TRUE(spin_until([&] { return sender.unacked() == 0; }, 10000));
  EXPECT_TRUE(sender.send(NodeId{0}, sample_message(5)));
  EXPECT_TRUE(spin_until([&] {
    std::lock_guard<std::mutex> lk(mu);
    return got.size() == 3;
  }));
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 5}))
        << "rejected sends must not surface; accepted ones exactly once";
  }

  sender.loop().stop();
  receiver.loop().stop();
  sender_loop.join();
  receiver_loop.join();
}

TEST(TcpFaults, SendWindowUnlimitedByDefault) {
  TcpNode node(NodeId{1}, 0, fast_cfg());
  std::thread loop([&] { node.loop().run(); });
  node.set_peers({{NodeId{0}, {"127.0.0.1", reserve_port()}}});
  for (std::uint32_t i = 0; i < 64; ++i)
    EXPECT_TRUE(node.send(NodeId{0}, sample_message(i)));
  EXPECT_EQ(node.stats().sends_rejected, 0u);
  node.loop().stop();
  loop.join();
}

// --- stats plumbing -----------------------------------------------------

TEST(TcpFaults, StatsLineMentionsEveryCounter) {
  TcpStats s;
  s.dials = 3;
  s.requeued_frames = 7;
  const std::string line = to_string(s);
  for (const char* key :
       {"dials=", "connect_failures=", "connects=", "accepts=", "reconnects=",
        "frames_out=", "frames_in=", "bytes_out=", "bytes_in=",
        "decode_errors=", "requeued_frames=", "heartbeats_sent=",
        "idle_closes=", "sends_rejected=", "outbox_hw=", "pending_hw="}) {
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
  EXPECT_NE(line.find("dials=3"), std::string::npos);
  EXPECT_NE(line.find("requeued_frames=7"), std::string::npos);
}

}  // namespace
}  // namespace hlock::net
