// Dynamic-membership tests: graceful leave of plain members, copyset
// members with children, and token holders; cascading departures; stray
// traffic through tombstones.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

struct Net {
  HlsEngine& add(char name, char root, char parent = '\0') {
    EngineCallbacks cbs;
    cbs.on_acquired = [this, name](RequestId id, Mode mode) {
      acquired[name].emplace_back(id, mode);
    };
    auto engine = std::make_unique<HlsEngine>(
        LockId{0}, id_of(name), id_of(root), bus.port(id_of(name)),
        EngineOptions{}, std::move(cbs),
        parent == '\0' ? NodeId::invalid() : id_of(parent));
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
    return *raw;
  }
  HlsEngine& operator[](char c) { return *engines.at(c); }
  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::map<char, std::vector<std::pair<RequestId, Mode>>> acquired;
};

TEST(Membership, IdleNonOwnerLeavesSilently) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net['B'].leave();
  EXPECT_TRUE(net['B'].departed());
  EXPECT_EQ(net.bus.total_sent(), 0u);  // nothing to hand over
  // The remaining node still works.
  const RequestId ra = net['A'].request_lock(Mode::kW);
  net['A'].unlock(ra);
}

TEST(Membership, LeaveWithHoldsOrPendingIsRefused) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  EXPECT_THROW(net['A'].leave(id_of('B')), std::logic_error);
  net['A'].unlock(ra);
  (void)net['B'].request_lock(Mode::kR);  // pending, messages undelivered
  EXPECT_THROW(net['B'].leave(), std::logic_error);
  net.pump();
}

TEST(Membership, TokenHolderHandsOff) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net['A'].leave(id_of('B'));
  net.pump();
  EXPECT_TRUE(net['A'].departed());
  EXPECT_TRUE(net['B'].is_token_node());
  // B can now self-acquire everything silently.
  const auto id = net['B'].try_request_lock(Mode::kW);
  ASSERT_TRUE(id.has_value());
  net['B'].unlock(*id);
}

TEST(Membership, TombstoneRoutesStaleHints) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  // Serve C once so the tree has history, then A (whoever holds the
  // token) departs and stale hints keep routing through its tombstone.
  const RequestId ra = net['A'].request_lock(Mode::kW);
  (void)net['C'].request_lock(Mode::kR);  // queued at root A
  net.pump();
  ASSERT_EQ(net['A'].queue().size(), 1u);
  net['A'].unlock(ra);
  net.pump();
  // The release transferred the token to C (tokenable(∅, R)).
  ASSERT_TRUE(net['C'].is_token_node());
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
  net['C'].leave(id_of('B'));
  net.pump();
  ASSERT_TRUE(net['B'].is_token_node());
  // A's parent hint points at C's tombstone: its request must route
  // through and be served by B.
  (void)net['A'].request_lock(Mode::kW);
  net.pump();
  EXPECT_EQ(net.acquired['A'].size(), 2u);
  EXPECT_EQ(net.acquired['A'][1].second, Mode::kW);
  net['A'].unlock(net.acquired['A'][1].first);
}

TEST(Membership, CopysetMemberLeavesChildrenReattach) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId rb = net['B'].request_lock(Mode::kR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);  // granted by B
  net.pump();
  ASSERT_EQ(net['B'].children().count(id_of('C')), 1u);

  net['B'].unlock(rb);
  net.pump();
  net['B'].leave();
  net.pump();
  EXPECT_TRUE(net['B'].departed());
  // C must now be A's child with its authoritative mode.
  ASSERT_EQ(net['A'].children().count(id_of('C')), 1u);
  EXPECT_EQ(net['A'].children().at(id_of('C')), Mode::kIR);
  EXPECT_EQ(net['C'].parent(), id_of('A'));
  // And releases flow correctly to the new parent.
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
  EXPECT_EQ(net['A'].children().count(id_of('C')), 0u);
  net['A'].unlock(ra);
}

TEST(Membership, WriterBlockedByLeaverSubtreeStillProceeds) {
  // A(root, holds R) with child B(owns IR via child C). B leaves; C's IR
  // must keep blocking a W until C releases — no phantom loss or
  // double-count.
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', 'B');
  net.add('D', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId rb = net['B'].request_lock(Mode::kIR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);
  net.pump();
  net['B'].unlock(rb);
  net.pump();
  net['B'].leave();
  net.pump();

  (void)net['D'].request_lock(Mode::kW);
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 0u);  // blocked by A's R and C's IR
  net['A'].unlock(ra);
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 0u);  // still blocked by C
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
  ASSERT_EQ(net.acquired['D'].size(), 1u);  // now served
  net['D'].unlock(net.acquired['D'][0].first);
}

TEST(Membership, CascadingLeaves) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  // Everyone but D leaves, token cascades A -> B -> C -> D.
  net['A'].leave(id_of('B'));
  net.pump();
  net['B'].leave(id_of('C'));
  net.pump();
  net['C'].leave(id_of('D'));
  net.pump();
  EXPECT_TRUE(net['D'].is_token_node());
  // D serves a request routed through all three tombstones.
  // (simulate a stale hint: send D's... — C,B,A all forward)
  const auto id = net['D'].try_request_lock(Mode::kW);
  ASSERT_TRUE(id.has_value());
  net['D'].unlock(*id);
}

TEST(Membership, RequestThroughChainOfTombstones) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', 'B');  // C's hint points at B
  net['A'].leave(id_of('B'));
  net.pump();
  // C's request goes to tombstone? No: B is live root now. Make B leave
  // too, with D... there is no D; leave to A? A is departed — pick C.
  net['B'].leave(id_of('C'));
  net.pump();
  EXPECT_TRUE(net['C'].is_token_node());
  // A request from... C is root; everything is local now.
  const auto id = net['C'].try_request_lock(Mode::kU);
  ASSERT_TRUE(id.has_value());
  net['C'].unlock(*id);
  // Stray request addressed to the two tombstones still finds C.
  Message stray;
  stray.kind = MsgKind::kRequest;
  stray.lock = LockId{0};
  stray.req.requester = id_of('C');
  stray.req.mode = Mode::kR;
  // (a returning self-request with no pending is simply dropped at C)
  net['A'].handle(stray);
  net.pump();
}

TEST(Membership, DepartedEngineRejectsFurtherUse) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net['B'].leave();
  EXPECT_THROW(net['B'].leave(), std::logic_error);
}

}  // namespace
}  // namespace hlock::core
