// Request-cancellation tests: backlog removal, in-flight absorption, and
// interaction with queue service and other waiters.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

struct Net {
  HlsEngine& add(char name, char root) {
    EngineCallbacks cbs;
    cbs.on_acquired = [this, name](RequestId id, Mode mode) {
      acquired[name].emplace_back(id, mode);
    };
    auto engine = std::make_unique<HlsEngine>(LockId{0}, id_of(name),
                                              id_of(root),
                                              bus.port(id_of(name)),
                                              EngineOptions{}, std::move(cbs));
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
    return *raw;
  }
  HlsEngine& operator[](char c) { return *engines.at(c); }
  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::map<char, std::vector<std::pair<RequestId, Mode>>> acquired;
};

TEST(Cancel, BacklogEntryIsRemoved) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  (void)net['B'].request_lock(Mode::kW);  // pending
  const RequestId second = net['B'].request_lock(Mode::kR);  // backlog
  EXPECT_EQ(net['B'].backlog_size(), 1u);
  EXPECT_TRUE(net['B'].cancel(second));
  EXPECT_EQ(net['B'].backlog_size(), 0u);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 1u);  // only the W came through
  EXPECT_EQ(net.acquired['B'][0].second, Mode::kW);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
}

TEST(Cancel, InFlightGrantIsAbsorbedSilently) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId rid = net['B'].request_lock(Mode::kR);
  EXPECT_TRUE(net['B'].cancel(rid));  // request already on the wire
  net.pump();                          // grant arrives, absorbed
  EXPECT_TRUE(net.acquired['B'].empty());
  EXPECT_TRUE(net['B'].holds().empty());
  EXPECT_FALSE(net['B'].has_pending());
  // The lock is fully available again for everyone (the token moved to B
  // with the absorbed grant, so A's W travels there).
  (void)net['A'].request_lock(Mode::kW);
  net.pump();
  ASSERT_EQ(net.acquired['A'].size(), 1u);
  net['A'].unlock(net.acquired['A'][0].first);
  net.pump();
}

TEST(Cancel, CancelledQueuedWriterUnblocksNobodyButGetsAbsorbed) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId wb = net['B'].request_lock(Mode::kW);  // queued at A
  net.pump();
  (void)net['C'].request_lock(Mode::kR);  // frozen behind the W
  net.pump();
  EXPECT_TRUE(net.acquired['C'].empty());
  EXPECT_TRUE(net['B'].cancel(wb));
  // Release A's R: the cancelled W is served first (token moves to B,
  // where the grant is absorbed and instantly released), then C's R.
  net['A'].unlock(ra);
  net.pump();
  EXPECT_TRUE(net.acquired['B'].empty());
  ASSERT_EQ(net.acquired['C'].size(), 1u);
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
}

TEST(Cancel, GrantedRequestReturnsFalse) {
  Net net;
  net.add('A', 'A');
  const RequestId rid = net['A'].request_lock(Mode::kR);
  EXPECT_FALSE(net['A'].cancel(rid));  // already granted: caller unlocks
  net['A'].unlock(rid);
}

TEST(Cancel, UnknownOrReleasedThrows) {
  Net net;
  net.add('A', 'A');
  const RequestId rid = net['A'].request_lock(Mode::kR);
  net['A'].unlock(rid);
  EXPECT_THROW((void)net['A'].cancel(rid), std::logic_error);
}

TEST(Cancel, UpgradeCannotBeCancelled) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ua = net['A'].request_lock(Mode::kU);
  (void)net['B'].request_lock(Mode::kR);  // keeps the upgrade blocked
  net.pump();
  net['A'].upgrade(ua);
  EXPECT_THROW((void)net['A'].cancel(ua), std::logic_error);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  EXPECT_EQ(net['A'].holds().at(ua), Mode::kW);
  net['A'].unlock(ua);
  net.pump();
}

TEST(Cancel, SelfQueuedAtTokenNodeIsAbsorbed) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId rb = net['B'].request_lock(Mode::kIW);
  net.pump();  // B took the token with IW
  // A requests R -> incompatible with B's IW... A is non-token now; make
  // the TOKEN node self-queue: B requests R while holding IW (own modes
  // incompatible) -> self-queued.
  const RequestId rb2 = net['B'].request_lock(Mode::kR);
  EXPECT_TRUE(net['B'].has_pending());
  EXPECT_TRUE(net['B'].cancel(rb2));
  net['B'].unlock(rb);  // queue served: cancelled entry absorbed
  net.pump();
  EXPECT_EQ(net.acquired['B'].size(), 1u);  // only the IW was reported
  EXPECT_TRUE(net['B'].holds().empty());
  EXPECT_FALSE(net['B'].has_pending());
}

}  // namespace
}  // namespace hlock::core
