// Wait-for-graph and DeadlockMonitor tests, including a manufactured
// application-level cross-lock deadlock that the detector must name.
#include <gtest/gtest.h>

#include "harness/deadlock.hpp"
#include "harness/invariants.hpp"
#include "lockmgr/waitgraph.hpp"

namespace hlock {
namespace {

TEST(WaitForGraph, EmptyHasNoCycle) {
  lockmgr::WaitForGraph g;
  EXPECT_FALSE(g.find_cycle().has_value());
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WaitForGraph, ChainHasNoCycle) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{2});
  g.add_edge(NodeId{2}, NodeId{3});
  EXPECT_FALSE(g.find_cycle().has_value());
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(WaitForGraph, DirectCycleFound) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{0});
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);  // first == last
  EXPECT_EQ(cycle->front(), cycle->back());
}

TEST(WaitForGraph, LongCycleFound) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{2});
  g.add_edge(NodeId{2}, NodeId{3});
  g.add_edge(NodeId{3}, NodeId{1});  // cycle 1 -> 2 -> 3 -> 1
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);
}

TEST(WaitForGraph, SelfEdgesIgnored) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{0});
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.find_cycle().has_value());
}

TEST(WaitForGraph, DiamondIsAcyclic) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{0}, NodeId{2});
  g.add_edge(NodeId{1}, NodeId{3});
  g.add_edge(NodeId{2}, NodeId{3});
  EXPECT_FALSE(g.find_cycle().has_value());
}

TEST(WaitForGraph, HundredThousandNodeChainDoesNotOverflowTheStack) {
  // Regression for the recursive DFS: a convoy this deep used to burn a
  // stack frame (plus a std::function) per node and crash. The iterative
  // walk keeps all per-depth state on the heap.
  constexpr std::uint32_t kDepth = 100'000;
  lockmgr::WaitForGraph g;
  for (std::uint32_t i = 0; i < kDepth; ++i)
    g.add_edge(NodeId{i}, NodeId{i + 1});
  EXPECT_FALSE(g.find_cycle().has_value());
  g.add_edge(NodeId{kDepth}, NodeId{0});  // close the loop
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), kDepth + 2);  // every node + repeated head
  EXPECT_EQ(cycle->front(), cycle->back());
}

TEST(WaitForGraph, RemoveNodeDropsBothDirections) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{2});
  g.add_edge(NodeId{2}, NodeId{0});
  ASSERT_TRUE(g.find_cycle().has_value());
  g.remove_node(NodeId{1});
  EXPECT_FALSE(g.find_cycle().has_value());
  EXPECT_EQ(g.edge_count(), 1u);  // only 2 -> 0 survives
}

TEST(WaitForGraph, CountCyclesSeesDisjointCycles) {
  lockmgr::WaitForGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{0});
  g.add_edge(NodeId{10}, NodeId{11});
  g.add_edge(NodeId{11}, NodeId{12});
  g.add_edge(NodeId{12}, NodeId{10});
  g.add_edge(NodeId{20}, NodeId{21});  // acyclic appendix
  EXPECT_EQ(g.count_cycles(), 2u);
  // Counting works on a scratch copy: the graph itself is untouched.
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.find_cycle().has_value());
}

// ---------------------------------------------------------------------------

TEST(DeadlockMonitor, CleanClusterHasNoDeadlock) {
  harness::ClusterConfig config;
  config.nodes = 6;
  config.spec.ops_per_node = 10;
  harness::HlsCluster cluster(config);
  cluster.run();
  EXPECT_EQ(harness::describe_deadlock(cluster), "");
}

TEST(DeadlockMonitor, DetectsCrossLockOrderingDeadlock) {
  // Manufactured application bug: node 1 takes W on entry lock 1 then
  // wants W on entry lock 2; node 2 does the opposite, concurrently.
  harness::ClusterConfig config;
  config.nodes = 3;
  config.spec.ops_per_node = 0;
  config.spec.entries_per_node = 1;  // locks: table(0), entries 1..3
  harness::HlsCluster cluster(config);

  auto& sim = cluster.simulator();
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);
  const LockId la{1}, lb{2};

  n1.set_on_acquired([&](LockId lock, RequestId, Mode) {
    if (lock == la) {
      sim.schedule_after(msec(1), [&] { (void)n1.engine(lb).request_lock(Mode::kW); });
    }
  });
  n2.set_on_acquired([&](LockId lock, RequestId, Mode) {
    if (lock == lb) {
      sim.schedule_after(msec(1), [&] { (void)n2.engine(la).request_lock(Mode::kW); });
    }
  });
  sim.schedule_at(0, [&] { (void)n1.engine(la).request_lock(Mode::kW); });
  sim.schedule_at(0, [&] { (void)n2.engine(lb).request_lock(Mode::kW); });
  sim.run_all();

  // Both are stuck waiting on each other; the monitor must see the cycle.
  const std::string report = harness::describe_deadlock(cluster);
  ASSERT_NE(report, "");
  EXPECT_NE(report.find("deadlock cycle"), std::string::npos);
  // Ordered acquisition (what NaimiOrderedSession and well-behaved apps
  // do) would have prevented this; the protocol itself stayed safe.
  EXPECT_EQ(harness::check_safety(cluster), "");
}

}  // namespace
}  // namespace hlock
