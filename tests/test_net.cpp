// Real-socket substrate tests: framing, event loop, TcpNode mesh delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/cluster.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"

namespace hlock::net {
namespace {

Message sample_message(std::uint32_t lock, MsgKind kind = MsgKind::kRequest) {
  Message m;
  m.kind = kind;
  m.lock = LockId{lock};
  m.req.requester = NodeId{7};
  m.req.mode = Mode::kIW;
  m.req.stamp = LamportStamp{42, NodeId{7}};
  m.mode = Mode::kR;
  m.frozen = ModeSet{Mode::kIW, Mode::kW};
  return m;
}

TEST(Framing, RoundTripSingleFrame) {
  const Message m = sample_message(3);
  const auto bytes = frame(m);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out, m);
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, HandlesFragmentationAtEveryByteBoundary) {
  const Message m = sample_message(9, MsgKind::kToken);
  const auto bytes = frame(m);
  for (std::size_t split = 1; split < bytes.size(); ++split) {
    FrameDecoder dec;
    dec.feed(bytes.data(), split);
    Message out;
    const bool early = dec.next(out);
    dec.feed(bytes.data() + split, bytes.size() - split);
    if (!early) {
      ASSERT_TRUE(dec.next(out)) << "split at " << split;
    }
    EXPECT_EQ(out, m);
  }
}

TEST(Framing, HandlesCoalescedFrames) {
  FrameDecoder dec;
  std::vector<Message> sent;
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 20; ++i) {
    sent.push_back(sample_message(i));
    const auto f = frame(sent.back());
    stream.insert(stream.end(), f.begin(), f.end());
  }
  dec.feed(stream.data(), stream.size());
  Message out;
  for (std::uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.lock.value, i);
  }
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, RejectsOversizedFrame) {
  FrameDecoder dec;
  const std::uint8_t bogus[4] = {0xff, 0xff, 0xff, 0xff};
  dec.feed(bogus, 4);
  Message out;
  EXPECT_THROW(dec.next(out), DecodeError);
}

TEST(EventLoop, RunsPostedTasksAndTimersInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::thread t([&] { loop.run(); });
  loop.post([&] {
    loop.schedule(msec(30), [&] {
      order.push_back(2);
      loop.stop();
    });
    loop.schedule(msec(5), [&] { order.push_back(1); });
    order.push_back(0);
  });
  t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoop, CrossThreadPostIsDelivered) {
  EventLoop loop;
  std::atomic<int> hits{0};
  std::thread t([&] { loop.run(); });
  for (int i = 0; i < 100; ++i) {
    loop.post([&] { hits.fetch_add(1); });
  }
  loop.post([&] { loop.stop(); });
  t.join();
  EXPECT_EQ(hits.load(), 100);
}

TEST(TcpCluster, MeshDeliversMessagesBothDirections) {
  InProcessCluster cluster(3);
  std::atomic<int> received[3] = {{0}, {0}, {0}};
  for (std::size_t i = 0; i < 3; ++i) {
    cluster.node(i).set_handler(
        [&received, i](const Message&) { received[i].fetch_add(1); });
  }
  // Every node sends to every other node, both dial directions covered.
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster.node(from).send(NodeId{static_cast<std::uint32_t>(to)},
                              sample_message(static_cast<std::uint32_t>(from)));
    }
  }
  for (int spin = 0; spin < 200; ++spin) {
    if (received[0] == 2 && received[1] == 2 && received[2] == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(received[0].load(), 2);
  EXPECT_EQ(received[1].load(), 2);
  EXPECT_EQ(received[2].load(), 2);
  cluster.stop();
}

TEST(TcpCluster, ManyMessagesPreserveChannelFifo) {
  InProcessCluster cluster(2);
  std::vector<std::uint32_t> seen;
  std::mutex m;
  cluster.node(1).set_handler([&](const Message& msg) {
    const std::lock_guard<std::mutex> g(m);
    seen.push_back(msg.lock.value);
  });
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    cluster.node(0).send(NodeId{1}, sample_message(i));
  }
  for (int spin = 0; spin < 300; ++spin) {
    {
      const std::lock_guard<std::mutex> g(m);
      if (seen.size() == kCount) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::lock_guard<std::mutex> g(m);
  ASSERT_EQ(seen.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
  cluster.stop();
}

}  // namespace
}  // namespace hlock::net
