// Real-socket substrate tests: framing, event loop, TcpNode mesh delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/cluster.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"

namespace hlock::net {
namespace {

Message sample_message(std::uint32_t lock, MsgKind kind = MsgKind::kRequest) {
  Message m;
  m.kind = kind;
  m.lock = LockId{lock};
  m.req.requester = NodeId{7};
  m.req.mode = Mode::kIW;
  m.req.stamp = LamportStamp{42, NodeId{7}};
  m.mode = Mode::kR;
  m.frozen = ModeSet{Mode::kIW, Mode::kW};
  return m;
}

TEST(Framing, RoundTripSingleFrame) {
  const Message m = sample_message(3);
  const auto bytes = frame(m);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out, m);
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, HandlesFragmentationAtEveryByteBoundary) {
  const Message m = sample_message(9, MsgKind::kToken);
  const auto bytes = frame(m);
  for (std::size_t split = 1; split < bytes.size(); ++split) {
    FrameDecoder dec;
    dec.feed(bytes.data(), split);
    Message out;
    const bool early = dec.next(out);
    dec.feed(bytes.data() + split, bytes.size() - split);
    if (!early) {
      ASSERT_TRUE(dec.next(out)) << "split at " << split;
    }
    EXPECT_EQ(out, m);
  }
}

TEST(Framing, HandlesCoalescedFrames) {
  FrameDecoder dec;
  std::vector<Message> sent;
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 20; ++i) {
    sent.push_back(sample_message(i));
    const auto f = frame(sent.back());
    stream.insert(stream.end(), f.begin(), f.end());
  }
  dec.feed(stream.data(), stream.size());
  Message out;
  for (std::uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.lock.value, i);
  }
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, RejectsOversizedFrame) {
  FrameDecoder dec;
  const std::uint8_t bogus[4] = {0xff, 0xff, 0xff, 0xff};
  dec.feed(bogus, 4);
  Message out;
  EXPECT_THROW(dec.next(out), DecodeError);
}

TEST(Framing, RejectsOversizedMessageLengthPrefix) {
  // 16 MB + 1, control bit clear: one past kMaxFrameBytes.
  FrameDecoder dec;
  const std::uint8_t bogus[4] = {0x01, 0x00, 0x00, 0x01};
  dec.feed(bogus, 4);
  DecodedFrame out;
  EXPECT_THROW(dec.next_frame(out), DecodeError);
}

TEST(Framing, OneByteFeedsAcrossCompactionThreshold) {
  // Enough frames that the decoder's internal compaction threshold is
  // crossed several times while bytes arrive one at a time.
  std::vector<std::uint8_t> stream;
  constexpr std::uint32_t kFrames = 200;
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    const auto f = frame(sample_message(i));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  ASSERT_GT(stream.size(), 8192u);
  FrameDecoder dec;
  std::uint32_t decoded = 0;
  Message out;
  for (const std::uint8_t byte : stream) {
    dec.feed(&byte, 1);
    while (dec.next(out)) {
      EXPECT_EQ(out.lock.value, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, kFrames);
}

TEST(Framing, GarbageAfterValidFrameDecodesFirstThenThrows) {
  const Message m = sample_message(11);
  auto stream = frame(m);
  stream.insert(stream.end(), 16, 0xFF);
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out, m);
  EXPECT_THROW(dec.next(out), DecodeError);
}

TEST(Framing, ControlFramesRoundTripAndStayOffTheMessagePath) {
  FrameDecoder dec;
  const auto hello = hello_frame(NodeId{12});
  const auto ping = ping_frame();
  dec.feed(hello.data(), hello.size());
  dec.feed(ping.data(), ping.size());
  DecodedFrame f;
  ASSERT_TRUE(dec.next_frame(f));
  EXPECT_TRUE(f.control);
  EXPECT_EQ(f.op, ControlOp::kHello);
  EXPECT_EQ(f.hello_node, NodeId{12});
  ASSERT_TRUE(dec.next_frame(f));
  EXPECT_TRUE(f.control);
  EXPECT_EQ(f.op, ControlOp::kPing);
  EXPECT_FALSE(dec.next_frame(f));

  // The Message-only accessor must refuse to hand a control frame to the
  // protocol layer.
  FrameDecoder strict;
  strict.feed(hello.data(), hello.size());
  Message out;
  EXPECT_THROW(strict.next(out), DecodeError);
}

TEST(Framing, RejectsUnknownControlOpAndBadControlLength) {
  {
    FrameDecoder dec;
    // Control bit set, length 1, op 0x7E: unknown.
    const std::uint8_t bogus[5] = {0x01, 0x00, 0x00, 0x80, 0x7E};
    dec.feed(bogus, 5);
    DecodedFrame f;
    EXPECT_THROW(dec.next_frame(f), DecodeError);
  }
  {
    FrameDecoder dec;
    // Control bit set, length 0: malformed.
    const std::uint8_t bogus[4] = {0x00, 0x00, 0x00, 0x80};
    dec.feed(bogus, 4);
    DecodedFrame f;
    EXPECT_THROW(dec.next_frame(f), DecodeError);
  }
}

TEST(Framing, MessageSurvivesInterleavedControlFrames) {
  const Message m = sample_message(77);
  std::vector<std::uint8_t> stream = hello_frame(NodeId{1});
  const auto body = frame(m);
  stream.insert(stream.end(), body.begin(), body.end());
  const auto ping = ping_frame();
  stream.insert(stream.end(), ping.begin(), ping.end());

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  DecodedFrame f;
  ASSERT_TRUE(dec.next_frame(f));
  EXPECT_TRUE(f.control);
  ASSERT_TRUE(dec.next_frame(f));
  EXPECT_FALSE(f.control);
  EXPECT_EQ(f.msg, m);
  ASSERT_TRUE(dec.next_frame(f));
  EXPECT_TRUE(f.control);
  EXPECT_EQ(f.op, ControlOp::kPing);
}

TEST(EventLoop, RunsPostedTasksAndTimersInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::thread t([&] { loop.run(); });
  loop.post([&] {
    loop.schedule(msec(30), [&] {
      order.push_back(2);
      loop.stop();
    });
    loop.schedule(msec(5), [&] { order.push_back(1); });
    order.push_back(0);
  });
  t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoop, CrossThreadPostIsDelivered) {
  EventLoop loop;
  std::atomic<int> hits{0};
  std::thread t([&] { loop.run(); });
  for (int i = 0; i < 100; ++i) {
    loop.post([&] { hits.fetch_add(1); });
  }
  loop.post([&] { loop.stop(); });
  t.join();
  EXPECT_EQ(hits.load(), 100);
}

TEST(EventLoop, CancellableTimersCanBeCancelledBeforeFiring) {
  EventLoop loop;
  std::vector<int> fired;
  std::thread t([&] { loop.run(); });
  loop.post([&] {
    const auto doomed =
        loop.schedule_cancellable(msec(5), [&] { fired.push_back(1); });
    loop.schedule_cancellable(msec(10), [&] { fired.push_back(2); });
    loop.cancel_timer(doomed);
    loop.schedule(msec(30), [&] { loop.stop(); });
  });
  t.join();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(TcpCluster, MeshDeliversMessagesBothDirections) {
  InProcessCluster cluster(3);
  std::atomic<int> received[3] = {{0}, {0}, {0}};
  for (std::size_t i = 0; i < 3; ++i) {
    cluster.node(i).set_handler(
        [&received, i](const Message&) { received[i].fetch_add(1); });
  }
  // Every node sends to every other node, both dial directions covered.
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster.node(from).send(NodeId{static_cast<std::uint32_t>(to)},
                              sample_message(static_cast<std::uint32_t>(from)));
    }
  }
  for (int spin = 0; spin < 200; ++spin) {
    if (received[0] == 2 && received[1] == 2 && received[2] == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(received[0].load(), 2);
  EXPECT_EQ(received[1].load(), 2);
  EXPECT_EQ(received[2].load(), 2);
  cluster.stop();
}

TEST(TcpCluster, ManyMessagesPreserveChannelFifo) {
  InProcessCluster cluster(2);
  std::vector<std::uint32_t> seen;
  std::mutex m;
  cluster.node(1).set_handler([&](const Message& msg) {
    const std::lock_guard<std::mutex> g(m);
    seen.push_back(msg.lock.value);
  });
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    cluster.node(0).send(NodeId{1}, sample_message(i));
  }
  for (int spin = 0; spin < 300; ++spin) {
    {
      const std::lock_guard<std::mutex> g(m);
      if (seen.size() == kCount) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::lock_guard<std::mutex> g(m);
  ASSERT_EQ(seen.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
  cluster.stop();
}

}  // namespace
}  // namespace hlock::net
