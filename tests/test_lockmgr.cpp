// Resource layout and oracle tests.
#include <gtest/gtest.h>

#include "lockmgr/oracle.hpp"
#include "lockmgr/resource.hpp"

namespace hlock::lockmgr {
namespace {

TEST(ResourceLayout, LockIdAssignment) {
  const ResourceLayout layout(5);
  EXPECT_EQ(layout.table_lock(), LockId{0});
  EXPECT_EQ(layout.entry_lock(0), LockId{1});
  EXPECT_EQ(layout.entry_lock(4), LockId{5});
  EXPECT_EQ(layout.entry_count(), 5u);
  EXPECT_EQ(layout.lock_count(), 6u);
  EXPECT_THROW(layout.entry_lock(5), std::out_of_range);
  EXPECT_THROW(ResourceLayout(0), std::invalid_argument);
}

TEST(ResourceLayout, OrderedLocksAscend) {
  const ResourceLayout layout(4);
  const auto order = layout.entry_locks_in_order();
  ASSERT_EQ(order.size(), 4u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(Oracle, CompatibleHoldsCoexist) {
  OracleLock lock;
  lock.add(NodeId{0}, Mode::kIR);
  lock.add(NodeId{1}, Mode::kR);
  lock.add(NodeId{2}, Mode::kU);
  EXPECT_EQ(lock.hold_count(), 3u);
  EXPECT_EQ(lock.strongest_hold(), Mode::kU);
}

TEST(Oracle, IncompatibleHoldThrows) {
  OracleLock lock;
  lock.add(NodeId{0}, Mode::kR);
  EXPECT_THROW(lock.add(NodeId{1}, Mode::kIW), IncompatibleHolds);
  EXPECT_THROW(lock.add(NodeId{1}, Mode::kW), IncompatibleHolds);
  EXPECT_EQ(lock.hold_count(), 1u);
}

TEST(Oracle, CanHoldMirrorsCompatibility) {
  OracleLock lock;
  lock.add(NodeId{0}, Mode::kIW);
  EXPECT_TRUE(lock.can_hold(Mode::kIR));
  EXPECT_TRUE(lock.can_hold(Mode::kIW));
  EXPECT_FALSE(lock.can_hold(Mode::kR));
  EXPECT_FALSE(lock.can_hold(Mode::kU));
  EXPECT_FALSE(lock.can_hold(Mode::kW));
}

TEST(Oracle, RemoveSpecificHold) {
  OracleLock lock;
  lock.add(NodeId{0}, Mode::kIR);
  lock.add(NodeId{0}, Mode::kIR);  // re-entrant hold
  lock.remove(NodeId{0}, Mode::kIR);
  EXPECT_EQ(lock.hold_count(), 1u);
  EXPECT_THROW(lock.remove(NodeId{1}, Mode::kIR), std::logic_error);
}

TEST(Oracle, UpgradeReplaceIsAtomic) {
  OracleLock lock;
  lock.add(NodeId{0}, Mode::kU);
  lock.replace(NodeId{0}, Mode::kU, Mode::kW);
  EXPECT_EQ(lock.strongest_hold(), Mode::kW);

  OracleLock blocked;
  blocked.add(NodeId{0}, Mode::kU);
  blocked.add(NodeId{1}, Mode::kR);
  EXPECT_THROW(blocked.replace(NodeId{0}, Mode::kU, Mode::kW),
               IncompatibleHolds);
  // Failed replace restores the original hold.
  EXPECT_EQ(blocked.hold_count(), 2u);
  EXPECT_EQ(blocked.strongest_hold(), Mode::kU);
}

TEST(Oracle, ManagerTracksManyLocks) {
  OracleLockManager mgr;
  mgr.lock(LockId{0}).add(NodeId{0}, Mode::kW);
  mgr.lock(LockId{1}).add(NodeId{1}, Mode::kW);  // disjoint locks: fine
  EXPECT_EQ(mgr.total_holds(), 2u);
}

}  // namespace
}  // namespace hlock::lockmgr
