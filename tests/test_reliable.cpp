// Reliability sublayer tests: sequencing, acks, retransmission, duplicate
// suppression, in-order delivery over a reordering lossy network — and
// full protocol runs on top of it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/invariants.hpp"
#include "harness/sim_executor.hpp"
#include "sim/reliable.hpp"
#include "sim/simnet.hpp"

namespace hlock::sim {
namespace {

struct Rig {
  explicit Rig(double loss)
      : net(sim, std::make_unique<UniformLatency>(msec(20)), Rng(5)),
        exec(sim),
        a_raw(net, NodeId{0}),
        b_raw(net, NodeId{1}),
        a(NodeId{0}, a_raw, exec, msec(100)),
        b(NodeId{1}, b_raw, exec, msec(100)) {
    net.set_lossy(loss);
    net.register_node(NodeId{0}, [this](const Message& m) { a.on_receive(m); });
    net.register_node(NodeId{1}, [this](const Message& m) { b.on_receive(m); });
    a.set_deliver([this](const Message& m) { at_a.push_back(m); });
    b.set_deliver([this](const Message& m) { at_b.push_back(m); });
  }

  Simulator sim;
  SimNetwork net;
  harness::SimExecutor exec;
  SimTransport a_raw, b_raw;
  ReliableTransport a, b;
  std::vector<Message> at_a, at_b;
};

Message tagged(std::uint32_t i) {
  Message m;
  m.kind = MsgKind::kRequest;
  m.lock = LockId{i};
  return m;
}

TEST(ReliableTransport, LosslessPassThrough) {
  Rig rig(0.0);
  for (std::uint32_t i = 0; i < 10; ++i) rig.a.send(NodeId{1}, tagged(i));
  rig.sim.run_all();
  ASSERT_EQ(rig.at_b.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(rig.at_b[i].lock.value, i);
  EXPECT_EQ(rig.a.retransmissions(), 0u);
  EXPECT_EQ(rig.a.unacked(), 0u);
}

TEST(ReliableTransport, RecoversFromHeavyLoss) {
  Rig rig(0.30);
  for (std::uint32_t i = 0; i < 200; ++i) rig.a.send(NodeId{1}, tagged(i));
  rig.sim.run_all();
  ASSERT_EQ(rig.at_b.size(), 200u);
  // Exactly once, in order, despite ~30% drops in both directions.
  for (std::uint32_t i = 0; i < 200; ++i) EXPECT_EQ(rig.at_b[i].lock.value, i);
  EXPECT_GT(rig.a.retransmissions(), 0u);
  EXPECT_EQ(rig.a.unacked(), 0u);
  EXPECT_GT(rig.net.messages_dropped(), 0u);
}

TEST(ReliableTransport, BidirectionalTrafficUnderLoss) {
  Rig rig(0.20);
  for (std::uint32_t i = 0; i < 60; ++i) {
    rig.a.send(NodeId{1}, tagged(i));
    rig.b.send(NodeId{0}, tagged(1000 + i));
  }
  rig.sim.run_all();
  ASSERT_EQ(rig.at_b.size(), 60u);
  ASSERT_EQ(rig.at_a.size(), 60u);
  for (std::uint32_t i = 0; i < 60; ++i) {
    EXPECT_EQ(rig.at_b[i].lock.value, i);
    EXPECT_EQ(rig.at_a[i].lock.value, 1000 + i);
  }
}

TEST(ReliableTransport, ReorderingIsMaskedByTheSequenceBuffer) {
  // Lossy mode also disables FIFO channels, so with jittered latency
  // later sends can arrive first; the receiver must resequence. Use a
  // tiny loss so drops don't dominate.
  Rig rig(0.01);
  for (std::uint32_t i = 0; i < 100; ++i) rig.a.send(NodeId{1}, tagged(i));
  rig.sim.run_all();
  ASSERT_EQ(rig.at_b.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(rig.at_b[i].lock.value, i);
  EXPECT_GT(rig.b.buffered_out_of_order(), 0u);
}

TEST(ReliableTransport, DuplicateAcksAndDataAreHarmless) {
  Rig rig(0.0);
  rig.a.send(NodeId{1}, tagged(7));
  rig.sim.run_all();
  ASSERT_EQ(rig.at_b.size(), 1u);
  // Replay the same data frame: must be dropped and re-acked.
  Message dup = tagged(7);
  dup.rel_seq = 1;
  dup.from = NodeId{0};
  rig.b.on_receive(dup);
  EXPECT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.b.duplicates_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Full protocol over a lossy network.
// ---------------------------------------------------------------------------

class LossyCluster : public ::testing::TestWithParam<double> {};

TEST_P(LossyCluster, ProtocolSafeAndLiveUnderLoss) {
  harness::ClusterConfig config;
  config.nodes = 8;
  config.spec.ops_per_node = 15;
  config.spec.seed = 77;
  config.loss_rate = GetParam();
  harness::HlsCluster cluster(config);
  harness::install_safety_probe(cluster);
  ASSERT_NO_THROW(cluster.run());
  EXPECT_EQ(harness::check_quiescent(cluster), "");
  if (GetParam() > 0.0) {
    EXPECT_GT(cluster.network().messages_dropped(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyCluster,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10, 0.20),
                         [](const auto& pinfo) {
                           return "loss" + std::to_string(static_cast<int>(
                                               pinfo.param * 100));
                         });

TEST(LossyCluster, NaimiBaselineAlsoSurvivesLoss) {
  harness::ClusterConfig config;
  config.nodes = 6;
  config.spec.ops_per_node = 12;
  config.loss_rate = 0.10;
  harness::NaimiCluster cluster(config, /*pure=*/true);
  ASSERT_NO_THROW(cluster.run());
}

}  // namespace
}  // namespace hlock::sim
