// Live crash-recovery tests over real TCP sockets: the transport failure
// detector (TcpConfig::suspect_timeout), the two-phase view-change
// protocol (net::ViewService), transport hygiene on commit (forget_peer),
// and the end-to-end path — a killed token holder, a committed view, and
// a token regenerated at the new root with zero lost committed work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "corba/concurrency.hpp"
#include "net/tcp_node.hpp"
#include "net/view_service.hpp"

namespace hlock::net {
namespace {

TcpConfig detect_cfg() {
  TcpConfig c;
  c.reconnect_min = msec(5);
  c.reconnect_max = msec(50);
  c.heartbeat_interval = msec(20);
  c.idle_timeout = msec(10000);  // suspicion, not idle-close, drives tests
  c.suspect_timeout = msec(150);
  return c;
}

bool spin_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

Message sample_message(std::uint32_t lock) {
  Message m;
  m.kind = MsgKind::kRequest;
  m.lock = LockId{lock};
  m.req.requester = NodeId{7};
  m.req.mode = Mode::kIW;
  m.req.stamp = LamportStamp{42, NodeId{7}};
  return m;
}

/// A small live mesh where individual nodes can be killed mid-test (the
/// unique_ptr slots make destruction order explicit, unlike
/// InProcessCluster which only supports whole-cluster teardown).
struct Mesh {
  explicit Mesh(std::uint32_t n, TcpConfig cfg = detect_cfg()) {
    nodes.resize(n);
    threads.resize(n);
    std::map<NodeId, PeerAddress> book;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes[i] = std::make_unique<TcpNode>(NodeId{i}, 0, cfg);
      book[NodeId{i}] = PeerAddress{"127.0.0.1", nodes[i]->listen_port()};
      members.insert(NodeId{i});
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      auto peers = book;
      peers.erase(NodeId{i});
      nodes[i]->set_peers(peers);
      threads[i] = std::thread([n = nodes[i].get()] { n->loop().run(); });
    }
  }

  ~Mesh() {
    for (std::uint32_t i = 0; i < nodes.size(); ++i) kill(i);
  }

  /// Abrupt death: stop the loop and tear the node down. No FIN handshake
  /// matters here — survivors detect the ensuing silence.
  void kill(std::uint32_t i) {
    if (!nodes[i]) return;
    nodes[i]->loop().stop();
    if (threads[i].joinable()) threads[i].join();
    views_of[i].reset();   // loop stopped: detaches without posting
    nodes[i].reset();
  }

  /// Attach a ViewService to node i and record every committed view.
  ViewService& watch(std::uint32_t i, ViewConfig cfg = {msec(20)}) {
    views_of[i] = std::make_unique<ViewService>(*nodes[i], members, cfg);
    views_of[i]->set_on_view([this, i](std::uint32_t view, NodeId root,
                                       const std::set<NodeId>& survivors) {
      const std::lock_guard<std::mutex> g(mu);
      log[i].push_back({view, root, survivors});
    });
    views_of[i]->start();
    return *views_of[i];
  }

  struct Commit {
    std::uint32_t view;
    NodeId root;
    std::set<NodeId> survivors;
  };
  std::vector<Commit> commits(std::uint32_t i) {
    const std::lock_guard<std::mutex> g(mu);
    return log[i];
  }

  std::vector<std::unique_ptr<TcpNode>> nodes;
  std::vector<std::thread> threads;
  std::map<std::uint32_t, std::unique_ptr<ViewService>> views_of;
  std::set<NodeId> members;
  std::mutex mu;
  std::map<std::uint32_t, std::vector<Commit>> log;
};

// --- failure detector ----------------------------------------------------

TEST(FailureDetector, SilentPeerIsSuspectedThenClearedOnReturn) {
  TcpConfig cfg = detect_cfg();
  const std::uint16_t dead_port = [] {
    TcpNode probe(NodeId{9}, 0, TcpConfig{});
    return probe.listen_port();  // freed on destruction; nobody rebinds
  }();

  TcpNode a(NodeId{0}, 0, cfg);
  std::mutex mu;
  std::vector<std::pair<NodeId, bool>> events;
  a.set_on_peer_suspected([&](NodeId peer, bool suspected) {
    const std::lock_guard<std::mutex> g(mu);
    events.emplace_back(peer, suspected);
  });
  a.set_peers({{NodeId{1}, PeerAddress{"127.0.0.1", dead_port}}});
  std::thread ta([&] { a.loop().run(); });

  // Nothing listens at the peer: never heard from -> suspected once.
  ASSERT_TRUE(spin_until([&] { return a.stats().peers_suspected == 1; }));
  EXPECT_EQ(a.suspected_peers(), 1u);
  {
    const std::lock_guard<std::mutex> g(mu);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], (std::pair<NodeId, bool>{NodeId{1}, true}));
  }

  // The peer comes back on the advertised port: traffic resumes and the
  // suspicion clears (eventually-perfect, not fail-stop).
  TcpNode b(NodeId{1}, dead_port, cfg);
  b.set_peers({{NodeId{0}, PeerAddress{"127.0.0.1", a.listen_port()}}});
  std::thread tb([&] { b.loop().run(); });

  ASSERT_TRUE(spin_until([&] { return a.stats().suspicions_cleared == 1; }));
  EXPECT_EQ(a.suspected_peers(), 0u);
  {
    const std::lock_guard<std::mutex> g(mu);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1], (std::pair<NodeId, bool>{NodeId{1}, false}));
  }

  a.loop().stop();
  b.loop().stop();
  ta.join();
  tb.join();
}

TEST(FailureDetector, DisabledByDefault) {
  TcpConfig cfg = detect_cfg();
  cfg.suspect_timeout = msec(0);
  TcpNode a(NodeId{0}, 0, cfg);
  std::atomic<int> fired{0};
  a.set_on_peer_suspected([&](NodeId, bool) { fired.fetch_add(1); });
  a.set_peers({{NodeId{1}, PeerAddress{"127.0.0.1", 1}}});  // nothing there
  std::thread ta([&] { a.loop().run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(a.stats().peers_suspected, 0u);
  a.loop().stop();
  ta.join();
}

// --- transport hygiene ---------------------------------------------------

TEST(FailureDetector, ForgetPeerDropsWindowAndStopsDialing) {
  TcpNode a(NodeId{0}, 0, detect_cfg());
  a.set_peers({{NodeId{1}, PeerAddress{"127.0.0.1", 1}}});  // refused
  std::thread ta([&] { a.loop().run(); });

  a.send(NodeId{1}, sample_message(1));
  a.send(NodeId{1}, sample_message(2));
  ASSERT_TRUE(spin_until([&] { return a.unacked() == 2; }));

  // Forgetting the dead peer drains its send window — the exact guarantee
  // a survivor needs to report unacked()==0 after recovery.
  a.forget_peer(NodeId{1});
  ASSERT_TRUE(spin_until([&] { return a.unacked() == 0; }));

  // Re-dials stop too: the failure counter plateaus.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t failures = a.stats().connect_failures;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(a.stats().connect_failures, failures);

  a.loop().stop();
  ta.join();
}

// --- view changes --------------------------------------------------------

TEST(ViewService, ThreeNodeMeshCommitsViewOnKill) {
  Mesh mesh(3);
  for (std::uint32_t i = 0; i < 3; ++i) mesh.watch(i);
  ASSERT_TRUE(spin_until([&] {
    return mesh.nodes[0]->connected_peers() == 2 &&
           mesh.nodes[1]->connected_peers() == 2 &&
           mesh.nodes[2]->connected_peers() == 2;
  }));

  mesh.kill(2);
  ASSERT_TRUE(spin_until([&] {
    return mesh.views_of[0]->view() >= 1 && mesh.views_of[1]->view() >= 1;
  }));

  // Both survivors committed the same view with the lowest id as root and
  // an identical survivor set — the begin_recovery contract.
  const auto c0 = mesh.commits(0);
  const auto c1 = mesh.commits(1);
  ASSERT_FALSE(c0.empty());
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(c0.back().view, c1.back().view);
  EXPECT_EQ(c0.back().root, NodeId{0});
  EXPECT_EQ(c1.back().root, NodeId{0});
  const std::set<NodeId> expect{NodeId{0}, NodeId{1}};
  EXPECT_EQ(c0.back().survivors, expect);
  EXPECT_EQ(c1.back().survivors, expect);
  EXPECT_GE(mesh.views_of[0]->view_frames_sent(), 2u);  // propose + commit
}

TEST(ViewService, CoordinatorDeathPromotesNextLowestSurvivor) {
  Mesh mesh(3);
  for (std::uint32_t i = 0; i < 3; ++i) mesh.watch(i);
  ASSERT_TRUE(spin_until([&] {
    return mesh.nodes[0]->connected_peers() == 2 &&
           mesh.nodes[1]->connected_peers() == 2;
  }));

  // The would-be coordinator dies: node 1 must take over as both
  // coordinator and new root.
  mesh.kill(0);
  ASSERT_TRUE(spin_until([&] {
    return mesh.views_of[1]->view() >= 1 && mesh.views_of[2]->view() >= 1;
  }));
  const auto c1 = mesh.commits(1);
  const auto c2 = mesh.commits(2);
  ASSERT_FALSE(c1.empty());
  ASSERT_FALSE(c2.empty());
  EXPECT_EQ(c1.back().root, NodeId{1});
  EXPECT_EQ(c2.back().root, NodeId{1});
  EXPECT_EQ(c1.back().view, c2.back().view);
}

TEST(ViewService, SuccessiveKillsCommitIncreasingViews) {
  Mesh mesh(4);
  for (std::uint32_t i = 0; i < 4; ++i) mesh.watch(i);
  ASSERT_TRUE(spin_until([&] {
    return mesh.nodes[0]->connected_peers() == 3 &&
           mesh.nodes[1]->connected_peers() == 3;
  }));

  mesh.kill(3);
  ASSERT_TRUE(spin_until([&] { return mesh.views_of[0]->view() >= 1; }));
  mesh.kill(2);
  ASSERT_TRUE(spin_until([&] {
    return mesh.views_of[0]->views_committed() >= 2 &&
           mesh.views_of[1]->views_committed() >= 2;
  }));

  const auto c0 = mesh.commits(0);
  ASSERT_GE(c0.size(), 2u);
  EXPECT_GT(c0.back().view, c0.front().view);  // strictly increasing
  EXPECT_EQ(c0.back().survivors, (std::set<NodeId>{NodeId{0}, NodeId{1}}));
  // Sole write path after the commits: the dead peers' windows were
  // forgotten, so nothing is parked forever.
  EXPECT_TRUE(spin_until([&] { return mesh.nodes[0]->unacked() == 0; }));
}

// --- end to end: kill the token holder, lock again -----------------------

TEST(ViewService, KilledTokenHolderIsRecoveredAndLockReacquired) {
  Mesh mesh(3);
  std::vector<std::unique_ptr<corba::ConcurrencyService>> services(3);
  const LockId kLock{0};
  for (std::uint32_t i = 0; i < 3; ++i) {
    services[i] = std::make_unique<corba::ConcurrencyService>(*mesh.nodes[i]);
    services[i]->create_lock_set(kLock, NodeId{2});  // rooted at the victim
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto& views = mesh.watch(i);
    views.set_on_view([&, i](std::uint32_t view, NodeId root,
                             const std::set<NodeId>& survivors) {
      services[i]->recover_all(view, root, survivors);
    });
  }

  // The victim takes W (it owns the token) and "commits" one op; the
  // survivors each complete a W round so their state is live, not idle.
  {
    corba::LockSet set = services[2]->lock_set(kLock);
    const auto h = set.lock(corba::LockMode::kWrite);
    set.unlock(h);
  }
  for (std::uint32_t i = 0; i < 2; ++i) {
    corba::LockSet set = services[i]->lock_set(kLock);
    const auto h = set.lock(corba::LockMode::kWrite);
    set.unlock(h);
  }

  // Kill the token holder outright (services[2] dies with its node).
  {
    corba::LockSet set = services[2]->lock_set(kLock);
    const auto h = set.lock(corba::LockMode::kWrite);
    (void)h;  // dies holding W — the token is lost with the process
  }
  services[2].reset();
  mesh.kill(2);

  // Survivors commit a view and regenerate the token at node 0; a fresh
  // W acquisition on each survivor must complete.
  ASSERT_TRUE(spin_until([&] {
    return mesh.views_of[0]->view() >= 1 && mesh.views_of[1]->view() >= 1;
  }));
  for (std::uint32_t i = 0; i < 2; ++i) {
    corba::LockSet set = services[i]->lock_set(kLock);
    const auto h = set.try_lock_for(corba::LockMode::kWrite, msec(5000));
    ASSERT_TRUE(h.has_value()) << "survivor " << i
                               << " could not lock after recovery";
    set.unlock(*h);
  }
  // Destroy services before their nodes (Mesh dtor kills the nodes).
  services[0].reset();
  services[1].reset();
}

}  // namespace
}  // namespace hlock::net
