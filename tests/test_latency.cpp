// Unit tests for the latency-model hierarchy (latency.hpp) and the
// ClusterMap placement table behind ClusteredLatency.
#include "sim/latency.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/cluster_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hlock::sim {
namespace {

TEST(ConstantLatency, AlwaysExactlyMean) {
  ConstantLatency model(msec(150));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), msec(150));
  EXPECT_EQ(model.mean(), msec(150));
}

TEST(UniformLatency, SupportIsHalfToThreeHalvesOfMean) {
  UniformLatency model(msec(150));
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, msec(150) / 2);
    EXPECT_LE(d, msec(150) + msec(150) / 2);
    EXPECT_GT(d, 0);
  }
  EXPECT_EQ(model.mean(), msec(150));
}

TEST(UniformLatency, SampleMeanApproachesModelMean) {
  UniformLatency model(msec(150));
  Rng rng(3);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i)
    sum += static_cast<double>(model.sample(rng));
  const double mean = sum / kSamples;
  // Uniform on [75ms, 225ms]: the sample mean of 50k draws is within 1%.
  EXPECT_NEAR(mean, static_cast<double>(msec(150)), msec(150) * 0.01);
}

TEST(ExponentialLatency, RespectsMinimumAndStaysPositive) {
  ExponentialLatency model(msec(150), msec(15));
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, msec(15));
    EXPECT_GT(d, 0);
  }
  EXPECT_EQ(model.mean(), msec(150));
}

TEST(ExponentialLatency, SampleMeanApproachesModelMean) {
  ExponentialLatency model(msec(150), msec(15));
  Rng rng(5);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i)
    sum += static_cast<double>(model.sample(rng));
  // Exponential has a heavy tail: allow 2%.
  EXPECT_NEAR(sum / kSamples, static_cast<double>(msec(150)),
              msec(150) * 0.02);
}

TEST(LatencyModels, DeterministicUnderFixedSeed) {
  const auto draw = [](LatencyModel& model, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Duration> out;
    for (int i = 0; i < 64; ++i) out.push_back(model.sample(rng));
    return out;
  };
  UniformLatency u1(msec(150)), u2(msec(150));
  EXPECT_EQ(draw(u1, 42), draw(u2, 42));
  ExponentialLatency e1(msec(150), msec(15)), e2(msec(150), msec(15));
  EXPECT_EQ(draw(e1, 42), draw(e2, 42));
  // Different seeds diverge (the models don't ignore the stream).
  EXPECT_NE(draw(u1, 42), draw(u1, 43));
}

TEST(LatencyModels, SamplePairDefaultsToSampleSameStream) {
  // The byte-identity contract for flat topologies: sample_pair on a flat
  // model consumes exactly the stream sample() would.
  UniformLatency a(msec(150)), b(msec(150));
  Rng ra(7), rb(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.sample_pair(NodeId{0}, NodeId{1}, ra), b.sample(rb));
  }
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(ClusterMap, BlockPlacementGroupsContiguousRuns) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(map.cluster_of(NodeId{i}), 0u) << i;
  for (std::uint32_t i = 4; i < 8; ++i)
    EXPECT_EQ(map.cluster_of(NodeId{i}), 1u) << i;
  EXPECT_EQ(map.cluster_count(), 2u);
  EXPECT_EQ(map.node_count(), 8u);
}

TEST(ClusterMap, StripePlacementRoundRobins) {
  const ClusterMap map = ClusterMap::make(8, 3, ClusterPlacement::kStripe);
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(map.cluster_of(NodeId{i}), i % 3) << i;
}

TEST(ClusterMap, RaggedBlockShrinksLastCluster) {
  // 10 nodes over 4 clusters: ceil(10/4)=3 per block -> 3/3/3/1.
  const ClusterMap map = ClusterMap::make(10, 4, ClusterPlacement::kBlock);
  EXPECT_EQ(map.cluster_of(NodeId{0}), 0u);
  EXPECT_EQ(map.cluster_of(NodeId{8}), 2u);
  EXPECT_EQ(map.cluster_of(NodeId{9}), 3u);
  EXPECT_EQ(map.cluster_count(), 4u);
}

TEST(ClusterMap, OutOfRangeAndInvalidIdsFallIntoClusterZero) {
  const ClusterMap map = ClusterMap::make(4, 2, ClusterPlacement::kBlock);
  EXPECT_EQ(map.cluster_of(NodeId{99}), 0u);
  EXPECT_EQ(map.cluster_of(NodeId::invalid()), 0u);
  EXPECT_TRUE(map.same_cluster(NodeId{0}, NodeId{99}));
}

TEST(ClusterMap, ZeroClustersThrows) {
  EXPECT_THROW(ClusterMap::make(4, 0, ClusterPlacement::kBlock),
               std::invalid_argument);
}

TEST(ClusteredLatency, RoutesPairsByClusterMembership) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  ClusteredLatency model(&map, std::make_unique<ConstantLatency>(usec(50)),
                         std::make_unique<ConstantLatency>(msec(50)));
  Rng rng(8);
  EXPECT_EQ(model.sample_pair(NodeId{0}, NodeId{3}, rng), usec(50));
  EXPECT_EQ(model.sample_pair(NodeId{4}, NodeId{7}, rng), usec(50));
  EXPECT_EQ(model.sample_pair(NodeId{0}, NodeId{4}, rng), msec(50));
  EXPECT_EQ(model.sample_pair(NodeId{7}, NodeId{0}, rng), msec(50));
}

TEST(ClusteredLatency, PairlessSampleAndMeanAreInterCluster) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  ClusteredLatency model(&map, std::make_unique<ConstantLatency>(usec(50)),
                         std::make_unique<ConstantLatency>(msec(50)));
  Rng rng(9);
  EXPECT_EQ(model.sample(rng), msec(50));
  EXPECT_EQ(model.mean(), msec(50));
  EXPECT_EQ(model.intra_mean(), usec(50));
}

TEST(LatencyModel, MinLatencyIsTheSupportFloor) {
  // min_latency() feeds the sharded simulator's conservative lookahead:
  // it must be the hard floor of each distribution, and for the clustered
  // composite the min over BOTH components — a cheap intra model drags it
  // far below inter/2, which is why a lookahead hard-coded from the flat
  // mean is unsafe on clustered topologies.
  EXPECT_EQ(ConstantLatency(msec(150)).min_latency(), msec(150));
  EXPECT_EQ(UniformLatency(msec(150)).min_latency(), msec(75));
  EXPECT_EQ(ExponentialLatency(msec(150), msec(15)).min_latency(), msec(15));
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  ClusteredLatency clustered(&map, std::make_unique<UniformLatency>(usec(100)),
                             std::make_unique<UniformLatency>(msec(150)));
  EXPECT_EQ(clustered.min_latency(), usec(50));
  EXPECT_LT(clustered.min_latency(), msec(150) / 2);
}

TEST(LatencyModel, SamplesNeverDipBelowMinLatency) {
  Rng rng(10);
  UniformLatency uni(msec(150));
  ExponentialLatency exp(msec(150), msec(15));
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(uni.sample(rng), uni.min_latency());
    EXPECT_GE(exp.sample(rng), exp.min_latency());
  }
}

TEST(ClusteredLatency, NullPiecesThrow) {
  const ClusterMap map = ClusterMap::make(4, 2, ClusterPlacement::kBlock);
  EXPECT_THROW(ClusteredLatency(nullptr,
                                std::make_unique<ConstantLatency>(usec(50)),
                                std::make_unique<ConstantLatency>(msec(50))),
               std::invalid_argument);
  EXPECT_THROW(
      ClusteredLatency(&map, nullptr,
                       std::make_unique<ConstantLatency>(msec(50))),
      std::invalid_argument);
  EXPECT_THROW(ClusteredLatency(
                   &map, std::make_unique<ConstantLatency>(usec(50)),
                   nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace hlock::sim
