// Shared test scaffolding: an in-memory message bus with manual,
// inspectable delivery for deterministic protocol unit tests.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace hlock::testing {

/// Synchronous test bus: send() enqueues, the test decides when (and in
/// which order) messages are delivered. Lets unit tests reproduce exact
/// message interleavings, including the paper's worked examples.
class TestBus {
 public:
  class Port final : public Transport {
   public:
    Port(TestBus& bus, NodeId self) : bus_(bus), self_(self) {}
    void send(NodeId to, Message m) override {
      m.from = self_;
      bus_.by_kind_[m.kind]++;
      bus_.queue_.push_back({self_, to, std::move(m)});
      ++bus_.total_sent_;
    }

   private:
    TestBus& bus_;
    NodeId self_;
  };

  struct InFlight {
    NodeId from;
    NodeId to;
    Message msg;
  };

  Port& port(NodeId id) {
    auto it = ports_.find(id);
    if (it == ports_.end()) {
      it = ports_.emplace(id, std::make_unique<Port>(*this, id)).first;
    }
    return *it->second;
  }

  void register_handler(NodeId id, std::function<void(const Message&)> fn) {
    handlers_[id] = std::move(fn);
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] const std::deque<InFlight>& in_flight() const {
    return queue_;
  }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t sent(MsgKind kind) const {
    const auto it = by_kind_.find(kind);
    return it == by_kind_.end() ? 0 : it->second;
  }

  /// Deliver the oldest in-flight message. Returns false when none remain.
  bool deliver_one() {
    if (queue_.empty()) return false;
    InFlight f = std::move(queue_.front());
    queue_.pop_front();
    const auto it = handlers_.find(f.to);
    if (it == handlers_.end())
      throw std::logic_error("message to node without handler");
    it->second(f.msg);
    return true;
  }

  /// Deliver message at `index` out of order (reordering tests).
  void deliver_at(std::size_t index) {
    if (index >= queue_.size()) throw std::out_of_range("no such message");
    InFlight f = std::move(queue_[index]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
    handlers_.at(f.to)(f.msg);
  }

  /// Deliver until the bus is empty (with a runaway guard).
  void deliver_all(std::size_t cap = 100000) {
    std::size_t n = 0;
    while (deliver_one()) {
      if (++n > cap) throw std::runtime_error("test bus livelock");
    }
  }

  /// Deliver the oldest message of a RANDOMLY chosen channel. Randomizes
  /// cross-channel interleavings while preserving the per-channel FIFO
  /// the protocol assumes. Returns false when nothing is in flight.
  template <typename RngT>
  bool deliver_random(RngT& rng) {
    if (queue_.empty()) return false;
    // Collect the first (oldest) index of every live channel.
    std::vector<std::size_t> heads;
    std::vector<std::pair<NodeId, NodeId>> seen;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const auto channel = std::make_pair(queue_[i].from, queue_[i].to);
      bool first = true;
      for (const auto& s : seen) {
        if (s == channel) {
          first = false;
          break;
        }
      }
      if (first) {
        seen.push_back(channel);
        heads.push_back(i);
      }
    }
    deliver_at(heads[rng.next_below(heads.size())]);
    return true;
  }

 private:
  friend class Port;
  std::deque<InFlight> queue_;
  std::map<NodeId, std::unique_ptr<Port>> ports_;
  std::map<NodeId, std::function<void(const Message&)>> handlers_;
  std::map<MsgKind, std::uint64_t> by_kind_;
  std::uint64_t total_sent_{0};
};

}  // namespace hlock::testing
