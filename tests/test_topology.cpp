// Initial-topology tests: the protocol must behave identically (same
// safety, same quiescence) from star, chain and random-tree seedings —
// only message counts differ. Exercises the initial_parent plumbing the
// paper's Figure 1 topologies need.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/cluster_map.hpp"
#include "common/rng.hpp"
#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

enum class Topology { kStar, kChain, kRandomTree };

struct Net {
  Net(std::size_t n, Topology topology, std::uint64_t seed,
      EngineOptions opts = {}, const ClusterMap* map = nullptr) {
    Rng rng(seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      NodeId parent = NodeId::invalid();
      if (i != 0) {
        switch (topology) {
          case Topology::kStar: break;  // default: point at the root
          case Topology::kChain: parent = NodeId{i - 1}; break;
          case Topology::kRandomTree:
            parent = NodeId{static_cast<std::uint32_t>(rng.next_below(i))};
            break;
        }
      }
      const NodeId id{i};
      EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode mode) {
        acquired[i].emplace_back(rid, mode);
        order.push_back(i);
      };
      engines.push_back(std::make_unique<HlsEngine>(
          LockId{0}, id, NodeId{0}, bus.port(id), opts,
          std::move(cbs), parent));
      engines.back()->set_cluster_map(map);
      HlsEngine* raw = engines.back().get();
      bus.register_handler(id, [raw](const Message& m) { raw->handle(m); });
    }
  }

  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  std::map<std::uint32_t, std::vector<std::pair<RequestId, Mode>>> acquired;
  /// Global acquisition order (node ids, in grant order).
  std::vector<std::uint32_t> order;
};

class TopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologyTest, DeepestNodeAcquiresThroughTheWholePath) {
  Net net(8, GetParam(), 3);
  (void)net.engines[7]->request_lock(Mode::kW);
  net.pump();
  ASSERT_EQ(net.acquired[7].size(), 1u);
  EXPECT_TRUE(net.engines[7]->is_token_node());
  net.engines[7]->unlock(net.acquired[7][0].first);
  net.pump();
}

TEST_P(TopologyTest, ConcurrentReadersFromEveryNode) {
  Net net(8, GetParam(), 4);
  (void)net.engines[0]->request_lock(Mode::kR);
  for (std::uint32_t i = 1; i < 8; ++i) {
    (void)net.engines[i]->request_lock(Mode::kR);
    net.pump();
  }
  net.pump();
  // Everyone holds R concurrently.
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_EQ(net.acquired[i].size(), 1u) << "node " << i;
    EXPECT_EQ(net.acquired[i][0].second, Mode::kR);
  }
  // Release all; system must quiesce with one token and empty copysets.
  for (std::uint32_t i = 0; i < 8; ++i) {
    net.engines[i]->unlock(net.acquired[i][0].first);
    net.pump();
  }
  std::size_t tokens = 0;
  for (const auto& e : net.engines) {
    tokens += e->is_token_node() ? 1 : 0;
    EXPECT_TRUE(e->holds().empty());
    EXPECT_TRUE(e->children().empty());
    EXPECT_TRUE(e->queue().empty());
  }
  EXPECT_EQ(tokens, 1u);
}

TEST_P(TopologyTest, PathCompressionAmortizesAcrossRounds) {
  Net net(8, GetParam(), 5);
  auto round = [&]() -> std::uint64_t {
    const auto before = net.bus.total_sent();
    for (std::uint32_t i = 0; i < 8; ++i) {
      (void)net.engines[i]->request_lock(Mode::kW);
      net.pump();
      auto& log = net.acquired[i];
      net.engines[i]->unlock(log.back().first);
      net.pump();
    }
    return net.bus.total_sent() - before;
  };
  (void)round();  // warm-up: tree reshapes from the seeded topology
  const auto second = round();
  const auto third = round();
  // Unlike Naimi, this protocol does not reverse paths on forwards:
  // rotating exclusive writers is its worst case and costs O(n) messages
  // per request. The cost must, however, reach a steady state (the tree
  // reshape is stable) and stay linear in n.
  EXPECT_EQ(second, third);
  EXPECT_LE(third, 8u * (8u + 2u));
  // The real compression benefit: a node RE-acquiring right after its
  // own release pays nothing (it still owns nothing... the token moved)
  // — the cheap path is the token holder's, which is message-free.
  const auto before = net.bus.total_sent();
  for (int k = 0; k < 5; ++k) {
    (void)net.engines[7]->request_lock(Mode::kW);
    net.pump();
    net.engines[7]->unlock(net.acquired[7].back().first);
    net.pump();
  }
  // Node 7 ended the last round as the token holder: five more W cycles
  // from it are free.
  EXPECT_EQ(net.bus.total_sent(), before);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyTest,
                         ::testing::Values(Topology::kStar, Topology::kChain,
                                           Topology::kRandomTree),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Topology::kStar: return "star";
                             case Topology::kChain: return "chain";
                             case Topology::kRandomTree: return "random";
                           }
                           return "?";
                         });

TEST(Topology, SelfParentRejected) {
  testing::TestBus bus;
  EXPECT_THROW(HlsEngine(LockId{0}, NodeId{1}, NodeId{0}, bus.port(NodeId{1}),
                         EngineOptions{}, EngineCallbacks{}, NodeId{1}),
               std::invalid_argument);
}

// --- Locality-biased token service ----------------------------------------

EngineOptions bias_opts(std::uint8_t cap) {
  EngineOptions opts;
  opts.locality_bias = true;
  opts.locality_fairness_cap = cap;
  return opts;
}

/// The correctness invariants of the existing shapes must survive with the
/// bias enabled under a 2-cluster split: everyone still acquires, and the
/// system still quiesces to one token / empty copysets and queues.
class BiasedTopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(BiasedTopologyTest, AllWritersAcquireAndQuiesce) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  Net net(8, GetParam(), 11, bias_opts(4), &map);
  for (std::uint32_t i = 0; i < 8; ++i)
    (void)net.engines[i]->request_lock(Mode::kW);
  net.pump();
  for (std::uint32_t i = 0; i < 8; ++i) {
    // Writers are granted one at a time; release as grants land until
    // everyone has held the lock once.
    for (std::uint32_t j = 0; j < 8; ++j) {
      if (net.acquired[j].size() == 1 && !net.engines[j]->holds().empty()) {
        net.engines[j]->unlock(net.acquired[j][0].first);
        net.pump();
      }
    }
  }
  std::size_t tokens = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(net.acquired[i].size(), 1u) << "node " << i;
    tokens += net.engines[i]->is_token_node() ? 1 : 0;
    EXPECT_TRUE(net.engines[i]->holds().empty());
    EXPECT_TRUE(net.engines[i]->queue().empty());
  }
  EXPECT_EQ(tokens, 1u);
}

TEST_P(BiasedTopologyTest, ConcurrentReadersUnaffectedByBias) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  Net net(8, GetParam(), 12, bias_opts(4), &map);
  for (std::uint32_t i = 0; i < 8; ++i) {
    (void)net.engines[i]->request_lock(Mode::kR);
    net.pump();
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_EQ(net.acquired[i].size(), 1u) << "node " << i;
    EXPECT_EQ(net.acquired[i][0].second, Mode::kR);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BiasedTopologyTest,
                         ::testing::Values(Topology::kStar, Topology::kChain,
                                           Topology::kRandomTree),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Topology::kStar: return "star";
                             case Topology::kChain: return "chain";
                             case Topology::kRandomTree: return "random";
                           }
                           return "?";
                         });

/// Sets up the canonical bias scenario on a star: nodes 0-3 are cluster 0,
/// nodes 4-7 cluster 1. Node 7 holds W; a REMOTE writer (node 0) queues
/// first and LOCAL writers 4, 5, 6 queue behind it. Queue merges on token
/// transfer re-sort by Lamport (counter, node), so the rig first ticks each
/// local's clock with a released read: every W request below then carries
/// counter 2, and the remote's lower node id keeps it at the global FIFO
/// head — the position the fairness cap protects.
struct BiasRig {
  BiasRig(EngineOptions opts, const ClusterMap* map)
      : net(8, Topology::kStar, 13, opts, map) {
    for (std::uint32_t i = 4; i <= 6; ++i) {
      (void)net.engines[i]->request_lock(Mode::kR);
      net.pump();
      net.engines[i]->unlock(net.acquired[i][0].first);
      net.pump();
    }
    net.order.clear();
    (void)net.engines[7]->request_lock(Mode::kW);
    net.pump();
    (void)net.engines[0]->request_lock(Mode::kW);  // remote head, stamp (2,0)
    net.pump();
    for (std::uint32_t i = 4; i <= 6; ++i) {  // locals behind it, (2,4..6)
      (void)net.engines[i]->request_lock(Mode::kW);
      net.pump();
    }
  }

  /// Node 7 releases; then every grant is released as it lands until all
  /// five writers have held the lock.
  void drain() {
    net.engines[7]->unlock(net.acquired[7][0].first);
    net.pump();
    for (int guard = 0; guard < 16 && net.order.size() < 5; ++guard) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        if (!net.engines[i]->holds().empty()) {
          net.engines[i]->unlock(net.acquired[i].back().first);
          net.pump();
        }
      }
    }
    ASSERT_EQ(net.order.size(), 5u);
  }

  Net net;
};

TEST(LocalityBias, SameClusterWaitersOvertakeARemoteHead) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  BiasRig rig(bias_opts(4), &map);
  rig.drain();
  // Cap 4 covers all three locals: 7, then 4, 5, 6, then the remote 0.
  EXPECT_EQ(rig.net.order,
            (std::vector<std::uint32_t>{7, 4, 5, 6, 0}));
}

TEST(LocalityBias, FairnessCapBoundsRemoteWaiterBypass) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  BiasRig rig(bias_opts(2), &map);
  rig.drain();
  // The remote head may be bypassed at most twice — even though the token
  // moves 7 -> 4 -> 5 inside the cluster, the streak rides the token, so
  // node 5 must serve the remote before local 6.
  EXPECT_EQ(rig.net.order,
            (std::vector<std::uint32_t>{7, 4, 5, 0, 6}));
}

TEST(LocalityBias, StrictFifoWithoutBias) {
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  BiasRig rig(EngineOptions{}, &map);
  rig.drain();
  EXPECT_EQ(rig.net.order,
            (std::vector<std::uint32_t>{7, 0, 4, 5, 6}));
}

TEST(LocalityBias, InertWithoutAClusterMap) {
  // bias on, no map installed: strict FIFO, exactly as today.
  BiasRig plain(bias_opts(4), nullptr);
  plain.drain();
  EXPECT_EQ(plain.net.order,
            (std::vector<std::uint32_t>{7, 0, 4, 5, 6}));
}

TEST(LocalityBias, ReadersBatchWithARemoteWriterWaiting) {
  // Local readers are compatible with each other: with the token at node 0
  // and a remote W queued ahead of local Rs, the bias serves the local
  // readers (copy grants) before handing the token across the boundary.
  const ClusterMap map = ClusterMap::make(8, 2, ClusterPlacement::kBlock);
  Net net(8, Topology::kStar, 14, bias_opts(4), &map);
  (void)net.engines[0]->request_lock(Mode::kW);
  net.pump();
  (void)net.engines[4]->request_lock(Mode::kW);
  net.pump();
  (void)net.engines[1]->request_lock(Mode::kR);
  (void)net.engines[2]->request_lock(Mode::kR);
  net.pump();
  net.engines[0]->unlock(net.acquired[0][0].first);
  net.pump();
  // Readers 1 and 2 overtake the remote writer (2 bypasses <= cap 4).
  ASSERT_EQ(net.acquired[1].size(), 1u);
  ASSERT_EQ(net.acquired[2].size(), 1u);
  EXPECT_TRUE(net.acquired[4].empty());
  net.engines[1]->unlock(net.acquired[1][0].first);
  net.engines[2]->unlock(net.acquired[2][0].first);
  net.pump();
  ASSERT_EQ(net.acquired[4].size(), 1u);
  net.engines[4]->unlock(net.acquired[4][0].first);
  net.pump();
}

TEST(Topology, ChainCostsMoreMessagesThanStarInitially) {
  Net star(8, Topology::kStar, 6);
  Net chain(8, Topology::kChain, 6);
  (void)star.engines[7]->request_lock(Mode::kW);
  star.pump();
  (void)chain.engines[7]->request_lock(Mode::kW);
  chain.pump();
  // The chain request is relayed through six intermediates.
  EXPECT_GT(chain.bus.total_sent(), star.bus.total_sent());
  star.engines[7]->unlock(star.acquired[7][0].first);
  chain.engines[7]->unlock(chain.acquired[7][0].first);
}

}  // namespace
}  // namespace hlock::core
