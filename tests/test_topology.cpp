// Initial-topology tests: the protocol must behave identically (same
// safety, same quiescence) from star, chain and random-tree seedings —
// only message counts differ. Exercises the initial_parent plumbing the
// paper's Figure 1 topologies need.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

enum class Topology { kStar, kChain, kRandomTree };

struct Net {
  Net(std::size_t n, Topology topology, std::uint64_t seed) {
    Rng rng(seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      NodeId parent = NodeId::invalid();
      if (i != 0) {
        switch (topology) {
          case Topology::kStar: break;  // default: point at the root
          case Topology::kChain: parent = NodeId{i - 1}; break;
          case Topology::kRandomTree:
            parent = NodeId{static_cast<std::uint32_t>(rng.next_below(i))};
            break;
        }
      }
      const NodeId id{i};
      EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode mode) {
        acquired[i].emplace_back(rid, mode);
      };
      engines.push_back(std::make_unique<HlsEngine>(
          LockId{0}, id, NodeId{0}, bus.port(id), EngineOptions{},
          std::move(cbs), parent));
      HlsEngine* raw = engines.back().get();
      bus.register_handler(id, [raw](const Message& m) { raw->handle(m); });
    }
  }

  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  std::map<std::uint32_t, std::vector<std::pair<RequestId, Mode>>> acquired;
};

class TopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologyTest, DeepestNodeAcquiresThroughTheWholePath) {
  Net net(8, GetParam(), 3);
  (void)net.engines[7]->request_lock(Mode::kW);
  net.pump();
  ASSERT_EQ(net.acquired[7].size(), 1u);
  EXPECT_TRUE(net.engines[7]->is_token_node());
  net.engines[7]->unlock(net.acquired[7][0].first);
  net.pump();
}

TEST_P(TopologyTest, ConcurrentReadersFromEveryNode) {
  Net net(8, GetParam(), 4);
  (void)net.engines[0]->request_lock(Mode::kR);
  for (std::uint32_t i = 1; i < 8; ++i) {
    (void)net.engines[i]->request_lock(Mode::kR);
    net.pump();
  }
  net.pump();
  // Everyone holds R concurrently.
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_EQ(net.acquired[i].size(), 1u) << "node " << i;
    EXPECT_EQ(net.acquired[i][0].second, Mode::kR);
  }
  // Release all; system must quiesce with one token and empty copysets.
  for (std::uint32_t i = 0; i < 8; ++i) {
    net.engines[i]->unlock(net.acquired[i][0].first);
    net.pump();
  }
  std::size_t tokens = 0;
  for (const auto& e : net.engines) {
    tokens += e->is_token_node() ? 1 : 0;
    EXPECT_TRUE(e->holds().empty());
    EXPECT_TRUE(e->children().empty());
    EXPECT_TRUE(e->queue().empty());
  }
  EXPECT_EQ(tokens, 1u);
}

TEST_P(TopologyTest, PathCompressionAmortizesAcrossRounds) {
  Net net(8, GetParam(), 5);
  auto round = [&]() -> std::uint64_t {
    const auto before = net.bus.total_sent();
    for (std::uint32_t i = 0; i < 8; ++i) {
      (void)net.engines[i]->request_lock(Mode::kW);
      net.pump();
      auto& log = net.acquired[i];
      net.engines[i]->unlock(log.back().first);
      net.pump();
    }
    return net.bus.total_sent() - before;
  };
  (void)round();  // warm-up: tree reshapes from the seeded topology
  const auto second = round();
  const auto third = round();
  // Unlike Naimi, this protocol does not reverse paths on forwards:
  // rotating exclusive writers is its worst case and costs O(n) messages
  // per request. The cost must, however, reach a steady state (the tree
  // reshape is stable) and stay linear in n.
  EXPECT_EQ(second, third);
  EXPECT_LE(third, 8u * (8u + 2u));
  // The real compression benefit: a node RE-acquiring right after its
  // own release pays nothing (it still owns nothing... the token moved)
  // — the cheap path is the token holder's, which is message-free.
  const auto before = net.bus.total_sent();
  for (int k = 0; k < 5; ++k) {
    (void)net.engines[7]->request_lock(Mode::kW);
    net.pump();
    net.engines[7]->unlock(net.acquired[7].back().first);
    net.pump();
  }
  // Node 7 ended the last round as the token holder: five more W cycles
  // from it are free.
  EXPECT_EQ(net.bus.total_sent(), before);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyTest,
                         ::testing::Values(Topology::kStar, Topology::kChain,
                                           Topology::kRandomTree),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Topology::kStar: return "star";
                             case Topology::kChain: return "chain";
                             case Topology::kRandomTree: return "random";
                           }
                           return "?";
                         });

TEST(Topology, SelfParentRejected) {
  testing::TestBus bus;
  EXPECT_THROW(HlsEngine(LockId{0}, NodeId{1}, NodeId{0}, bus.port(NodeId{1}),
                         EngineOptions{}, EngineCallbacks{}, NodeId{1}),
               std::invalid_argument);
}

TEST(Topology, ChainCostsMoreMessagesThanStarInitially) {
  Net star(8, Topology::kStar, 6);
  Net chain(8, Topology::kChain, 6);
  (void)star.engines[7]->request_lock(Mode::kW);
  star.pump();
  (void)chain.engines[7]->request_lock(Mode::kW);
  chain.pump();
  // The chain request is relayed through six intermediates.
  EXPECT_GT(chain.bus.total_sent(), star.bus.total_sent());
  star.engines[7]->unlock(star.acquired[7][0].first);
  chain.engines[7]->unlock(chain.acquired[7][0].first);
}

}  // namespace
}  // namespace hlock::core
