// Bit-reproducibility of the simulator: the same seed must yield the same
// message counts, wire bytes, per-kind breakdown, and final virtual time —
// run-to-run within a build (Determinism.*) and across builds against
// constants recorded from the seed revision (SeedRegression.*). The
// regression half is the guard rail for hot-path optimizations: any
// allocation or ordering change that alters behavior trips it.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace hlock {
namespace {

using harness::ClusterConfig;
using harness::ExperimentResult;
using harness::HlsCluster;
using harness::NaimiCluster;

ClusterConfig fig5_config() {
  ClusterConfig config;
  config.nodes = 24;
  config.spec.ops_per_node = 40;
  return config;  // default fig5 workload mix, default seed
}

template <typename Cluster, typename... Extra>
ExperimentResult run_once(const ClusterConfig& config, Extra... extra) {
  Cluster cluster(config, extra...);
  cluster.run();
  return cluster.result();
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.lock_requests, b.lock_requests);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.messages_by_kind.all(), b.messages_by_kind.all());
}

TEST(Determinism, HlsSameSeedSameRun) {
  const ClusterConfig config = fig5_config();
  expect_identical(run_once<HlsCluster>(config), run_once<HlsCluster>(config));
}

TEST(Determinism, NaimiSameSeedSameRun) {
  const ClusterConfig config = fig5_config();
  expect_identical(run_once<NaimiCluster>(config, true),
                   run_once<NaimiCluster>(config, true));
}

TEST(Determinism, DifferentSeedsDiverge) {
  ClusterConfig config = fig5_config();
  const ExperimentResult a = run_once<HlsCluster>(config);
  config.spec.seed ^= 1;
  const ExperimentResult b = run_once<HlsCluster>(config);
  // Virtual time depends on every sampled latency; a one-bit seed change
  // must perturb it (equal counts could coincide, time practically cannot).
  EXPECT_NE(a.virtual_end, b.virtual_end);
}

// Constants recorded from the seed build (pre-optimization revision) at
// n=24, ops_per_node=40, default seed. A mismatch means an "optimization"
// changed observable behavior, not just speed.
TEST(SeedRegression, HlsFig5Counts) {
  const ExperimentResult r = run_once<HlsCluster>(fig5_config());
  EXPECT_EQ(r.messages, 5151u);
  EXPECT_EQ(r.wire_bytes, 322985u);
  EXPECT_EQ(r.virtual_end, 86894413);
  EXPECT_EQ(r.messages_by_kind.get("request"), 2252u);
  EXPECT_EQ(r.messages_by_kind.get("grant"), 778u);
  EXPECT_EQ(r.messages_by_kind.get("token"), 609u);
  EXPECT_EQ(r.messages_by_kind.get("release"), 839u);
  EXPECT_EQ(r.messages_by_kind.get("freeze"), 673u);
}

TEST(SeedRegression, NaimiFig5Counts) {
  const ExperimentResult r = run_once<NaimiCluster>(fig5_config(), true);
  EXPECT_EQ(r.messages, 3533u);
  EXPECT_EQ(r.wire_bytes, 208447u);
  EXPECT_EQ(r.virtual_end, 157215059);
  EXPECT_EQ(r.messages_by_kind.get("naimi_request"), 2573u);
  EXPECT_EQ(r.messages_by_kind.get("naimi_token"), 960u);
}

}  // namespace
}  // namespace hlock
