// Protocol-engine unit tests with a manually pumped bus: each test pins a
// specific rule of the paper (or a race the operational specification has
// to resolve) at the message level.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

NodeId id_of(char c) { return NodeId{static_cast<std::uint32_t>(c - 'A')}; }

/// Small fixture: named engines over a TestBus, with acquisition records.
struct Net {
  HlsEngine& add(char name, char root, EngineOptions opts = {},
                 char parent = '\0') {
    EngineCallbacks cbs;
    cbs.on_acquired = [this, name](RequestId id, Mode mode) {
      acquired[name].emplace_back(id, mode);
    };
    cbs.on_upgraded = [this, name](RequestId id) {
      upgraded[name].push_back(id);
    };
    auto engine = std::make_unique<HlsEngine>(
        LockId{0}, id_of(name), id_of(root), bus.port(id_of(name)), opts,
        std::move(cbs),
        parent == '\0' ? NodeId::invalid() : id_of(parent));
    HlsEngine* raw = engine.get();
    bus.register_handler(id_of(name),
                         [raw](const Message& m) { raw->handle(m); });
    engines[name] = std::move(engine);
    return *raw;
  }

  HlsEngine& operator[](char c) { return *engines.at(c); }
  void pump() { bus.deliver_all(); }

  testing::TestBus bus;
  std::map<char, std::unique_ptr<HlsEngine>> engines;
  std::map<char, std::vector<std::pair<RequestId, Mode>>> acquired;
  std::map<char, std::vector<RequestId>> upgraded;
};

// ------------------------------------------------------------- basics --

TEST(HlsEngine, TokenNodeSelfAcquiresEveryModeWithoutMessages) {
  for (const Mode m : kRealModes) {
    Net net;
    net.add('A', 'A');
    const RequestId id = net['A'].request_lock(m);
    EXPECT_EQ(net.acquired['A'].size(), 1u);
    EXPECT_EQ(net.acquired['A'][0].second, m);
    EXPECT_EQ(net.bus.total_sent(), 0u);
    net['A'].unlock(id);
    EXPECT_EQ(net.bus.total_sent(), 0u);
  }
}

TEST(HlsEngine, RemoteRequestCostsRequestPlusGrant) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  (void)net['B'].request_lock(Mode::kIR);
  net.pump();
  EXPECT_EQ(net.acquired['B'].size(), 1u);
  EXPECT_EQ(net.bus.sent(MsgKind::kRequest), 1u);
  // IR is weaker than nothing-held root: ∅ < IR means token transfer.
  EXPECT_EQ(net.bus.sent(MsgKind::kToken), 1u);
  EXPECT_TRUE(net['B'].is_token_node());
}

TEST(HlsEngine, CopyGrantWhenRootHoldsEqualMode) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  EXPECT_EQ(net.bus.sent(MsgKind::kGrant), 1u);
  EXPECT_EQ(net.bus.sent(MsgKind::kToken), 0u);
  EXPECT_TRUE(net['A'].is_token_node());
  EXPECT_EQ(net['A'].children().at(id_of('B')), Mode::kR);
  EXPECT_EQ(net['B'].parent(), id_of('A'));
  net['A'].unlock(ra);
}

TEST(HlsEngine, Rule2LocalAcquireUnderOwnedMode) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  const auto sent_before = net.bus.total_sent();
  // B owns R (it took the token): IR is weaker and compatible -> local.
  (void)net['B'].request_lock(Mode::kIR);
  EXPECT_EQ(net.acquired['B'].size(), 2u);
  EXPECT_EQ(net.bus.total_sent(), sent_before);
}

TEST(HlsEngine, Rule2IncompatibleOwnModeGoesRemote) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);  // root holds R
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  // B holds R (copy). Requesting IW is incompatible with its own owned R:
  // must go remote (and queue at the root until R drains).
  (void)net['B'].request_lock(Mode::kIW);
  net.pump();
  EXPECT_EQ(net.acquired['B'].size(), 1u);  // not granted yet
  EXPECT_TRUE(net['B'].has_pending());
  // Release both R holds: the queued IW must come through.
  net['A'].unlock(ra);
  net.pump();
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  EXPECT_EQ(net.acquired['B'].size(), 2u);
  EXPECT_EQ(net.acquired['B'][1].second, Mode::kIW);
}

// ------------------------------------------------- Rule 3.1 child grants --

TEST(HlsEngine, ChildGrantsWeakerCompatibleRequest) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', {}, 'B');  // C's probable owner is B
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  const auto requests_before = net.bus.sent(MsgKind::kRequest);
  (void)net['C'].request_lock(Mode::kIR);
  net.pump();
  // B granted it directly: exactly one request hop, no traffic to A.
  EXPECT_EQ(net.bus.sent(MsgKind::kRequest), requests_before + 1);
  EXPECT_EQ(net['B'].children().at(id_of('C')), Mode::kIR);
  EXPECT_EQ(net['C'].parent(), id_of('B'));
  EXPECT_EQ(net.acquired['C'].size(), 1u);
  net['A'].unlock(ra);
}

TEST(HlsEngine, ChildGrantDisabledForwardsToRoot) {
  EngineOptions opts;
  opts.allow_child_grants = false;
  Net net;
  net.add('A', 'A', opts);
  net.add('B', 'A', opts);
  net.add('C', 'A', opts, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);
  net.pump();
  // C's request forwarded B -> A; the grant comes from the root.
  EXPECT_EQ(net['C'].parent(), id_of('A'));
  EXPECT_TRUE(net['A'].children().count(id_of('C')) == 1);
  EXPECT_EQ(net['B'].children().count(id_of('C')), 0u);
  net['A'].unlock(ra);
}

TEST(HlsEngine, ChildNeverGrantsStrongerMode) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', {}, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kU);
  (void)net['B'].request_lock(Mode::kIR);
  net.pump();
  // B owns IR; C asks for R (stronger): B must forward, the root (owning
  // U, compatible with R) grants the copy.
  (void)net['C'].request_lock(Mode::kR);
  net.pump();
  EXPECT_EQ(net['C'].parent(), id_of('A'));
  EXPECT_EQ(net.acquired['C'].size(), 1u);
  net['A'].unlock(ra);
}

// ------------------------------------------- Table 2(a) local queueing --

TEST(HlsEngine, PendingNodeQueuesEqualModeAndServesAfterGrant) {
  // The Figure 2 race as a unit test: D's R reaches B while B's own R
  // request is in transit; B queues it (Table 2(a) row R) and grants it
  // itself once its grant arrives.
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('D', 'A', {}, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);     // in transit
  (void)net['D'].request_lock(Mode::kR);     // reaches B first
  ASSERT_EQ(net.bus.pending(), 2u);
  net.bus.deliver_at(1);  // D's request to B: queued
  EXPECT_EQ(net['B'].queue().size(), 1u);
  net.pump();  // B's request to A, grant back, B grants D
  EXPECT_EQ(net.acquired['B'].size(), 1u);
  EXPECT_EQ(net.acquired['D'].size(), 1u);
  EXPECT_EQ(net['D'].parent(), id_of('B'));
  EXPECT_EQ(net.bus.sent(MsgKind::kGrant), 2u);  // A->B and B->D
  net['A'].unlock(ra);
}

TEST(HlsEngine, PendingNodeForwardsNonQueueableMode) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('D', 'A', {}, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  (void)net['D'].request_lock(Mode::kIR);  // row R, col IR -> forward
  net.bus.deliver_at(1);                   // D's request reaches B
  EXPECT_EQ(net['B'].queue().size(), 0u);  // forwarded, not queued
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 1u);
  EXPECT_EQ(net['D'].parent(), id_of('A'));  // granted by the root
  net['A'].unlock(ra);
}

TEST(HlsEngine, LocalQueuesDisabledAlwaysForward) {
  EngineOptions opts;
  opts.allow_local_queues = false;
  Net net;
  net.add('A', 'A', opts);
  net.add('B', 'A', opts);
  net.add('D', 'A', opts, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  (void)net['D'].request_lock(Mode::kR);
  net.bus.deliver_at(1);
  EXPECT_EQ(net['B'].queue().size(), 0u);  // would queue per Table 2(a)
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 1u);
  net['A'].unlock(ra);
}

// ------------------------------------------------------- Rule 6 freeze --

TEST(HlsEngine, QueuedIncompatibleRequestFreezesTokenAndChildren) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('D', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kIW);
  (void)net['B'].request_lock(Mode::kIW);
  net.pump();
  (void)net['D'].request_lock(Mode::kR);
  net.pump();
  // Table 2(b): owned IW, queued R -> freeze {IW}; B is a potential
  // granter of IW and must have been notified.
  EXPECT_TRUE(net['A'].frozen().contains(Mode::kIW));
  EXPECT_TRUE(net['B'].frozen().contains(Mode::kIW));
  EXPECT_GE(net.bus.sent(MsgKind::kFreeze), 1u);

  // A frozen child refuses to grant even a compatible weaker mode it owns.
  Net probe;  // (separate check below uses the same cluster instead)
  (void)probe;
  const auto grants_before = net.bus.sent(MsgKind::kGrant);
  net.add('E', 'A', {}, 'B');
  (void)net['E'].request_lock(Mode::kIW);  // B owns IW but IW is frozen
  net.bus.deliver_one();                   // E's request at B
  EXPECT_EQ(net.bus.sent(MsgKind::kGrant), grants_before);  // no grant
  net.pump();

  // Releases drain IW; D's R must be served and modes unfrozen.
  net['A'].unlock(ra);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 1u);
  // E's IW eventually comes through too (it queued behind / was forwarded).
  net['E'].holds().empty()
      ? (void)0
      : net['E'].unlock(net.acquired['E'][0].first);
}

TEST(HlsEngine, FreezeDisabledAllowsBypass) {
  EngineOptions opts;
  opts.enable_freezing = false;
  Net net;
  net.add('A', 'A', opts);
  net.add('B', 'A', opts);
  net.add('D', 'A', opts);
  const RequestId ra = net['A'].request_lock(Mode::kIW);
  (void)net['D'].request_lock(Mode::kR);  // queued, no freezing
  net.pump();
  EXPECT_TRUE(net['A'].frozen().empty());
  // A new IW request bypasses the queued R (the unfairness the paper's
  // freezing prevents).
  (void)net['B'].request_lock(Mode::kIW);
  net.pump();
  EXPECT_EQ(net.acquired['B'].size(), 1u);
  EXPECT_EQ(net.acquired['D'].size(), 0u);
  net['A'].unlock(ra);
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 1u);
}

TEST(HlsEngine, FreezeBlocksRule2LocalAcquire) {
  Net net;
  net.add('A', 'A');
  net.add('D', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kIW);
  (void)net['D'].request_lock(Mode::kR);
  net.pump();
  ASSERT_TRUE(net['A'].frozen().contains(Mode::kIW));
  // The token node owns IW and would normally self-acquire IW silently;
  // frozen IW forces it into the queue behind D's R.
  (void)net['A'].request_lock(Mode::kIW);
  EXPECT_EQ(net.acquired['A'].size(), 1u);  // only the original hold
  EXPECT_TRUE(net['A'].has_pending());
  net['A'].unlock(ra);
  net.pump();
  // D first (FIFO), then A's queued IW after D releases.
  EXPECT_EQ(net.acquired['D'].size(), 1u);
  net['D'].unlock(net.acquired['D'][0].first);
  net.pump();
  EXPECT_EQ(net.acquired['A'].size(), 2u);
}

// ------------------------------------------------------ Rule 7 upgrade --

TEST(HlsEngine, UpgradeImmediateWhenAlone) {
  Net net;
  net.add('A', 'A');
  const RequestId id = net['A'].request_lock(Mode::kU);
  net['A'].upgrade(id);
  ASSERT_EQ(net.upgraded['A'].size(), 1u);
  EXPECT_EQ(net['A'].holds().at(id), Mode::kW);
  EXPECT_EQ(net.bus.total_sent(), 0u);
  net['A'].unlock(id);
}

TEST(HlsEngine, UpgradeWaitsForCompatibleReader) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ua = net['A'].request_lock(Mode::kU);
  (void)net['B'].request_lock(Mode::kR);  // R compatible with U
  net.pump();
  net['A'].upgrade(ua);
  net.pump();
  EXPECT_TRUE(net.upgraded['A'].empty());  // blocked on B's R
  net['B'].unlock(net.acquired['B'][0].first);
  net.pump();
  ASSERT_EQ(net.upgraded['A'].size(), 1u);
  EXPECT_EQ(net['A'].holds().at(ua), Mode::kW);
  net['A'].unlock(ua);
}

TEST(HlsEngine, RemoteUpgraderReceivesToken) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  (void)net['B'].request_lock(Mode::kU);
  net.pump();
  // B held U via token transfer (∅ < U). Move the token back to A first so
  // the upgrade has to travel: A requests IR; U vs IR are compatible...
  // U is the stronger mode, so A gets a copy and B keeps the token. Make
  // B a non-token U holder instead by bouncing the token through A with W.
  net['B'].unlock(net.acquired['B'][0].first);
  const RequestId wa = net['A'].request_lock(Mode::kW);
  net.pump();
  ASSERT_TRUE(net['A'].is_token_node());
  net['A'].unlock(wa);
  // Now B asks U -> token moves to B? ∅ < U yes. To get a NON-token U
  // holder, A must hold something weaker first: A holds IR, B requests U:
  // compatible(IR, U) and IR < U -> token transfer with sender_owned=IR.
  const RequestId ia = net['A'].request_lock(Mode::kIR);
  const RequestId ub = net['B'].request_lock(Mode::kU);
  net.pump();
  ASSERT_TRUE(net['B'].is_token_node());
  ASSERT_FALSE(net['A'].is_token_node());
  // B upgrades while A still holds IR: IR is incompatible with W, so the
  // upgrade waits for A's release.
  net['B'].upgrade(ub);
  net.pump();
  EXPECT_TRUE(net.upgraded['B'].empty());
  net['A'].unlock(ia);
  net.pump();
  ASSERT_EQ(net.upgraded['B'].size(), 1u);
  EXPECT_EQ(net['B'].holds().at(ub), Mode::kW);
  net['B'].unlock(ub);
}

TEST(HlsEngine, NonTokenUpgraderSendsUpgradeRequest) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  // A holds W (token stays), B gets U copy later: W incompatible -> B's U
  // waits; instead: A holds IR and keeps token? IR < U transfers. To pin
  // the token at A, A holds U itself... then B can't get U. Use R: A holds
  // R + token; B requests... R < U transfers again. The protocol always
  // moves the token to the strongest holder, so a non-token U holder only
  // arises when the token moved on: B holds U as token node, C takes W
  // after B's release... Simplest realistic scenario: B holds U as token
  // node, A holds IR as B's child, B upgrades (tested above). Here we pin
  // B's upgrade REQUEST path: B holds U, token at B, C requests W and is
  // queued; B's upgrade must still win (Rule 7 priority).
  net.add('C', 'A');
  (void)net['B'].request_lock(Mode::kU);
  net.pump();
  ASSERT_TRUE(net['B'].is_token_node());
  (void)net['C'].request_lock(Mode::kW);
  net.pump();
  EXPECT_EQ(net['B'].queue().size(), 1u);  // C's W waits for the U
  const RequestId ub = net.acquired['B'][0].first;
  net['B'].upgrade(ub);
  net.pump();
  // The upgrade jumped the queue (deadlock avoidance).
  ASSERT_EQ(net.upgraded['B'].size(), 1u);
  EXPECT_EQ(net.acquired['C'].size(), 0u);
  net['B'].unlock(ub);
  net.pump();
  EXPECT_EQ(net.acquired['C'].size(), 1u);
}

// ------------------------------------------------ releases and parents --

TEST(HlsEngine, LazyReleaseAbsorbedWhenOwnedUnchanged) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', {}, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId rb = net['B'].request_lock(Mode::kIR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);  // B grants, becomes C's parent
  net.pump();
  const auto releases_before = net.bus.sent(MsgKind::kRelease);
  net['B'].unlock(rb);  // still owns IR through C
  EXPECT_EQ(net.bus.sent(MsgKind::kRelease), releases_before);  // absorbed
  net['A'].unlock(ra);
}

TEST(HlsEngine, EagerReleaseAlwaysNotifies) {
  EngineOptions opts;
  opts.lazy_release = false;
  Net net;
  net.add('A', 'A', opts);
  net.add('B', 'A', opts);
  net.add('C', 'A', opts, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  const RequestId rb = net['B'].request_lock(Mode::kIR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);
  net.pump();
  const auto releases_before = net.bus.sent(MsgKind::kRelease);
  net['B'].unlock(rb);  // owned unchanged, but eager mode reports anyway
  EXPECT_GT(net.bus.sent(MsgKind::kRelease), releases_before);
  net.pump();
  net['A'].unlock(ra);
}

TEST(HlsEngine, StaleReleaseCrossingGrantIsDropped) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kIR);
  net.pump();
  ASSERT_EQ(net['A'].children().at(id_of('B')), Mode::kIR);

  // B releases (Release ∅ leaves, not yet delivered) and immediately
  // re-requests R; A processes the REQUEST first if we reorder — but the
  // channel is FIFO, so instead simulate the documented race: A grants a
  // SECOND mode while B's release from the first is in flight.
  net['B'].unlock(net.acquired['B'][0].first);  // Release(∅) in flight
  (void)net['B'].request_lock(Mode::kR);        // Request(R) behind it
  ASSERT_EQ(net.bus.pending(), 2u);
  // Deliver the request BEFORE the release: this is exactly the crossing
  // the grant_seq mechanism must survive (the release is stale relative
  // to the new grant A will issue).
  net.bus.deliver_at(1);                      // request R -> A grants
  ASSERT_EQ(net['A'].children().at(id_of('B')), Mode::kR);
  net.bus.deliver_at(0);                      // stale release arrives late
  // The stale release must NOT erase the new R registration.
  ASSERT_EQ(net['A'].children().count(id_of('B')), 1u);
  EXPECT_EQ(net['A'].children().at(id_of('B')), Mode::kR);
  net.pump();
  net['A'].unlock(ra);
}

TEST(HlsEngine, ReparentDetachesFromOldParent) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A', {}, 'B');
  const RequestId ra = net['A'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kR);
  net.pump();
  (void)net['C'].request_lock(Mode::kIR);  // granted by B
  net.pump();
  ASSERT_EQ(net['B'].children().count(id_of('C')), 1u);
  // C asks for R: B cannot grant (owned R not > R? grantable, actually R
  // >= R and compatible — so pick U which B cannot grant).
  (void)net['C'].request_lock(Mode::kU);
  net.pump();
  // The root served C (token transfer: R < U). C must have detached from
  // B; B's copyset may no longer carry a stale C entry.
  EXPECT_EQ(net['B'].children().count(id_of('C')), 0u);
  net['A'].unlock(ra);
}

// ------------------------------------------------- queue ships w/ token --

TEST(HlsEngine, TokenTransferShipsQueueAndNewRootServesIt) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  net.add('C', 'A');
  net.add('D', 'A');
  const RequestId ra = net['A'].request_lock(Mode::kIR);
  // C and D request W and R: W is incompatible with IR -> queued at A.
  (void)net['C'].request_lock(Mode::kW);
  net.pump();
  EXPECT_EQ(net['A'].queue().size(), 1u);
  (void)net['D'].request_lock(Mode::kR);  // frozen (IR,W freezes R) -> queued
  net.pump();
  EXPECT_EQ(net['A'].queue().size(), 2u);
  // A releases: tokenable(∅, W) -> token to C WITH the remaining queue.
  net['A'].unlock(ra);
  net.pump();
  ASSERT_EQ(net.acquired['C'].size(), 1u);
  EXPECT_TRUE(net['C'].is_token_node());
  EXPECT_EQ(net['C'].queue().size(), 1u);  // D's R traveled along
  net['C'].unlock(net.acquired['C'][0].first);
  net.pump();
  EXPECT_EQ(net.acquired['D'].size(), 1u);
}

// ------------------------------------------------------ misc API paths --

TEST(HlsEngine, TryRequestLockOnlySucceedsLocally) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  EXPECT_TRUE(net['A'].try_request_lock(Mode::kW).has_value());
  EXPECT_FALSE(net['B'].try_request_lock(Mode::kIR).has_value());
  EXPECT_EQ(net.bus.total_sent(), 0u);
}

TEST(HlsEngine, DowngradeWeakensAndPropagates) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  (void)net['B'].request_lock(Mode::kW);
  net.pump();
  const RequestId wb = net.acquired['B'][0].first;
  ASSERT_TRUE(net['B'].is_token_node());
  net['B'].downgrade(wb, Mode::kR);
  EXPECT_EQ(net['B'].holds().at(wb), Mode::kR);
  // A reader elsewhere can now share.
  (void)net['A'].request_lock(Mode::kR);
  net.pump();
  EXPECT_EQ(net.acquired['A'].size(), 1u);
  EXPECT_THROW(net['B'].downgrade(wb, Mode::kW), std::logic_error);
}

TEST(HlsEngine, ApiMisuseThrows) {
  Net net;
  net.add('A', 'A');
  EXPECT_THROW(net['A'].request_lock(Mode::kNone), std::invalid_argument);
  const RequestId id = net['A'].request_lock(Mode::kR);
  EXPECT_THROW(net['A'].upgrade(id), std::logic_error);  // not a U hold
  net['A'].unlock(id);
  EXPECT_THROW(net['A'].unlock(id), std::logic_error);  // double unlock
  Message wrong;
  wrong.lock = LockId{99};
  EXPECT_THROW(net['A'].handle(wrong), std::logic_error);
}

TEST(HlsEngine, BacklogServesLocalRequestsInIssueOrder) {
  Net net;
  net.add('A', 'A');
  net.add('B', 'A');
  // B issues three requests back to back; they must come through in order.
  (void)net['B'].request_lock(Mode::kIR);
  (void)net['B'].request_lock(Mode::kR);
  (void)net['B'].request_lock(Mode::kIR);
  EXPECT_EQ(net['B'].backlog_size(), 2u);
  net.pump();
  ASSERT_EQ(net.acquired['B'].size(), 3u);
  EXPECT_EQ(net.acquired['B'][0].second, Mode::kIR);
  EXPECT_EQ(net.acquired['B'][1].second, Mode::kR);
  EXPECT_EQ(net.acquired['B'][2].second, Mode::kIR);
}

}  // namespace
}  // namespace hlock::core
