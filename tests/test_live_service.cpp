// Tests for the batched/pipelined transport layer and the client session
// multiplexer: wire-format v2 (piggybacked acks, hello epochs) including
// backward compatibility with v1 streams, frame coalescing counters,
// piggybacked-ack equivalence with the standalone-ack baseline, restart
// detection via hello epochs, and SessionMux traffic over live sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/hls_node.hpp"
#include "lockmgr/resource.hpp"
#include "lockmgr/session_mux.hpp"
#include "net/cluster.hpp"
#include "net/framing.hpp"
#include "net/tcp_node.hpp"

namespace hlock::net {
namespace {

TcpConfig fast_cfg() {
  TcpConfig c;
  c.reconnect_min = msec(5);
  c.reconnect_max = msec(100);
  c.heartbeat_interval = msec(50);
  c.idle_timeout = msec(400);
  c.max_batch_bytes = 0;  // tests opt in to coalescing explicitly
  return c;
}

Message sample_message(std::uint32_t lock) {
  Message m;
  m.kind = MsgKind::kRequest;
  m.lock = LockId{lock};
  m.req.requester = NodeId{7};
  m.req.mode = Mode::kIW;
  m.req.stamp = LamportStamp{42, NodeId{7}};
  return m;
}

bool spin_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Hand-driven blocking socket speaking the wire protocol at a TcpNode.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_{-1};
};

/// Per-lock-id delivery counts: asserts exactly-once across churn.
struct DeliveryLog {
  std::mutex mu;
  std::map<std::uint64_t, int> counts;
  std::size_t total{0};

  std::function<void(const Message&)> handler() {
    return [this](const Message& m) {
      const std::lock_guard<std::mutex> g(mu);
      ++counts[m.lock.value];
      ++total;
    };
  }
  std::size_t size() {
    const std::lock_guard<std::mutex> g(mu);
    return total;
  }
  bool exactly_once(std::size_t expected) {
    const std::lock_guard<std::mutex> g(mu);
    if (counts.size() != expected || total != expected) return false;
    for (const auto& [key, n] : counts) {
      if (n != 1) return false;
    }
    return true;
  }
};

// --- wire format v2: the piggybacked ack field --------------------------

TEST(LiveService, FrameCarriesSeqAndPiggybackedAck) {
  const Message m = sample_message(9);
  const auto bytes = frame(m, /*seq=*/17, /*ack=*/12);
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  DecodedFrame f;
  ASSERT_TRUE(d.next_frame(f));
  EXPECT_FALSE(f.control);
  EXPECT_EQ(f.seq, 17u);
  EXPECT_TRUE(f.has_ack);
  EXPECT_EQ(f.ack_seq, 12u);
  EXPECT_EQ(f.msg.lock, LockId{9});
  EXPECT_FALSE(d.next_frame(f));
}

TEST(LiveService, AckZeroMeansNoInformation) {
  const auto bytes = frame(sample_message(1), /*seq=*/1, /*ack=*/0);
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  DecodedFrame f;
  ASSERT_TRUE(d.next_frame(f));
  EXPECT_TRUE(f.has_ack);
  EXPECT_EQ(f.ack_seq, 0u) << "ack 0 must survive as 'no info', not garbage";
}

TEST(LiveService, AckFieldIsStampableInPlace) {
  // TcpNode stamps the cumulative ack into already-encoded frames at
  // kAckFieldOffset; the decoder must read back exactly what was stamped.
  auto bytes = frame(sample_message(2), /*seq=*/3, /*ack=*/0);
  ASSERT_GE(bytes.size(), kAckFieldOffset + 8);
  const std::uint64_t ack = 0x0123'4567'89ab'cdefULL;
  for (int i = 0; i < 8; ++i)
    bytes[kAckFieldOffset + i] = static_cast<std::uint8_t>(ack >> (8 * i));
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  DecodedFrame f;
  ASSERT_TRUE(d.next_frame(f));
  EXPECT_EQ(f.ack_seq, ack);
  EXPECT_EQ(f.msg.lock, LockId{2}) << "stamping must not corrupt the payload";
}

TEST(LiveService, LegacyV1DataFrameStillDecodes) {
  // Build a v1 frame by hand from a v2 one: drop the 8-byte ack field and
  // rewrite the prefix without kAckFlagBit. Old-build peers emit exactly
  // this layout.
  const auto v2 = frame(sample_message(5), /*seq=*/4);
  std::vector<std::uint8_t> v1;
  v1.reserve(v2.size());
  const std::uint32_t v2_prefix = static_cast<std::uint32_t>(v2[0]) |
                                  (static_cast<std::uint32_t>(v2[1]) << 8) |
                                  (static_cast<std::uint32_t>(v2[2]) << 16) |
                                  (static_cast<std::uint32_t>(v2[3]) << 24);
  ASSERT_NE(v2_prefix & kAckFlagBit, 0u) << "encoder should emit v2";
  const std::uint32_t v1_len = (v2_prefix & kLengthMask) - 8;
  for (int i = 0; i < 4; ++i)
    v1.push_back(static_cast<std::uint8_t>(v1_len >> (8 * i)));
  v1.insert(v1.end(), v2.begin() + 4, v2.begin() + 12);     // seq
  v1.insert(v1.end(), v2.begin() + 20, v2.end());           // message
  FrameDecoder d;
  d.feed(v1.data(), v1.size());
  DecodedFrame f;
  ASSERT_TRUE(d.next_frame(f));
  EXPECT_FALSE(f.control);
  EXPECT_EQ(f.seq, 4u);
  EXPECT_FALSE(f.has_ack) << "v1 frames carry no ack information";
  EXPECT_EQ(f.ack_seq, 0u);
  EXPECT_EQ(f.msg.lock, LockId{5});
}

// --- wire format v2: the hello epoch ------------------------------------

TEST(LiveService, HelloCarriesEpochAndLegacyHelloDecodesAsZero) {
  const auto v2 = hello_frame(NodeId{3}, 0xdeadbeefULL);
  FrameDecoder d;
  d.feed(v2.data(), v2.size());
  DecodedFrame f;
  ASSERT_TRUE(d.next_frame(f));
  ASSERT_TRUE(f.control);
  EXPECT_EQ(f.op, ControlOp::kHello);
  EXPECT_EQ(f.hello_node, NodeId{3});
  EXPECT_EQ(f.hello_epoch, 0xdeadbeefULL);

  // epoch 0 emits the legacy short body; it must decode as epoch 0.
  const auto legacy = hello_frame(NodeId{4});
  EXPECT_LT(legacy.size(), v2.size());
  d.feed(legacy.data(), legacy.size());
  ASSERT_TRUE(d.next_frame(f));
  EXPECT_EQ(f.hello_node, NodeId{4});
  EXPECT_EQ(f.hello_epoch, 0u);
}

TEST(LiveService, NodeEpochIsNonzeroAndStable) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  EXPECT_NE(n.epoch(), 0u);
  EXPECT_EQ(n.epoch(), n.epoch());
}

// --- coalesced decode: many frames in one TCP segment -------------------

TEST(LiveService, ManySmallFramesInOneSegmentAllDeliver) {
  TcpNode n(NodeId{0}, 0, fast_cfg());
  DeliveryLog log;
  n.set_handler(log.handler());
  std::thread t([&] { n.loop().run(); });

  // One send() call carrying hello + 32 frames back to back: exactly what
  // a coalescing sender produces. The decoder must split them all.
  constexpr std::uint32_t kCount = 32;
  std::vector<std::uint8_t> segment = hello_frame(NodeId{5}, 77);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto f = frame(sample_message(i), i + 1, /*ack=*/0);
    segment.insert(segment.end(), f.begin(), f.end());
  }
  RawClient peer(n.listen_port());
  peer.send_bytes(segment);

  EXPECT_TRUE(spin_until([&] { return log.size() == kCount; }))
      << "got " << log.size() << " of " << kCount;
  EXPECT_TRUE(log.exactly_once(kCount));
  EXPECT_EQ(n.stats().decode_errors, 0u);

  n.loop().stop();
  t.join();
}

// --- frame coalescing: fewer writev syscalls at equal delivery ----------

/// Park `count` sends in the window of a node whose peer is not up yet,
/// then start the peer: resend_window queues the whole backlog at once,
/// which is the deterministic way to hand flush() a deep outbox.
TcpStats parked_burst_stats(std::size_t max_batch_bytes,
                            std::uint32_t count) {
  TcpConfig cfg = fast_cfg();
  cfg.max_batch_bytes = max_batch_bytes;
  const std::uint16_t port = reserve_port();
  TcpNode sender(NodeId{1}, 0, cfg);
  std::thread ts([&] { sender.loop().run(); });
  sender.set_peers({{NodeId{0}, PeerAddress{"127.0.0.1", port}}});
  for (std::uint32_t i = 0; i < count; ++i)
    sender.send(NodeId{0}, sample_message(i));
  EXPECT_TRUE(spin_until([&] { return sender.unacked() == count; }));

  TcpNode receiver(NodeId{0}, port, fast_cfg());
  DeliveryLog log;
  receiver.set_handler(log.handler());
  std::thread tr([&] { receiver.loop().run(); });
  EXPECT_TRUE(spin_until([&] { return log.size() == count; }, 10000));
  EXPECT_TRUE(log.exactly_once(count));
  EXPECT_TRUE(spin_until([&] { return sender.unacked() == 0; }));

  const TcpStats s = sender.stats();
  sender.loop().stop();
  receiver.loop().stop();
  ts.join();
  tr.join();
  return s;
}

TEST(LiveService, CoalescingWritesFewerBatchesThanFrames) {
  constexpr std::uint32_t kCount = 40;
  const TcpStats s = parked_burst_stats(/*max_batch_bytes=*/256 * 1024,
                                        kCount);
  // hello + 40 data frames fit one iovec batch (64 max): far fewer
  // syscalls than frames.
  EXPECT_GE(s.frames_out, kCount + 1);  // + hello
  EXPECT_LT(s.batches_written, s.frames_out / 4)
      << "coalescing should collapse the parked burst into few writevs";
  EXPECT_GE(s.frames_per_batch[3], 1u)
      << "at least one batch should gather >= 17 frames";
}

TEST(LiveService, BatchingDisabledWritesOneFramePerBatch) {
  constexpr std::uint32_t kCount = 40;
  const TcpStats s = parked_burst_stats(/*max_batch_bytes=*/0, kCount);
  EXPECT_GE(s.frames_out, kCount + 1);
  EXPECT_GE(s.batches_written, s.frames_out)
      << "baseline must spend at least one writev per frame";
  EXPECT_EQ(s.frames_per_batch[1] + s.frames_per_batch[2] +
                s.frames_per_batch[3],
            0u)
      << "no multi-frame batches with coalescing disabled";
}

// --- ack piggybacking: same delivery, cheaper acks ----------------------

/// Closed-loop request/response over two nodes: node 0 answers every
/// request with a reply, giving acks a data frame to ride. Returns
/// {requester stats, responder stats, delivered at requester}.
struct PingPongResult {
  TcpStats requester;
  TcpStats responder;
  std::uint64_t replies{0};
};

PingPongResult ping_pong(Duration piggyback_window, std::uint32_t rounds) {
  TcpConfig cfg = fast_cfg();
  cfg.ack_piggyback_window = piggyback_window;
  InProcessCluster cluster(2, cfg);
  std::atomic<std::uint64_t> replies{0};
  // Node 0: echo every request back (on its own loop thread, like an
  // engine would).
  cluster.node(0).set_handler([&](const Message& m) {
    cluster.node(0).send(NodeId{1}, m);
  });
  cluster.node(1).set_handler(
      [&](const Message&) { replies.fetch_add(1, std::memory_order_relaxed); });
  for (std::uint32_t i = 0; i < rounds; ++i) {
    cluster.node(1).send(NodeId{0}, sample_message(i));
    // Pace the loop: wait for the echo so every round is a fresh
    // read-burst -> ack decision on both sides.
    EXPECT_TRUE(spin_until([&] { return replies.load() > i; }));
  }
  EXPECT_TRUE(spin_until([&] {
    return cluster.node(0).unacked() == 0 && cluster.node(1).unacked() == 0;
  }));
  PingPongResult r;
  r.requester = cluster.node(1).stats();
  r.responder = cluster.node(0).stats();
  r.replies = replies.load();
  cluster.stop();
  return r;
}

TEST(LiveService, PiggybackedAcksMatchBaselineDeliveryWithFewerAckFrames) {
  constexpr std::uint32_t kRounds = 25;
  const PingPongResult base = ping_pong(/*piggyback_window=*/0, kRounds);
  const PingPongResult piggy = ping_pong(msec(50), kRounds);

  // Equivalence: same workload, same delivered/acked outcome.
  EXPECT_EQ(base.replies, kRounds);
  EXPECT_EQ(piggy.replies, kRounds);

  // Baseline pays a standalone kAck per read burst and never piggybacks.
  EXPECT_EQ(base.requester.acks_piggybacked, 0u);
  EXPECT_EQ(base.responder.acks_piggybacked, 0u);
  EXPECT_GE(base.responder.acks_standalone, kRounds / 2);

  // With the window on, the responder's acks ride its replies: its
  // echo send is always queued within the window of the request burst.
  EXPECT_GE(piggy.responder.acks_piggybacked, kRounds / 2)
      << "responder acks should ride the echo replies";
  EXPECT_LT(piggy.responder.acks_standalone,
            base.responder.acks_standalone)
      << "piggybacking must reduce standalone ack frames";
}

// --- peer restart: epoch change resets dedup, exactly-once resumes ------

TEST(LiveService, RestartedPeerEpochResetsSequencesExactlyOnce) {
  TcpNode receiver(NodeId{0}, 0, fast_cfg());
  DeliveryLog log;
  receiver.set_handler(log.handler());
  std::thread tr([&] { receiver.loop().run(); });

  // First incarnation delivers seqs 1..5.
  {
    TcpNode sender(NodeId{1}, 0, fast_cfg());
    std::thread ts([&] { sender.loop().run(); });
    sender.set_peers(
        {{NodeId{0}, PeerAddress{"127.0.0.1", receiver.listen_port()}}});
    for (std::uint32_t i = 0; i < 5; ++i)
      sender.send(NodeId{0}, sample_message(i));
    EXPECT_TRUE(spin_until([&] { return log.size() == 5; }));
    EXPECT_TRUE(spin_until([&] { return sender.unacked() == 0; }));
    sender.loop().stop();
    ts.join();
  }  // process "crash": the node object dies, its epoch with it

  // Second incarnation of the same node id: fresh epoch, sequences start
  // back at 1. Without the epoch reset the receiver would swallow all of
  // these as duplicates of seqs 1..5.
  TcpNode reborn(NodeId{1}, 0, fast_cfg());
  std::thread ts2([&] { reborn.loop().run(); });
  reborn.set_peers(
      {{NodeId{0}, PeerAddress{"127.0.0.1", receiver.listen_port()}}});
  for (std::uint32_t i = 0; i < 5; ++i)
    reborn.send(NodeId{0}, sample_message(100 + i));
  EXPECT_TRUE(spin_until([&] { return log.size() == 10; }))
      << "restarted peer's frames were deduplicated away (got "
      << log.size() << ")";
  EXPECT_TRUE(log.exactly_once(10))
      << "frames lost or duplicated across the restart";
  EXPECT_GE(receiver.stats().peer_restarts, 1u)
      << "epoch change must be detected and counted";

  reborn.loop().stop();
  receiver.loop().stop();
  ts2.join();
  tr.join();
}

// --- stats plumbing for the new counters --------------------------------

TEST(LiveService, StatsLineMentionsBatchingAndPiggybackCounters) {
  TcpStats s;
  s.batches_written = 11;
  s.peer_restarts = 2;
  const std::string line = to_string(s);
  for (const char* key :
       {"batches_written=", "fpb1=", "fpb2_4=", "fpb5_16=", "fpb17p=",
        "acks_piggybacked=", "acks_standalone=", "peer_restarts="}) {
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
  EXPECT_NE(line.find("batches_written=11"), std::string::npos);
  EXPECT_NE(line.find("peer_restarts=2"), std::string::npos);
}

// --- SessionMux: many logical sessions over live TCP --------------------

TEST(LiveService, SessionMuxRunsManySessionsOverLiveTcp) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kSessions = 4;
  constexpr std::uint32_t kOpsPerSession = 6;
  constexpr std::uint32_t kEntries = 4;

  TcpConfig cfg = fast_cfg();
  cfg.max_batch_bytes = 256 * 1024;
  cfg.ack_piggyback_window = msec(1);
  InProcessCluster cluster(kNodes, cfg);
  lockmgr::ResourceLayout layout(kEntries);

  struct Svc {
    std::unique_ptr<core::HlsNode> hls;
    std::unique_ptr<lockmgr::SessionMux> mux;
    std::vector<std::uint32_t> ops_left;
  };
  std::vector<Svc> svc(kNodes);
  std::atomic<std::uint64_t> completed{0};
  for (std::size_t i = 0; i < kNodes; ++i) {
    svc[i].hls = std::make_unique<core::HlsNode>(
        NodeId{static_cast<std::uint32_t>(i)},
        cluster.node(i).transport());
    for (std::uint32_t l = 0; l < layout.lock_count(); ++l)
      svc[i].hls->add_lock(LockId{l}, NodeId{l % kNodes});
    svc[i].mux = std::make_unique<lockmgr::SessionMux>(
        *svc[i].hls, layout, cluster.node(i).loop(), kSessions);
    svc[i].ops_left.assign(kSessions, kOpsPerSession);
    Svc* raw = &svc[i];
    cluster.node(i).set_handler(
        [raw](const Message& m) { raw->hls->handle(m); });
  }

  // Closed loop: a fixed op sequence cycling through the mix, so upgrades
  // and entry writes all get exercised without randomness.
  std::function<void(std::size_t, std::uint32_t)> pump =
      [&](std::size_t node, std::uint32_t sid) {
        Svc& s = svc[node];
        if (s.ops_left[sid] == 0) return;
        const std::uint32_t k = --s.ops_left[sid];
        lockmgr::Op op;
        switch (k % 5) {
          case 0: op.kind = lockmgr::OpKind::kEntryRead; break;
          case 1: op.kind = lockmgr::OpKind::kTableRead; break;
          case 2: op.kind = lockmgr::OpKind::kEntryWrite; break;
          case 3: op.kind = lockmgr::OpKind::kTableUpgrade; break;
          default: op.kind = lockmgr::OpKind::kEntryRead; break;
        }
        op.entry = (sid + k) % kEntries;
        s.mux->start(sid, op, [&, node, sid](const lockmgr::OpStats& st) {
          EXPECT_GE(st.lock_requests, 1u);
          completed.fetch_add(1, std::memory_order_relaxed);
          pump(node, sid);
        });
      };
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::uint32_t sid = 0; sid < kSessions; ++sid)
      cluster.node(i).loop().post([&pump, i, sid] { pump(i, sid); });
  }

  const std::uint64_t total = kNodes * kSessions * kOpsPerSession;
  EXPECT_TRUE(spin_until([&] { return completed.load() == total; }, 30000))
      << "completed " << completed.load() << " of " << total;
  // Nothing may be lost in flight: every accepted send acked.
  EXPECT_TRUE(spin_until([&] {
    return cluster.node(0).unacked() == 0 && cluster.node(1).unacked() == 0;
  }));
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(svc[i].mux->completed(), kSessions * kOpsPerSession);
    EXPECT_EQ(svc[i].mux->active(), 0u);
    for (std::uint32_t sid = 0; sid < kSessions; ++sid)
      EXPECT_FALSE(svc[i].mux->busy(sid));
  }
  cluster.stop();
}

TEST(LiveService, SessionMuxRejectsDoubleStartOnBusySession) {
  InProcessCluster cluster(2, fast_cfg());
  lockmgr::ResourceLayout layout(2);
  auto hls = std::make_unique<core::HlsNode>(NodeId{0},
                                             cluster.node(0).transport());
  for (std::uint32_t l = 0; l < layout.lock_count(); ++l)
    hls->add_lock(LockId{l}, NodeId{1});  // all locks remote: ops stay busy
  lockmgr::SessionMux mux(*hls, layout, cluster.node(0).loop(), 1);
  cluster.node(0).set_handler(
      [&hls](const Message& m) { hls->handle(m); });

  std::atomic<bool> threw{false};
  std::atomic<bool> checked{false};
  cluster.node(0).loop().post([&] {
    lockmgr::Op op;
    op.kind = lockmgr::OpKind::kEntryRead;
    op.entry = 0;
    mux.start(0, op, [](const lockmgr::OpStats&) {});
    try {
      mux.start(0, op, [](const lockmgr::OpStats&) {});
    } catch (const std::logic_error&) {
      threw = true;
    }
    checked = true;
  });
  EXPECT_TRUE(spin_until([&] { return checked.load(); }));
  EXPECT_TRUE(threw) << "starting a busy session must throw";
  cluster.stop();
}

}  // namespace
}  // namespace hlock::net
