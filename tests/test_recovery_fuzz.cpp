// Recovery fuzzer: random traffic, random interleavings, and repeated
// random crashes each followed by a view change. Invariants: never two
// incompatible holds among LIVE nodes; exactly one token at quiescence;
// every request issued by a SURVIVING node is eventually granted or was
// issued by a node that later crashed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/hls_engine.hpp"
#include "test_util.hpp"

namespace hlock::core {
namespace {

class RecoveryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryFuzz, RepeatedCrashesStaySafeAndLive) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr std::size_t kNodes = 6;

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  std::vector<std::map<RequestId, Mode>> held(kNodes);
  std::vector<bool> alive(kNodes, true);
  std::uint32_t view = 0;

  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EngineCallbacks cbs;
    cbs.on_acquired = [&, i](RequestId rid, Mode mode) { held[i][rid] = mode; };
    engines.push_back(std::make_unique<HlsEngine>(
        LockId{0}, id, NodeId{0}, bus.port(id), EngineOptions{},
        std::move(cbs)));
    HlsEngine* raw = engines.back().get();
    bus.register_handler(id, [&, i, raw](const Message& m) {
      if (alive[i]) raw->handle(m);
    });
  }

  auto check_mutex = [&] {
    for (std::size_t a = 0; a < kNodes; ++a) {
      if (!alive[a]) continue;
      for (const auto& [ra, ma] : held[a]) {
        for (std::size_t b = 0; b < kNodes; ++b) {
          if (!alive[b]) continue;
          for (const auto& [rb, mb] : held[b]) {
            if (a == b && ra == rb) continue;
            ASSERT_TRUE(compatible(ma, mb)) << "seed " << seed;
          }
        }
      }
    }
  };
  auto live_count = [&] {
    std::size_t n = 0;
    for (const bool a : alive) n += a ? 1 : 0;
    return n;
  };

  for (int step = 0; step < 1200; ++step) {
    const std::size_t i = rng.next_below(kNodes);
    const double dice = rng.next_double();
    if (!alive[i]) continue;
    if (dice < 0.35) {
      if (engines[i]->backlog_size() < 2 && !engines[i]->departed()) {
        (void)engines[i]->request_lock(kRealModes[rng.next_below(5)]);
      }
    } else if (dice < 0.60) {
      if (!held[i].empty()) {
        const RequestId rid = held[i].begin()->first;
        held[i].erase(rid);
        engines[i]->unlock(rid);
      }
    } else if (dice < 0.63 && live_count() > 2) {
      // CRASH node i, then the view service recovers everyone else.
      alive[i] = false;
      held[i].clear();
      ++view;
      std::size_t root = 0;
      while (!alive[root]) ++root;
      std::set<NodeId> survivors;
      for (std::size_t k = 0; k < kNodes; ++k) {
        if (alive[k]) survivors.insert(NodeId{static_cast<std::uint32_t>(k)});
      }
      for (std::size_t k = 0; k < kNodes; ++k) {
        if (alive[k]) {
          engines[k]->begin_recovery(
              view, NodeId{static_cast<std::uint32_t>(root)}, survivors);
        }
      }
    } else {
      for (std::size_t k = rng.next_below(4); k-- > 0;) {
        if (!bus.deliver_random(rng)) break;
        check_mutex();
      }
    }
  }

  // Drain.
  for (int round = 0; round < 20000; ++round) {
    while (bus.deliver_random(rng)) check_mutex();
    bool any = false;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!alive[i]) continue;
      while (!held[i].empty()) {
        const RequestId rid = held[i].begin()->first;
        held[i].erase(rid);
        engines[i]->unlock(rid);
        any = true;
      }
    }
    bool quiet = bus.pending() == 0 && !any;
    for (std::size_t i = 0; i < kNodes && quiet; ++i) {
      if (!alive[i]) continue;
      quiet = held[i].empty() && !engines[i]->has_pending() &&
              engines[i]->backlog_size() == 0;
    }
    if (quiet) break;
  }

  // Liveness among survivors: nobody is left waiting.
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (!alive[i]) continue;
    EXPECT_FALSE(engines[i]->has_pending()) << "node " << i << " seed "
                                            << seed;
    EXPECT_EQ(engines[i]->backlog_size(), 0u) << "node " << i;
  }
  // Exactly one token among the living.
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (alive[i] && engines[i]->is_token_node()) ++tokens;
  }
  EXPECT_EQ(tokens, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---------------------------------------------------------------------------
// Mixed churn: graceful leaves AND crashes in the same run.
// ---------------------------------------------------------------------------

class MixedChurnFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedChurnFuzz, LeavesAndCrashesTogether) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xc0ffee);
  constexpr std::size_t kNodes = 7;

  testing::TestBus bus;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  std::vector<std::map<RequestId, Mode>> held(kNodes);
  std::vector<bool> gone(kNodes, false);  // crashed or departed
  std::uint32_t view = 0;

  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EngineCallbacks cbs;
    cbs.on_acquired = [&, i](RequestId rid, Mode mode) { held[i][rid] = mode; };
    engines.push_back(std::make_unique<HlsEngine>(
        LockId{0}, id, NodeId{0}, bus.port(id), EngineOptions{},
        std::move(cbs)));
    HlsEngine* raw = engines.back().get();
    bus.register_handler(id, [&, i, raw](const Message& m) {
      if (!gone[i] || engines[i]->departed()) raw->handle(m);
    });
  }

  auto check_mutex = [&] {
    for (std::size_t a = 0; a < kNodes; ++a) {
      for (const auto& [ra, ma] : held[a]) {
        for (std::size_t b = 0; b < kNodes; ++b) {
          for (const auto& [rb, mb] : held[b]) {
            if (a == b && ra == rb) continue;
            ASSERT_TRUE(compatible(ma, mb)) << "seed " << seed;
          }
        }
      }
    }
  };
  auto live_count = [&] {
    std::size_t n = 0;
    for (const bool g : gone) n += g ? 0 : 1;
    return n;
  };

  for (int step = 0; step < 1500; ++step) {
    const std::size_t i = rng.next_below(kNodes);
    const double dice = rng.next_double();
    if (gone[i]) continue;
    if (dice < 0.35) {
      if (engines[i]->backlog_size() < 2) {
        (void)engines[i]->request_lock(kRealModes[rng.next_below(5)]);
      }
    } else if (dice < 0.58) {
      if (!held[i].empty()) {
        const RequestId rid = held[i].begin()->first;
        held[i].erase(rid);
        engines[i]->unlock(rid);
      }
    } else if (dice < 0.61 && live_count() > 3) {
      // Graceful leave (may be refused while holding/pending).
      std::size_t succ = rng.next_below(kNodes);
      while (succ == i || gone[succ]) succ = rng.next_below(kNodes);
      try {
        engines[i]->leave(NodeId{static_cast<std::uint32_t>(succ)});
        gone[i] = true;  // departed tombstone still forwards
      } catch (const std::logic_error&) {
      }
    } else if (dice < 0.63 && live_count() > 3) {
      // Crash + view change around it. Departed tombstones are not part
      // of the view (they hold no state), so survivors = live only.
      gone[i] = true;
      held[i].clear();
      ++view;
      std::size_t root = 0;
      while (gone[root]) ++root;
      std::set<NodeId> survivors;
      for (std::size_t k = 0; k < kNodes; ++k) {
        if (!gone[k]) survivors.insert(NodeId{static_cast<std::uint32_t>(k)});
      }
      for (std::size_t k = 0; k < kNodes; ++k) {
        if (!gone[k]) {
          engines[k]->begin_recovery(
              view, NodeId{static_cast<std::uint32_t>(root)}, survivors);
        }
      }
    } else {
      for (std::size_t k = rng.next_below(4); k-- > 0;) {
        if (!bus.deliver_random(rng)) break;
        check_mutex();
      }
    }
  }

  // Drain.
  for (int round = 0; round < 20000; ++round) {
    while (bus.deliver_random(rng)) check_mutex();
    bool any = false;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (gone[i]) continue;
      while (!held[i].empty()) {
        const RequestId rid = held[i].begin()->first;
        held[i].erase(rid);
        engines[i]->unlock(rid);
        any = true;
      }
    }
    bool quiet = bus.pending() == 0 && !any;
    for (std::size_t i = 0; i < kNodes && quiet; ++i) {
      if (gone[i]) continue;
      quiet = held[i].empty() && !engines[i]->has_pending() &&
              engines[i]->backlog_size() == 0;
    }
    if (quiet) break;
  }

  for (std::size_t i = 0; i < kNodes; ++i) {
    if (gone[i]) continue;
    EXPECT_FALSE(engines[i]->has_pending()) << "node " << i << " seed "
                                            << seed;
  }
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (!gone[i] && engines[i]->is_token_node()) ++tokens;
  }
  EXPECT_EQ(tokens, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedChurnFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hlock::core
