// Integration tests: full simulated clusters of the paper's protocol with
// the global safety probe armed after every event, across node counts,
// seeds and workload mixes.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/invariants.hpp"

namespace hlock::harness {
namespace {

ClusterConfig small_config(std::size_t nodes, std::uint64_t seed,
                           std::uint32_t ops = 30) {
  ClusterConfig c;
  c.nodes = nodes;
  c.spec.seed = seed;
  c.spec.ops_per_node = ops;
  return c;
}

TEST(HlsCluster, SingleNodeRunsWithoutMessages) {
  HlsCluster cluster(small_config(1, 42));
  install_safety_probe(cluster);
  cluster.run();
  const auto r = cluster.result();
  EXPECT_EQ(r.app_ops, 30u);
  // Everything is local: the only node is every lock's token node.
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(check_quiescent(cluster), "");
}

TEST(HlsCluster, TwoNodesCompleteAndQuiesce) {
  HlsCluster cluster(small_config(2, 7));
  install_safety_probe(cluster);
  cluster.run();
  EXPECT_EQ(cluster.result().app_ops, 60u);
  EXPECT_EQ(check_quiescent(cluster), "");
}

TEST(HlsCluster, EveryOpCompletesAtModerateScale) {
  HlsCluster cluster(small_config(12, 99, 20));
  install_safety_probe(cluster);
  cluster.run();
  EXPECT_EQ(cluster.result().app_ops, 240u);
  EXPECT_EQ(check_quiescent(cluster), "");
}

TEST(HlsCluster, DeterministicAcrossRuns) {
  auto run_once = [] {
    HlsCluster cluster(small_config(6, 1234));
    cluster.run();
    const auto r = cluster.result();
    return std::make_tuple(r.messages, r.virtual_end,
                           r.latency_factor.mean());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(HlsCluster, WriteHeavyMixStaysSafe) {
  ClusterConfig c = small_config(8, 5, 15);
  c.spec.p_entry_read = 0.20;
  c.spec.p_table_read = 0.20;
  c.spec.p_upgrade = 0.20;
  c.spec.p_entry_write = 0.20;
  c.spec.p_table_write = 0.20;
  HlsCluster cluster(c);
  install_safety_probe(cluster);
  cluster.run();
  EXPECT_EQ(check_quiescent(cluster), "");
}

TEST(HlsCluster, UpgradeOnlyMixExercisesRule7) {
  ClusterConfig c = small_config(6, 11, 15);
  c.spec.p_entry_read = 0.0;
  c.spec.p_table_read = 0.0;
  c.spec.p_upgrade = 1.0;
  c.spec.p_entry_write = 0.0;
  c.spec.p_table_write = 0.0;
  HlsCluster cluster(c);
  install_safety_probe(cluster);
  cluster.run();
  EXPECT_EQ(check_quiescent(cluster), "");
}

TEST(HlsCluster, WriterOnlyMixSerializesEverything) {
  ClusterConfig c = small_config(5, 13, 10);
  c.spec.p_entry_read = 0.0;
  c.spec.p_table_read = 0.0;
  c.spec.p_upgrade = 0.0;
  c.spec.p_entry_write = 0.0;
  c.spec.p_table_write = 1.0;
  HlsCluster cluster(c);
  install_safety_probe(cluster);
  cluster.run();
  EXPECT_EQ(check_quiescent(cluster), "");
}

// ---------------------------------------------------------------------------
// Property sweep: node count x seed, probe always armed.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::size_t nodes;
  std::uint64_t seed;
};

class HlsClusterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(HlsClusterSweep, SafeAndLive) {
  const auto p = GetParam();
  HlsCluster cluster(small_config(p.nodes, p.seed, 15));
  install_safety_probe(cluster);
  ASSERT_NO_THROW(cluster.run());
  EXPECT_EQ(check_quiescent(cluster), "");
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const std::size_t nodes : {2, 3, 4, 6, 9, 16}) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      out.push_back({nodes, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(NodesBySeeds, HlsClusterSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.nodes) +
                                  "_s" + std::to_string(pinfo.param.seed);
                         });

}  // namespace
}  // namespace hlock::harness
