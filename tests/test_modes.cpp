// Exhaustive tests of the four rule tables (Tables 1(a), 1(b), 2(a), 2(b))
// and the mode-strength order of Eq. 1.
#include <gtest/gtest.h>

#include <vector>

#include "core/mode.hpp"

namespace hlock {
namespace {

TEST(ModeStrength, MatchesEquationOne) {
  // ∅ < IR < R < U = IW < W
  EXPECT_LT(strength(Mode::kNone), strength(Mode::kIR));
  EXPECT_LT(strength(Mode::kIR), strength(Mode::kR));
  EXPECT_LT(strength(Mode::kR), strength(Mode::kU));
  EXPECT_EQ(strength(Mode::kU), strength(Mode::kIW));
  EXPECT_LT(strength(Mode::kIW), strength(Mode::kW));
}

TEST(ModeStrength, StrongerImpliesFewerCompatibleModes) {
  // Definition 1: A stronger than B iff A is compatible with fewer modes.
  auto compat_count = [](Mode m) {
    int n = 0;
    for (const Mode other : kRealModes)
      if (compatible(m, other)) ++n;
    return n;
  };
  EXPECT_EQ(compat_count(Mode::kIR), 4);
  EXPECT_EQ(compat_count(Mode::kR), 3);
  EXPECT_EQ(compat_count(Mode::kU), 2);
  EXPECT_EQ(compat_count(Mode::kIW), 2);
  EXPECT_EQ(compat_count(Mode::kW), 0);
  // Strictly decreasing along the strength order (ties share counts).
  EXPECT_GT(compat_count(Mode::kIR), compat_count(Mode::kR));
  EXPECT_GT(compat_count(Mode::kR), compat_count(Mode::kU));
  EXPECT_EQ(compat_count(Mode::kU), compat_count(Mode::kIW));
  EXPECT_GT(compat_count(Mode::kIW), compat_count(Mode::kW));
}

TEST(CompatibilityTable, IsSymmetric) {
  for (const Mode a : kRealModes)
    for (const Mode b : kRealModes)
      EXPECT_EQ(compatible(a, b), compatible(b, a))
          << a << " vs " << b;
}

TEST(CompatibilityTable, NoneIsCompatibleWithEverything) {
  for (const Mode m : kRealModes) {
    EXPECT_TRUE(compatible(Mode::kNone, m));
    EXPECT_TRUE(compatible(m, Mode::kNone));
  }
  EXPECT_TRUE(compatible(Mode::kNone, Mode::kNone));
}

TEST(CompatibilityTable, Table1aExhaustive) {
  // Table 1(a), X = conflict. Row-major over IR, R, U, IW, W.
  const bool conflict[5][5] = {
      // IR     R      U      IW     W
      {false, false, false, false, true},   // IR
      {false, false, false, true, true},    // R
      {false, false, true, true, true},     // U
      {false, true, true, false, true},     // IW
      {true, true, true, true, true},       // W
  };
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(compatible(kRealModes[a], kRealModes[b]), !conflict[a][b])
          << kRealModes[a] << " vs " << kRealModes[b];
    }
  }
}

TEST(GrantTables, Table1bNonTokenGrants) {
  // Rule 3.1: a non-token node owning M1 grants M2 iff compatible and
  // M1 >= M2. Exhaustive expectations for every (owned, requested) pair.
  struct Case {
    Mode owned;
    std::vector<Mode> grantable;
  };
  const std::vector<Case> cases = {
      {Mode::kNone, {}},
      {Mode::kIR, {Mode::kIR}},
      {Mode::kR, {Mode::kIR, Mode::kR}},
      {Mode::kU, {Mode::kIR, Mode::kR}},
      {Mode::kIW, {Mode::kIR, Mode::kIW}},
      {Mode::kW, {}},
  };
  for (const auto& c : cases) {
    for (const Mode req : kRealModes) {
      const bool expect = std::find(c.grantable.begin(), c.grantable.end(),
                                    req) != c.grantable.end();
      EXPECT_EQ(child_grantable(c.owned, req), expect)
          << "owned " << c.owned << " req " << req;
    }
  }
}

TEST(GrantTables, TokenGrantVsTransferPartition) {
  // Rule 3.2: for the token node, compatibility is necessary and
  // sufficient; owned < requested means token transfer, otherwise copy.
  for (const Mode owned :
       {Mode::kNone, Mode::kIR, Mode::kR, Mode::kU, Mode::kIW, Mode::kW}) {
    for (const Mode req : kRealModes) {
      const bool serviceable = compatible(owned, req);
      EXPECT_EQ(tokenable(owned, req) || token_copy_grantable(owned, req),
                serviceable)
          << owned << " " << req;
      // Mutually exclusive.
      EXPECT_FALSE(tokenable(owned, req) && token_copy_grantable(owned, req))
          << owned << " " << req;
    }
  }
  // Spot checks from the text.
  EXPECT_TRUE(tokenable(Mode::kNone, Mode::kR));     // Fig. 3(c)
  EXPECT_TRUE(token_copy_grantable(Mode::kR, Mode::kR));  // Fig. 2(c)
  EXPECT_TRUE(tokenable(Mode::kIR, Mode::kR));
  EXPECT_TRUE(tokenable(Mode::kR, Mode::kU));
  EXPECT_FALSE(tokenable(Mode::kU, Mode::kIW));  // incompatible
  EXPECT_FALSE(tokenable(Mode::kIW, Mode::kR));  // incompatible
}

TEST(QueueForwardTable, Table2aExhaustive) {
  // Parsed from the paper's 30-cell stream; rows = pending mode,
  // columns = IR R U IW W; true = queue.
  const Mode rows[6] = {Mode::kNone, Mode::kIR, Mode::kR,
                        Mode::kU,    Mode::kIW, Mode::kW};
  const bool queue_it[6][5] = {
      {false, false, false, false, false},  // ∅: always forward
      {true, false, false, false, false},   // IR
      {false, true, false, false, false},   // R
      {false, false, true, true, true},     // U
      {false, false, false, true, false},   // IW
      {true, true, true, true, true},       // W
  };
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 5; ++c) {
      const auto expected = queue_it[r][c] ? PendingAction::kQueue
                                           : PendingAction::kForward;
      EXPECT_EQ(queue_or_forward(rows[r], kRealModes[c]), expected)
          << "pending " << rows[r] << " req " << kRealModes[c];
    }
  }
}

TEST(FreezeTable, Table2bLegibleEntries) {
  // The eight entries that are legible in the paper's Table 2(b).
  EXPECT_EQ(frozen_for(Mode::kR, Mode::kIW), (ModeSet{Mode::kR, Mode::kU}));
  EXPECT_EQ(frozen_for(Mode::kU, Mode::kIW), (ModeSet{Mode::kR}));
  EXPECT_EQ(frozen_for(Mode::kIW, Mode::kR), (ModeSet{Mode::kIW}));
  EXPECT_EQ(frozen_for(Mode::kIW, Mode::kU), (ModeSet{Mode::kIW}));
  EXPECT_EQ(frozen_for(Mode::kIR, Mode::kW),
            (ModeSet{Mode::kIR, Mode::kR, Mode::kU, Mode::kIW}));
  EXPECT_EQ(frozen_for(Mode::kR, Mode::kW),
            (ModeSet{Mode::kIR, Mode::kR, Mode::kU}));
  EXPECT_EQ(frozen_for(Mode::kU, Mode::kW), (ModeSet{Mode::kIR, Mode::kR}));
  EXPECT_EQ(frozen_for(Mode::kIW, Mode::kW), (ModeSet{Mode::kIR, Mode::kIW}));
}

TEST(FreezeTable, ClosedFormProperties) {
  for (const Mode owned : kRealModes) {
    for (const Mode queued : kRealModes) {
      const ModeSet f = frozen_for(owned, queued);
      for (const Mode m : kRealModes) {
        const bool expect = compatible(m, owned) && !compatible(m, queued);
        EXPECT_EQ(f.contains(m), expect)
            << "owned " << owned << " queued " << queued << " mode " << m;
      }
      // A frozen mode is never the queued request's own remedy: freezing
      // modes compatible with the queued one would be self-defeating.
      for (const Mode m : kRealModes) {
        if (f.contains(m)) EXPECT_FALSE(compatible(m, queued));
      }
    }
  }
  // Column IR is empty: an IR request freezes nothing grantable.
  for (const Mode owned : kRealModes) {
    if (owned == Mode::kW) continue;  // nothing compatible with W anyway
    EXPECT_TRUE(frozen_for(owned, Mode::kIR).empty()) << owned;
  }
}

TEST(FreezeTable, PaperWorkedExample) {
  // §3.3: token owns IW, a request for R is queued -> IW is frozen.
  const ModeSet f = frozen_for(Mode::kIW, Mode::kR);
  EXPECT_TRUE(f.contains(Mode::kIW));
  EXPECT_EQ(f.size(), 1u);
}

TEST(ModeSet, BasicOperations) {
  ModeSet s;
  EXPECT_TRUE(s.empty());
  s.insert(Mode::kR);
  s.insert(Mode::kW);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Mode::kR));
  EXPECT_FALSE(s.contains(Mode::kIR));
  s.erase(Mode::kR);
  EXPECT_FALSE(s.contains(Mode::kR));
  EXPECT_EQ(s.to_string(), "{W}");

  const ModeSet a{Mode::kIR, Mode::kR};
  const ModeSet b{Mode::kR, Mode::kU};
  EXPECT_EQ((a | b), (ModeSet{Mode::kIR, Mode::kR, Mode::kU}));
  EXPECT_EQ((a & b), (ModeSet{Mode::kR}));
  EXPECT_TRUE((ModeSet{Mode::kR}).subset_of(a));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_EQ(ModeSet::from_raw(a.raw()), a);
}

TEST(ModeNames, RoundTrip) {
  EXPECT_STREQ(to_string(Mode::kIR), "IR");
  EXPECT_STREQ(to_string(Mode::kR), "R");
  EXPECT_STREQ(to_string(Mode::kU), "U");
  EXPECT_STREQ(to_string(Mode::kIW), "IW");
  EXPECT_STREQ(to_string(Mode::kW), "W");
  EXPECT_STREQ(to_string(Mode::kNone), "-");
}

TEST(Strongest, PicksByRankAndKeepsRealizableSetsExact) {
  EXPECT_EQ(strongest(Mode::kIR, Mode::kR), Mode::kR);
  EXPECT_EQ(strongest(Mode::kW, Mode::kIR), Mode::kW);
  EXPECT_EQ(strongest(Mode::kNone, Mode::kIR), Mode::kIR);
  // For every pairwise-compatible (realizable) set of held modes, the
  // strongest-mode summary must answer compatibility queries exactly —
  // this is the paper's "local knowledge is sufficient" claim (§3.4).
  std::vector<std::vector<Mode>> realizable;
  for (int mask = 1; mask < 32; ++mask) {
    std::vector<Mode> set;
    for (int i = 0; i < 5; ++i)
      if (mask & (1 << i)) set.push_back(kRealModes[i]);
    bool ok = true;
    for (std::size_t a = 0; a < set.size() && ok; ++a)
      for (std::size_t b = a + 1; b < set.size() && ok; ++b)
        ok = compatible(set[a], set[b]);
    if (ok) realizable.push_back(set);
  }
  ASSERT_FALSE(realizable.empty());
  for (const auto& set : realizable) {
    Mode summary = Mode::kNone;
    for (const Mode m : set) summary = strongest(summary, m);
    for (const Mode probe : kRealModes) {
      bool all = true;
      for (const Mode m : set) all = all && compatible(m, probe);
      EXPECT_EQ(compatible(summary, probe), all)
          << "summary " << summary << " probe " << probe;
    }
  }
}

}  // namespace
}  // namespace hlock
