// Workload generator and airline-table tests.
#include <gtest/gtest.h>

#include <map>

#include "workload/airline.hpp"
#include "workload/generator.hpp"

namespace hlock::workload {
namespace {

TEST(WorkloadSpec, DefaultsMatchThePaper) {
  const WorkloadSpec spec;
  EXPECT_EQ(spec.cs_mean, msec(15));
  EXPECT_EQ(spec.idle_mean, msec(150));
  EXPECT_EQ(spec.net_latency_mean, msec(150));
  EXPECT_DOUBLE_EQ(spec.p_entry_read, 0.80);
  EXPECT_DOUBLE_EQ(spec.p_table_read, 0.10);
  EXPECT_DOUBLE_EQ(spec.p_upgrade, 0.04);
  EXPECT_DOUBLE_EQ(spec.p_entry_write, 0.05);
  EXPECT_DOUBLE_EQ(spec.p_table_write, 0.01);
  EXPECT_NO_THROW(spec.validate());
}

TEST(WorkloadSpec, RejectsBadMixAndTimings) {
  WorkloadSpec bad;
  bad.p_entry_read = 0.5;  // mix sums to 0.7
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  WorkloadSpec zero;
  zero.cs_mean = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);

  WorkloadSpec bias;
  bias.home_bias = 1.5;
  EXPECT_THROW(bias.validate(), std::invalid_argument);

  WorkloadSpec entries;
  entries.entries_per_node = 0;
  EXPECT_THROW(entries.validate(), std::invalid_argument);
}

TEST(OpGenerator, MixConvergesToSpec) {
  WorkloadSpec spec;
  OpGenerator gen(spec, 0, 10, Rng(123));
  std::map<lockmgr::OpKind, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[gen.next().kind]++;
  const auto frac = [&](lockmgr::OpKind k) {
    return static_cast<double>(counts[k]) / kSamples;
  };
  EXPECT_NEAR(frac(lockmgr::OpKind::kEntryRead), 0.80, 0.01);
  EXPECT_NEAR(frac(lockmgr::OpKind::kTableRead), 0.10, 0.01);
  EXPECT_NEAR(frac(lockmgr::OpKind::kTableUpgrade), 0.04, 0.005);
  EXPECT_NEAR(frac(lockmgr::OpKind::kEntryWrite), 0.05, 0.005);
  EXPECT_NEAR(frac(lockmgr::OpKind::kTableWrite), 0.01, 0.003);
}

TEST(OpGenerator, CsAndIdleMeansMatchSpec) {
  WorkloadSpec spec;
  OpGenerator gen(spec, 0, 4, Rng(7));
  double cs_sum = 0, idle_sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    cs_sum += static_cast<double>(gen.next().cs);
    idle_sum += static_cast<double>(gen.next_idle());
  }
  EXPECT_NEAR(cs_sum / kSamples, static_cast<double>(msec(15)),
              static_cast<double>(msec(1)));
  EXPECT_NEAR(idle_sum / kSamples, static_cast<double>(msec(150)),
              static_cast<double>(msec(5)));
}

TEST(OpGenerator, HomeBiasSteersEntrySelection) {
  WorkloadSpec spec;
  spec.home_bias = 1.0;
  spec.entries_per_node = 2;
  OpGenerator gen(spec, 3, 8, Rng(5));
  for (int i = 0; i < 2000; ++i) {
    const auto op = gen.next();
    if (op.kind == lockmgr::OpKind::kEntryRead ||
        op.kind == lockmgr::OpKind::kEntryWrite) {
      EXPECT_GE(op.entry, 6u);  // node 3 owns entries 6 and 7
      EXPECT_LE(op.entry, 7u);
    }
  }

  WorkloadSpec uniform = spec;
  uniform.home_bias = 0.0;
  OpGenerator ugen(uniform, 3, 8, Rng(5));
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < 20000; ++i) {
    const auto op = ugen.next();
    if (op.kind == lockmgr::OpKind::kEntryRead) hist[op.entry]++;
  }
  EXPECT_EQ(hist.size(), 16u);  // all entries hit
}

TEST(OpGenerator, EntriesAlwaysInRange) {
  WorkloadSpec spec;
  spec.entries_per_node = 3;
  OpGenerator gen(spec, 2, 5, Rng(99));
  EXPECT_EQ(gen.entry_count(), 15u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.next().entry, 15u);
  }
}

TEST(OpGenerator, DeterministicFromSeed) {
  const WorkloadSpec spec;
  OpGenerator a(spec, 1, 4, Rng(11));
  OpGenerator b(spec, 1, 4, Rng(11));
  for (int i = 0; i < 100; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    EXPECT_EQ(oa.kind, ob.kind);
    EXPECT_EQ(oa.entry, ob.entry);
    EXPECT_EQ(oa.cs, ob.cs);
  }
}

// ----------------------------------------------------------- fare table --

TEST(FareTable, InitialDataIsPlausible) {
  const FareTable t(10, 1);
  EXPECT_EQ(t.entries(), 10u);
  for (std::uint32_t e = 0; e < 10; ++e) {
    EXPECT_GE(t.price(e), 5'000);
    EXPECT_LE(t.price(e), 150'000);
    EXPECT_GE(t.seats(e), 50u);
  }
}

TEST(FareTable, BookingConservesSeats) {
  FareTable t(4, 2);
  const auto before = t.total_seats();
  EXPECT_TRUE(t.book_seat(1));
  EXPECT_TRUE(t.book_seat(1));
  EXPECT_EQ(t.total_seats(), before - 2);
  t.release_seat(1);
  EXPECT_EQ(t.total_seats(), before - 1);
}

TEST(FareTable, SoldOutReturnsFalse) {
  FareTable t(1, 3);
  while (t.seats(0) > 0) EXPECT_TRUE(t.book_seat(0));
  EXPECT_FALSE(t.book_seat(0));
}

TEST(FareTable, GuardsDetectWriterOverlap) {
  FareTable t(2, 4);
  t.begin_write(0);
  EXPECT_EQ(t.violations(), 0u);
  t.begin_read(0);  // reader under an active writer -> violation
  EXPECT_EQ(t.violations(), 1u);
  t.end_read(0);
  t.begin_write(0);  // second writer -> violation
  EXPECT_EQ(t.violations(), 2u);
  t.end_write(0);
  t.end_write(0);
  // Distinct rows never conflict.
  t.begin_write(0);
  t.begin_write(1);
  EXPECT_EQ(t.violations(), 2u);
  t.end_write(0);
  t.end_write(1);
}

TEST(FareTable, ReadersShareWithoutViolation) {
  FareTable t(1, 5);
  t.begin_read(0);
  t.begin_read(0);
  t.begin_read(0);
  EXPECT_EQ(t.violations(), 0u);
  t.end_read(0);
  t.end_read(0);
  t.end_read(0);
  EXPECT_THROW(t.end_read(0), std::logic_error);
}

TEST(FareTable, OutOfRangeThrows) {
  FareTable t(2, 6);
  EXPECT_THROW(t.price(2), std::out_of_range);
  EXPECT_THROW(t.begin_write(5), std::out_of_range);
}

}  // namespace
}  // namespace hlock::workload
