// ResultStore: the on-disk sweep cache must round-trip results exactly
// (field-wise equality down to Summary internal state), serve warm runs
// with zero simulations, invalidate on build-hash changes, and degrade
// corrupt/truncated/stale files to recomputation — never to errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/result_store.hpp"
#include "harness/sweep_runner.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

workload::WorkloadSpec small_spec() {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 15;
  return spec;
}

/// Fresh empty directory per test, removed on teardown.
class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("hlock-store-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string file() const {
    return (std::filesystem::path(dir_) / "results.jsonl").string();
  }

  std::string dir_;
};

TEST_F(ResultStoreTest, CacheJsonRoundTripsExactly) {
  // A lossy point exercises every field: drops, per-kind counts, the
  // reliability sublayer's message kinds, non-trivial latency summaries.
  SweepPoint p = make_point(Protocol::kHls, 6, small_spec());
  p.config.loss_rate = 0.05;
  const ExperimentResult original = run_experiment(p.protocol, p.config);

  const std::string json = result_to_cache_json(original);
  const auto restored = result_from_cache_json(json);
  ASSERT_TRUE(restored.has_value());
  // Field-wise equality down to Summary internals (samples + running
  // sums) — the warm-run byte-identity guarantee rests on this.
  EXPECT_TRUE(original == *restored);
  // Including derived statistics computed from the restored state:
  EXPECT_EQ(original.latency_factor.mean(), restored->latency_factor.mean());
  EXPECT_EQ(original.latency_factor.stddev(),
            restored->latency_factor.stddev());
  EXPECT_EQ(original.latency_factor.percentile(0.95),
            restored->latency_factor.percentile(0.95));
}

TEST_F(ResultStoreTest, ClusteredCountersRoundTripExactly) {
  // A clustered locality-bias point fills the four topology counters; the
  // cache record must carry them (a warm rerun re-emits the identical
  // cross-cluster fraction).
  SweepPoint p = make_point(Protocol::kHls, 8, small_spec());
  p.config.clusters = 2;
  p.config.intra_latency_mean = usec(50);
  p.config.inter_latency_mean = msec(20);
  p.config.engine_opts.locality_bias = true;
  const ExperimentResult original = run_experiment(p.protocol, p.config);
  EXPECT_GT(original.intra_cluster_messages, 0u);
  EXPECT_GT(original.cross_cluster_messages, 0u);
  EXPECT_EQ(original.intra_cluster_messages + original.cross_cluster_messages,
            original.messages);
  EXPECT_EQ(original.intra_cluster_bytes + original.cross_cluster_bytes,
            original.wire_bytes);

  const auto restored = result_from_cache_json(result_to_cache_json(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(original == *restored);
  EXPECT_EQ(original.cross_cluster_fraction(),
            restored->cross_cluster_fraction());
}

TEST_F(ResultStoreTest, PutThenGetAcrossInstances) {
  const SweepPoint p = make_point(Protocol::kNaimiPure, 4, small_spec());
  const ExperimentResult result = run_experiment(p.protocol, p.config);
  {
    ResultStore store(dir_, "hash-a");
    EXPECT_FALSE(store.get(p).has_value());
    store.put(p, result);
    EXPECT_EQ(store.stored(), 1u);
  }
  ResultStore reopened(dir_, "hash-a");
  const auto cached = reopened.get(p);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(result == *cached);
  EXPECT_EQ(reopened.hits(), 1u);
}

TEST_F(ResultStoreTest, WarmRunPerformsZeroSimulations) {
  const workload::WorkloadSpec spec = small_spec();
  std::vector<SweepPoint> points;
  for (const std::size_t n : {2ul, 4ul, 8ul})
    points.push_back(make_point(Protocol::kHls, n, spec));

  SweepOptions opts;
  opts.threads = 1;
  opts.cache_dir = dir_;
  opts.cache_build_hash = "hash-a";

  SweepRunner cold(opts);
  const auto cold_results = cold.run(points);
  EXPECT_EQ(cold.evaluations(), points.size());
  EXPECT_EQ(cold.disk_stored(), points.size());

  SweepRunner warm(opts);
  const auto warm_results = warm.run(points);
  // Zero simulations: every point came off disk.
  EXPECT_EQ(warm.evaluations(), 0u);
  EXPECT_EQ(warm.disk_hits(), points.size());
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (std::size_t i = 0; i < cold_results.size(); ++i)
    EXPECT_TRUE(cold_results[i] == warm_results[i]) << "point " << i;
}

TEST_F(ResultStoreTest, BuildHashMismatchForcesRecompute) {
  const SweepPoint p = make_point(Protocol::kHls, 4, small_spec());
  SweepOptions opts;
  opts.threads = 1;
  opts.cache_dir = dir_;

  opts.cache_build_hash = "build-a";
  SweepRunner first(opts);
  const auto a = first.run({p});
  EXPECT_EQ(first.evaluations(), 1u);

  // A different build hash must not serve build-a's entries.
  opts.cache_build_hash = "build-b";
  SweepRunner second(opts);
  const auto b = second.run({p});
  EXPECT_EQ(second.evaluations(), 1u);
  EXPECT_EQ(second.disk_hits(), 0u);
  EXPECT_TRUE(a[0] == b[0]);  // deterministic simulation regardless

  // build-b rewrote the file for itself; a third build-b runner hits.
  SweepRunner third(opts);
  third.run({p});
  EXPECT_EQ(third.evaluations(), 0u);
  EXPECT_EQ(third.disk_hits(), 1u);
}

TEST_F(ResultStoreTest, CorruptFileDegradesToMiss) {
  std::filesystem::create_directories(dir_);
  std::ofstream(file()) << "this is not json\n{\"nor\":\"this\"\n";
  ResultStore store(dir_, "hash-a");
  const SweepPoint p = make_point(Protocol::kHls, 2, small_spec());
  EXPECT_FALSE(store.get(p).has_value());  // no throw, just a miss
  EXPECT_GE(store.discarded(), 1u);

  // And the store recovers: a put rewrites the file usably.
  const ExperimentResult result = run_experiment(p.protocol, p.config);
  store.put(p, result);
  ResultStore reopened(dir_, "hash-a");
  EXPECT_TRUE(reopened.get(p).has_value());
}

TEST_F(ResultStoreTest, TruncatedTailKeepsEarlierEntries) {
  const SweepPoint p1 = make_point(Protocol::kHls, 2, small_spec());
  const SweepPoint p2 = make_point(Protocol::kHls, 3, small_spec());
  const ExperimentResult r1 = run_experiment(p1.protocol, p1.config);
  const ExperimentResult r2 = run_experiment(p2.protocol, p2.config);
  {
    ResultStore store(dir_, "hash-a");
    store.put(p1, r1);
    store.put(p2, r2);
  }
  // Chop the file mid-way through the last line (a crashed writer).
  const auto size = std::filesystem::file_size(file());
  std::filesystem::resize_file(file(), size - 40);

  ResultStore store(dir_, "hash-a");
  const auto cached1 = store.get(p1);
  ASSERT_TRUE(cached1.has_value());
  EXPECT_TRUE(r1 == *cached1);
  EXPECT_FALSE(store.get(p2).has_value());  // truncated entry: a miss
  EXPECT_EQ(store.discarded(), 1u);
}

TEST_F(ResultStoreTest, VersionMismatchInvalidatesWholeFile) {
  const SweepPoint p = make_point(Protocol::kHls, 2, small_spec());
  const ExperimentResult r = run_experiment(p.protocol, p.config);
  {
    ResultStore store(dir_, "hash-a");
    store.put(p, r);
  }
  // Bump the version in the header; everything below is untrusted.
  std::ifstream in(file());
  std::string header, rest, line;
  std::getline(in, header);
  while (std::getline(in, line)) rest += line + "\n";
  in.close();
  const auto at = header.find("\"version\":2");
  ASSERT_NE(at, std::string::npos);
  header.replace(at, 11, "\"version\":9");
  std::ofstream(file()) << header << "\n" << rest;

  ResultStore store(dir_, "hash-a");
  EXPECT_FALSE(store.get(p).has_value());
}

TEST_F(ResultStoreTest, ConcurrentWritersDontCorruptTheStore) {
  // Distinct points computed on 8 workers, all writing through the same
  // store. Every entry must be present and parseable afterwards. (The
  // TSan CI job runs this test to prove data-race freedom.)
  const workload::WorkloadSpec spec = small_spec();
  std::vector<SweepPoint> points;
  for (const std::size_t n : {2ul, 3ul, 4ul, 5ul, 6ul, 8ul, 10ul, 12ul}) {
    points.push_back(make_point(Protocol::kHls, n, spec));
    points.push_back(make_point(Protocol::kNaimiPure, n, spec));
  }

  SweepOptions opts;
  opts.threads = 8;
  opts.cache_dir = dir_;
  opts.cache_build_hash = "hash-a";
  SweepRunner writers(opts);
  const auto computed = writers.run(points);
  EXPECT_EQ(writers.disk_stored(), points.size());

  SweepRunner readers(opts);
  const auto reloaded = readers.run(points);
  EXPECT_EQ(readers.evaluations(), 0u);
  EXPECT_EQ(readers.disk_hits(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_TRUE(computed[i] == reloaded[i]) << "point " << i;
}

TEST_F(ResultStoreTest, CanonicalKeyCoversEveryField) {
  const SweepPoint base = make_point(Protocol::kHls, 8, small_spec());
  const std::string base_key = canonical_point_key(base);

  std::vector<SweepPoint> variants;
  {
    SweepPoint v = base;
    v.protocol = Protocol::kNaimiPure;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.nodes = 9;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.latency = LatencyKind::kConstant;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.loss_rate = 0.01;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.spec.seed = 99;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.spec.p_entry_read = 0.79;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.spec.home_bias = 0.25;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.engine_opts.enable_freezing = false;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.engine_opts.enable_priorities = true;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.shards = 4;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.spec.lock_count = 50'000;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.spec.zipf_theta = 0.9;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.engine_opts.locality_bias = true;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.engine_opts.locality_fairness_cap = 9;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.clusters = 4;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.placement = ClusterPlacement::kStripe;
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.intra_latency_mean = usec(100);
    variants.push_back(v);
  }
  {
    SweepPoint v = base;
    v.config.inter_latency_mean = msec(100);
    variants.push_back(v);
  }
  for (std::size_t i = 0; i < variants.size(); ++i)
    EXPECT_NE(canonical_point_key(variants[i]), base_key) << "variant " << i;
  // Identical points produce identical keys.
  EXPECT_EQ(canonical_point_key(base), base_key);
}

TEST_F(ResultStoreTest, UnwritableDirectoryIsNotAnError) {
  // The cache is best-effort: an unusable directory must not break the
  // sweep itself.
  SweepOptions opts;
  opts.threads = 1;
  opts.cache_dir = "/proc/definitely-not-writable/cache";
  opts.cache_build_hash = "hash-a";
  SweepRunner runner(opts);
  const SweepPoint p = make_point(Protocol::kHls, 2, small_spec());
  const auto results = runner.run({p});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(runner.evaluations(), 1u);
  EXPECT_EQ(runner.disk_stored(), 0u);
}

}  // namespace
