// Unit tests for the common substrate: strong ids, deterministic RNG,
// serialization buffers, statistics, Lamport clocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/lamport.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace hlock {
namespace {

// ---------------------------------------------------------------- types --

TEST(StrongId, DefaultIsInvalidAndDistinctFromRealIds) {
  NodeId none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(none, NodeId::invalid());
  NodeId a{0};
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a, none);
}

TEST(StrongId, OrderingAndHash) {
  NodeId a{1}, b{2}, b2{2};
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(b, b2);
  EXPECT_EQ(std::hash<NodeId>{}(b), std::hash<NodeId>{}(b2));
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(msec(15), 15'000);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_ms(msec(150)), 150.0);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, UniformCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(150.0);
  EXPECT_NEAR(sum / kSamples, 150.0, 5.0);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------- bytes --

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.str("hello");
  w.str("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  (void)r.u16();
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Bytes, BogusStringLengthThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

// ---------------------------------------------------------------- stats --

TEST(Summary, MeanMinMaxStd) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-9);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 1.0);
}

TEST(Summary, SealMakesAccessorsReadOnlyAndStable) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_FALSE(s.sealed());
  // Unsealed percentile() must answer without mutating internal state.
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_FALSE(s.sealed());

  s.seal();
  EXPECT_TRUE(s.sealed());
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 1.0);
  s.seal();  // idempotent
  EXPECT_TRUE(s.sealed());

  // Adding after a seal unseals; answers stay exact either way.
  s.add(1000.0);
  EXPECT_FALSE(s.sealed());
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1000.0);
}

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
}

TEST(CounterMap, IncrementGetTotalMerge) {
  CounterMap a;
  a.inc("x");
  a.inc("x", 2);
  a.inc("y");
  EXPECT_EQ(a.get("x"), 3u);
  EXPECT_EQ(a.get("missing"), 0u);
  EXPECT_EQ(a.total(), 4u);

  CounterMap b;
  b.inc("x", 10);
  b.inc("z");
  a.merge(b);
  EXPECT_EQ(a.get("x"), 13u);
  EXPECT_EQ(a.get("z"), 1u);
}

// -------------------------------------------------------------- lamport --

TEST(Lamport, TickIsMonotone) {
  LamportClock c(NodeId{1});
  const auto s1 = c.tick();
  const auto s2 = c.tick();
  EXPECT_LT(s1, s2);
}

TEST(Lamport, ObserveAdvancesPastRemote) {
  LamportClock c(NodeId{1});
  (void)c.tick();
  c.observe(LamportStamp{100, NodeId{2}});
  EXPECT_GT(c.tick(), (LamportStamp{100, NodeId{2}}));
}

TEST(Lamport, TotalOrderBreaksTiesByNode) {
  const LamportStamp a{5, NodeId{1}};
  const LamportStamp b{5, NodeId{2}};
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a < b || b < a || a == b);
}

}  // namespace
}  // namespace hlock
