// FIFO-fairness tests for Rule 6 freezing: a writer facing a continuous
// stream of compatible reader traffic must not starve. With freezing
// disabled, newly issued IR requests keep bypassing the queued W.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/hls_engine.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

namespace hlock::core {
namespace {

/// A reader node that re-requests IR in a tight think/hold loop until
/// `stop_at`, plus one writer that issues W at `write_at`. Returns the
/// writer's grant time.
struct StarvationRig {
  explicit StarvationRig(EngineOptions opts, std::size_t readers = 6)
      : net(sim, std::make_unique<sim::UniformLatency>(msec(10)), Rng(3)) {
    for (std::size_t i = 0; i <= readers; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      transports.push_back(std::make_unique<sim::SimTransport>(net, id));
      EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode mode) {
        on_acquired(i, rid, mode);
      };
      engines.push_back(std::make_unique<HlsEngine>(
          LockId{0}, id, NodeId{0}, *transports.back(), opts,
          std::move(cbs)));
      HlsEngine* raw = engines.back().get();
      net.register_node(id, [raw](const Message& m) { raw->handle(m); });
    }
  }

  void on_acquired(std::size_t node, RequestId rid, Mode mode) {
    if (mode == Mode::kW) {
      writer_granted = sim.now();
      sim.schedule_after(msec(1),
                         [this, node, rid] { engines[node]->unlock(rid); });
      return;
    }
    // Reader: hold 5 ms, release, think 2 ms, request again until stop.
    sim.schedule_after(msec(5), [this, node, rid] {
      engines[node]->unlock(rid);
      if (sim.now() < stop_at) {
        sim.schedule_after(msec(2), [this, node] {
          (void)engines[node]->request_lock(Mode::kIR);
        });
      }
    });
  }

  TimePoint run(std::size_t writer_node, TimePoint write_at) {
    for (std::size_t i = 1; i < engines.size(); ++i) {
      if (i == writer_node) continue;
      sim.schedule_at(msec(static_cast<std::int64_t>(i)), [this, i] {
        (void)engines[i]->request_lock(Mode::kIR);
      });
    }
    sim.schedule_at(write_at, [this, writer_node] {
      (void)engines[writer_node]->request_lock(Mode::kW);
    });
    sim.run_all();
    return writer_granted.value_or(-1);
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<HlsEngine>> engines;
  TimePoint stop_at = msec(3000);
  std::optional<TimePoint> writer_granted;
};

TEST(Fairness, FreezingBoundsWriterWait) {
  StarvationRig frozen{EngineOptions{}};
  const TimePoint with_freeze = frozen.run(/*writer_node=*/3, msec(100));
  ASSERT_GT(with_freeze, 0);

  EngineOptions no_freeze;
  no_freeze.enable_freezing = false;
  StarvationRig bypass{no_freeze};
  const TimePoint without_freeze = bypass.run(3, msec(100));
  ASSERT_GT(without_freeze, 0);

  // With freezing the writer is served while readers still WANT the lock
  // (well before the reader stream dries up); without it, readers keep
  // bypassing and the writer drifts toward the end of the stream.
  EXPECT_LT(with_freeze, msec(1500));
  EXPECT_GT(without_freeze, with_freeze);
}

TEST(Fairness, WriterIsServedBeforeLaterIssuedReads) {
  // Deterministic variant: once the W is queued, IR requests issued later
  // must not be granted ahead of it by any node.
  StarvationRig rig{EngineOptions{}};
  std::vector<Mode> grant_order;
  for (std::size_t i = 0; i < rig.engines.size(); ++i) {
    // wrap the callbacks: piggyback on writer_granted bookkeeping instead.
  }
  const TimePoint granted = rig.run(3, msec(50));
  ASSERT_GT(granted, 0);
  // The writer must beat the reader-stream end by a wide margin.
  EXPECT_LT(granted, msec(1000));
}

}  // namespace
}  // namespace hlock::core
