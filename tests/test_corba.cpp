// End-to-end tests of the CosConcurrency-style facade over real TCP
// sockets: multiple nodes, multiple application threads, blocking locks,
// try_lock, upgrades and downgrades.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "corba/concurrency.hpp"
#include "net/cluster.hpp"

namespace hlock::corba {
namespace {

constexpr LockId kTable{0};

struct Fixture {
  explicit Fixture(std::size_t n) : cluster(n) {
    services.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      services.push_back(std::make_unique<ConcurrencyService>(cluster.node(i)));
    }
    for (auto& s : services) s->create_lock_set(kTable, NodeId{0});
  }
  net::InProcessCluster cluster;
  std::vector<std::unique_ptr<ConcurrencyService>> services;
};

TEST(CorbaService, LockUnlockAcrossTwoNodes) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  LockSet b = f.services[1]->lock_set(kTable);

  const LockHandle ha = a.lock(LockMode::kWrite);
  EXPECT_EQ(ha.mode, Mode::kW);
  a.unlock(ha);

  const LockHandle hb = b.lock(LockMode::kWrite);
  EXPECT_EQ(hb.mode, Mode::kW);
  b.unlock(hb);
}

TEST(CorbaService, ConcurrentReadersShareTheLock) {
  Fixture f(3);
  std::vector<std::thread> threads;
  std::atomic<int> holding{0};
  std::atomic<bool> all_overlapped{false};
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      LockSet set = f.services[static_cast<std::size_t>(i)]->lock_set(kTable);
      const LockHandle h = set.lock(LockMode::kRead);
      holding.fetch_add(1);
      // Barrier: nobody releases until all three hold R simultaneously
      // (or a generous deadline proves sharing is broken).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (holding.load() < 3 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (holding.load() == 3) all_overlapped.store(true);
      set.unlock(h);
    });
  }
  for (auto& t : threads) t.join();
  // All three readers must have overlapped (reads are compatible).
  EXPECT_TRUE(all_overlapped.load());
}

TEST(CorbaService, WritersExclude) {
  Fixture f(2);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      LockSet set = f.services[static_cast<std::size_t>(i)]->lock_set(kTable);
      for (int round = 0; round < 5; ++round) {
        const LockHandle h = set.lock(LockMode::kWrite);
        if (inside.fetch_add(1) != 0) overlap.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        inside.fetch_sub(1);
        set.unlock(h);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
}

TEST(CorbaService, TryLockSucceedsLocallyFailsRemotely) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);  // node 0 starts as root
  LockSet b = f.services[1]->lock_set(kTable);

  // Node 0 holds the token: a local try_lock must succeed.
  const auto ha = a.try_lock(LockMode::kWrite);
  ASSERT_TRUE(ha.has_value());
  // Node 1 owns nothing: try_lock cannot succeed without messages.
  const auto hb = b.try_lock(LockMode::kRead);
  EXPECT_FALSE(hb.has_value());
  a.unlock(*ha);
}

TEST(CorbaService, UpgradeChangesUToW) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  const LockHandle h = a.lock(LockMode::kUpgrade);
  EXPECT_EQ(h.mode, Mode::kU);
  const LockHandle w = a.change_mode(h, LockMode::kWrite);
  EXPECT_EQ(w.mode, Mode::kW);
  a.unlock(w);
}

TEST(CorbaService, UpgradeWaitsForReadersToDrain) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  LockSet b = f.services[1]->lock_set(kTable);

  const LockHandle hu = a.lock(LockMode::kUpgrade);
  const LockHandle hr = b.lock(LockMode::kRead);  // R is compatible with U

  std::atomic<bool> upgraded{false};
  std::thread up([&] {
    const LockHandle hw = a.change_mode(hu, LockMode::kWrite);
    upgraded.store(true);
    a.unlock(hw);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(upgraded.load());  // blocked on the reader
  b.unlock(hr);
  up.join();
  EXPECT_TRUE(upgraded.load());
}

TEST(CorbaService, DowngradeIsImmediate) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  const LockHandle hw = a.lock(LockMode::kWrite);
  const LockHandle hr = a.change_mode(hw, LockMode::kRead);
  EXPECT_EQ(hr.mode, Mode::kR);

  // A remote reader can now share.
  LockSet b = f.services[1]->lock_set(kTable);
  const LockHandle hb = b.lock(LockMode::kRead);
  b.unlock(hb);
  a.unlock(hr);
}

TEST(CorbaService, UnsafeModeChangeIsRejected) {
  Fixture f(1);
  LockSet a = f.services[0]->lock_set(kTable);
  const LockHandle hu = a.lock(LockMode::kUpgrade);
  // U -> IW would invalidate concurrent readers; must be refused.
  EXPECT_THROW(a.change_mode(hu, LockMode::kIntentionWrite), std::logic_error);
  a.unlock(hu);
}

TEST(CorbaService, DropLocksReleasesEverything) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  (void)a.lock(LockMode::kIntentionRead);
  (void)a.lock(LockMode::kIntentionRead);
  f.services[0]->drop_locks(kTable);

  // A remote writer can now proceed (nothing is still held).
  LockSet b = f.services[1]->lock_set(kTable);
  const LockHandle hb = b.lock(LockMode::kWrite);
  b.unlock(hb);
}

TEST(CorbaService, IntentThenLeafHierarchy) {
  // Two lock sets: table + one entry, exercised the way the paper's
  // workload uses them (intent on the table, leaf mode on the entry).
  net::InProcessCluster cluster(2);
  std::vector<std::unique_ptr<ConcurrencyService>> services;
  for (std::size_t i = 0; i < 2; ++i) {
    services.push_back(std::make_unique<ConcurrencyService>(cluster.node(i)));
    services.back()->create_lock_set(LockId{0}, NodeId{0});
    services.back()->create_lock_set(LockId{1}, NodeId{1});
  }
  LockSet table0 = services[0]->lock_set(LockId{0});
  LockSet entry0 = services[0]->lock_set(LockId{1});
  LockSet table1 = services[1]->lock_set(LockId{0});

  const LockHandle it0 = table0.lock(LockMode::kIntentionWrite);
  const LockHandle le0 = entry0.lock(LockMode::kWrite);
  // Concurrent intent write on the table from the other node is allowed.
  const LockHandle it1 = table1.lock(LockMode::kIntentionWrite);
  table1.unlock(it1);
  entry0.unlock(le0);
  table0.unlock(it0);
}

TEST(CorbaService, GracefulLeaveOverTcp) {
  Fixture f(3);
  LockSet a = f.services[0]->lock_set(kTable);
  LockSet b = f.services[1]->lock_set(kTable);
  LockSet c = f.services[2]->lock_set(kTable);

  // Give everyone some history so the tree is non-trivial.
  const auto ha = a.lock(LockMode::kRead);
  const auto hb = b.lock(LockMode::kRead);
  a.unlock(ha);
  b.unlock(hb);

  // Whoever holds the token can leave to node 2; the others just leave.
  // Node 0 started as root; after read traffic the token may have moved,
  // so pass a successor unconditionally (ignored by non-roots).
  f.services[0]->leave(kTable, NodeId{2});
  const auto hc = c.lock(LockMode::kWrite);  // cluster still fully works
  c.unlock(hc);
  f.services[1]->leave(kTable, NodeId{2});
  const auto hc2 = c.lock(LockMode::kUpgrade);
  const auto hw = c.change_mode(hc2, LockMode::kWrite);
  c.unlock(hw);
}

TEST(CorbaService, LeaveWithLiveHoldsIsRefused) {
  Fixture f(2);
  LockSet a = f.services[0]->lock_set(kTable);
  const auto ha = a.lock(LockMode::kRead);
  EXPECT_THROW(f.services[0]->leave(kTable, NodeId{1}), std::logic_error);
  a.unlock(ha);
}

}  // namespace
}  // namespace hlock::corba
