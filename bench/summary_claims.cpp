// §6 headline claims at the paper's largest configuration (120 nodes):
//   * message overhead: ~3 (ours) vs ~4 (Naimi pure) — ours ~20% lower
//   * latency factor:   ~90 (ours) vs ~160 (Naimi pure)
//   * logarithmic asymptote of message overhead is preserved despite the
//     hierarchical modes
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 80;
  constexpr std::size_t kNodes = 120;

  const auto ours = run_experiment(Protocol::kHls, kNodes, spec);
  const auto pure = run_experiment(Protocol::kNaimiPure, kNodes, spec);

  std::cout << "Conclusion (§6) claims at " << kNodes << " nodes\n\n";
  TablePrinter table({"metric", "paper ours", "measured ours", "paper naimi",
                      "measured naimi"});
  table.row({"messages per lock request", "~3",
             TablePrinter::num(ours.msgs_per_lock_request()), "~4",
             TablePrinter::num(pure.msgs_per_lock_request())});
  table.row({"latency factor", "~90",
             TablePrinter::num(ours.latency_factor.mean(), 1), "~160",
             TablePrinter::num(pure.latency_factor.mean(), 1)});
  table.print(std::cout);

  const double savings =
      1.0 - ours.msgs_per_lock_request() / pure.msgs_per_lock_request();
  std::cout << "\nmessage-rate advantage of ours over naimi pure: "
            << TablePrinter::num(savings * 100, 1)
            << "% (paper: ~20% lower)\n";

  // Asymptote check: overhead growth from 60 to 120 nodes should be small
  // (logarithmic flattening), not proportional to the node count.
  workload::WorkloadSpec half = spec;
  const auto ours60 = run_experiment(Protocol::kHls, 60, half);
  const double growth =
      ours.msgs_per_lock_request() / ours60.msgs_per_lock_request();
  std::cout << "overhead growth 60 -> 120 nodes: x"
            << TablePrinter::num(growth)
            << " (flat/logarithmic expected, 2.0 would be linear)\n";
  return 0;
}
