// §6 headline claims at the paper's largest configuration (120 nodes):
//   * message overhead: ~3 (ours) vs ~4 (Naimi pure) — ours ~20% lower
//   * latency factor:   ~90 (ours) vs ~160 (Naimi pure)
//   * logarithmic asymptote of message overhead is preserved despite the
//     hierarchical modes
//
// The headline table and the asymptote check each ask the SweepRunner for
// the points they need; the 120-node HLS run they share is computed once
// (memo cache) — the second request is a hit.
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: summary_claims [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 80;
  bench::apply(cli, spec);
  const std::size_t kNodes = cli.nodes != 0 ? cli.nodes : 120;

  SweepRunner runner(bench::sweep_options(cli));

  const auto headline = runner.run({make_point(Protocol::kHls, kNodes, spec),
                                    make_point(Protocol::kNaimiPure, kNodes,
                                               spec)});
  const auto& ours = headline[0];
  const auto& pure = headline[1];

  std::cout << "Conclusion (§6) claims at " << kNodes << " nodes\n\n";
  TablePrinter table({"metric", "paper ours", "measured ours", "paper naimi",
                      "measured naimi"});
  table.row({"messages per lock request", "~3",
             TablePrinter::num(ours.msgs_per_lock_request()), "~4",
             TablePrinter::num(pure.msgs_per_lock_request())});
  table.row({"latency factor", "~90",
             TablePrinter::num(ours.latency_factor.mean(), 1), "~160",
             TablePrinter::num(pure.latency_factor.mean(), 1)});
  table.print(std::cout);

  const double savings =
      1.0 - ours.msgs_per_lock_request() / pure.msgs_per_lock_request();
  std::cout << "\nmessage-rate advantage of ours over naimi pure: "
            << TablePrinter::num(savings * 100, 1)
            << "% (paper: ~20% lower)\n";

  // Asymptote check: overhead growth from half to full node count should
  // be small (logarithmic flattening), not proportional to the node
  // count. The full-size point repeats the headline table's and comes
  // from the memo cache.
  const auto asymptote =
      runner.run({make_point(Protocol::kHls, kNodes / 2, spec),
                  make_point(Protocol::kHls, kNodes, spec)});
  const double growth = asymptote[1].msgs_per_lock_request() /
                        asymptote[0].msgs_per_lock_request();
  std::cout << "overhead growth " << kNodes / 2 << " -> " << kNodes
            << " nodes: x" << TablePrinter::num(growth)
            << " (flat/logarithmic expected, 2.0 would be linear)\n";
  if (cli.memo && cli.repeat == 1)
    std::cout << "(sweep runner: " << runner.memo_misses() << " runs, "
              << runner.memo_hits() << " memo hits)\n";
  return 0;
}
