// Extension bench: priority arbitration (intro's "strict priority
// ordering", following Mueller's prioritized token protocols [11,12]).
// Measures acquisition latency of a high-priority request class vs a
// low-priority background class under write contention, with and without
// the extension.
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "common/stats.hpp"
#include "harness/sweep_runner.hpp"
#include "core/hls_engine.hpp"
#include "harness/experiment.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

using namespace hlock;

namespace {

struct Rig {
  explicit Rig(core::EngineOptions opts, std::size_t n)
      : net(sim, std::make_unique<sim::UniformLatency>(msec(20)), Rng(11)) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      transports.push_back(std::make_unique<sim::SimTransport>(net, id));
      core::EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode) {
        on_acquired(i, rid);
      };
      engines.push_back(std::make_unique<core::HlsEngine>(
          LockId{0}, id, NodeId{0}, *transports.back(), opts,
          std::move(cbs)));
      core::HlsEngine* raw = engines.back().get();
      net.register_node(id, [raw](const Message& m) { raw->handle(m); });
    }
  }

  void on_acquired(std::size_t node, RequestId rid) {
    const double wait = static_cast<double>(sim.now() - issued[node]);
    (priority_of[node] > 0 ? high : low).add(wait / 1000.0);  // ms
    sim.schedule_after(msec(5), [this, node, rid] {
      engines[node]->unlock(rid);
      maybe_request_again(node);
    });
  }

  void maybe_request_again(std::size_t node) {
    if (rounds[node] == 0) return;
    --rounds[node];
    sim.schedule_after(msec(5), [this, node] {
      issued[node] = sim.now();
      (void)engines[node]->request_lock(Mode::kW, priority_of[node]);
    });
  }

  void run(int rounds_per_node) {
    rounds.assign(engines.size(), rounds_per_node);
    issued.assign(engines.size(), 0);
    priority_of.assign(engines.size(), 0);
    priority_of[1] = 10;  // node 1 is the high-priority client
    for (std::size_t i = 0; i < engines.size(); ++i) maybe_request_again(i);
    sim.run_all();
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsEngine>> engines;
  std::vector<int> rounds;
  std::vector<TimePoint> issued;
  std::vector<std::uint8_t> priority_of;
  Summary high, low;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, "usage: priority_arbitration [--threads N]\n");
  std::vector<std::vector<std::string>> rows(2);
  harness::SweepRunner runner(bench::sweep_options(cli));
  runner.for_each_index(2, [&](std::size_t i) {
    const bool enabled = i == 1;
    core::EngineOptions opts;
    opts.enable_priorities = enabled;
    Rig rig(opts, 10);
    rig.run(40);
    rows[i] = {enabled ? "priorities on" : "priorities off (FIFO)",
               harness::TablePrinter::num(rig.high.mean(), 1),
               harness::TablePrinter::num(rig.high.percentile(0.95), 1),
               harness::TablePrinter::num(rig.low.mean(), 1),
               harness::TablePrinter::num(rig.low.percentile(0.95), 1)};
  });

  std::cout << "Priority arbitration extension: W-contended lock, node 1 at "
               "priority 10, others at 0 (latency in ms)\n\n";
  harness::TablePrinter table({"config", "high-prio mean", "high-prio p95",
                               "background mean", "background p95"});
  for (const auto& row : rows) table.row(row);
  table.print(std::cout);
  std::cout << "\nexpected: enabling priorities cuts the high-priority "
               "client's wait sharply at modest background cost\n";
  return 0;
}
