// Figure 5 — "Scalability Behavior": average number of messages per lock
// request vs number of nodes, for our protocol, Naimi pure and Naimi same
// work, under the paper's workload (IR/R/U/IW/W = 80/10/4/5/1 %, CS 15 ms,
// idle 150 ms, latency 150 ms).
//
// Paper's reading: our protocol flattens at ~3 messages, Naimi pure at ~4
// (ours ~20 % lower despite richer functionality), Naimi same work grows
// superlinearly.
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Figure 5: message overhead (messages per lock request)\n"
            << "workload: IR/R/U/IW/W = 80/10/4/5/1%, cs=15ms, idle=150ms, "
               "net=150ms, seed=" << spec.seed << "\n\n";

  TablePrinter table({"nodes", "our-protocol", "naimi-pure",
                      "naimi-same-work", "same-work msgs/op"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    const auto ours = run_experiment(Protocol::kHls, n, spec);
    const auto pure = run_experiment(Protocol::kNaimiPure, n, spec);
    const auto same = run_experiment(Protocol::kNaimiSameWork, n, spec);
    table.row({std::to_string(n),
               TablePrinter::num(ours.msgs_per_lock_request()),
               TablePrinter::num(pure.msgs_per_lock_request()),
               TablePrinter::num(same.msgs_per_lock_request()),
               TablePrinter::num(same.msgs_per_op())});
  }
  table.print(std::cout);

  std::cout << "\npaper: ours -> ~3 asymptote | naimi pure -> ~4 (ours ~20% "
               "lower) | same work superlinear\n";
  return 0;
}
