// Figure 5 — "Scalability Behavior": average number of messages per lock
// request vs number of nodes, for our protocol, Naimi pure and Naimi same
// work, under the paper's workload (IR/R/U/IW/W = 80/10/4/5/1 %, CS 15 ms,
// idle 150 ms, latency 150 ms).
//
// Paper's reading: our protocol flattens at ~3 messages, Naimi pure at ~4
// (ours ~20 % lower despite richer functionality), Naimi same work grows
// superlinearly.
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: fig5_message_overhead [--nodes N] [--ops N] [--seed S]\n"
      "         [--threads N] [--repeat N] [--no-memo] [--json]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  std::vector<SweepPoint> points;
  const auto node_counts = bench::sweep_nodes(cli);
  for (const std::size_t n : node_counts) {
    points.push_back(make_point(Protocol::kHls, n, spec));
    points.push_back(make_point(Protocol::kNaimiPure, n, spec));
    points.push_back(make_point(Protocol::kNaimiSameWork, n, spec));
  }
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  if (cli.json) {
    write_json_array(std::cout, results);
    return 0;
  }

  std::cout << "Figure 5: message overhead (messages per lock request)\n"
            << "workload: IR/R/U/IW/W = 80/10/4/5/1%, cs=15ms, idle=150ms, "
               "net=150ms, seed=" << spec.seed << "\n\n";

  TablePrinter table({"nodes", "our-protocol", "naimi-pure",
                      "naimi-same-work", "same-work msgs/op"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& ours = results[3 * i];
    const auto& pure = results[3 * i + 1];
    const auto& same = results[3 * i + 2];
    table.row({std::to_string(node_counts[i]),
               TablePrinter::num(ours.msgs_per_lock_request()),
               TablePrinter::num(pure.msgs_per_lock_request()),
               TablePrinter::num(same.msgs_per_lock_request()),
               TablePrinter::num(same.msgs_per_op())});
  }
  table.print(std::cout);

  std::cout << "\npaper: ours -> ~3 asymptote | naimi pure -> ~4 (ours ~20% "
               "lower) | same work superlinear\n";
  return 0;
}
