// Topology locality — a figure family the paper never had: the same
// workload on a flat network vs a clustered one (cheap intra-cluster
// hops, expensive inter-cluster hops), with the locality-biased token
// hand-off off and on.
//
// Four points, one workload:
//   flat/bias-off        today's simulator, unchanged
//   flat/bias-on         must be IDENTICAL to flat/bias-off — the bias is
//                        inert without a cluster map (checked, exit 1)
//   clustered/bias-off   FIFO token service pays the boundary cost blindly
//   clustered/bias-on    token batches same-cluster waiters under the
//                        fairness cap before crossing the boundary
//
// The headline claim — clustered/bias-on has a strictly lower
// cross-cluster message fraction and mean latency factor than
// clustered/bias-off, at identical app_ops and lock_requests — is
// asserted by the binary itself (exit 1 on regression), so CI enforces
// it on every run.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

namespace {

struct Point {
  const char* label;
  hlock::harness::SweepPoint sweep;
};

std::string point_json(const Point& p,
                       const hlock::harness::ExperimentResult& r) {
  using hlock::harness::json_double;
  const hlock::harness::ClusterConfig& c = p.sweep.config;
  std::ostringstream os;
  os << "{\"label\":\"" << p.label << "\",\"nodes\":" << c.nodes
     << ",\"clusters\":" << c.clusters << ",\"locality_bias\":"
     << (c.engine_opts.locality_bias ? "true" : "false")
     << ",\"fairness_cap\":"
     << static_cast<unsigned>(c.engine_opts.locality_fairness_cap)
     << ",\"intra_latency_us\":" << c.intra_latency_mean
     << ",\"inter_latency_us\":" << c.inter_latency_mean
     << ",\"cross_cluster_fraction\":" << json_double(r.cross_cluster_fraction())
     << ",\"result\":" << to_json(r) << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  bench::CliOptions defaults;
  defaults.nodes = 32;
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: topology_locality [--nodes N] [--ops N] [--seed S]\n"
      "         [--clusters N] [--intra-latency-ms M] [--inter-latency-ms M]\n"
      "         [--fairness-cap N] [--threads N] [--repeat N] [--no-memo]\n"
      "         [--json]\n",
      defaults);

  workload::WorkloadSpec spec;
  spec.ops_per_node = 40;
  bench::apply(cli, spec);

  const std::size_t clusters = cli.clusters != 0 ? cli.clusters : 4;
  ClusterConfig flat;
  flat.nodes = cli.nodes;
  flat.spec = spec;

  ClusterConfig clustered = flat;
  clustered.clusters = clusters;
  clustered.intra_latency_mean = cli.intra_latency_ms > 0.0
                                     ? static_cast<Duration>(
                                           cli.intra_latency_ms * 1000.0)
                                     : usec(50);
  clustered.inter_latency_mean = cli.inter_latency_ms > 0.0
                                     ? static_cast<Duration>(
                                           cli.inter_latency_ms * 1000.0)
                                     : msec(50);

  const auto biased = [&](ClusterConfig c) {
    c.engine_opts.locality_bias = true;
    if (cli.fairness_cap != 0)
      c.engine_opts.locality_fairness_cap =
          static_cast<std::uint8_t>(cli.fairness_cap);
    return c;
  };

  std::vector<Point> points = {
      {"flat/bias-off", {Protocol::kHls, flat}},
      {"flat/bias-on", {Protocol::kHls, biased(flat)}},
      {"clustered/bias-off", {Protocol::kHls, clustered}},
      {"clustered/bias-on", {Protocol::kHls, biased(clustered)}},
  };

  SweepRunner runner(bench::sweep_options(cli));
  std::vector<SweepPoint> sweep;
  sweep.reserve(points.size());
  for (const Point& p : points) sweep.push_back(p.sweep);
  const std::vector<ExperimentResult> results = runner.run(sweep);

  const ExperimentResult& flat_off = results[0];
  const ExperimentResult& flat_on = results[1];
  const ExperimentResult& clu_off = results[2];
  const ExperimentResult& clu_on = results[3];

  // Self-checks (the PR's acceptance criteria, enforced on every run).
  if (!(flat_on == flat_off)) {
    std::cerr << "FAIL: locality bias changed a flat-topology run — it "
                 "must be inert without a cluster map\n";
    return 1;
  }
  if (clu_on.app_ops != clu_off.app_ops ||
      clu_on.lock_requests != clu_off.lock_requests) {
    std::cerr << "FAIL: bias changed the work done (app_ops "
              << clu_on.app_ops << " vs " << clu_off.app_ops
              << ", lock_requests " << clu_on.lock_requests << " vs "
              << clu_off.lock_requests << ")\n";
    return 1;
  }
  if (!(clu_on.cross_cluster_fraction() < clu_off.cross_cluster_fraction())) {
    std::cerr << "FAIL: bias-on cross-cluster fraction "
              << clu_on.cross_cluster_fraction()
              << " not strictly below bias-off "
              << clu_off.cross_cluster_fraction() << "\n";
    return 1;
  }
  if (!(clu_on.latency_factor.mean() < clu_off.latency_factor.mean())) {
    std::cerr << "FAIL: bias-on mean latency factor "
              << clu_on.latency_factor.mean()
              << " not strictly below bias-off "
              << clu_off.latency_factor.mean() << "\n";
    return 1;
  }

  if (cli.json) {
    std::cout << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::cout << "  " << point_json(points[i], results[i]);
      if (i + 1 < points.size()) std::cout << ",";
      std::cout << "\n";
    }
    std::cout << "]\n";
    return 0;
  }

  std::cout << "Topology locality: flat vs clustered x locality bias\n"
            << "nodes=" << flat.nodes << " clusters=" << clusters
            << " intra=" << clustered.intra_latency_mean / 1000.0
            << "ms inter=" << clustered.inter_latency_mean / 1000.0
            << "ms ops=" << spec.ops_per_node << " seed=" << spec.seed
            << "\n\n";

  TablePrinter table({"config", "msgs/req", "cross-frac", "latency-mean",
                      "latency-p95"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ExperimentResult& r = results[i];
    table.row({points[i].label, TablePrinter::num(r.msgs_per_lock_request()),
               TablePrinter::num(r.cross_cluster_fraction()),
               TablePrinter::num(r.latency_factor.mean()),
               TablePrinter::num(r.latency_factor.percentile(0.95))});
  }
  table.print(std::cout);

  std::cout << "\nbias batches same-cluster hand-offs (fairness cap "
            << static_cast<unsigned>(
                   biased(clustered).engine_opts.locality_fairness_cap)
            << "): cross-cluster fraction "
            << TablePrinter::num(clu_off.cross_cluster_fraction()) << " -> "
            << TablePrinter::num(clu_on.cross_cluster_fraction())
            << ", mean latency factor "
            << TablePrinter::num(clu_off.latency_factor.mean()) << " -> "
            << TablePrinter::num(clu_on.latency_factor.mean()) << "\n";
  return 0;
}
