#include "bench/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>

#include "common/parse.hpp"
#include "harness/experiment.hpp"

namespace hlock::bench {

namespace {

[[noreturn]] void usage_error(const std::string& what, const char* usage) {
  std::cerr << "error: " << what << "\n" << usage;
  std::exit(2);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

// Strict flag-value parsing: the whole token must be a number, otherwise
// it is a usage error — never a silent 0/truncation like the strtoul
// calls these replaced ("--nodes abc" used to run the binary-default
// sweep, "--seed 12x" the wrong seed).
std::size_t parse_size(const std::string& flag, const std::string& text,
                       const char* usage) {
  const auto v = try_parse_size(text);
  if (!v) usage_error(flag + " expects an unsigned integer, got '" + text +
                      "'", usage);
  return *v;
}

std::uint32_t parse_u32(const std::string& flag, const std::string& text,
                        const char* usage) {
  const auto v = try_parse_u32(text);
  if (!v) usage_error(flag + " expects an unsigned 32-bit integer, got '" +
                      text + "'", usage);
  return *v;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text,
                        const char* usage, int base) {
  const auto v = try_parse_u64(text, base);
  if (!v) usage_error(flag + " expects an unsigned integer, got '" + text +
                      "'", usage);
  return *v;
}

int parse_int(const std::string& flag, const std::string& text,
              const char* usage) {
  const auto v = try_parse_int(text);
  if (!v) usage_error(flag + " expects an integer, got '" + text + "'",
                      usage);
  return *v;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, const char* usage,
                     CliOptions defaults, const ExtraFlag& extra) {
  CliOptions opt = defaults;
  bool disk_cache = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (++i >= argc) usage_error("missing value for " + arg, usage);
      return argv[i];
    };
    if (arg == "--nodes") {
      opt.nodes = parse_size(arg, value(), usage);
    } else if (all_digits(arg)) {
      opt.nodes = parse_size("--nodes", arg, usage);
    } else if (arg == "--ops") {
      opt.ops = parse_u32(arg, value(), usage);
    } else if (arg == "--seed") {
      // base 0: decimal or 0x-prefixed hex.
      opt.seed = parse_u64(arg, value(), usage, 0);
      opt.seed_set = true;
    } else if (arg == "--threads") {
      opt.threads = parse_size(arg, value(), usage);
    } else if (arg == "--repeat") {
      opt.repeat = parse_int(arg, value(), usage);
      if (opt.repeat < 1) usage_error("--repeat must be >= 1", usage);
    } else if (arg == "--shards") {
      opt.shards = parse_size(arg, value(), usage);
      if (opt.shards == 0) usage_error("--shards must be >= 1", usage);
    } else if (arg == "--lock-count") {
      opt.lock_count = parse_u32(arg, value(), usage);
      if (opt.lock_count == 0)
        usage_error("--lock-count must be >= 1", usage);
    } else if (arg == "--zipf") {
      const std::string text = value();
      const auto z = try_parse_double(text);
      if (!z || !(*z >= 0.0))
        usage_error("--zipf expects a number >= 0, got '" + text + "'",
                    usage);
      opt.zipf = *z;
      opt.zipf_set = true;
    } else if (arg == "--clusters") {
      opt.clusters = parse_size(arg, value(), usage);
      if (opt.clusters == 0) usage_error("--clusters must be >= 1", usage);
    } else if (arg == "--intra-latency-ms" || arg == "--inter-latency-ms") {
      const std::string text = value();
      const auto ms = try_parse_double(text);
      if (!ms || !(*ms > 0.0))
        usage_error(arg + " expects a number > 0, got '" + text + "'",
                    usage);
      (arg == "--intra-latency-ms" ? opt.intra_latency_ms
                                   : opt.inter_latency_ms) = *ms;
    } else if (arg == "--locality-bias") {
      opt.locality_bias = true;
    } else if (arg == "--fairness-cap") {
      opt.fairness_cap = parse_u32(arg, value(), usage);
      if (opt.fairness_cap == 0 || opt.fairness_cap > 255)
        usage_error("--fairness-cap must be in 1..255", usage);
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--no-memo") {
      opt.memo = false;
    } else if (arg == "--cache-dir") {
      opt.cache_dir = value();
      if (opt.cache_dir.empty())
        usage_error("--cache-dir expects a directory", usage);
    } else if (arg == "--no-disk-cache") {
      disk_cache = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      std::exit(0);
    } else if (extra && extra(arg, value)) {
      // consumed by the binary-specific handler
    } else {
      usage_error("unknown argument " + arg, usage);
    }
  }
  // HLOCK_CACHE_DIR opts whole shells/CI jobs into the disk cache without
  // touching each command line; an explicit --cache-dir wins, and
  // --no-disk-cache turns both off.
  if (opt.cache_dir.empty()) {
    if (const char* env = std::getenv("HLOCK_CACHE_DIR"))
      opt.cache_dir = *env != '\0' ? env : ".hlock-cache";
  }
  if (!disk_cache) opt.cache_dir.clear();
  return opt;
}

void apply(const CliOptions& cli, workload::WorkloadSpec& spec) {
  if (cli.ops != 0) spec.ops_per_node = cli.ops;
  if (cli.seed_set) spec.seed = cli.seed;
  if (cli.lock_count != 0) spec.lock_count = cli.lock_count;
  if (cli.zipf_set) spec.zipf_theta = cli.zipf;
}

harness::SweepOptions sweep_options(const CliOptions& cli) {
  harness::SweepOptions opts;
  opts.threads = cli.threads;
  opts.memoize = cli.memo;
  opts.repeat = cli.repeat;
  opts.cache_dir = cli.cache_dir;
  return opts;
}

std::vector<std::size_t> sweep_nodes(const CliOptions& cli) {
  return harness::sweep_node_counts(cli.nodes != 0 ? cli.nodes : 120);
}

}  // namespace hlock::bench
