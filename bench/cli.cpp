#include "bench/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

namespace hlock::bench {

namespace {

[[noreturn]] void usage_error(const std::string& what, const char* usage) {
  std::cerr << "error: " << what << "\n" << usage;
  std::exit(2);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, const char* usage,
                     CliOptions defaults, const ExtraFlag& extra) {
  CliOptions opt = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (++i >= argc) usage_error("missing value for " + arg, usage);
      return argv[i];
    };
    if (arg == "--nodes") {
      opt.nodes = std::strtoul(value().c_str(), nullptr, 10);
    } else if (all_digits(arg)) {
      opt.nodes = std::strtoul(arg.c_str(), nullptr, 10);
    } else if (arg == "--ops") {
      opt.ops = static_cast<std::uint32_t>(
          std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value().c_str(), nullptr, 0);
      opt.seed_set = true;
    } else if (arg == "--threads") {
      opt.threads = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--repeat") {
      opt.repeat = std::atoi(value().c_str());
      if (opt.repeat < 1) usage_error("--repeat must be >= 1", usage);
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--no-memo") {
      opt.memo = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      std::exit(0);
    } else if (extra && extra(arg, value)) {
      // consumed by the binary-specific handler
    } else {
      usage_error("unknown argument " + arg, usage);
    }
  }
  return opt;
}

void apply(const CliOptions& cli, workload::WorkloadSpec& spec) {
  if (cli.ops != 0) spec.ops_per_node = cli.ops;
  if (cli.seed_set) spec.seed = cli.seed;
}

harness::SweepOptions sweep_options(const CliOptions& cli) {
  harness::SweepOptions opts;
  opts.threads = cli.threads;
  opts.memoize = cli.memo;
  opts.repeat = cli.repeat;
  return opts;
}

std::vector<std::size_t> sweep_nodes(const CliOptions& cli) {
  return harness::sweep_node_counts(cli.nodes != 0 ? cli.nodes : 120);
}

}  // namespace hlock::bench
