// Shared flag parsing for the bench binaries and sweep tools.
//
// Every sweep binary accepts the same core flags with the same defaults:
//
//   --nodes N      cap the node-count sweep at N (or, for single-point
//                  binaries, run that one size)
//   --ops N        workload ops per node
//   --seed S       workload seed (decimal or 0x hex)
//   --threads N    sweep worker threads (0 = hardware concurrency)
//   --repeat N     evaluate every point N times (wall-clock timing;
//                  disables the memo cache)
//   --no-memo      disable the in-process point memo cache
//   --cache-dir D  persist sweep results across invocations under D
//                  (harness::ResultStore); also enabled when the
//                  HLOCK_CACHE_DIR environment variable is set (its value
//                  names the directory; empty value = `.hlock-cache`)
//   --no-disk-cache  ignore --cache-dir / HLOCK_CACHE_DIR
//   --json         machine-readable output where the binary supports it
//   --shards N     simulation shards (bench/many_locks)
//   --lock-count N total locks across the forest (bench/many_locks)
//   --zipf T       Zipf skew of page selection, >= 0 (bench/many_locks)
//   --clusters N   cluster count of the simulated topology, >= 1
//                  (1 = flat; bench/topology_locality)
//   --intra-latency-ms M   mean intra-cluster latency in ms, > 0
//   --inter-latency-ms M   mean inter-cluster latency in ms, > 0
//   --locality-bias        enable locality-biased token hand-off
//   --fairness-cap N       locality bypass cap, 1..255
//
// Numeric values are parsed strictly: `--nodes abc` or `--seed 12x` is a
// usage error (exit 2), never a silently mis-parsed sweep.
//
// A bare positional integer is accepted as --nodes for backward
// compatibility with the old `fig5_message_overhead 40` invocation.
// Binary-specific flags are handled via the `extra` callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/sweep_runner.hpp"
#include "workload/spec.hpp"

namespace hlock::bench {

struct CliOptions {
  std::size_t nodes = 0;      ///< 0 = binary default
  std::uint32_t ops = 0;      ///< 0 = binary default
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::size_t threads = 0;    ///< 0 = hardware concurrency
  int repeat = 1;
  bool json = false;
  bool memo = true;
  /// Cross-invocation result cache directory; empty = disabled.
  std::string cache_dir;
  // Many-lock workload flags (bench/many_locks; ignored elsewhere).
  std::size_t shards = 0;      ///< 0 = binary default
  std::uint32_t lock_count = 0;  ///< 0 = binary default
  double zipf = 0.0;
  bool zipf_set = false;
  // Topology flags (bench/topology_locality; ignored elsewhere).
  std::size_t clusters = 0;       ///< 0 = binary default
  double intra_latency_ms = 0.0;  ///< 0 = binary default
  double inter_latency_ms = 0.0;  ///< 0 = binary default
  bool locality_bias = false;
  std::uint32_t fairness_cap = 0;  ///< 0 = engine default
};

/// Offered each flag the common parser does not recognize; return true
/// if consumed. `value` fetches the flag's argument (exits with a usage
/// error if missing).
using ExtraFlag =
    std::function<bool(const std::string& arg,
                       const std::function<std::string()>& value)>;

/// Parse argv. On an unknown flag or missing value, prints `usage` to
/// stderr and exits with status 2.
CliOptions parse_cli(int argc, char** argv, const char* usage,
                     CliOptions defaults = {},
                     const ExtraFlag& extra = nullptr);

/// Overlay --ops / --seed onto a spec whose fields hold the binary's
/// defaults.
void apply(const CliOptions& cli, workload::WorkloadSpec& spec);

/// Runner configuration from --threads / --repeat / --no-memo.
harness::SweepOptions sweep_options(const CliOptions& cli);

/// The standard node-count sweep capped at --nodes (default 120).
std::vector<std::size_t> sweep_nodes(const CliOptions& cli);

}  // namespace hlock::bench
