// Tables 1(a), 1(b), 2(a), 2(b) — regenerates the paper's four rule tables
// from the implementation, then microbenchmarks the protocol hot paths
// with google-benchmark (table lookups, message codec, a full local
// grant/release cycle, and a simulated 8-node request round-trip).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hls_engine.hpp"
#include "core/mode.hpp"
#include "harness/cluster.hpp"
#include "msg/message.hpp"

namespace {

using namespace hlock;

void print_tables() {
  const Mode all[] = {Mode::kNone, Mode::kIR, Mode::kR,
                      Mode::kU,    Mode::kIW, Mode::kW};

  std::printf("Table 1(a) incompatibility (X = conflict):\n      ");
  for (const Mode m2 : kRealModes) std::printf("%4s", to_string(m2));
  std::printf("\n");
  for (const Mode m1 : kRealModes) {
    std::printf("%4s  ", to_string(m1));
    for (const Mode m2 : kRealModes)
      std::printf("%4s", compatible(m1, m2) ? "." : "X");
    std::printf("\n");
  }

  std::printf("\nTable 1(b) no-child-grant (X = cannot grant):\n      ");
  for (const Mode m2 : kRealModes) std::printf("%4s", to_string(m2));
  std::printf("\n");
  for (const Mode m1 : all) {
    std::printf("%4s  ", to_string(m1));
    for (const Mode m2 : kRealModes)
      std::printf("%4s", child_grantable(m1, m2) ? "." : "X");
    std::printf("\n");
  }

  std::printf("\nTable 2(a) queue (Q) / forward (F):\n      ");
  for (const Mode m2 : kRealModes) std::printf("%4s", to_string(m2));
  std::printf("\n");
  for (const Mode m1 : all) {
    std::printf("%4s  ", to_string(m1));
    for (const Mode m2 : kRealModes) {
      std::printf("%4s", queue_or_forward(m1, m2) == PendingAction::kQueue
                             ? "Q"
                             : "F");
    }
    std::printf("\n");
  }

  std::printf("\nTable 2(b) frozen modes at the token node:\n      ");
  for (const Mode m2 : kRealModes) std::printf("%14s", to_string(m2));
  std::printf("\n");
  for (const Mode m1 : kRealModes) {
    std::printf("%4s  ", to_string(m1));
    for (const Mode m2 : kRealModes) {
      const ModeSet f = frozen_for(m1, m2);
      std::printf("%14s", compatible(m1, m2) ? "-" : f.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_CompatibilityLookup(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    const Mode a = kRealModes[i % 5];
    const Mode b = kRealModes[(i / 5) % 5];
    benchmark::DoNotOptimize(compatible(a, b));
    ++i;
  }
}
BENCHMARK(BM_CompatibilityLookup);

void BM_FrozenForLookup(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    const Mode a = kRealModes[i % 5];
    const Mode b = kRealModes[(i / 5) % 5];
    benchmark::DoNotOptimize(frozen_for(a, b));
    ++i;
  }
}
BENCHMARK(BM_FrozenForLookup);

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  Message m;
  m.kind = MsgKind::kToken;
  m.lock = LockId{17};
  m.mode = Mode::kU;
  for (int i = 0; i < 16; ++i) {
    m.queue.push_back(QueuedRequest{
        NodeId{static_cast<std::uint32_t>(i)}, Mode::kIR,
        LamportStamp{static_cast<std::uint64_t>(i), NodeId{1}}, false});
  }
  for (auto _ : state) {
    const auto bytes = encode(m);
    benchmark::DoNotOptimize(decode(bytes));
  }
}
BENCHMARK(BM_MessageCodecRoundTrip);

/// Rule 2 fast path: re-acquiring a compatible weaker mode must be
/// message-free and cheap.
void BM_LocalReacquire(benchmark::State& state) {
  struct NullTransport final : Transport {
    void send(NodeId, Message) override {}
  } transport;
  core::HlsEngine engine(LockId{0}, NodeId{0}, NodeId{0}, transport);
  const RequestId base = engine.request_lock(Mode::kR);
  (void)base;
  for (auto _ : state) {
    const RequestId id = engine.request_lock(Mode::kIR);
    engine.unlock(id);
  }
}
BENCHMARK(BM_LocalReacquire);

/// Full simulated experiment throughput: how many virtual-cluster events
/// the harness machine processes per second (8 nodes, paper workload).
void BM_SimulatedClusterRun(benchmark::State& state) {
  using namespace hlock::harness;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ClusterConfig config;
    config.nodes = 8;
    config.spec.ops_per_node = 20;
    config.spec.seed = seed++;
    HlsCluster cluster(config);
    cluster.run();
    benchmark::DoNotOptimize(cluster.result().messages);
  }
}
BENCHMARK(BM_SimulatedClusterRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
