// Ablations of the protocol's design choices (DESIGN.md §6), each a claim
// the paper makes in §3-§4:
//
//   child-grants off   — "most significantly, from allowing children to
//                         grant requests" (Fig. 5 discussion)
//   local-queues off   — Rule 4's queue-to-suppress-messages optimization
//   eager releases     — Rule 5.2: "one message suffices, irrespective of
//                         the number of grandchildren"
//   freezing off       — Rule 6 buys FIFO fairness; measure its price
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;
  using core::EngineOptions;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: ablations [--ops N] [--seed S] [--threads N] [--repeat N]\n"
      "         [--no-memo]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  struct Variant {
    const char* name;
    EngineOptions opts;
  };
  EngineOptions no_child;
  no_child.allow_child_grants = false;
  EngineOptions no_queue;
  no_queue.allow_local_queues = false;
  EngineOptions eager;
  eager.lazy_release = false;
  EngineOptions no_freeze;
  no_freeze.enable_freezing = false;
  const Variant variants[] = {
      {"full protocol", EngineOptions{}},
      {"no child grants", no_child},
      {"no local queues", no_queue},
      {"eager releases", eager},
      {"no freezing", no_freeze},
  };
  const std::size_t node_counts[] = {20, 60, 120};

  std::vector<SweepPoint> points;
  for (const std::size_t n : node_counts)
    for (const Variant& v : variants)
      points.push_back(make_point(Protocol::kHls, n, spec, v.opts));
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  std::size_t next = 0;
  for (const std::size_t n : node_counts) {
    std::cout << "=== " << n << " nodes ===\n";
    TablePrinter table(
        {"variant", "msgs/request", "latency factor", "p95 factor"});
    for (const Variant& v : variants) {
      const auto& r = results[next++];
      table.row({v.name, TablePrinter::num(r.msgs_per_lock_request()),
                 TablePrinter::num(r.latency_factor.mean(), 1),
                 TablePrinter::num(r.latency_factor.percentile(0.95), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected: every ablation costs messages and/or latency "
               "relative to the full protocol; 'no freezing' trades "
               "fairness (p95) for throughput\n";
  return 0;
}
