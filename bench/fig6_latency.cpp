// Figure 6 — "Request Latency (as a factor of point-to-point latency)":
// mean acquisition latency divided by the 150 ms mean network latency, vs
// number of nodes, for the three configurations.
//
// Paper's reading: our protocol grows linearly (factor ~90 at 120 nodes),
// Naimi pure linearly with a worse constant (~160 at 120), Naimi same work
// superlinearly (~240 at 120 and climbing).
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: fig6_latency [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo] [--json]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  std::vector<SweepPoint> points;
  const auto node_counts = bench::sweep_nodes(cli);
  for (const std::size_t n : node_counts) {
    points.push_back(make_point(Protocol::kHls, n, spec));
    points.push_back(make_point(Protocol::kNaimiPure, n, spec));
    points.push_back(make_point(Protocol::kNaimiSameWork, n, spec));
  }
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  if (cli.json) {
    write_json_array(std::cout, results);
    return 0;
  }

  std::cout << "Figure 6: request latency factor (mean acquire latency / "
               "150ms point-to-point latency)\n\n";

  TablePrinter table({"nodes", "our-protocol", "naimi-pure",
                      "naimi-same-work", "ours p95"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& ours = results[3 * i];
    const auto& pure = results[3 * i + 1];
    const auto& same = results[3 * i + 2];
    table.row({std::to_string(node_counts[i]),
               TablePrinter::num(ours.latency_factor.mean(), 1),
               TablePrinter::num(pure.latency_factor.mean(), 1),
               TablePrinter::num(same.latency_factor.mean(), 1),
               TablePrinter::num(ours.latency_factor.percentile(0.95), 1)});
  }
  table.print(std::cout);

  std::cout << "\npaper @120 nodes: ours ~90 | naimi pure ~160 | same work "
               "~240 (superlinear)\n";
  return 0;
}
