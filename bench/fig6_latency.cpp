// Figure 6 — "Request Latency (as a factor of point-to-point latency)":
// mean acquisition latency divided by the 150 ms mean network latency, vs
// number of nodes, for the three configurations.
//
// Paper's reading: our protocol grows linearly (factor ~90 at 120 nodes),
// Naimi pure linearly with a worse constant (~160 at 120), Naimi same work
// superlinearly (~240 at 120 and climbing).
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Figure 6: request latency factor (mean acquire latency / "
               "150ms point-to-point latency)\n\n";

  TablePrinter table({"nodes", "our-protocol", "naimi-pure",
                      "naimi-same-work", "ours p95"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    auto ours = run_experiment(Protocol::kHls, n, spec);
    auto pure = run_experiment(Protocol::kNaimiPure, n, spec);
    auto same = run_experiment(Protocol::kNaimiSameWork, n, spec);
    table.row({std::to_string(n),
               TablePrinter::num(ours.latency_factor.mean(), 1),
               TablePrinter::num(pure.latency_factor.mean(), 1),
               TablePrinter::num(same.latency_factor.mean(), 1),
               TablePrinter::num(ours.latency_factor.percentile(0.95), 1)});
  }
  table.print(std::cout);

  std::cout << "\npaper @120 nodes: ours ~90 | naimi pure ~160 | same work "
               "~240 (superlinear)\n";
  return 0;
}
