// Figure 7 — "Message Behavior": our protocol's message overhead broken
// down by message type (release, freeze, request, copy grant, token
// transfer), per lock request, vs number of nodes.
//
// Paper's reading: requests rise then flatten; token transfers fall from
// their initial level and flatten (freezing makes immediate transfer
// increasingly improbable); copy grants rise and stabilize (requests end
// as either transfers or grants); releases track grants; freezes rise
// then stay constant (at most five modes can be frozen).
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Figure 7: message breakdown for our protocol "
               "(messages per lock request, by type)\n\n";

  TablePrinter table({"nodes", "request", "grant", "token", "release",
                      "freeze", "total"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    const auto r = run_experiment(Protocol::kHls, n, spec);
    table.row({std::to_string(n),
               TablePrinter::num(r.kind_per_request("request")),
               TablePrinter::num(r.kind_per_request("grant")),
               TablePrinter::num(r.kind_per_request("token")),
               TablePrinter::num(r.kind_per_request("release")),
               TablePrinter::num(r.kind_per_request("freeze")),
               TablePrinter::num(r.msgs_per_lock_request())});
  }
  table.print(std::cout);

  std::cout << "\npaper: request rises then flattens; token transfer "
               "decreases to a constant; grant/release rise and stabilize; "
               "freeze small and constant\n";
  return 0;
}
