// Figure 7 — "Message Behavior": our protocol's message overhead broken
// down by message type (release, freeze, request, copy grant, token
// transfer), per lock request, vs number of nodes.
//
// Paper's reading: requests rise then flatten; token transfers fall from
// their initial level and flatten (freezing makes immediate transfer
// increasingly improbable); copy grants rise and stabilize (requests end
// as either transfers or grants); releases track grants; freezes rise
// then stay constant (at most five modes can be frozen).
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: fig7_breakdown [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo] [--json]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  std::vector<SweepPoint> points;
  const auto node_counts = bench::sweep_nodes(cli);
  for (const std::size_t n : node_counts)
    points.push_back(make_point(Protocol::kHls, n, spec));
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  if (cli.json) {
    write_json_array(std::cout, results);
    return 0;
  }

  std::cout << "Figure 7: message breakdown for our protocol "
               "(messages per lock request, by type)\n\n";

  TablePrinter table({"nodes", "request", "grant", "token", "release",
                      "freeze", "total"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& r = results[i];
    table.row({std::to_string(node_counts[i]),
               TablePrinter::num(r.kind_per_request("request")),
               TablePrinter::num(r.kind_per_request("grant")),
               TablePrinter::num(r.kind_per_request("token")),
               TablePrinter::num(r.kind_per_request("release")),
               TablePrinter::num(r.kind_per_request("freeze")),
               TablePrinter::num(r.msgs_per_lock_request())});
  }
  table.print(std::cout);

  std::cout << "\npaper: request rises then flattens; token transfer "
               "decreases to a constant; grant/release rise and stabilize; "
               "freeze small and constant\n";
  return 0;
}
