// Many-lock forest benchmark: 10^4..10^6 Zipf-skewed locks across a
// forest of 3/4-level hierarchies, simulated on N shards in parallel
// (sim::ShardedSimulator via harness::ManyLocksCluster).
//
// Output discipline: everything on stdout is deterministic — identical
// bytes at any --shards / thread count, which is exactly what the CI
// oracle step checks (`cmp` of --shards 1/2/8 runs). Wall-clock timing
// (the only shard-dependent observable) goes to stderr:
//
//   [many-locks] shards=4 threads=4 rounds=812 wall_ms=93.1 ev/s=1.2e6
//
//   ./many_locks                                   # defaults, table
//   ./many_locks --shards 8 --lock-count 1000000   # big forest, 8 slabs
//   ./many_locks --zipf 0 --levels 3 --trees 8     # uniform, shallow
//   ./many_locks --json                            # machine-readable
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "bench/cli.hpp"
#include "common/parse.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/many_locks_cluster.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

constexpr const char* kUsage =
    "usage: many_locks [--nodes N] [--trees N] [--levels 3|4]\n"
    "         [--lock-count N] [--zipf T] [--shards N] [--ops N]\n"
    "         [--cross-tree-pct P] [--cross-tree-unordered]\n"
    "         [--clusters N] [--intra-latency-ms M]\n"
    "         [--seed S] [--repeat N] [--json]\n";

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions defaults;
  std::uint32_t trees = 16;
  std::uint32_t levels = 4;
  double cross_tree_pct = 0.0;
  bool cross_tree_unordered = false;
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, kUsage, defaults,
      [&](const std::string& arg, const std::function<std::string()>& value) {
        if (arg == "--cross-tree-pct") {
          const auto v = try_parse_double(value());
          if (!v || *v < 0.0 || *v > 100.0) {
            std::cerr << "error: --cross-tree-pct expects 0..100\n" << kUsage;
            std::exit(2);
          }
          cross_tree_pct = *v;
          return true;
        }
        if (arg == "--cross-tree-unordered") {
          cross_tree_unordered = true;
          return true;
        }
        if (arg == "--trees") {
          const auto v = try_parse_u32(value());
          if (!v || *v == 0) {
            std::cerr << "error: --trees expects an integer >= 1\n" << kUsage;
            std::exit(2);
          }
          trees = *v;
          return true;
        }
        if (arg == "--levels") {
          const auto v = try_parse_u32(value());
          if (!v || (*v != 3 && *v != 4)) {
            std::cerr << "error: --levels must be 3 or 4\n" << kUsage;
            std::exit(2);
          }
          levels = *v;
          return true;
        }
        return false;
      });
  if (cli.threads != 0) {
    std::cerr << "many_locks parallelizes over simulation shards, not "
                 "sweep workers — use --shards N\n";
    return 2;
  }

  ManyLocksConfig cfg;
  cfg.nodes = cli.nodes != 0 ? cli.nodes : 4;
  cfg.trees = trees;
  cfg.levels = levels;
  cfg.shards = cli.shards != 0 ? cli.shards : 1;
  cfg.cross_tree_pct = cross_tree_pct;
  cfg.cross_tree_unordered = cross_tree_unordered;
  cfg.clusters = cli.clusters;
  cfg.intra_latency_mean =
      cli.intra_latency_ms > 0.0
          ? static_cast<Duration>(cli.intra_latency_ms * 1000.0)
          : Duration{0};
  cfg.spec.lock_count = 50'000;
  cfg.spec.zipf_theta = 0.9;
  cfg.spec.ops_per_node = 40;
  bench::apply(cli, cfg.spec);

  ManyLocksResult r;
  double best_ms = 0;
  std::uint64_t rounds = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t mailbox_events = 0;
  std::uint64_t revalidations = 0;
  for (int i = 0; i < cli.repeat; ++i) {
    ManyLocksCluster cluster(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < best_ms) best_ms = ms;
    rounds = cluster.rounds();
    cross_posts = cluster.sharded().cross_posts();
    mailbox_events = cluster.sharded().mailbox_events();
    revalidations = cluster.sharded().window_revalidations();
    r = cluster.result();
  }

  // Wall-clock facts are shard- and machine-dependent: stderr only. The
  // cross-shard channel counters depend on the shard layout too (how
  // many posts ride a mailbox vs insert directly), so they live here,
  // not in the deterministic stdout report.
  std::cerr << "[many-locks] shards=" << cfg.shards << " threads="
            << (cfg.run_threads == 0 ? cfg.shards : cfg.run_threads)
            << " rounds=" << rounds << " cross_posts=" << cross_posts
            << " mailbox_events=" << mailbox_events
            << " window_revalidations=" << revalidations
            << " wall_ms=" << best_ms << " ev/s="
            << static_cast<double>(r.events) / (best_ms / 1000.0) << "\n";

  // The dense dispatch slot is all an untouched lock costs, on every node.
  const double idle_lock_bytes =
      static_cast<double>(cfg.nodes) * sizeof(void*);

  if (cli.json) {
    std::cout << "{\"nodes\":" << cfg.nodes << ",\"trees\":" << cfg.trees
              << ",\"levels\":" << cfg.levels
              << ",\"lock_count\":" << cfg.spec.lock_count
              << ",\"locks_total\":" << r.locks_total
              << ",\"zipf\":" << json_double(cfg.spec.zipf_theta)
              << ",\"ops\":" << r.ops
              << ",\"lock_requests\":" << r.lock_requests
              << ",\"messages\":" << r.messages
              << ",\"wire_bytes\":" << r.wire_bytes
              << ",\"events\":" << r.events
              << ",\"virtual_end\":" << r.virtual_end
              << ",\"engines_materialized\":" << r.engines_materialized
              << ",\"cross_tree_pct\":" << json_double(cfg.cross_tree_pct)
              << ",\"cross_tree_ops\":" << r.cross_tree_ops
              << ",\"deadlock_cycles\":" << r.deadlock_cycles
              << ",\"idle_lock_bytes\":" << json_double(idle_lock_bytes)
              << ",\"msgs_per_lock_request\":"
              << json_double(r.msgs_per_lock_request())
              << ",\"latency_factor_mean\":"
              << json_double(r.latency_factor.mean())
              << ",\"latency_factor_p50\":"
              << json_double(r.latency_factor.percentile(0.5))
              << ",\"latency_factor_p99\":"
              << json_double(r.latency_factor.percentile(0.99)) << "}\n";
    return 0;
  }

  std::cout << "Many-lock forest (trees=" << cfg.trees << " levels="
            << cfg.levels << " nodes/tree=" << cfg.nodes
            << " locks=" << r.locks_total << " zipf="
            << json_double(cfg.spec.zipf_theta) << " seed=" << cfg.spec.seed
            << ")\n\n";
  TablePrinter table({"metric", "value"});
  table.row({"app ops", std::to_string(r.ops)});
  table.row({"lock requests", std::to_string(r.lock_requests)});
  table.row({"messages", std::to_string(r.messages)});
  table.row({"msgs/request", TablePrinter::num(r.msgs_per_lock_request())});
  table.row({"wire bytes", std::to_string(r.wire_bytes)});
  table.row({"latency factor mean", TablePrinter::num(r.latency_factor.mean())});
  table.row({"latency factor p50",
             TablePrinter::num(r.latency_factor.percentile(0.5))});
  table.row({"latency factor p99",
             TablePrinter::num(r.latency_factor.percentile(0.99))});
  table.row({"cross-tree ops", std::to_string(r.cross_tree_ops)});
  table.row({"deadlock cycles", std::to_string(r.deadlock_cycles)});
  table.row({"sim events", std::to_string(r.events)});
  table.row({"virtual end", std::to_string(r.virtual_end)});
  table.row({"engines materialized", std::to_string(r.engines_materialized)});
  table.row({"locks total", std::to_string(r.locks_total)});
  table.row({"bytes/idle lock", TablePrinter::num(idle_lock_bytes, 0)});
  table.print(std::cout);
  return 0;
}
