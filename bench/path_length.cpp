// Request-propagation path length — direct measurement of the O(log n)
// claim (§2/§4): how many hops a REQUEST travels before some node serves
// it. Observed from the network (messages are correlated by their
// (requester, Lamport stamp) identity), no protocol instrumentation.
//
// Each node count needs a per-run network hook, so this bench uses the
// sweep runner's generic parallel map: every index builds its own cluster
// and tracking state and writes only its own result slot.
#include <cmath>
#include <iostream>
#include <map>

#include "bench/cli.hpp"
#include "common/stats.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: path_length [--nodes N] [--ops N] [--seed S] [--threads N]\n");
  const auto node_counts = bench::sweep_nodes(cli);

  std::vector<Summary> final_hops(node_counts.size());
  SweepRunner runner(bench::sweep_options(cli));
  runner.for_each_index(node_counts.size(), [&](std::size_t i) {
    ClusterConfig config;
    config.nodes = node_counts[i];
    config.spec.ops_per_node = 60;
    bench::apply(cli, config.spec);

    HlsCluster cluster(config);
    // Key: (lock, requester, stamp counter) -> hops so far.
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>,
             std::uint32_t>
        in_flight;
    cluster.network().on_deliver = [&](NodeId, NodeId, const Message& m) {
      if (m.kind != MsgKind::kRequest) return;
      const auto key = std::make_tuple(m.lock.value, m.req.requester.value,
                                       m.req.stamp.counter);
      ++in_flight[key];
    };
    cluster.run();
    // The map holds each request's final hop count.
    for (const auto& [key, count] : in_flight)
      final_hops[i].add(static_cast<double>(count));
  });

  std::cout << "Request path length (hops per REQUEST until served) — the "
               "O(log n) propagation claim\n\n";
  TablePrinter table({"nodes", "mean hops", "p95 hops", "max", "log2(n)"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const std::size_t n = node_counts[i];
    table.row({std::to_string(n), TablePrinter::num(final_hops[i].mean()),
               TablePrinter::num(final_hops[i].percentile(0.95), 0),
               TablePrinter::num(final_hops[i].max(), 0),
               TablePrinter::num(std::log2(static_cast<double>(n)))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: mean hops grows much slower than n and stays "
               "at or below log2(n) thanks to path compression\n";
  return 0;
}
