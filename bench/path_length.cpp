// Request-propagation path length — direct measurement of the O(log n)
// claim (§2/§4): how many hops a REQUEST travels before some node serves
// it. Observed from the network (messages are correlated by their
// (requester, Lamport stamp) identity), no protocol instrumentation.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/stats.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Request path length (hops per REQUEST until served) — the "
               "O(log n) propagation claim\n\n";
  TablePrinter table({"nodes", "mean hops", "p95 hops", "max", "log2(n)"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    ClusterConfig config;
    config.nodes = n;
    config.spec.ops_per_node = 60;

    HlsCluster cluster(config);
    // Key: (lock, requester, stamp counter) -> hops so far.
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>,
             std::uint32_t>
        in_flight;
    Summary hops;
    cluster.network().on_deliver = [&](NodeId, NodeId, const Message& m) {
      if (m.kind != MsgKind::kRequest) return;
      const auto key = std::make_tuple(m.lock.value, m.req.requester.value,
                                       m.req.stamp.counter);
      hops.add(static_cast<double>(++in_flight[key]));
    };
    cluster.run();
    // The recorded value per request is its final hop count; Summary holds
    // every intermediate too, so recompute from the map for exact stats.
    Summary final_hops;
    for (const auto& [key, count] : in_flight) {
      final_hops.add(static_cast<double>(count));
    }
    table.row({std::to_string(n), TablePrinter::num(final_hops.mean()),
               TablePrinter::num(final_hops.percentile(0.95), 0),
               TablePrinter::num(final_hops.max(), 0),
               TablePrinter::num(std::log2(static_cast<double>(n)))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: mean hops grows much slower than n and stays "
               "at or below log2(n) thanks to path compression\n";
  return 0;
}
