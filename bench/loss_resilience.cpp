// Substrate-robustness bench: the protocol over a lossy datagram network
// with the retransmission sublayer (sim::ReliableTransport), sweeping the
// loss rate. Reports total wire traffic (including retransmissions and
// acks), drop counts and the latency penalty.
//
// The paper's testbed ran over TCP (loss handled by the kernel); this
// bench quantifies what that reliability costs when provided in the
// middleware itself.
#include <iostream>

#include "harness/cluster.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace hlock;
  using namespace hlock::harness;

  std::cout << "Loss resilience: 24 nodes, paper workload, reliability "
               "sublayer armed\n\n";
  TablePrinter table({"loss %", "wire msgs", "dropped", "acks",
                      "protocol msgs/req", "latency factor"});
  for (const double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    ClusterConfig config;
    config.nodes = 24;
    config.spec.ops_per_node = 40;
    config.loss_rate = loss;
    HlsCluster cluster(config);
    cluster.run();
    const auto r = cluster.result();
    const auto acks = r.messages_by_kind.get("ack");
    // Protocol traffic excludes the sublayer's acks.
    const double proto_per_req =
        static_cast<double>(r.messages - acks) /
        static_cast<double>(r.lock_requests);
    table.row({TablePrinter::num(loss * 100, 0), std::to_string(r.messages),
               std::to_string(cluster.network().messages_dropped()),
               std::to_string(acks), TablePrinter::num(proto_per_req),
               TablePrinter::num(r.latency_factor.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: protocol msgs/request degrades gracefully "
               "(retransmissions); latency grows with the loss rate but "
               "every run completes safely\n";
  return 0;
}
