// Substrate-robustness bench: the protocol over a lossy datagram network
// with the retransmission sublayer (sim::ReliableTransport), sweeping the
// loss rate. Reports total wire traffic (including retransmissions and
// acks), drop counts and the latency penalty.
//
// The paper's testbed ran over TCP (loss handled by the kernel); this
// bench quantifies what that reliability costs when provided in the
// middleware itself.
#include <iostream>

#include "bench/cli.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: loss_resilience [--nodes N] [--ops N] [--seed S]\n"
      "         [--threads N] [--repeat N] [--no-memo]\n");
  const double loss_rates[] = {0.0, 0.02, 0.05, 0.10, 0.20};

  std::vector<SweepPoint> points;
  for (const double loss : loss_rates) {
    SweepPoint p;
    p.protocol = Protocol::kHls;
    p.config.nodes = cli.nodes != 0 ? cli.nodes : 24;
    p.config.spec.ops_per_node = 40;
    bench::apply(cli, p.config.spec);
    p.config.loss_rate = loss;
    points.push_back(p);
  }
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  std::cout << "Loss resilience: " << points[0].config.nodes
            << " nodes, paper workload, reliability sublayer armed\n\n";
  TablePrinter table({"loss %", "wire msgs", "dropped", "acks",
                      "protocol msgs/req", "latency factor"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto acks = r.messages_by_kind.get("ack");
    // Protocol traffic excludes the sublayer's acks.
    const double proto_per_req =
        static_cast<double>(r.messages - acks) /
        static_cast<double>(r.lock_requests);
    table.row({TablePrinter::num(loss_rates[i] * 100, 0),
               std::to_string(r.messages),
               std::to_string(r.messages_dropped), std::to_string(acks),
               TablePrinter::num(proto_per_req),
               TablePrinter::num(r.latency_factor.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: protocol msgs/request degrades gracefully "
               "(retransmissions); latency grows with the loss rate but "
               "every run completes safely\n";
  return 0;
}
