// Wire bandwidth: bytes per lock request for the three configurations.
// Message COUNT (Figure 5) is the paper's metric, but a token transfer
// ships a whole queue while a release is a few dozen bytes — this bench
// checks that the byte story matches the count story.
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: bandwidth [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo] [--json]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  std::vector<SweepPoint> points;
  const auto node_counts = bench::sweep_nodes(cli);
  for (const std::size_t n : node_counts) {
    points.push_back(make_point(Protocol::kHls, n, spec));
    points.push_back(make_point(Protocol::kNaimiPure, n, spec));
    points.push_back(make_point(Protocol::kNaimiSameWork, n, spec));
  }
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  if (cli.json) {
    write_json_array(std::cout, results);
    return 0;
  }

  std::cout << "Wire bandwidth (bytes per lock request, serialized + "
               "framing)\n\n";
  TablePrinter table({"nodes", "ours B/req", "ours B/msg", "pure B/req",
                      "same-work B/req"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& ours = results[3 * i];
    const auto& pure = results[3 * i + 1];
    const auto& same = results[3 * i + 2];
    auto per_req = [](const ExperimentResult& r) {
      return static_cast<double>(r.wire_bytes) /
             static_cast<double>(r.lock_requests);
    };
    table.row({std::to_string(node_counts[i]),
               TablePrinter::num(per_req(ours), 1),
               TablePrinter::num(static_cast<double>(ours.wire_bytes) /
                                     static_cast<double>(ours.messages),
                                 1),
               TablePrinter::num(per_req(pure), 1),
               TablePrinter::num(per_req(same), 1)});
  }
  table.print(std::cout);
  std::cout << "\nobservation: ours wins on message COUNT but its messages "
               "grow with n (token transfers ship queues), so at scale the "
               "BYTE cost converges with Naimi pure — the paper's metric "
               "choice (count) matters on latency-bound networks where "
               "per-message overhead dominates size\n";
  return 0;
}
