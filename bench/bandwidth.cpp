// Wire bandwidth: bytes per lock request for the three configurations.
// Message COUNT (Figure 5) is the paper's metric, but a token transfer
// ships a whole queue while a release is a few dozen bytes — this bench
// checks that the byte story matches the count story.
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

namespace {

hlock::harness::ExperimentResult run(hlock::harness::Protocol p,
                                     std::size_t n,
                                     const hlock::workload::WorkloadSpec& s) {
  return hlock::harness::run_experiment(p, n, s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Wire bandwidth (bytes per lock request, serialized + "
               "framing)\n\n";
  TablePrinter table({"nodes", "ours B/req", "ours B/msg", "pure B/req",
                      "same-work B/req"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    const auto ours = run(Protocol::kHls, n, spec);
    const auto pure = run(Protocol::kNaimiPure, n, spec);
    const auto same = run(Protocol::kNaimiSameWork, n, spec);
    auto per_req = [](const ExperimentResult& r) {
      return static_cast<double>(r.wire_bytes) /
             static_cast<double>(r.lock_requests);
    };
    table.row({std::to_string(n), TablePrinter::num(per_req(ours), 1),
               TablePrinter::num(static_cast<double>(ours.wire_bytes) /
                                     static_cast<double>(ours.messages),
                                 1),
               TablePrinter::num(per_req(pure), 1),
               TablePrinter::num(per_req(same), 1)});
  }
  table.print(std::cout);
  std::cout << "\nobservation: ours wins on message COUNT but its messages "
               "grow with n (token transfers ship queues), so at scale the "
               "BYTE cost converges with Naimi pure — the paper's metric "
               "choice (count) matters on latency-bound networks where "
               "per-message overhead dominates size\n";
  return 0;
}
