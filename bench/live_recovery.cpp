// live_recovery — crash-recovery latency over real processes and real
// sockets: the acceptance benchmark for protocol-level failure handling.
//
// The parent forks N worker PROCESSES (re-exec of this binary with
// --worker), each a full stack: TcpNode (failure detector on) +
// ConcurrencyService + ViewService wired to recover_all. One shared lock
// is rooted at the victim — the highest id. Survivors hammer it with
// closed-loop W lock/unlock rounds, recording a wall-clock timestamp per
// committed op (granted AND released). The victim runs the same loop
// until --hold-at-ms, then takes W and holds it; the parent waits for the
// HOLDING marker and SIGKILLs it — a genuine token-holder crash with the
// token pinned at the dead process and every survivor request queued
// behind it.
//
// Survivors then suspect the silence, the lowest id coordinates a view,
// the token regenerates at the new root, and the queued requests are
// served. Each survivor writes a small key/value report; the parent
// aggregates into BENCH_recovery.json (--json) with the two figures of
// merit:
//
//   acquisition_gap_ms   last committed op before the kill -> first
//                        committed op after it, across all survivors
//                        (the end-to-end outage a client observes)
//   gap_from_kill_ms     SIGKILL instant -> first committed op after it
//                        (detector silence window + view round + barrier
//                        + queue service)
//   view_frames          kViewChange/kViewAck frames sent by survivors,
//                        retries included (the coordination message cost)
//
// Exit is nonzero on any lost committed op (a grant without its release),
// a survivor without a committed view, a missing post-crash grant, or an
// undrained send window — the smoke-test contract, not just a timing.
//
// Timestamps are system_clock milliseconds so they compare across
// processes; the gap is a difference of same-clock readings.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "corba/concurrency.hpp"
#include "harness/json.hpp"
#include "net/tcp_node.hpp"
#include "net/view_service.hpp"

using namespace hlock;

namespace {

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

struct Config {
  std::uint32_t nodes = 3;
  std::uint32_t hold_at_ms = 600;   ///< victim grabs-and-holds after this
  std::uint32_t run_ms = 3000;      ///< survivor workload duration
  std::uint32_t suspect_ms = 250;   ///< failure-detector silence window
  std::uint32_t view_retry_ms = 25;
  bool json = false;
};

// ---------------------------------------------------------------------------
// Worker process: one node of the mesh.
// ---------------------------------------------------------------------------

struct WorkerArgs {
  std::uint32_t id{0};
  std::uint16_t port{0};
  std::map<NodeId, net::PeerAddress> peers;
  bool victim{false};
  std::string report;
  Config cfg;
};

int run_worker(const WorkerArgs& a) {
  net::TcpConfig tcp;
  tcp.reconnect_min = msec(5);
  tcp.reconnect_max = msec(50);
  tcp.heartbeat_interval = msec(std::max<std::uint32_t>(
      1, a.cfg.suspect_ms / 5));
  tcp.idle_timeout = sec(30);  // suspicion, not idle-close, finds the dead
  tcp.suspect_timeout = msec(a.cfg.suspect_ms);

  net::TcpNode node(NodeId{a.id}, a.port, tcp);
  node.set_peers(a.peers);
  std::thread loop([&] { node.loop().run(); });

  corba::ConcurrencyService service(node);
  const std::uint32_t victim_id = a.cfg.nodes - 1;
  const LockId kLock{0};
  service.create_lock_set(kLock, NodeId{victim_id});

  std::set<NodeId> members;
  members.insert(NodeId{a.id});
  for (const auto& [pid, addr] : a.peers) members.insert(pid);
  net::ViewService views(node, members,
                         net::ViewConfig{msec(a.cfg.view_retry_ms)});
  views.set_on_view([&](std::uint32_t view, NodeId root,
                        const std::set<NodeId>& survivors) {
    service.recover_all(view, root, survivors);
  });
  views.start();

  corba::LockSet set = service.lock_set(kLock);
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  if (a.victim) {
    // Participate in the workload until the hold point so the token is
    // genuinely circulating, then pin it and die under the parent's
    // SIGKILL while every survivor queues behind the held W.
    while (elapsed_ms() < a.cfg.hold_at_ms) {
      const auto h = set.try_lock_for(corba::LockMode::kWrite, sec(10));
      if (h) set.unlock(*h);
    }
    (void)set.lock(corba::LockMode::kWrite);
    std::cout << "HOLDING\n" << std::flush;
    std::this_thread::sleep_for(std::chrono::seconds(60));  // parent kills us first
    return 3;                              // unreachable in a healthy run
  }

  std::vector<std::int64_t> commits_ms;
  std::uint64_t timeouts = 0;
  while (elapsed_ms() < a.cfg.run_ms) {
    // Generous bound: a wait that spans the crash must survive the
    // detector window + view round + barrier, not time out under it.
    const auto h = set.try_lock_for(corba::LockMode::kWrite, sec(20));
    if (!h) {
      ++timeouts;
      continue;
    }
    set.unlock(*h);
    commits_ms.push_back(wall_ms());  // committed: granted AND released
  }

  // Drain: after the view commit forgot the dead peer's send window,
  // everything still unacked must be survivor-to-survivor and ackable.
  bool drained = false;
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < drain_deadline) {
    if (node.unacked() == 0) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  {
    std::ofstream out(a.report);
    out << "id " << a.id << "\n"
        << "ops " << commits_ms.size() << "\n"
        << "timeouts " << timeouts << "\n"
        << "views " << views.views_committed() << "\n"
        << "view " << views.view() << "\n"
        << "view_frames " << views.view_frames_sent() << "\n"
        << "suspected " << node.stats().peers_suspected << "\n"
        << "unacked " << node.unacked() << "\n"
        << "drained " << (drained ? 1 : 0) << "\n";
    for (const std::int64_t t : commits_ms) out << "commit " << t << "\n";
  }

  node.loop().stop();
  loop.join();
  return drained ? 0 : 4;
}

// ---------------------------------------------------------------------------
// Parent: spawn, kill, aggregate.
// ---------------------------------------------------------------------------

struct SurvivorReport {
  std::uint32_t id{0};
  std::uint64_t ops{0};
  std::uint64_t timeouts{0};
  std::uint64_t views{0};
  std::uint32_t view{0};
  std::uint64_t view_frames{0};
  std::uint64_t suspected{0};
  std::uint64_t unacked{0};
  bool drained{false};
  std::vector<std::int64_t> commits_ms;
};

std::optional<SurvivorReport> read_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  SurvivorReport r;
  std::string key;
  std::int64_t value;
  while (in >> key >> value) {
    if (key == "id") r.id = static_cast<std::uint32_t>(value);
    else if (key == "ops") r.ops = static_cast<std::uint64_t>(value);
    else if (key == "timeouts") r.timeouts = static_cast<std::uint64_t>(value);
    else if (key == "views") r.views = static_cast<std::uint64_t>(value);
    else if (key == "view") r.view = static_cast<std::uint32_t>(value);
    else if (key == "view_frames")
      r.view_frames = static_cast<std::uint64_t>(value);
    else if (key == "suspected")
      r.suspected = static_cast<std::uint64_t>(value);
    else if (key == "unacked") r.unacked = static_cast<std::uint64_t>(value);
    else if (key == "drained") r.drained = value != 0;
    else if (key == "commit") r.commits_ms.push_back(value);
  }
  return r;
}

/// Grab a kernel-assigned ephemeral port, then free it for a child to
/// bind moments later (the standard loopback trick; the race window is
/// negligible and a collision fails loudly at bind time).
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid{-1};
  int stdout_fd{-1};
};

Child spawn_worker(const char* self_exe, const WorkerArgs& a) {
  std::vector<std::string> args;
  args.emplace_back(self_exe);
  args.emplace_back("--worker");
  args.emplace_back("--id");
  args.emplace_back(std::to_string(a.id));
  args.emplace_back("--port");
  args.emplace_back(std::to_string(a.port));
  for (const auto& [pid, addr] : a.peers) {
    args.emplace_back("--peer-addr");
    args.emplace_back(std::to_string(pid.value) + "=" + addr.host + ":" +
                      std::to_string(addr.port));
  }
  if (a.victim) args.emplace_back("--victim");
  args.emplace_back("--report");
  args.emplace_back(a.report);
  args.emplace_back("--nodes");
  args.emplace_back(std::to_string(a.cfg.nodes));
  args.emplace_back("--hold-at-ms");
  args.emplace_back(std::to_string(a.cfg.hold_at_ms));
  args.emplace_back("--run-ms");
  args.emplace_back(std::to_string(a.cfg.run_ms));
  args.emplace_back("--suspect-ms");
  args.emplace_back(std::to_string(a.cfg.suspect_ms));
  args.emplace_back("--view-retry-ms");
  args.emplace_back(std::to_string(a.cfg.view_retry_ms));

  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& s : args) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv(self_exe, argv.data());
    std::perror("live_recovery: execv");
    std::_Exit(127);
  }
  ::close(pipefd[1]);
  return Child{pid, pipefd[0]};
}

/// Block until the child prints a line containing `marker` (true) or
/// closes its stdout (false).
bool wait_for_marker(int fd, const std::string& marker) {
  std::string buf;
  char chunk[256];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find(marker) != std::string::npos) return true;
  }
}

int run_parent(const char* self_exe, const Config& cfg) {
  std::map<NodeId, net::PeerAddress> book;
  std::vector<std::uint16_t> ports(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    ports[i] = reserve_port();
    if (ports[i] == 0) {
      std::cerr << "live_recovery: could not reserve a port\n";
      return 1;
    }
    book[NodeId{i}] = net::PeerAddress{"127.0.0.1", ports[i]};
  }

  const std::string prefix =
      "live_recovery_r" + std::to_string(::getpid()) + "_";
  const std::uint32_t victim_id = cfg.nodes - 1;
  std::vector<Child> children(cfg.nodes);
  std::vector<std::string> reports(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    WorkerArgs a;
    a.id = i;
    a.port = ports[i];
    a.peers = book;
    a.peers.erase(NodeId{i});
    a.victim = i == victim_id;
    a.cfg = cfg;
    reports[i] = prefix + std::to_string(i) + ".txt";
    a.report = reports[i];
    children[i] = spawn_worker(self_exe, a);
    if (children[i].pid < 0) {
      std::cerr << "live_recovery: fork failed\n";
      return 1;
    }
  }

  // The victim announces its terminal hold; give the survivors a beat to
  // queue behind it, then kill — the token dies with the process.
  if (!wait_for_marker(children[victim_id].stdout_fd, "HOLDING")) {
    std::cerr << "live_recovery: victim never reached its hold\n";
    for (const Child& c : children) ::kill(c.pid, SIGKILL);
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::int64_t kill_ms = wall_ms();
  ::kill(children[victim_id].pid, SIGKILL);

  bool fail = false;
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    int status = 0;
    ::waitpid(children[i].pid, &status, 0);
    ::close(children[i].stdout_fd);
    if (i == victim_id) {
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        std::cerr << "live_recovery: victim did not die by SIGKILL\n";
        fail = true;
      }
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "live_recovery: survivor " << i << " exited abnormally\n";
      fail = true;
    }
  }

  std::vector<SurvivorReport> survivors;
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    if (i == victim_id) continue;
    const auto r = read_report(reports[i]);
    if (!r) {
      std::cerr << "live_recovery: missing report for survivor " << i << "\n";
      fail = true;
      continue;
    }
    survivors.push_back(*r);
  }
  for (const std::string& path : reports) ::unlink(path.c_str());

  // Aggregate the gap across all survivors' committed ops.
  std::int64_t last_before = -1, first_after = -1;
  std::uint64_t total_ops = 0, total_view_frames = 0, lost = 0;
  bool all_viewed = true, all_drained = true;
  for (const SurvivorReport& r : survivors) {
    total_ops += r.ops;
    total_view_frames += r.view_frames;
    if (r.views == 0) all_viewed = false;
    if (!r.drained || r.unacked != 0) all_drained = false;
    if (r.ops != r.commits_ms.size()) ++lost;  // grant without release
    for (const std::int64_t t : r.commits_ms) {
      if (t <= kill_ms) last_before = std::max(last_before, t);
      else first_after = first_after < 0 ? t : std::min(first_after, t);
    }
  }
  const bool recovered = first_after >= 0;
  const double gap_ms =
      recovered && last_before >= 0
          ? static_cast<double>(first_after - last_before)
          : -1.0;
  const double gap_from_kill_ms =
      recovered ? static_cast<double>(first_after - kill_ms) : -1.0;
  if (!recovered || !all_viewed || !all_drained || lost != 0) fail = true;

  if (cfg.json) {
    using harness::json_double;
    std::ostringstream os;
    os << "{\n  \"bench\": \"live_recovery\",\n  \"config\": {\"nodes\": "
       << cfg.nodes << ", \"hold_at_ms\": " << cfg.hold_at_ms
       << ", \"run_ms\": " << cfg.run_ms
       << ", \"suspect_ms\": " << cfg.suspect_ms
       << ", \"view_retry_ms\": " << cfg.view_retry_ms << "},\n"
       << "  \"survivors\": [";
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      const SurvivorReport& r = survivors[i];
      os << (i ? ", " : "") << "{\"id\": " << r.id << ", \"ops\": " << r.ops
         << ", \"timeouts\": " << r.timeouts << ", \"views\": " << r.views
         << ", \"view\": " << r.view
         << ", \"view_frames\": " << r.view_frames
         << ", \"suspected\": " << r.suspected
         << ", \"unacked\": " << r.unacked
         << ", \"drained\": " << (r.drained ? "true" : "false") << "}";
    }
    os << "],\n"
       << "  \"completed_ops\": " << total_ops
       << ",\n  \"lost_committed_ops\": " << lost
       << ",\n  \"recovered\": " << (recovered ? "true" : "false")
       << ",\n  \"acquisition_gap_ms\": " << json_double(gap_ms)
       << ",\n  \"gap_from_kill_ms\": " << json_double(gap_from_kill_ms)
       << ",\n  \"view_frames\": " << total_view_frames
       << ",\n  \"ok\": " << (fail ? "false" : "true") << "\n}\n";
    std::cout << os.str();
  } else {
    std::cout << "live_recovery: nodes=" << cfg.nodes
              << " victim=" << victim_id << " completed_ops=" << total_ops
              << " lost=" << lost << " gap_ms=" << gap_ms
              << " gap_from_kill_ms=" << gap_from_kill_ms
              << " view_frames=" << total_view_frames
              << (fail ? " FAILED" : " OK") << "\n";
  }
  return fail ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Argument parsing (strict, PR 4 convention).
// ---------------------------------------------------------------------------

std::uint32_t need_u32(const char* flag, const std::string& text,
                       const char* usage) {
  const auto v = try_parse_u32(text);
  if (!v) {
    std::cerr << flag << " expects an unsigned integer, got '" << text
              << "'\n" << usage;
    std::exit(2);
  }
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: live_recovery [--nodes N] [--hold-at-ms T] [--run-ms T]\n"
      "                     [--suspect-ms T] [--view-retry-ms T] [--json]\n"
      "  --nodes N         mesh size, >= 3 (default 3); the highest id is\n"
      "                    the victim and the shared lock's initial root\n"
      "  --hold-at-ms T    when the victim pins the token (default 600)\n"
      "  --run-ms T        survivor workload duration (default 3000)\n"
      "  --suspect-ms T    failure-detector window (default 250)\n"
      "  --view-retry-ms T view round retry cadence (default 25)\n"
      "  --json            emit the BENCH_recovery.json document\n";

  Config cfg;
  bool worker = false;
  WorkerArgs wa;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) {
        std::cerr << "missing value for " << arg << "\n" << usage;
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--worker") worker = true;
    else if (arg == "--victim") wa.victim = true;
    else if (arg == "--id") wa.id = need_u32("--id", next(), usage);
    else if (arg == "--port")
      wa.port = static_cast<std::uint16_t>(need_u32("--port", next(), usage));
    else if (arg == "--report") wa.report = next();
    else if (arg == "--peer-addr") {
      const std::string spec = next();  // id=host:port
      const auto eq = spec.find('=');
      const auto colon = spec.find(':', eq);
      if (eq == std::string::npos || colon == std::string::npos) {
        std::cerr << "--peer-addr expects id=host:port\n";
        return 2;
      }
      const NodeId pid{need_u32("--peer-addr", spec.substr(0, eq), usage)};
      wa.peers[pid] = net::PeerAddress{
          spec.substr(eq + 1, colon - eq - 1),
          static_cast<std::uint16_t>(
              need_u32("--peer-addr", spec.substr(colon + 1), usage))};
    } else if (arg == "--nodes") cfg.nodes = need_u32("--nodes", next(), usage);
    else if (arg == "--hold-at-ms")
      cfg.hold_at_ms = need_u32("--hold-at-ms", next(), usage);
    else if (arg == "--run-ms") cfg.run_ms = need_u32("--run-ms", next(), usage);
    else if (arg == "--suspect-ms")
      cfg.suspect_ms = need_u32("--suspect-ms", next(), usage);
    else if (arg == "--view-retry-ms")
      cfg.view_retry_ms = need_u32("--view-retry-ms", next(), usage);
    else if (arg == "--json") cfg.json = true;
    else {
      std::cerr << "unknown argument: " << arg << "\n" << usage;
      return 2;
    }
  }
  if (cfg.nodes < 3) {
    std::cerr << "live_recovery: need >= 3 nodes (2+ survivors)\n";
    return 2;
  }
  if (cfg.run_ms <= cfg.hold_at_ms) {
    std::cerr << "live_recovery: --run-ms must exceed --hold-at-ms\n";
    return 2;
  }

  if (worker) {
    wa.cfg = cfg;
    return run_worker(wa);
  }
  return run_parent("/proc/self/exe", cfg);
}
