// Wall-clock throughput of the discrete-event core: sim events/sec and
// lock acquires/sec under the fig5 workload, for our protocol and the
// Naimi-pure baseline, at n in {16, 64, 120, 256}.
//
// Unlike the figure benches (which report *virtual-time* metrics), this
// one measures how fast the simulator itself executes — the hard ceiling
// on every sweep and sensitivity run. Each point is run `--repeat` times
// (same seed, bit-identical virtual behavior) and the best wall time is
// reported. Before/after numbers per PR live in BENCH_throughput.json;
// docs/PERFORMANCE.md describes the methodology.
//
//   ./throughput                       # default sweep, ASCII table
//   ./throughput --json                # machine-readable, for the JSON log
//   ./throughput --nodes 24 --ops 40   # one custom point
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/experiment.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

struct Sample {
  std::string protocol;
  std::size_t nodes{0};
  double wall_ms{0};
  std::uint64_t events{0};
  ExperimentResult result;

  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / (wall_ms / 1000.0);
  }
  [[nodiscard]] double acquires_per_sec() const {
    return static_cast<double>(result.lock_requests) / (wall_ms / 1000.0);
  }
};

template <typename Cluster, typename... Extra>
Sample run_one(const char* name, std::size_t nodes,
               const workload::WorkloadSpec& spec, int repeat,
               Extra... extra) {
  Sample s;
  s.protocol = name;
  s.nodes = nodes;
  for (int i = 0; i < repeat; ++i) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.spec = spec;
    Cluster cluster(cfg, extra...);
    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < s.wall_ms) s.wall_ms = ms;
    s.events = cluster.simulator().events_processed();
    s.result = cluster.result();
  }
  return s;
}

void emit_json(std::ostream& os, const std::vector<Sample>& samples) {
  os << "[\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    os << "  {\"protocol\":\"" << s.protocol << "\",\"nodes\":" << s.nodes
       << ",\"wall_ms\":" << s.wall_ms << ",\"events\":" << s.events
       << ",\"events_per_sec\":" << static_cast<std::uint64_t>(s.events_per_sec())
       << ",\"acquires_per_sec\":"
       << static_cast<std::uint64_t>(s.acquires_per_sec())
       << ",\"lock_requests\":" << s.result.lock_requests
       << ",\"messages\":" << s.result.messages
       << ",\"wire_bytes\":" << s.result.wire_bytes
       << ",\"virtual_end_us\":" << s.result.virtual_end
       << ",\"messages_by_kind\":{";
    bool first = true;
    for (const auto& [kind, count] : s.result.messages_by_kind.all()) {
      if (!first) os << ",";
      first = false;
      os << "\"" << kind << "\":" << count;
    }
    os << "}}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  std::vector<std::size_t> node_counts{16, 64, 120, 256};
  int repeat = 3;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--nodes") {
      node_counts = {std::strtoul(value(), nullptr, 10)};
    } else if (arg == "--ops") {
      spec.ops_per_node = static_cast<std::uint32_t>(
          std::strtoul(value(), nullptr, 10));
    } else if (arg == "--repeat") {
      repeat = std::atoi(value());
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(value(), nullptr, 0);
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  std::vector<Sample> samples;
  for (const std::size_t n : node_counts) {
    samples.push_back(run_one<HlsCluster>("hls", n, spec, repeat));
    samples.push_back(
        run_one<NaimiCluster>("naimi-pure", n, spec, repeat, true));
  }

  if (json) {
    emit_json(std::cout, samples);
    return 0;
  }

  std::cout << "Simulator throughput (wall clock; best of " << repeat
            << " runs, fig5 workload, seed=" << spec.seed << ")\n\n";
  TablePrinter table({"protocol", "nodes", "wall ms", "events", "events/sec",
                      "acquires/sec"});
  for (const Sample& s : samples) {
    table.row({s.protocol, std::to_string(s.nodes),
               TablePrinter::num(s.wall_ms, 1), std::to_string(s.events),
               TablePrinter::num(s.events_per_sec(), 0),
               TablePrinter::num(s.acquires_per_sec(), 0)});
  }
  table.print(std::cout);
  return 0;
}
