// Wall-clock throughput of the discrete-event core: sim events/sec and
// lock acquires/sec under the fig5 workload, for our protocol and the
// Naimi-pure baseline, at n in {16, 64, 120, 256}.
//
// Unlike the figure benches (which report *virtual-time* metrics), this
// one measures how fast the simulator itself executes — the hard ceiling
// on every sweep and sensitivity run. Each point is run `--repeat` times
// (same seed, bit-identical virtual behavior) and the best wall time is
// reported. Points always execute serially: a timed sample needs the
// machine to itself, so `--threads` is rejected here (use the sweep
// binaries for parallel execution; see docs/PERFORMANCE.md).
// Before/after numbers per PR live in BENCH_throughput.json.
//
//   ./throughput                       # default sweep, ASCII table
//   ./throughput --json                # machine-readable, for the JSON log
//   ./throughput --nodes 24 --ops 40   # one custom point
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

template <typename Cluster, typename... Extra>
TimingSample run_one(const char* name, std::size_t nodes,
                     const workload::WorkloadSpec& spec, int repeat,
                     Extra... extra) {
  TimingSample s;
  s.protocol = name;
  s.nodes = nodes;
  for (int i = 0; i < repeat; ++i) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.spec = spec;
    Cluster cluster(cfg, extra...);
    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < s.wall_ms) s.wall_ms = ms;
    s.events = cluster.simulator().events_processed();
    s.result = cluster.result();
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions defaults;
  defaults.repeat = 3;
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: throughput [--nodes N] [--ops N] [--seed S] [--repeat N]\n"
      "         [--json]\n",
      defaults);
  if (cli.threads != 0) {
    std::cerr << "throughput measures wall clock; timed samples run "
                 "serially (--threads not supported here — use --threads "
                 "with the sweep binaries, or bench/many_locks --shards "
                 "for shard-parallel simulation)\n";
    return 2;
  }

  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);
  const std::vector<std::size_t> node_counts =
      cli.nodes != 0 ? std::vector<std::size_t>{cli.nodes}
                     : std::vector<std::size_t>{16, 64, 120, 256};

  std::vector<TimingSample> samples;
  for (const std::size_t n : node_counts) {
    samples.push_back(run_one<HlsCluster>("hls", n, spec, cli.repeat));
    samples.push_back(
        run_one<NaimiCluster>("naimi-pure", n, spec, cli.repeat, true));
  }

  if (cli.json) {
    write_json_array(std::cout, samples);
    return 0;
  }

  std::cout << "Simulator throughput (wall clock; best of " << cli.repeat
            << " runs, fig5 workload, seed=" << spec.seed << ")\n\n";
  TablePrinter table({"protocol", "nodes", "wall ms", "events", "events/sec",
                      "acquires/sec"});
  for (const TimingSample& s : samples) {
    table.row({s.protocol, std::to_string(s.nodes),
               TablePrinter::num(s.wall_ms, 1), std::to_string(s.events),
               TablePrinter::num(s.events_per_sec(), 0),
               TablePrinter::num(s.acquires_per_sec(), 0)});
  }
  table.print(std::cout);
  return 0;
}
