// Granularity study — why hierarchical locking exists (§3.1, Gray [5]):
// the same document-store workload under three lock granularities on the
// same protocol:
//
//   flat    one global lock (modes still apply: readers share)
//   coarse  database -> collection locks (documents share their
//           collection's lock)
//   fine    database -> collection -> document locks (full 3-level
//           multi-granularity plans)
//
// Workload per node: 70% doc reads, 15% doc writes, 10% collection scans,
// 5% collection rebuilds. Expected: finer granularity buys concurrency
// (lower latency, shorter makespan) at the price of more lock requests
// per op — and intent modes keep that price to ~1 extra message per
// level. Parameters put the system in the contention-dominated regime
// (10 ms LAN latency, 50 ms critical sections) where granularity is the
// bottleneck; with long WAN latencies the extra sequential acquisitions
// of deep plans dominate instead (see the paper's latency model).
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "common/rng.hpp"
#include "harness/sweep_runner.hpp"
#include "harness/experiment.hpp"
#include "harness/sim_executor.hpp"
#include "lockmgr/hierarchy.hpp"
#include "lockmgr/plan_session.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

using namespace hlock;

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::uint32_t kCollections = 4;
constexpr std::uint32_t kDocsPerCollection = 8;
constexpr int kOpsPerNode = 30;

enum class Grain { kFlat, kCoarse, kFine };

struct DocStore {
  DocStore() : hierarchy("db") {
    for (std::uint32_t c = 0; c < kCollections; ++c) {
      const ResourceId col =
          hierarchy.add_child(hierarchy.root(), "col" + std::to_string(c));
      collections.push_back(col);
      for (std::uint32_t d = 0; d < kDocsPerCollection; ++d) {
        docs.push_back(hierarchy.add_child(col, "doc" + std::to_string(d)));
      }
    }
  }
  lockmgr::Hierarchy hierarchy;
  std::vector<ResourceId> collections;
  std::vector<ResourceId> docs;
};

struct RunStats {
  Summary latency_ms;
  std::uint64_t lock_requests{0};
  std::uint64_t messages{0};
  TimePoint makespan{0};
};

RunStats run_grain(Grain grain) {
  DocStore store;
  sim::Simulator sim;
  sim::SimNetwork net(sim, std::make_unique<sim::UniformLatency>(msec(10)),
                      Rng(17));
  harness::SimExecutor exec(sim);

  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsNode>> nodes;
  std::vector<std::unique_ptr<lockmgr::PlanSession>> sessions;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    transports.push_back(std::make_unique<sim::SimTransport>(net, id));
    nodes.push_back(std::make_unique<core::HlsNode>(id, *transports.back()));
    for (std::uint32_t l = 0; l < store.hierarchy.resource_count(); ++l) {
      nodes.back()->add_lock(LockId{l}, NodeId{l % kNodes});
    }
    net.register_node(id, [n = nodes.back().get()](const Message& m) {
      n->handle(m);
    });
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    sessions.push_back(
        std::make_unique<lockmgr::PlanSession>(*nodes[i], exec));
  }

  RunStats stats;
  Rng rng(99);
  std::vector<Rng> node_rng;
  for (std::size_t i = 0; i < kNodes; ++i) node_rng.push_back(rng.split());

  // Build the lock plan for an op under the chosen granularity.
  auto plan_for = [&](Rng& r) -> std::vector<lockmgr::PlanStep> {
    const double dice = r.next_double();
    const auto col = store.collections[r.next_below(kCollections)];
    const auto doc = store.docs[r.next_below(
        kCollections * kDocsPerCollection)];
    const Mode doc_mode = dice < 0.70 ? Mode::kR
                          : dice < 0.85 ? Mode::kW
                                        : Mode::kNone;
    const Mode col_mode = dice < 0.95 ? Mode::kR : Mode::kW;  // scan/rebuild
    switch (grain) {
      case Grain::kFlat: {
        const Mode m = doc_mode != Mode::kNone ? doc_mode : col_mode;
        return {{store.hierarchy.lock_of(store.hierarchy.root()), m}};
      }
      case Grain::kCoarse: {
        if (doc_mode != Mode::kNone) {
          // Document ops lock the document's collection.
          return lock_plan(store.hierarchy, store.hierarchy.parent_of(doc),
                           doc_mode);
        }
        return lock_plan(store.hierarchy, col, col_mode);
      }
      case Grain::kFine: {
        if (doc_mode != Mode::kNone) {
          return lock_plan(store.hierarchy, doc, doc_mode);
        }
        return lock_plan(store.hierarchy, col, col_mode);
      }
    }
    return {};
  };

  std::vector<int> remaining(kNodes, kOpsPerNode);
  std::function<void(std::size_t)> next_op = [&](std::size_t i) {
    if (remaining[i]-- == 0) return;
    sim.schedule_after(
        std::max<Duration>(usec(100),
                           static_cast<Duration>(node_rng[i].exponential(
                               static_cast<double>(msec(100))))),
        [&, i] {
          auto plan = plan_for(node_rng[i]);
          const Duration cs = std::max<Duration>(
              usec(100), static_cast<Duration>(node_rng[i].exponential(
                             static_cast<double>(msec(50)))));
          sessions[i]->run(std::move(plan), cs,
                           [&, i](const lockmgr::PlanSession::Result& r) {
                             stats.latency_ms.add(to_ms(r.acquire_latency));
                             stats.lock_requests += r.lock_requests;
                             next_op(i);
                           });
        });
  };
  for (std::size_t i = 0; i < kNodes; ++i) next_op(i);
  sim.run_all();
  stats.messages = net.messages_sent();
  stats.makespan = sim.now();
  return stats;
}

const char* grain_name(Grain g) {
  switch (g) {
    case Grain::kFlat: return "flat (1 lock)";
    case Grain::kCoarse: return "coarse (db+collections)";
    case Grain::kFine: return "fine (3-level)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, "usage: granularity [--threads N]\n");
  const Grain grains[] = {Grain::kFlat, Grain::kCoarse, Grain::kFine};
  std::vector<std::vector<std::string>> rows(std::size(grains));
  harness::SweepRunner runner(bench::sweep_options(cli));
  runner.for_each_index(std::size(grains), [&](std::size_t i) {
    const Grain g = grains[i];
    const RunStats s = run_grain(g);
    const double ops = static_cast<double>(kNodes * kOpsPerNode);
    rows[i] = {grain_name(g),
               harness::TablePrinter::num(s.latency_ms.mean(), 1),
               harness::TablePrinter::num(s.latency_ms.percentile(0.95), 1),
               harness::TablePrinter::num(
                   static_cast<double>(s.lock_requests) / ops, 2),
               harness::TablePrinter::num(
                   static_cast<double>(s.messages) / ops, 2),
               harness::TablePrinter::num(
                   static_cast<double>(s.makespan) / 1e6, 1)};
  });

  std::cout << "Lock granularity study: " << kNodes << " nodes, "
            << kCollections << " collections x " << kDocsPerCollection
            << " docs, 70/15/10/5% doc-read/doc-write/scan/rebuild\n\n";
  harness::TablePrinter table({"granularity", "mean acquire ms", "p95 ms",
                               "locks/op", "msgs/op", "makespan s"});
  for (const auto& row : rows) table.row(row);
  table.print(std::cout);
  std::cout << "\nexpected: finer granularity cuts acquire latency and "
               "makespan (parallel disjoint writers) while intent modes "
               "keep the per-op message cost modest\n";
  return 0;
}
