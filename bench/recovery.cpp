// Crash-recovery bench: how long a view change disrupts lock service.
// Nodes hammer one lock; at a fixed point the current TOKEN HOLDER
// crashes, the view service recovers the survivors, and we measure the
// gap in successful acquisitions plus the recovery message cost.
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "common/stats.hpp"
#include "harness/sweep_runner.hpp"
#include "core/hls_engine.hpp"
#include "harness/experiment.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

using namespace hlock;

namespace {

struct Rig {
  explicit Rig(std::size_t n)
      : net(sim, std::make_unique<sim::UniformLatency>(msec(15)), Rng(31)) {
    alive.assign(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      transports.push_back(std::make_unique<sim::SimTransport>(net, id));
      core::EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode) {
        grant_times.push_back(sim.now());
        sim.schedule_after(msec(3), [this, i, rid] {
          if (!alive[i]) return;
          engines[i]->unlock(rid);
          request_later(i);
        });
      };
      engines.push_back(std::make_unique<core::HlsEngine>(
          LockId{0}, id, NodeId{0}, *transports.back(), core::EngineOptions{},
          std::move(cbs)));
      core::HlsEngine* raw = engines.back().get();
      net.register_node(id, [this, i, raw](const Message& m) {
        if (alive[i]) raw->handle(m);
      });
    }
  }

  void request_later(std::size_t i) {
    sim.schedule_after(msec(8), [this, i] {
      if (!alive[i] || remaining[i]-- <= 0) return;
      (void)engines[i]->request_lock(Mode::kW);
    });
  }

  void run(int ops_per_node, TimePoint crash_at) {
    remaining.assign(engines.size(), ops_per_node);
    for (std::size_t i = 0; i < engines.size(); ++i) request_later(i);

    sim.schedule_at(crash_at, [this] {
      // Kill the current token holder (worst case).
      std::size_t victim = 0;
      for (std::size_t i = 0; i < engines.size(); ++i) {
        if (alive[i] && engines[i]->is_token_node()) victim = i;
      }
      alive[victim] = false;
      crash_time = sim.now();
      msgs_at_crash = net.messages_sent();
      // Detection delay (failure detector), then the view change.
      sim.schedule_after(msec(100), [this] {
        std::size_t root = 0;
        while (!alive[root]) ++root;
        std::set<NodeId> survivors;
        for (std::size_t i = 0; i < engines.size(); ++i) {
          if (alive[i]) survivors.insert(NodeId{
              static_cast<std::uint32_t>(i)});
        }
        for (std::size_t i = 0; i < engines.size(); ++i) {
          if (alive[i]) {
            engines[i]->begin_recovery(
                1, NodeId{static_cast<std::uint32_t>(root)}, survivors);
          }
        }
        recovered_time = sim.now();
        msgs_after_recovery = net.messages_sent();
      });
    });
    sim.run_all();
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsEngine>> engines;
  std::vector<bool> alive;
  std::vector<int> remaining;
  std::vector<TimePoint> grant_times;
  TimePoint crash_time{0};
  TimePoint recovered_time{0};
  std::uint64_t msgs_at_crash{0};
  std::uint64_t msgs_after_recovery{0};
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, "usage: recovery [--threads N]\n");
  const std::size_t node_counts[] = {4, 8, 16, 32};
  const std::size_t count = std::size(node_counts);

  std::vector<std::vector<std::string>> rows(count);
  harness::SweepRunner runner(bench::sweep_options(cli));
  runner.for_each_index(count, [&](std::size_t idx) {
    const std::size_t n = node_counts[idx];
    Rig rig(n);
    rig.run(/*ops_per_node=*/25, /*crash_at=*/msec(400));
    // Service gap: last grant before the crash to first grant after the
    // view change.
    TimePoint last_before = 0;
    std::optional<TimePoint> first_after;
    for (const TimePoint t : rig.grant_times) {
      if (t <= rig.crash_time) last_before = std::max(last_before, t);
      if (t >= rig.recovered_time && !first_after) first_after = t;
    }
    std::uint64_t after = 0;
    for (const TimePoint t : rig.grant_times) {
      if (t > rig.crash_time) ++after;
    }
    rows[idx] = {std::to_string(n), std::to_string(rig.grant_times.size()),
                 first_after ? harness::TablePrinter::num(
                                   to_ms(*first_after - last_before), 1)
                             : "-",
                 std::to_string(rig.msgs_after_recovery - rig.msgs_at_crash),
                 std::to_string(after)};
  });

  std::cout << "Crash recovery: token holder dies mid-run, view service "
               "recovers after a 100 ms detection delay\n\n";
  harness::TablePrinter table({"nodes", "grants total", "service gap ms",
                               "recovery msgs", "grants after crash"});
  for (const auto& row : rows) table.row(row);
  table.print(std::cout);
  std::cout << "\nexpected: the gap is dominated by the detection delay "
               "(100 ms) plus one round trip; survivors keep acquiring "
               "afterwards\n";
  return 0;
}
