// Extension to Figure 6: the paper reports latency "averaged over all
// types of requests (IR, R, U, IW and W)". This bench shows the per-type
// breakdown behind that average for our protocol: intent/leaf entry ops
// are cheap and parallel, table-wide R/U ops pay for draining intent
// writers, and W pays the most.
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  workload::WorkloadSpec spec;
  spec.ops_per_node = 80;
  const std::size_t max_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  std::cout << "Per-request-type latency factor for our protocol "
               "(breakdown of Figure 6's average)\n\n";
  TablePrinter table({"nodes", "entry_read(IR)", "table_read(R)",
                      "upgrade(U)", "entry_write(IW)", "table_write(W)",
                      "average"});
  for (const std::size_t n : sweep_node_counts(max_nodes)) {
    const auto r = run_experiment(Protocol::kHls, n, spec);
    auto cell = [&](const char* kind) {
      const auto it = r.latency_by_kind.find(kind);
      return it == r.latency_by_kind.end()
                 ? std::string("-")
                 : TablePrinter::num(it->second.mean(), 1);
    };
    table.row({std::to_string(n), cell("entry_read"), cell("table_read"),
               cell("table_upgrade"), cell("entry_write"),
               cell("table_write"),
               TablePrinter::num(r.latency_factor.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: entry ops stay cheap (high parallelism via "
               "intent modes); table-wide ops dominate the average\n";
  return 0;
}
