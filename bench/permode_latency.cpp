// Extension to Figure 6: the paper reports latency "averaged over all
// types of requests (IR, R, U, IW and W)". This bench shows the per-type
// breakdown behind that average for our protocol: intent/leaf entry ops
// are cheap and parallel, table-wide R/U ops pay for draining intent
// writers, and W pays the most.
#include <iostream>
#include <string>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: permode_latency [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo] [--json]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 80;
  bench::apply(cli, spec);

  std::vector<SweepPoint> points;
  const auto node_counts = bench::sweep_nodes(cli);
  for (const std::size_t n : node_counts)
    points.push_back(make_point(Protocol::kHls, n, spec));
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  if (cli.json) {
    write_json_array(std::cout, results);
    return 0;
  }

  std::cout << "Per-request-type latency factor for our protocol "
               "(breakdown of Figure 6's average)\n\n";
  TablePrinter table({"nodes", "entry_read(IR)", "table_read(R)",
                      "upgrade(U)", "entry_write(IW)", "table_write(W)",
                      "average"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& r = results[i];
    auto cell = [&](const char* kind) {
      const auto it = r.latency_by_kind.find(kind);
      return it == r.latency_by_kind.end()
                 ? std::string("-")
                 : TablePrinter::num(it->second.mean(), 1);
    };
    table.row({std::to_string(node_counts[i]), cell("entry_read"),
               cell("table_read"), cell("table_upgrade"),
               cell("entry_write"), cell("table_write"),
               TablePrinter::num(r.latency_factor.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: entry ops stay cheap (high parallelism via "
               "intent modes); table-wide ops dominate the average\n";
  return 0;
}
