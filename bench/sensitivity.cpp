// Sensitivity analysis: how the headline metrics respond when the paper's
// workload parameters move — read/write mix, critical-section length,
// think time, access locality, and table size. Fixed at 60 nodes.
//
// All rows across all sections are submitted to one SweepRunner: they
// evaluate in parallel under --threads, and the five sections that each
// re-measure the unmodified baseline spec share a single run through the
// memo cache.
#include <iostream>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

struct Section {
  std::string title;
  std::string key_header;
  std::vector<std::string> labels;
  std::vector<workload::WorkloadSpec> specs;

  void row(const std::string& label, const workload::WorkloadSpec& spec) {
    labels.push_back(label);
    specs.push_back(spec);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: sensitivity [--nodes N] [--ops N] [--seed S] [--threads N]\n"
      "         [--repeat N] [--no-memo]\n");
  workload::WorkloadSpec base;
  base.ops_per_node = 40;
  bench::apply(cli, base);
  const std::size_t nodes = cli.nodes != 0 ? cli.nodes : 60;

  std::vector<Section> sections;
  {
    Section s;
    s.title = "mode mix (entry_read/table_read/upgrade/entry_write/"
              "table_write)";
    s.key_header = "mix";
    s.row("paper 80/10/4/5/1", base);
    workload::WorkloadSpec reads = base;
    reads.p_entry_read = 0.95;
    reads.p_table_read = 0.05;
    reads.p_upgrade = reads.p_entry_write = reads.p_table_write = 0.0;
    s.row("read-only 95/5/0/0/0", reads);
    workload::WorkloadSpec writes = base;
    writes.p_entry_read = 0.40;
    writes.p_table_read = 0.05;
    writes.p_upgrade = 0.10;
    writes.p_entry_write = 0.35;
    writes.p_table_write = 0.10;
    s.row("write-heavy 40/5/10/35/10", writes);
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.title = "critical-section length";
    s.key_header = "cs mean";
    for (const auto cs : {msec(5), msec(15), msec(50), msec(150)}) {
      workload::WorkloadSpec spec = base;
      spec.cs_mean = cs;
      s.row(std::to_string(cs / 1000) + " ms", spec);
    }
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.title = "inter-request idle time";
    s.key_header = "idle mean";
    for (const auto idle : {msec(50), msec(150), msec(500), msec(1500)}) {
      workload::WorkloadSpec spec = base;
      spec.idle_mean = idle;
      s.row(std::to_string(idle / 1000) + " ms", spec);
    }
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.title = "access locality (home bias of entry ops)";
    s.key_header = "home bias";
    for (const double bias : {0.0, 0.5, 0.9, 1.0}) {
      workload::WorkloadSpec spec = base;
      spec.home_bias = bias;
      s.row(TablePrinter::num(bias, 1), spec);
    }
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.title = "table size (rows per airline)";
    s.key_header = "entries/node";
    for (const std::uint32_t e : {1u, 2u, 4u, 8u}) {
      workload::WorkloadSpec spec = base;
      spec.entries_per_node = e;
      s.row(std::to_string(e), spec);
    }
    sections.push_back(std::move(s));
  }

  std::vector<SweepPoint> points;
  for (const Section& s : sections)
    for (const auto& spec : s.specs)
      points.push_back(make_point(Protocol::kHls, nodes, spec));
  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  std::size_t next = 0;
  bool first = true;
  for (const Section& s : sections) {
    std::cout << (first ? "" : "\n") << "=== " << s.title << " ===\n";
    first = false;
    TablePrinter table({s.key_header, "msgs/req", "latency", "p95"});
    for (const std::string& label : s.labels) {
      const auto& r = results[next++];
      table.row({label, TablePrinter::num(r.msgs_per_lock_request()),
                 TablePrinter::num(r.latency_factor.mean(), 1),
                 TablePrinter::num(r.latency_factor.percentile(0.95), 1)});
    }
    table.print(std::cout);
  }
  std::cout << "\nexpected: locality cuts entry-lock traffic; longer CS or "
               "shorter idle raises contention (latency), message count "
               "stays near the ~3 asymptote throughout\n";
  return 0;
}
