// Sensitivity analysis: how the headline metrics respond when the paper's
// workload parameters move — read/write mix, critical-section length,
// think time, access locality, and table size. Fixed at 60 nodes.
#include <iostream>

#include "harness/experiment.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

void run_row(TablePrinter& table, const std::string& label,
             const workload::WorkloadSpec& spec) {
  const auto r = run_experiment(Protocol::kHls, 60, spec);
  table.row({label, TablePrinter::num(r.msgs_per_lock_request()),
             TablePrinter::num(r.latency_factor.mean(), 1),
             TablePrinter::num(r.latency_factor.percentile(0.95), 1)});
}

}  // namespace

int main() {
  workload::WorkloadSpec base;
  base.ops_per_node = 40;

  {
    std::cout << "=== mode mix (entry_read/table_read/upgrade/entry_write/"
                 "table_write) ===\n";
    TablePrinter table({"mix", "msgs/req", "latency", "p95"});
    run_row(table, "paper 80/10/4/5/1", base);
    workload::WorkloadSpec reads = base;
    reads.p_entry_read = 0.95;
    reads.p_table_read = 0.05;
    reads.p_upgrade = reads.p_entry_write = reads.p_table_write = 0.0;
    run_row(table, "read-only 95/5/0/0/0", reads);
    workload::WorkloadSpec writes = base;
    writes.p_entry_read = 0.40;
    writes.p_table_read = 0.05;
    writes.p_upgrade = 0.10;
    writes.p_entry_write = 0.35;
    writes.p_table_write = 0.10;
    run_row(table, "write-heavy 40/5/10/35/10", writes);
    table.print(std::cout);
  }
  {
    std::cout << "\n=== critical-section length ===\n";
    TablePrinter table({"cs mean", "msgs/req", "latency", "p95"});
    for (const auto cs : {msec(5), msec(15), msec(50), msec(150)}) {
      workload::WorkloadSpec spec = base;
      spec.cs_mean = cs;
      run_row(table, std::to_string(cs / 1000) + " ms", spec);
    }
    table.print(std::cout);
  }
  {
    std::cout << "\n=== inter-request idle time ===\n";
    TablePrinter table({"idle mean", "msgs/req", "latency", "p95"});
    for (const auto idle : {msec(50), msec(150), msec(500), msec(1500)}) {
      workload::WorkloadSpec spec = base;
      spec.idle_mean = idle;
      run_row(table, std::to_string(idle / 1000) + " ms", spec);
    }
    table.print(std::cout);
  }
  {
    std::cout << "\n=== access locality (home bias of entry ops) ===\n";
    TablePrinter table({"home bias", "msgs/req", "latency", "p95"});
    for (const double bias : {0.0, 0.5, 0.9, 1.0}) {
      workload::WorkloadSpec spec = base;
      spec.home_bias = bias;
      run_row(table, TablePrinter::num(bias, 1), spec);
    }
    table.print(std::cout);
  }
  {
    std::cout << "\n=== table size (rows per airline) ===\n";
    TablePrinter table({"entries/node", "msgs/req", "latency", "p95"});
    for (const std::uint32_t e : {1u, 2u, 4u, 8u}) {
      workload::WorkloadSpec spec = base;
      spec.entries_per_node = e;
      run_row(table, std::to_string(e), spec);
    }
    table.print(std::cout);
  }
  std::cout << "\nexpected: locality cuts entry-lock traffic; longer CS or "
               "shorter idle raises contention (latency), message count "
               "stays near the ~3 asymptote throughout\n";
  return 0;
}
