// live_bench — the repo's first end-to-end performance figure over real
// sockets: a small in-process mesh of TcpNodes, each fronting many
// logical client sessions (lockmgr::SessionMux over one HlsNode), under
// sustained closed-loop lock/unlock traffic on loopback TCP.
//
// Two phases, each run twice — batching + ack piggybacking ON
// (max_batch_bytes = 256 KiB, piggyback window = 1 ms) vs OFF (the
// write-per-frame, standalone-ack baseline):
//
//   wire   A 2-node bidirectional message exchange with a FIXED frame
//          count per direction, run to full delivery and a fully drained
//          send window. Delivered and acked counts are therefore equal
//          across configurations BY CONSTRUCTION, which makes the
//          syscall and ack counters directly comparable: coalescing must
//          show fewer writev batches per delivered frame, piggybacking
//          fewer standalone kAck frames.
//   locks  An N-node mesh, S sessions per node, each executing K ops of
//          the paper's workload mix closed-loop through the full
//          hierarchical protocol. Reports sustained ops/s and the
//          acquire-latency percentiles (p50/p95/p99).
//
// --json emits the BENCH_live.json document; the CI smoke job asserts
// completed ops > 0 and zero lost sends (unacked == 0 after drain).
//
// Latency numbers are wall-clock and machine-dependent; the counter
// comparisons (batches vs frames, standalone vs piggybacked acks) are
// structural and stable.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/cli.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/hls_node.hpp"
#include "harness/json.hpp"
#include "lockmgr/resource.hpp"
#include "lockmgr/session_mux.hpp"
#include "net/cluster.hpp"

using namespace hlock;

namespace {

struct BenchConfig {
  std::size_t nodes = 3;
  std::uint32_t sessions = 8;        ///< logical clients per node
  std::uint32_t ops_per_session = 40;
  std::uint32_t entries = 16;
  Duration cs = 0;                   ///< critical-section dwell
  std::uint32_t wire_msgs = 2000;    ///< per direction, wire phase
  std::uint64_t seed = 42;
  bool json = false;
};

net::TcpConfig tcp_config(bool optimized) {
  net::TcpConfig cfg;
  cfg.reconnect_min = msec(5);
  cfg.reconnect_max = msec(100);
  cfg.heartbeat_interval = msec(200);
  cfg.idle_timeout = sec(10);
  cfg.max_batch_bytes = optimized ? 256 * 1024 : 0;
  cfg.ack_piggyback_window = optimized ? msec(1) : 0;
  return cfg;
}

/// Spin until `done` holds or `limit_s` elapses; true on success.
template <typename Pred>
bool wait_for(Pred done, double limit_s) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!done()) {
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > limit_s)
      return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Phase 1: raw wire exchange with equal delivered/acked counts.
// ---------------------------------------------------------------------------

struct WireResult {
  net::TcpStats stats;
  std::uint64_t delivered{0};
  std::uint64_t unacked{0};
  double wall_s{0};
  /// writev syscalls per delivered frame — the coalescing figure of
  /// merit (1.0 means one syscall per frame; lower is better).
  [[nodiscard]] double batches_per_frame() const {
    return stats.frames_out == 0
               ? 0
               : static_cast<double>(stats.batches_written) /
                     static_cast<double>(stats.frames_out);
  }
};

WireResult run_wire_phase(const BenchConfig& cfg, bool optimized) {
  net::InProcessCluster cluster(2, tcp_config(optimized));
  // No handler: delivery just counts. The payload is a plausible small
  // protocol frame (a kRequest), ~75 wire bytes.
  Message m;
  m.kind = MsgKind::kRequest;
  m.lock = LockId{1};
  m.req.requester = NodeId{0};
  m.req.mode = Mode::kR;

  const auto t0 = std::chrono::steady_clock::now();
  // Chunked bidirectional load: bursts small enough that the receiver
  // acks many times over the run (the baseline's standalone-ack cost),
  // paced under the piggyback window so data frames are around to carry
  // acks in the optimized configuration.
  constexpr std::uint32_t kChunk = 50;
  for (std::uint32_t sent = 0; sent < cfg.wire_msgs;) {
    const std::uint32_t n = std::min(kChunk, cfg.wire_msgs - sent);
    for (std::uint32_t k = 0; k < n; ++k) {
      m.req.requester = NodeId{0};
      (void)cluster.node(0).send(NodeId{1}, m);
      m.req.requester = NodeId{1};
      (void)cluster.node(1).send(NodeId{0}, m);
    }
    sent += n;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  const bool ok = wait_for(
      [&] {
        return cluster.node(0).delivered() == cfg.wire_msgs &&
               cluster.node(1).delivered() == cfg.wire_msgs &&
               cluster.node(0).unacked() == 0 && cluster.node(1).unacked() == 0;
      },
      60.0);
  WireResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.delivered = cluster.node(0).delivered() + cluster.node(1).delivered();
  r.unacked = cluster.node(0).unacked() + cluster.node(1).unacked();
  r.stats = cluster.total_stats();
  cluster.stop();
  if (!ok) {
    std::cerr << "live_bench: wire phase did not drain (delivered="
              << r.delivered << " unacked=" << r.unacked << ")\n";
    std::exit(1);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: the lock service under closed-loop session traffic.
// ---------------------------------------------------------------------------

/// The paper's op mix (§4): IR/R/U/IW/W = 80/10/4/5/1.
lockmgr::Op draw_op(Rng& rng, const BenchConfig& cfg) {
  lockmgr::Op op;
  const std::uint64_t r = rng.next_below(100);
  if (r < 80) op.kind = lockmgr::OpKind::kEntryRead;
  else if (r < 90) op.kind = lockmgr::OpKind::kTableRead;
  else if (r < 94) op.kind = lockmgr::OpKind::kTableUpgrade;
  else if (r < 99) op.kind = lockmgr::OpKind::kEntryWrite;
  else op.kind = lockmgr::OpKind::kTableWrite;
  op.entry = static_cast<std::uint32_t>(rng.next_below(cfg.entries));
  op.cs = cfg.cs;
  return op;
}

struct ServiceNode {
  net::TcpNode* tcp{nullptr};
  std::unique_ptr<core::HlsNode> hls;
  std::unique_ptr<lockmgr::SessionMux> mux;
  std::vector<std::uint32_t> ops_left;  ///< per session, loop thread only
  std::vector<double> latencies_us;     ///< loop thread writes
  Rng rng{0};
};

struct LockPhase {
  const BenchConfig& cfg;
  std::vector<ServiceNode> svc;
  std::atomic<std::uint64_t> completed{0};

  explicit LockPhase(const BenchConfig& c) : cfg(c), svc(c.nodes) {}

  /// Closed loop, one logical session: finish an op, start the next.
  /// Runs on the owning node's loop thread throughout.
  void pump(std::size_t node, std::uint32_t sid) {
    ServiceNode& sn = svc[node];
    if (sn.ops_left[sid] == 0) return;
    --sn.ops_left[sid];
    const lockmgr::Op op = draw_op(sn.rng, cfg);
    sn.mux->start(sid, op, [this, node, sid](const lockmgr::OpStats& st) {
      svc[node].latencies_us.push_back(
          static_cast<double>(st.acquire_latency));
      completed.fetch_add(1, std::memory_order_relaxed);
      pump(node, sid);
    });
  }
};

struct LockResult {
  net::TcpStats stats;
  std::uint64_t ops{0};
  std::uint64_t delivered{0};
  std::uint64_t unacked{0};
  double wall_s{0};
  Summary latency;
  [[nodiscard]] double ops_per_sec() const {
    return wall_s > 0 ? static_cast<double>(ops) / wall_s : 0;
  }
};

LockResult run_lock_phase(const BenchConfig& cfg, bool optimized) {
  net::InProcessCluster cluster(cfg.nodes, tcp_config(optimized));
  lockmgr::ResourceLayout layout(cfg.entries);
  LockPhase phase(cfg);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    ServiceNode& sn = phase.svc[i];
    sn.tcp = &cluster.node(i);
    sn.hls = std::make_unique<core::HlsNode>(
        NodeId{static_cast<std::uint32_t>(i)}, sn.tcp->transport());
    // Deterministic layout, identical on every node: lock l starts
    // rooted at node l % N.
    for (std::uint32_t l = 0; l < layout.lock_count(); ++l) {
      sn.hls->add_lock(LockId{l},
                       NodeId{l % static_cast<std::uint32_t>(cfg.nodes)});
    }
    sn.mux = std::make_unique<lockmgr::SessionMux>(*sn.hls, layout,
                                                   sn.tcp->loop(),
                                                   cfg.sessions);
    sn.ops_left.assign(cfg.sessions, cfg.ops_per_session);
    sn.latencies_us.reserve(
        static_cast<std::size_t>(cfg.sessions) * cfg.ops_per_session);
    sn.rng = Rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    // All protocol traffic flows through the node's loop thread, which
    // keeps the engines' single-threaded contract.
    ServiceNode* raw = &sn;
    sn.tcp->set_handler([raw](const Message& m) { raw->hls->handle(m); });
  }

  const std::uint64_t total = static_cast<std::uint64_t>(cfg.nodes) *
                              cfg.sessions * cfg.ops_per_session;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    for (std::uint32_t sid = 0; sid < cfg.sessions; ++sid) {
      cluster.node(i).loop().post([&phase, i, sid] { phase.pump(i, sid); });
    }
  }
  const bool ops_done =
      wait_for([&] { return phase.completed.load() == total; }, 120.0);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Ack drain: every accepted send provably delivered before we read the
  // counters ("zero lost sends").
  const bool drained = wait_for(
      [&] {
        for (std::size_t i = 0; i < cfg.nodes; ++i)
          if (cluster.node(i).unacked() != 0) return false;
        return true;
      },
      30.0);

  LockResult r;
  r.wall_s = wall_s;
  r.ops = phase.completed.load();
  r.stats = cluster.total_stats();
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    r.delivered += cluster.node(i).delivered();
    r.unacked += cluster.node(i).unacked();
  }
  cluster.stop();
  for (const ServiceNode& sn : phase.svc)
    for (const double v : sn.latencies_us) r.latency.add(v);
  r.latency.seal();
  if (!ops_done || !drained) {
    std::cerr << "live_bench: lock phase stalled (completed=" << r.ops << "/"
              << total << " unacked=" << r.unacked << ")\n";
    std::exit(1);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string wire_json(const WireResult& r) {
  using harness::json_double;
  std::ostringstream os;
  os << "{\"delivered\": " << r.delivered << ", \"unacked\": " << r.unacked
     << ", \"frames_out\": " << r.stats.frames_out
     << ", \"batches_written\": " << r.stats.batches_written
     << ", \"batches_per_frame\": " << json_double(r.batches_per_frame())
     << ", \"acks_standalone\": " << r.stats.acks_standalone
     << ", \"acks_piggybacked\": " << r.stats.acks_piggybacked
     << ", \"bytes_out\": " << r.stats.bytes_out
     << ", \"frames_per_batch_hist\": [" << r.stats.frames_per_batch[0]
     << ", " << r.stats.frames_per_batch[1] << ", "
     << r.stats.frames_per_batch[2] << ", " << r.stats.frames_per_batch[3]
     << "], \"wall_s\": " << json_double(r.wall_s) << "}";
  return os.str();
}

std::string lock_json(const LockResult& r) {
  using harness::json_double;
  std::ostringstream os;
  os << "{\"ops\": " << r.ops
     << ", \"ops_per_sec\": " << json_double(r.ops_per_sec())
     << ", \"acquire_latency_us\": {\"p50\": "
     << json_double(r.latency.percentile(0.50))
     << ", \"p95\": " << json_double(r.latency.percentile(0.95))
     << ", \"p99\": " << json_double(r.latency.percentile(0.99))
     << ", \"mean\": " << json_double(r.latency.mean())
     << ", \"max\": " << json_double(r.latency.max()) << "}"
     << ", \"delivered\": " << r.delivered << ", \"unacked\": " << r.unacked
     << ", \"frames_out\": " << r.stats.frames_out
     << ", \"batches_written\": " << r.stats.batches_written
     << ", \"acks_standalone\": " << r.stats.acks_standalone
     << ", \"acks_piggybacked\": " << r.stats.acks_piggybacked
     << ", \"wall_s\": " << json_double(r.wall_s) << "}";
  return os.str();
}

void print_human(const char* name, const WireResult& base,
                 const WireResult& opt) {
  std::cout << name << ":\n"
            << "  baseline : frames_out=" << base.stats.frames_out
            << " batches=" << base.stats.batches_written
            << " batches/frame=" << base.batches_per_frame()
            << " acks_standalone=" << base.stats.acks_standalone
            << " acks_piggybacked=" << base.stats.acks_piggybacked << "\n"
            << "  optimized: frames_out=" << opt.stats.frames_out
            << " batches=" << opt.stats.batches_written
            << " batches/frame=" << opt.batches_per_frame()
            << " acks_standalone=" << opt.stats.acks_standalone
            << " acks_piggybacked=" << opt.stats.acks_piggybacked << "\n";
}

void print_human(const char* name, const LockResult& r) {
  std::cout << name << ": ops=" << r.ops << " ops/s=" << r.ops_per_sec()
            << " p50=" << r.latency.percentile(0.50)
            << "us p95=" << r.latency.percentile(0.95)
            << "us p99=" << r.latency.percentile(0.99)
            << "us delivered=" << r.delivered << " unacked=" << r.unacked
            << " batches=" << r.stats.batches_written
            << " frames_out=" << r.stats.frames_out
            << " acks_standalone=" << r.stats.acks_standalone
            << " acks_piggybacked=" << r.stats.acks_piggybacked << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  const char* usage =
      "usage: live_bench [--nodes N] [--ops K] [--seed S] [--json]\n"
      "                  [--sessions S] [--entries E] [--cs-us U]\n"
      "                  [--wire-msgs M]\n"
      "  --nodes N      mesh size (default 3)\n"
      "  --ops K        ops per logical session (default 40)\n"
      "  --sessions S   logical client sessions per node (default 8)\n"
      "  --entries E    entry locks under the table lock (default 16)\n"
      "  --cs-us U      critical-section dwell per op (default 0)\n"
      "  --wire-msgs M  messages per direction, wire phase (default 2000)\n";
  bench::CliOptions defaults;
  defaults.nodes = cfg.nodes;
  defaults.ops = cfg.ops_per_session;
  defaults.seed = cfg.seed;
  std::uint32_t cs_us = 0;
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, usage, defaults,
      [&](const std::string& arg, const std::function<std::string()>& value) {
        const auto u32 = [&](const char* flag) {
          const auto v = try_parse_u32(value());
          if (!v) {
            std::cerr << flag << " expects an unsigned integer\n" << usage;
            std::exit(2);
          }
          return *v;
        };
        if (arg == "--sessions") { cfg.sessions = u32("--sessions"); return true; }
        if (arg == "--entries") { cfg.entries = u32("--entries"); return true; }
        if (arg == "--cs-us") { cs_us = u32("--cs-us"); return true; }
        if (arg == "--wire-msgs") { cfg.wire_msgs = u32("--wire-msgs"); return true; }
        return false;
      });
  cfg.nodes = cli.nodes;
  cfg.ops_per_session = cli.ops;
  cfg.seed = cli.seed;
  cfg.json = cli.json;
  cfg.cs = usec(cs_us);
  if (cfg.nodes < 2 || cfg.sessions == 0 || cfg.entries == 0 ||
      cfg.ops_per_session == 0) {
    std::cerr << "live_bench: need >= 2 nodes and nonzero sessions/entries/"
                 "ops\n";
    return 2;
  }

  const WireResult wire_base = run_wire_phase(cfg, /*optimized=*/false);
  const WireResult wire_opt = run_wire_phase(cfg, /*optimized=*/true);
  const LockResult lock_base = run_lock_phase(cfg, /*optimized=*/false);
  const LockResult lock_opt = run_lock_phase(cfg, /*optimized=*/true);

  // The structural wins the wire phase must show at equal delivered and
  // acked counts (the ISSUE's acceptance comparison).
  const bool coalescing_win =
      wire_opt.batches_per_frame() < wire_base.batches_per_frame();
  const bool piggyback_win =
      wire_opt.stats.acks_standalone < wire_base.stats.acks_standalone;

  if (cfg.json) {
    std::ostringstream os;
    os << "{\n  \"bench\": \"live_bench\",\n  \"config\": {\"nodes\": "
       << cfg.nodes << ", \"sessions\": " << cfg.sessions
       << ", \"ops_per_session\": " << cfg.ops_per_session
       << ", \"entries\": " << cfg.entries << ", \"cs_us\": " << cs_us
       << ", \"wire_msgs\": " << cfg.wire_msgs << ", \"seed\": " << cfg.seed
       << "},\n"
       << "  \"wire\": {\n    \"baseline\": " << wire_json(wire_base)
       << ",\n    \"optimized\": " << wire_json(wire_opt)
       << ",\n    \"coalescing_win\": " << (coalescing_win ? "true" : "false")
       << ",\n    \"piggyback_win\": " << (piggyback_win ? "true" : "false")
       << "\n  },\n"
       << "  \"lock_service\": {\n    \"baseline\": " << lock_json(lock_base)
       << ",\n    \"optimized\": " << lock_json(lock_opt) << "\n  },\n"
       << "  \"completed_ops\": " << lock_base.ops + lock_opt.ops
       << ",\n  \"lost_sends\": "
       << wire_base.unacked + wire_opt.unacked + lock_base.unacked +
              lock_opt.unacked
       << "\n}\n";
    std::cout << os.str();
  } else {
    print_human("wire", wire_base, wire_opt);
    print_human("locks baseline ", lock_base);
    print_human("locks optimized", lock_opt);
    std::cout << "coalescing_win=" << coalescing_win
              << " piggyback_win=" << piggyback_win << "\n";
  }
  return 0;
}
