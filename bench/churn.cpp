// Membership churn bench: a write-contended lock while nodes keep
// departing gracefully. Measures how a departure wave affects acquisition
// latency and what the handover costs in messages.
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/cli.hpp"
#include "common/stats.hpp"
#include "harness/sweep_runner.hpp"
#include "core/hls_engine.hpp"
#include "harness/experiment.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"

using namespace hlock;

namespace {

struct ChurnRig {
  explicit ChurnRig(std::size_t n)
      : net(sim, std::make_unique<sim::UniformLatency>(msec(15)), Rng(23)) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      transports.push_back(std::make_unique<sim::SimTransport>(net, id));
      core::EngineCallbacks cbs;
      cbs.on_acquired = [this, i](RequestId rid, Mode) { on_acquired(i, rid); };
      engines.push_back(std::make_unique<core::HlsEngine>(
          LockId{0}, id, NodeId{0}, *transports.back(), core::EngineOptions{},
          std::move(cbs)));
      core::HlsEngine* raw = engines.back().get();
      net.register_node(id, [raw](const Message& m) { raw->handle(m); });
    }
    departed.assign(n, false);
    rounds.assign(n, 0);
    issued_at.assign(n, 0);
  }

  void on_acquired(std::size_t i, RequestId rid) {
    latency.add(to_ms(sim.now() - issued_at[i]));
    sim.schedule_after(msec(3), [this, i, rid] {
      engines[i]->unlock(rid);
      next(i);
    });
  }

  void next(std::size_t i) {
    if (departed[i]) return;
    if (rounds[i]-- <= 0) {
      // Attempt to depart: pick the lowest live survivor as successor.
      std::size_t succ = 0;
      while (succ < engines.size() && (departed[succ] || succ == i)) ++succ;
      if (succ < engines.size() && live() > 1) {
        try {
          engines[i]->leave(NodeId{static_cast<std::uint32_t>(succ)});
          departed[i] = true;
          ++departures;
          return;
        } catch (const std::logic_error&) {
          rounds[i] = 1;  // retry after one more round
        }
      } else {
        return;  // last node stops requesting
      }
    }
    sim.schedule_after(msec(10), [this, i] {
      if (departed[i]) return;
      issued_at[i] = sim.now();
      (void)engines[i]->request_lock(Mode::kW);
    });
  }

  [[nodiscard]] std::size_t live() const {
    std::size_t n = 0;
    for (const bool d : departed) n += d ? 0 : 1;
    return n;
  }

  void run(int rounds_per_node) {
    for (std::size_t i = 0; i < engines.size(); ++i) {
      // Stagger departures: node i leaves after (i+1)*rounds ops.
      rounds[i] = static_cast<int>(i + 1) * rounds_per_node;
      next(i);
    }
    sim.run_all();
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsEngine>> engines;
  std::vector<bool> departed;
  std::vector<int> rounds;
  std::vector<TimePoint> issued_at;
  Summary latency;
  int departures{0};
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv, "usage: churn [--threads N]\n");
  const std::size_t node_counts[] = {4, 8, 16, 32};
  const std::size_t count = std::size(node_counts);

  std::vector<std::vector<std::string>> rows(count);
  harness::SweepRunner runner(bench::sweep_options(cli));
  runner.for_each_index(count, [&](std::size_t i) {
    const std::size_t n = node_counts[i];
    ChurnRig rig(n);
    rig.run(4);
    rows[i] = {std::to_string(n), std::to_string(rig.departures),
               std::to_string(rig.latency.count()),
               harness::TablePrinter::num(rig.latency.mean(), 1),
               harness::TablePrinter::num(rig.latency.percentile(0.95), 1),
               std::to_string(rig.net.messages_sent())};
  });

  std::cout << "Membership churn: W-contended lock, staggered graceful "
               "departures until one node remains\n\n";
  harness::TablePrinter table({"nodes", "departures", "acquisitions",
                               "mean wait ms", "p95 ms", "total msgs"});
  for (const auto& row : rows) table.row(row);
  table.print(std::cout);
  std::cout << "\nexpected: every node but one departs; acquisitions keep "
               "flowing throughout (no token loss, no stalls)\n";
  return 0;
}
