// The paper's evaluation application (§4): a multi-airline reservation
// system over the hierarchical locking protocol, run on the deterministic
// simulator at the paper's scale.
//
//   $ ./airline_reservation [nodes] [ops_per_node]
//
// One airline per node; every fare row is protected by an entry lock under
// a shared table lock. Entry reads take {table:IR, entry:R}, bookings take
// {table:IW, entry:W}, fare audits take {table:R}, global repricing takes
// {table:U -> W}. The FareTable access guards double-check that the lock
// protocol actually serialized conflicting accesses, and seat conservation
// is asserted at the end.
#include <cstdlib>
#include <iostream>

#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/invariants.hpp"
#include "workload/airline.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using namespace hlock::harness;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::uint32_t ops =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 50;

  ClusterConfig config;
  config.nodes = nodes;
  config.spec.ops_per_node = ops;
  config.spec.entries_per_node = 2;  // two fare classes per airline

  HlsCluster cluster(config);
  install_safety_probe(cluster);

  workload::FareTable fares(cluster.layout().entry_count(), /*seed=*/7);
  const std::uint64_t seats_before = fares.total_seats();

  std::uint64_t bookings = 0, reads = 0, audits = 0, reprices = 0, sales = 0;
  cluster.on_op_done = [&](NodeId, const lockmgr::OpStats& stats) {
    // The cluster enters/leaves critical sections for us; mirror the data
    // operation the op represents. (Runs at op completion — the lock was
    // held for the whole dwell; the guard bookkeeping happens inside.)
    switch (stats.op.kind) {
      case lockmgr::OpKind::kEntryRead: {
        fares.begin_read(stats.op.entry);
        (void)fares.price(stats.op.entry);
        fares.end_read(stats.op.entry);
        ++reads;
        break;
      }
      case lockmgr::OpKind::kEntryWrite: {
        fares.begin_write(stats.op.entry);
        if (fares.book_seat(stats.op.entry)) ++bookings;
        fares.end_write(stats.op.entry);
        break;
      }
      case lockmgr::OpKind::kTableRead: ++audits; break;
      case lockmgr::OpKind::kTableUpgrade: ++reprices; break;
      case lockmgr::OpKind::kTableWrite: ++sales; break;
    }
  };

  cluster.run();
  const std::string quiescent = check_quiescent(cluster);

  const auto r = cluster.result();
  std::cout << "airline reservation system: " << nodes << " airlines, "
            << cluster.layout().entry_count() << " fare rows, "
            << r.app_ops << " operations\n\n";
  TablePrinter table({"metric", "value"});
  table.row({"fare lookups (IR+R)", std::to_string(reads)});
  table.row({"seat bookings (IW+W)", std::to_string(bookings)});
  table.row({"fare audits (R)", std::to_string(audits)});
  table.row({"repricings (U->W)", std::to_string(reprices)});
  table.row({"seat sales (W)", std::to_string(sales)});
  table.row({"protocol messages", std::to_string(r.messages)});
  table.row({"messages per lock request",
             TablePrinter::num(r.msgs_per_lock_request())});
  table.row({"mean latency factor",
             TablePrinter::num(r.latency_factor.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nseats before " << seats_before << ", after "
            << fares.total_seats() << " (booked " << bookings << ")\n";
  std::cout << "lock-discipline violations: " << fares.violations() << "\n";
  std::cout << "quiescent check: " << (quiescent.empty() ? "clean" : quiescent)
            << "\n";

  const bool ok = quiescent.empty() && fares.violations() == 0 &&
                  seats_before == fares.total_seats() + bookings;
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
