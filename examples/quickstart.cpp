// Quickstart: three real TCP nodes on loopback, one shared lock, the
// CosConcurrency-style blocking API.
//
//   $ ./quickstart
//
// Node 0 starts as the token holder. Readers on all three nodes share the
// lock concurrently; a writer then takes it exclusively.
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "corba/concurrency.hpp"
#include "net/cluster.hpp"

int main() {
  using namespace hlock;

  // 1. Spin up three protocol nodes with real sockets, full mesh.
  net::InProcessCluster cluster(3);

  // 2. Layer the concurrency service over each node and register the same
  //    lock set everywhere (id 0, token initially at node 0).
  std::vector<std::unique_ptr<corba::ConcurrencyService>> services;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    services.push_back(
        std::make_unique<corba::ConcurrencyService>(cluster.node(i)));
    services.back()->create_lock_set(LockId{0}, NodeId{0});
  }

  // 3. Three concurrent readers — compatible modes hold simultaneously.
  std::vector<std::thread> readers;
  for (std::size_t i = 0; i < 3; ++i) {
    readers.emplace_back([&, i] {
      corba::LockSet set = services[i]->lock_set(LockId{0});
      const corba::LockHandle h = set.lock(corba::LockMode::kRead);
      std::cout << "node " << i << ": acquired R\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      set.unlock(h);
      std::cout << "node " << i << ": released R\n";
    });
  }
  for (auto& t : readers) t.join();

  // 4. An exclusive writer from node 2 — the token travels to it.
  corba::LockSet set = services[2]->lock_set(LockId{0});
  const corba::LockHandle w = set.lock(corba::LockMode::kWrite);
  std::cout << "node 2: acquired W exclusively\n";
  set.unlock(w);

  // 5. Upgrade pattern: read with intent to write, then upgrade (Rule 7).
  const corba::LockHandle u = set.lock(corba::LockMode::kUpgrade);
  std::cout << "node 2: acquired U (exclusive read)\n";
  const corba::LockHandle uw = set.change_mode(u, corba::LockMode::kWrite);
  std::cout << "node 2: upgraded U -> W atomically\n";
  set.unlock(uw);

  cluster.stop();
  std::cout << "done\n";
  return 0;
}
