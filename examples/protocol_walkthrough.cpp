// Protocol walkthrough: replays the paper's two worked examples step by
// step with a synchronous in-memory bus, printing every node's
// (owned, held, pending) tuple after each step — the same notation as
// Figures 2 and 3.
//
//   $ ./protocol_walkthrough
//
// Example 1 (Figure 2): release absorption, request queuing at a child,
// copy grants cascading from a fresh grant.
// Example 2 (Figure 3): mode freezing — a queued R request freezes IW at
// the token node so subsequent IW requests cannot starve it.
#include <deque>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "core/hls_engine.hpp"

using namespace hlock;
using core::HlsEngine;

namespace {

/// Minimal synchronous bus: messages queue until pump() delivers them.
class Bus {
 public:
  class Port final : public Transport {
   public:
    Port(Bus& bus, NodeId self) : bus_(bus), self_(self) {}
    void send(NodeId to, Message m) override {
      m.from = self_;
      bus_.queue_.push_back({to, std::move(m)});
    }

   private:
    Bus& bus_;
    NodeId self_;
  };

  Port& port(NodeId id) {
    auto it = ports_.find(id);
    if (it == ports_.end())
      it = ports_.emplace(id, std::make_unique<Port>(*this, id)).first;
    return *it->second;
  }

  void register_engine(NodeId id, HlsEngine* engine) { engines_[id] = engine; }

  void pump() {
    while (!queue_.empty()) {
      auto [to, msg] = std::move(queue_.front());
      queue_.pop_front();
      std::cout << "    [" << msg.from << " -> " << to << "  "
                << to_string(msg.kind);
      if (msg.kind == MsgKind::kRequest)
        std::cout << " {" << msg.req.requester << "," << msg.req.mode << "}";
      if (msg.kind == MsgKind::kGrant || msg.kind == MsgKind::kToken)
        std::cout << " " << msg.mode;
      if (msg.kind == MsgKind::kFreeze)
        std::cout << " " << msg.frozen.to_string();
      std::cout << "]\n";
      engines_.at(to)->handle(msg);
    }
  }

 private:
  std::deque<std::pair<NodeId, Message>> queue_;
  std::map<NodeId, std::unique_ptr<Port>> ports_;
  std::map<NodeId, HlsEngine*> engines_;
};

struct Cluster {
  /// `parents` optionally shapes the initial tree (node -> parent); nodes
  /// not listed start pointing at the token holder.
  Cluster(std::vector<char> names, char token_holder,
          std::map<char, char> parents = {}) {
    for (const char c : names) ids.push_back(NodeId{std::uint32_t(c - 'A')});
    for (std::size_t i = 0; i < names.size(); ++i) {
      labels[ids[i]] = names[i];
      NodeId initial_parent = NodeId::invalid();
      const auto it = parents.find(names[i]);
      if (it != parents.end())
        initial_parent = NodeId{std::uint32_t(it->second - 'A')};
      engines.emplace(
          ids[i],
          std::make_unique<HlsEngine>(
              LockId{0}, ids[i], NodeId{std::uint32_t(token_holder - 'A')},
              bus.port(ids[i]), core::EngineOptions{}, core::EngineCallbacks{},
              initial_parent));
      bus.register_engine(ids[i], engines.at(ids[i]).get());
    }
  }

  HlsEngine& at(char c) { return *engines.at(NodeId{std::uint32_t(c - 'A')}); }

  void show(const std::string& caption) {
    std::cout << "  " << caption << "\n";
    for (const NodeId id : ids) {
      const HlsEngine& e = *engines.at(id);
      std::cout << "    " << labels.at(id) << "("
                << e.owned_mode() << "," << e.held_mode() << ","
                << (e.has_pending() ? "P" : "0") << ")"
                << (e.is_token_node() ? " [token]" : "");
      if (!e.children().empty()) {
        std::cout << " children{";
        for (const auto& [c, m] : e.children())
          std::cout << labels.at(c) << ":" << m << " ";
        std::cout << "}";
      }
      if (!e.frozen().empty())
        std::cout << " frozen" << e.frozen().to_string();
      std::cout << "\n";
    }
  }

  Bus bus;
  std::vector<NodeId> ids;
  std::map<NodeId, char> labels;
  std::map<NodeId, std::unique_ptr<HlsEngine>> engines;
};

void example_figure2() {
  std::cout << "=== Figure 2: grant, release, queue ===\n";
  // Figure 2(a) topology: A is root holding R; B holds IR as A's child;
  // C holds IR as B's child (B granted it — Rule 3.1); D hangs off B.
  Cluster c({'A', 'B', 'C', 'D'}, 'A', {{'C', 'B'}, {'D', 'B'}});
  const RequestId ra = c.at('A').request_lock(Mode::kR);
  (void)ra;
  const RequestId rb = c.at('B').request_lock(Mode::kIR);
  c.bus.pump();
  // C's request routes through its parent B, which grants it itself.
  const RequestId rc = c.at('C').request_lock(Mode::kIR);
  c.bus.pump();
  (void)rc;
  c.show("initial state (Fig. 2a): A holds R, B holds IR, C holds IR via B");

  std::cout << "  B releases IR -- NO release message (Rule 5.2): B still "
               "owns IR through child C\n";
  c.at('B').unlock(rb);
  c.bus.pump();
  c.show("after B releases IR (Fig. 2b)");

  std::cout << "  B requests R; D requests R while {B,R} is in transit\n";
  (void)c.at('B').request_lock(Mode::kR);
  (void)c.at('D').request_lock(Mode::kR);
  c.bus.pump();
  c.show("after both R requests served (Fig. 2d)");
}

void example_figure3() {
  std::cout << "\n=== Figure 3: frozen modes ===\n";
  // A is root holding IW; B, C hold IW copies... IW is incompatible with
  // IW? No: IW is compatible with IW — A, B, C all hold IW concurrently.
  Cluster c({'A', 'B', 'C', 'D'}, 'A');
  const RequestId ra = c.at('A').request_lock(Mode::kIW);
  const RequestId rb = c.at('B').request_lock(Mode::kIW);
  c.bus.pump();
  const RequestId rc = c.at('C').request_lock(Mode::kIW);
  c.bus.pump();
  (void)rb;
  c.show("initial state (Fig. 3a): A,B,C hold IW");

  std::cout << "  D requests R -> incompatible with IW, queued at token "
               "node A; A freezes IW and notifies potential granters\n";
  (void)c.at('D').request_lock(Mode::kR);
  c.bus.pump();
  c.show("frozen state (Fig. 3b)");

  std::cout << "  C and A release IW; B still holds -> D still waits\n";
  c.at('C').unlock(rc);
  c.at('A').unlock(ra);
  c.bus.pump();
  c.show("after C and A released");

  std::cout << "  B releases IW -> owned modes drain, token forwarded to D\n";
  c.at('B').unlock(c.at('B').holds().begin()->first);
  c.bus.pump();
  c.show("final state (Fig. 3c): D holds R and the token");
}

}  // namespace

int main() {
  example_figure2();
  example_figure3();
  return 0;
}
