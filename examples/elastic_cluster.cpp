// Elastic cluster: nodes depart gracefully while lock traffic keeps
// flowing — the dynamic-membership extension over real TCP sockets.
//
//   $ ./elastic_cluster [nodes] [rounds]
//
// All nodes hammer a shared lock; every few rounds the highest-numbered
// active node drains and leaves, handing the token to a survivor when it
// happens to be the root. The run ends with a single node still able to
// take the lock silently.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "corba/concurrency.hpp"
#include "net/cluster.hpp"

using namespace hlock;

int main(int argc, char** argv) {
  // Strict parses (PR 4 convention): "5x" or "abc" is a usage error, not
  // a silently misparsed 5 or 0.
  std::size_t nodes = 5;
  int rounds = 6;
  if (argc > 1) {
    const auto v = try_parse_size(argv[1]);
    if (!v) {
      std::cerr << "usage: elastic_cluster [nodes] [rounds] — nodes must be "
                   "an unsigned integer, got '"
                << argv[1] << "'\n";
      return 2;
    }
    nodes = *v;
  }
  if (argc > 2) {
    const auto v = try_parse_int(argv[2]);
    if (!v || *v < 0) {
      std::cerr << "usage: elastic_cluster [nodes] [rounds] — rounds must be "
                   "a non-negative integer, got '"
                << argv[2] << "'\n";
      return 2;
    }
    rounds = *v;
  }
  if (nodes < 2) {
    std::cerr << "need at least 2 nodes\n";
    return 2;
  }

  const LockId kLock{0};
  net::InProcessCluster cluster(nodes);
  std::vector<std::unique_ptr<corba::ConcurrencyService>> services;
  for (std::size_t i = 0; i < nodes; ++i) {
    services.push_back(
        std::make_unique<corba::ConcurrencyService>(cluster.node(i)));
    services.back()->create_lock_set(kLock, NodeId{0});
  }

  std::atomic<std::size_t> active{nodes};
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < nodes; ++i) {
    workers.emplace_back([&, i] {
      corba::LockSet set = services[i]->lock_set(kLock);
      for (int r = 0; r < rounds; ++r) {
        // Highest active node leaves after finishing round r == i % ...
        const corba::LockHandle h = set.lock(corba::LockMode::kWrite);
        if (in_cs.fetch_add(1) != 0) overlap.store(true);
        acquisitions.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        in_cs.fetch_sub(1);
        set.unlock(h);
      }
      // Nodes 1..n-1 depart in reverse order once done; node 0 stays.
      if (i != 0) {
        // Wait until every higher-numbered node has departed, keeping
        // departures ordered so a successor is always alive.
        while (active.load() != i + 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        services[i]->leave(kLock, NodeId{0});
        std::cout << "node " << i << " departed\n";
        active.fetch_sub(1);
      }
    });
  }
  for (auto& t : workers) t.join();

  // Only node 0 remains: the token must be reachable for it.
  corba::LockSet last = services[0]->lock_set(kLock);
  const corba::LockHandle h = last.lock(corba::LockMode::kWrite);
  last.unlock(h);

  std::cout << "acquisitions " << acquisitions.load() << " (expected "
            << nodes * static_cast<std::uint64_t>(rounds) << ")\n"
            << "mutual-exclusion overlap: "
            << (overlap.load() ? "YES (BUG)" : "none") << "\n";
  cluster.stop();
  const bool ok = !overlap.load() &&
                  acquisitions.load() ==
                      nodes * static_cast<std::uint64_t>(rounds);
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
