// A three-level document store (database -> collections -> documents)
// over real TCP sockets — the general multi-granularity scheme of §3.1.
//
//   $ ./document_store [nodes] [collections] [docs_per_collection] [ops]
//
// Worker threads on every node run document reads/writes (intents on
// every ancestor + leaf mode) and occasional collection scans. Version
// counters verify writer serialization per document; a scan observes a
// consistent snapshot of its collection (no writer may touch any of its
// documents while the collection R is held).
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "corba/concurrency.hpp"
#include "lockmgr/hierarchy.hpp"
#include "net/cluster.hpp"

using namespace hlock;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::uint32_t collections =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 3;
  const std::uint32_t docs_per =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 4;
  const std::uint32_t ops =
      argc > 4 ? static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10))
               : 30;

  // Identical hierarchy on every node -> identical lock ids.
  lockmgr::Hierarchy hierarchy("db");
  std::vector<ResourceId> cols;
  std::vector<ResourceId> docs;
  for (std::uint32_t c = 0; c < collections; ++c) {
    cols.push_back(
        hierarchy.add_child(hierarchy.root(), "col" + std::to_string(c)));
    for (std::uint32_t d = 0; d < docs_per; ++d) {
      docs.push_back(hierarchy.add_child(cols.back(),
                                         "doc" + std::to_string(d)));
    }
  }

  net::InProcessCluster cluster(nodes);
  std::vector<std::unique_ptr<corba::ConcurrencyService>> services;
  for (std::size_t i = 0; i < nodes; ++i) {
    services.push_back(
        std::make_unique<corba::ConcurrencyService>(cluster.node(i)));
    for (std::uint32_t l = 0; l < hierarchy.resource_count(); ++l) {
      services.back()->create_lock_set(
          LockId{l}, NodeId{l % static_cast<std::uint32_t>(nodes)});
    }
  }

  struct Doc {
    std::uint64_t version{0};
    std::atomic<int> writers{0};
  };
  std::vector<Doc> store(docs.size());
  std::atomic<std::uint64_t> reads{0}, writes{0}, scans{0};
  std::atomic<bool> torn{false};

  auto acquire_plan = [&](corba::ConcurrencyService& svc,
                          const std::vector<lockmgr::PlanStep>& plan) {
    std::vector<corba::LockHandle> handles;
    for (const auto& step : plan) {
      handles.push_back(
          svc.lock_set(step.lock).lock(corba::from_core(step.mode)));
    }
    return handles;
  };
  auto release_plan = [&](corba::ConcurrencyService& svc,
                          std::vector<corba::LockHandle>& handles) {
    for (auto it = handles.rbegin(); it != handles.rend(); ++it) {
      svc.lock_set(it->lock).unlock(*it);
    }
  };

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < nodes; ++i) {
    workers.emplace_back([&, i] {
      Rng rng(0xd0c5 + i);
      corba::ConcurrencyService& svc = *services[i];
      for (std::uint32_t op = 0; op < ops; ++op) {
        const double dice = rng.next_double();
        if (dice < 0.65) {  // document read
          const std::size_t idx = rng.next_below(docs.size());
          auto handles =
              acquire_plan(svc, lock_plan(hierarchy, docs[idx], Mode::kR));
          if (store[idx].writers.load() != 0) torn.store(true);
          reads.fetch_add(1);
          release_plan(svc, handles);
        } else if (dice < 0.90) {  // document write
          const std::size_t idx = rng.next_below(docs.size());
          auto handles =
              acquire_plan(svc, lock_plan(hierarchy, docs[idx], Mode::kW));
          Doc& doc = store[idx];
          if (doc.writers.fetch_add(1) != 0) torn.store(true);
          ++doc.version;
          doc.writers.fetch_sub(1);
          writes.fetch_add(1);
          release_plan(svc, handles);
        } else {  // collection scan (R on the collection)
          const auto col = cols[rng.next_below(cols.size())];
          auto handles =
              acquire_plan(svc, lock_plan(hierarchy, col, Mode::kR));
          // While the collection R is held, no document below it may have
          // an active writer.
          for (std::size_t d = 0; d < docs.size(); ++d) {
            if (hierarchy.parent_of(docs[d]) == col &&
                store[d].writers.load() != 0) {
              torn.store(true);
            }
          }
          scans.fetch_add(1);
          release_plan(svc, handles);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  std::uint64_t version_sum = 0;
  for (const Doc& d : store) version_sum += d.version;

  std::cout << "document store: " << nodes << " nodes, " << collections
            << " collections x " << docs_per << " docs\n"
            << "reads " << reads.load() << ", writes " << writes.load()
            << ", scans " << scans.load() << "\n"
            << "version sum " << version_sum << " (expected "
            << writes.load() << ")\n"
            << "torn accesses: " << (torn.load() ? "YES (BUG)" : "none")
            << "\n";
  cluster.stop();
  const bool ok = !torn.load() && version_sum == writes.load();
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
