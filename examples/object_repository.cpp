// A distributed object repository — the "large-scale data and object
// repositories" scenario from the paper's abstract — over real TCP
// sockets and application threads.
//
//   $ ./object_repository [nodes] [objects] [ops]
//
// Each object is a lock set; a repository-wide lock set guards the
// namespace. Worker threads on every node read objects (IR + R), mutate
// them (IW + W), and occasionally compact the whole repository (U -> W).
// A per-object version counter checked under the lock asserts that writes
// were serialized.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "corba/concurrency.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace hlock;
  using corba::LockMode;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::uint32_t objects =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 8;
  const std::uint32_t ops =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 40;

  const LockId kNamespace{0};
  auto object_lock = [](std::uint32_t o) { return LockId{o + 1}; };

  net::InProcessCluster cluster(nodes);
  std::vector<std::unique_ptr<corba::ConcurrencyService>> services;
  for (std::size_t i = 0; i < nodes; ++i) {
    services.push_back(
        std::make_unique<corba::ConcurrencyService>(cluster.node(i)));
    services.back()->create_lock_set(kNamespace, NodeId{0});
    for (std::uint32_t o = 0; o < objects; ++o) {
      services.back()->create_lock_set(
          object_lock(o), NodeId{o % static_cast<std::uint32_t>(nodes)});
    }
  }

  // Shared object store (stands in for replicated state; the protocol must
  // serialize writers on it).
  struct Object {
    std::uint64_t version{0};
    std::atomic<int> writers{0};
  };
  std::vector<Object> store(objects);
  std::atomic<std::uint64_t> writes{0}, reads{0}, compactions{0};
  std::atomic<bool> torn{false};

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < nodes; ++i) {
    workers.emplace_back([&, i] {
      Rng rng(0xbeef + i);
      corba::ConcurrencyService& svc = *services[i];
      corba::LockSet ns = svc.lock_set(kNamespace);
      for (std::uint32_t op = 0; op < ops; ++op) {
        const std::uint32_t o =
            static_cast<std::uint32_t>(rng.next_below(objects));
        corba::LockSet obj = svc.lock_set(object_lock(o));
        const double dice = rng.next_double();
        if (dice < 0.70) {  // read
          const auto hi = ns.lock(LockMode::kIntentionRead);
          const auto ho = obj.lock(LockMode::kRead);
          if (store[o].writers.load() != 0) torn.store(true);
          reads.fetch_add(1);
          obj.unlock(ho);
          ns.unlock(hi);
        } else if (dice < 0.97) {  // write
          const auto hi = ns.lock(LockMode::kIntentionWrite);
          const auto ho = obj.lock(LockMode::kWrite);
          if (store[o].writers.fetch_add(1) != 0) torn.store(true);
          ++store[o].version;
          store[o].writers.fetch_sub(1);
          writes.fetch_add(1);
          obj.unlock(ho);
          ns.unlock(hi);
        } else {  // compaction: exclusive on the whole namespace
          const auto hu = ns.lock(LockMode::kUpgrade);
          const auto hw = ns.change_mode(hu, LockMode::kWrite);
          std::uint64_t total = 0;
          for (const Object& objct : store) total += objct.version;
          (void)total;
          compactions.fetch_add(1);
          ns.unlock(hw);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  std::uint64_t version_sum = 0;
  for (const Object& o : store) version_sum += o.version;

  std::cout << "object repository: " << nodes << " nodes, " << objects
            << " objects\n"
            << "reads " << reads.load() << ", writes " << writes.load()
            << ", compactions " << compactions.load() << "\n"
            << "version sum " << version_sum << " (expected "
            << writes.load() << ")\n"
            << "torn accesses: " << (torn.load() ? "YES (BUG)" : "none")
            << "\n";
  cluster.stop();
  const bool ok = !torn.load() && version_sum == writes.load();
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
