#include <iostream>
#include "common/parse.hpp"
#include "harness/cluster.hpp"
#include "harness/invariants.hpp"
using namespace hlock;
using namespace hlock::harness;

namespace {
// Positional args parsed strictly — std::stoul would terminate with an
// uncaught std::invalid_argument on garbage; exit 2 with usage instead.
template <typename T>
T arg_or(int argc, char** argv, int index, T fallback,
         std::optional<T> (*parse)(const std::string&)) {
  if (argc <= index) return fallback;
  const auto v = parse(argv[index]);
  if (!v) {
    std::cerr << "error: argument " << index << " ('" << argv[index]
              << "') must be an unsigned integer\n"
              << "usage: debug_trace [nodes] [seed] [ops]\n";
    std::exit(2);
  }
  return *v;
}
std::optional<std::uint64_t> parse_seed(const std::string& s) {
  return try_parse_u64(s, 0);
}
}  // namespace

int main(int argc, char** argv) {
  ClusterConfig c;
  c.nodes = arg_or<std::size_t>(argc, argv, 1, 2, &try_parse_size);
  c.spec.seed = arg_or<std::uint64_t>(argc, argv, 2, 2, &parse_seed);
  c.spec.ops_per_node = arg_or<std::uint32_t>(
      argc, argv, 3, 15, [](const std::string& s) { return try_parse_u32(s, 10); });
  HlsCluster cluster(c);
  cluster.network().on_deliver = [&](NodeId f, NodeId t, const Message& m) {
    std::cout << cluster.simulator().now() << " lock" << m.lock.value
              << " " << f << "->" << t << " " << to_string(m.kind)
              << " req{" << m.req.requester << "," << to_string(m.req.mode)
              << (m.req.upgrade ? ",upg" : "") << "}"
              << " mode=" << to_string(m.mode)
              << " frozen=" << m.frozen.to_string()
              << " sender_owned=" << to_string(m.sender_owned)
              << " q=" << m.queue.size() << "\n";
  };
  cluster.simulator().post_event_hook = [&] {
    const std::string err = check_safety(cluster);
    if (!err.empty()) {
      std::cout << "VIOLATION @" << cluster.simulator().now() << ": " << err << "\n";
      // dump state
      for (size_t i = 0; i < cluster.node_count(); ++i) {
        auto& e = cluster.node(i).engine(LockId{0});
        std::cout << "  node" << i << " token=" << e.is_token_node()
                  << " parent=" << e.parent() << " owned=" << to_string(e.owned_mode())
                  << " held=" << to_string(e.held_mode())
                  << " pending=" << e.has_pending()
                  << " qlen=" << e.queue().size()
                  << " frozen=" << e.frozen().to_string() << " children={";
        for (auto& [ch, m2] : e.children()) std::cout << ch << ":" << to_string(m2) << " ";
        std::cout << "}\n";
      }
      std::exit(1);
    }
  };
  auto dump = [&](LockId lk) {
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      auto& e = cluster.node(i).engine(lk);
      std::cout << "  lock" << lk.value << " node" << i << " token=" << e.is_token_node()
                << " parent=" << e.parent() << " owned=" << to_string(e.owned_mode())
                << " held=" << to_string(e.held_mode())
                << " pending=" << e.has_pending() << " backlog=" << e.backlog_size()
                << " frozen=" << e.frozen().to_string() << " children={";
      for (auto& [ch, m2] : e.children()) std::cout << ch << ":" << to_string(m2) << " ";
      std::cout << "} queue=[";
      for (auto& q : e.queue()) std::cout << q.requester << ":" << to_string(q.mode) << (q.upgrade?"^":"") << " ";
      std::cout << "]\n";
    }
  };
  try { cluster.run(); } catch (const std::exception& e) {
    std::cout << "EXCEPTION: " << e.what() << "\n";
    for (uint32_t l = 0; l < cluster.layout().lock_count(); ++l) dump(LockId{l});
    return 2;
  }
  std::cout << "OK msgs=" << cluster.result().messages << "\n";
  return 0;
}
