// load_gen — a closed-loop lock-traffic client for a live hlock mesh.
//
// Where hlock_node is an interactive REPL for poking at one node,
// load_gen joins a mesh and hammers it: it runs a full protocol node
// (so the mesh's lock forest must be laid out identically on every
// participant) fronting S logical client sessions via SessionMux, each
// executing K ops of the paper's workload mix closed-loop, then prints
// an acquire-latency summary and the transport's [tcp-stats] line.
//
// A 3-node live measurement, one process per terminal:
//
//   ./load_gen --id 0 --port 7000 --peer 1=127.0.0.1:7001
//       --peer 2=127.0.0.1:7002 --entries 16 --sessions 8 --ops 200
//   ./load_gen --id 1 --port 7001 --peer 0=127.0.0.1:7000
//       --peer 2=127.0.0.1:7002 --entries 16 --sessions 8 --ops 200
//   ./load_gen --id 2 ... (and so on)
//
// Every process must agree on --entries and the mesh membership: lock l
// (table = 0, entries 1..E) starts rooted at node l % cluster_size.
// Transport tuning (--max-batch-bytes, --piggyback-ms) matches
// hlock_node; run with and without to compare [tcp-stats] counters.
//
// bench/live_bench runs this same workload in-process with baseline vs
// optimized transports side by side; load_gen is the multi-process,
// real-network variant.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/hls_node.hpp"
#include "lockmgr/resource.hpp"
#include "lockmgr/session_mux.hpp"
#include "net/tcp_node.hpp"

using namespace hlock;

namespace {

std::uint32_t parse_u32(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u32(text);
  if (!v)
    throw std::invalid_argument(flag + " expects an unsigned integer, got '" +
                                text + "'");
  return *v;
}

std::uint16_t parse_u16(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u16(text);
  if (!v)
    throw std::invalid_argument(flag + " expects a port number, got '" +
                                text + "'");
  return *v;
}

struct Options {
  std::uint32_t id{0};
  std::uint16_t port{0};
  std::map<NodeId, net::PeerAddress> peers;
  std::uint32_t entries{16};
  std::uint32_t sessions{8};
  std::uint32_t ops{100};  ///< per logical session
  std::uint32_t cs_us{0};
  std::uint64_t seed{42};
  std::uint32_t settle_ms{500};  ///< wait for mesh connectivity
  net::TcpConfig tcp{};
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[i];
    };
    if (arg == "--id") {
      opt.id = parse_u32(arg, next());
    } else if (arg == "--port") {
      opt.port = parse_u16(arg, next());
    } else if (arg == "--entries") {
      opt.entries = parse_u32(arg, next());
    } else if (arg == "--sessions") {
      opt.sessions = parse_u32(arg, next());
    } else if (arg == "--ops") {
      opt.ops = parse_u32(arg, next());
    } else if (arg == "--cs-us") {
      opt.cs_us = parse_u32(arg, next());
    } else if (arg == "--seed") {
      opt.seed = parse_u32(arg, next());
    } else if (arg == "--settle-ms") {
      opt.settle_ms = parse_u32(arg, next());
    } else if (arg == "--reconnect-min-ms") {
      opt.tcp.reconnect_min = msec(parse_u32(arg, next()));
    } else if (arg == "--reconnect-max-ms") {
      opt.tcp.reconnect_max = msec(parse_u32(arg, next()));
    } else if (arg == "--heartbeat-ms") {
      opt.tcp.heartbeat_interval = msec(parse_u32(arg, next()));
    } else if (arg == "--idle-timeout-ms") {
      opt.tcp.idle_timeout = msec(parse_u32(arg, next()));
    } else if (arg == "--max-batch-bytes") {
      opt.tcp.max_batch_bytes = parse_u32(arg, next());
    } else if (arg == "--piggyback-ms") {
      opt.tcp.ack_piggyback_window = msec(parse_u32(arg, next()));
    } else if (arg == "--peer") {
      const std::string spec = next();  // id=host:port
      const auto eq = spec.find('=');
      const auto colon = spec.find(':', eq);
      if (eq == std::string::npos || colon == std::string::npos)
        throw std::invalid_argument("--peer expects id=host:port");
      const NodeId pid{parse_u32("--peer id", spec.substr(0, eq))};
      opt.peers[pid] = net::PeerAddress{
          spec.substr(eq + 1, colon - eq - 1),
          parse_u16("--peer port", spec.substr(colon + 1))};
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (opt.sessions == 0 || opt.ops == 0 || opt.entries == 0)
    throw std::invalid_argument("--sessions/--ops/--entries must be nonzero");
  return opt;
}

/// The paper's op mix: IR/R/U/IW/W = 80/10/4/5/1.
lockmgr::Op draw_op(Rng& rng, const Options& opt) {
  lockmgr::Op op;
  const std::uint64_t r = rng.next_below(100);
  if (r < 80) op.kind = lockmgr::OpKind::kEntryRead;
  else if (r < 90) op.kind = lockmgr::OpKind::kTableRead;
  else if (r < 94) op.kind = lockmgr::OpKind::kTableUpgrade;
  else if (r < 99) op.kind = lockmgr::OpKind::kEntryWrite;
  else op.kind = lockmgr::OpKind::kTableWrite;
  op.entry = static_cast<std::uint32_t>(rng.next_below(opt.entries));
  op.cs = usec(opt.cs_us);
  return op;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  net::TcpNode node(NodeId{opt.id}, opt.port, opt.tcp);
  std::cout << "load_gen node " << opt.id << " listening on 127.0.0.1:"
            << node.listen_port() << "\n";
  node.set_peers(opt.peers);

  const std::uint32_t cluster_size =
      static_cast<std::uint32_t>(opt.peers.size()) + 1;
  lockmgr::ResourceLayout layout(opt.entries);
  core::HlsNode hls(NodeId{opt.id}, node.transport());
  for (std::uint32_t l = 0; l < layout.lock_count(); ++l) {
    hls.add_lock(LockId{l}, NodeId{l % cluster_size});
  }
  lockmgr::SessionMux mux(hls, layout, node.loop(), opt.sessions);
  node.set_handler([&hls](const Message& m) { hls.handle(m); });

  std::thread loop([&] { node.loop().run(); });

  // Let the mesh converge before issuing ops: requests for locks rooted
  // elsewhere would otherwise queue into not-yet-connected peer windows
  // (correct, but it distorts the early latency samples).
  const auto settle_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(opt.settle_ms);
  while (node.connected_peers() < opt.peers.size() &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (node.connected_peers() < opt.peers.size()) {
    std::cerr << "warning: only " << node.connected_peers() << "/"
              << opt.peers.size() << " peers connected after settle window\n";
  }

  struct Shared {
    Options* opt;
    lockmgr::SessionMux* mux;
    Rng rng;
    std::vector<std::uint32_t> ops_left;
    std::vector<double> latencies_us;  ///< loop thread only
    std::atomic<std::uint64_t> completed{0};
  } sh{&opt, &mux, Rng(opt.seed ^ (0x9e3779b97f4a7c15ULL * (opt.id + 1))),
       std::vector<std::uint32_t>(opt.sessions, opt.ops),
       {}, {}};
  sh.latencies_us.reserve(static_cast<std::size_t>(opt.sessions) * opt.ops);

  // Closed loop per session, running entirely on the event-loop thread.
  std::function<void(std::uint32_t)> pump = [&](std::uint32_t sid) {
    if (sh.ops_left[sid] == 0) return;
    --sh.ops_left[sid];
    const lockmgr::Op op = draw_op(sh.rng, opt);
    sh.mux->start(sid, op, [&, sid](const lockmgr::OpStats& st) {
      sh.latencies_us.push_back(static_cast<double>(st.acquire_latency));
      sh.completed.fetch_add(1, std::memory_order_relaxed);
      pump(sid);
    });
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t sid = 0; sid < opt.sessions; ++sid) {
    node.loop().post([&pump, sid] { pump(sid); });
  }

  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.sessions) * opt.ops;
  std::uint64_t last_report = 0;
  while (sh.completed.load(std::memory_order_relaxed) < total) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::uint64_t done = sh.completed.load(std::memory_order_relaxed);
    if (done - last_report >= total / 10 + 1) {
      std::cout << "  " << done << "/" << total << " ops\n";
      last_report = done;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Drain: every accepted send delivered and acked before the stats line.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (node.unacked() != 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  node.loop().stop();
  loop.join();

  Summary lat;
  for (const double v : sh.latencies_us) lat.add(v);
  lat.seal();
  std::cout << "completed " << sh.completed.load() << " ops in " << wall_s
            << " s (" << (wall_s > 0 ? sh.completed.load() / wall_s : 0)
            << " ops/s)\n"
            << "acquire latency us: p50=" << lat.percentile(0.50)
            << " p95=" << lat.percentile(0.95)
            << " p99=" << lat.percentile(0.99) << " mean=" << lat.mean()
            << " max=" << lat.max() << "\n";
  std::cerr << "[tcp-stats] node=" << opt.id << " delivered="
            << node.delivered() << " " << to_string(node.stats()) << "\n";
  return node.unacked() == 0 ? 0 : 1;
}
