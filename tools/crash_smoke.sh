#!/usr/bin/env bash
# Crash-recovery smoke over a real multi-process cluster: a 3-node
# hlock_node mesh with the failure detector + view service enabled
# (--suspect-timeout-ms). Node 0 — lock 0's initial root, i.e. the token
# holder — takes W and is then SIGKILLed mid-hold. The survivors must
# suspect the silence, commit a view (the [view] stderr line), regenerate
# the token at the new root (node 1), and serve both queued W requests.
#
# Asserts: every survivor's blocked `lock 0 W` is granted AND released
# after the kill, both survivors exit cleanly, at least one [view] line
# appears, and peers_suspected > 0 in the [tcp-stats] exit lines — i.e.
# recovery was exercised, not bypassed.
#
# Usage: tools/crash_smoke.sh [build-dir]   (default: build)
set -u

BUILD="${1:-build}"
NODE_BIN="$BUILD/tools/hlock_node"
if [ ! -x "$NODE_BIN" ]; then
  echo "crash_smoke: missing binary $NODE_BIN (build the 'hlock_node' target first)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2> /dev/null
  wait 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

NODES=3
declare -a PORT
if command -v python3 > /dev/null 2>&1; then
  # Kernel-assigned free ports (bound simultaneously, so all distinct);
  # the tiny close-to-rebind race is far rarer than a fixed-base clash.
  read -r -a PORT <<< "$(python3 - "$NODES" << 'EOF'
import socket, sys
socks = [socket.socket() for _ in range(int(sys.argv[1]))]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
EOF
)"
else
  # Fallback: a pid-salted block, distinct per run.
  BASE=$((24000 + ($$ % 18000)))
  for i in $(seq 0 $((NODES - 1))); do
    PORT[i]=$((BASE + i))
  done
fi

peer_flags() { # peer_flags <self-id>
  local self="$1" flags="" j
  for j in $(seq 0 $((NODES - 1))); do
    [ "$j" = "$self" ] && continue
    flags="$flags --peer $j=127.0.0.1:${PORT[j]}"
  done
  echo "$flags"
}

COMMON_FLAGS="--locks 1 --reconnect-min-ms 10 --reconnect-max-ms 100 \
  --heartbeat-ms 50 --suspect-timeout-ms 400 --view-retry-ms 25"

# The victim: node 0 owns lock 0's token at startup, takes W immediately,
# and never releases — the kill below lands mid-hold. Started via process
# substitution (NOT a pipeline) so $! is the node's own PID.
# shellcheck disable=SC2046
"$NODE_BIN" --id 0 --port "${PORT[0]}" $(peer_flags 0) $COMMON_FLAGS \
  > "$WORK/node0.log" 2>&1 < <(
    echo "lock 0 W"
    sleep 60
  ) &
VICTIM_PID=$!

# Survivors: wait for the victim's hold to be in place, then issue a W
# that must queue behind it — the grant can only arrive post-recovery.
start_survivor() { # start_survivor <id>
  local id="$1"
  # shellcheck disable=SC2046
  {
    sleep 2
    echo "lock 0 W"
    sleep 1
    echo "unlock 1"
    echo "status"
    sleep 4
    echo "quit"
  } | timeout 60 "$NODE_BIN" --id "$id" --port "${PORT[id]}" \
    $(peer_flags "$id") $COMMON_FLAGS \
    > "$WORK/node$id.log" 2>&1 &
  eval "SURVIVOR_PID_$id=$!"
}
start_survivor 1
start_survivor 2

# Let the survivors' requests queue at the victim, then kill it outright.
sleep 3.5
if ! grep -q "granted W on lock 0" "$WORK/node0.log"; then
  echo "crash_smoke: victim never took its W hold" >&2
  cat "$WORK/node0.log" >&2
  exit 1
fi
kill -9 "$VICTIM_PID" 2> /dev/null

fail=0
for i in 1 2; do
  eval "pid=\$SURVIVOR_PID_$i"
  if ! wait "$pid"; then
    echo "crash_smoke: survivor $i exited non-zero (hung or crashed)" >&2
    fail=1
  fi
done

for i in 1 2; do
  if ! grep -q "granted W on lock 0" "$WORK/node$i.log"; then
    echo "crash_smoke: survivor $i was never granted W after the crash" >&2
    fail=1
  fi
  if ! grep -q "released" "$WORK/node$i.log"; then
    echo "crash_smoke: survivor $i never released its W" >&2
    fail=1
  fi
done

echo "--- [view] lines ---"
grep -h '\[view\]' "$WORK"/node*.log || true
if ! grep -hq '\[view\]' "$WORK/node1.log" "$WORK/node2.log"; then
  echo "crash_smoke: no survivor ever committed a view" >&2
  fail=1
fi

echo "--- [tcp-stats] exit lines ---"
grep -h '\[tcp-stats\]' "$WORK"/node*.log || true
if ! grep -h '\[tcp-stats\]' "$WORK/node1.log" "$WORK/node2.log" \
  | grep -Eq 'peers_suspected=[1-9]'; then
  echo "crash_smoke: no survivor ever suspected the dead peer" >&2
  fail=1
fi
if ! grep -h '\[tcp-stats\]' "$WORK/node1.log" "$WORK/node2.log" \
  | grep -Eq 'views_committed=[1-9]'; then
  echo "crash_smoke: exit stats show no committed view" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "=== crash_smoke FAILED; node logs follow ===" >&2
  for i in $(seq 0 $((NODES - 1))); do
    echo "--- node $i ---" >&2
    cat "$WORK/node$i.log" >&2
  done
  exit 1
fi
echo "crash_smoke: PASS (token holder SIGKILLed; survivors recovered and locked)"
