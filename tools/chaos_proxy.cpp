// chaos_proxy — a fault-injecting TCP relay for transport hardening tests.
//
// Sits between hlock_node processes (point each peer's address book at the
// proxy; the proxy forwards to the real listener) and injects the failures
// a WAN inflicts on long-lived connections:
//
//   --refuse-first N      RST-close the first N accepted connections
//                         without contacting the target (connection
//                         refused, e.g. a peer that is not up yet)
//   --reset-every N       every Nth relayed connection is RST-closed on
//                         both sides after --reset-after-bytes of
//                         client->target traffic (mid-frame reset)
//   --truncate-every N    every Nth relayed connection forwards exactly
//                         --truncate-after-bytes of client->target
//                         traffic, silently discards the rest and then
//                         closes gracefully (byte truncation)
//   --garbage-every N     every Nth relayed connection gets
//                         --garbage-bytes of junk injected toward the
//                         target before any real bytes (malformed frames)
//
// Faults are deterministic in the connection arrival order, so a scripted
// smoke run exercises every path without a seed. One poll loop, no
// threads; Ctrl-C / SIGTERM prints a summary and exits.
//
//   chaos_proxy --listen 7100 --target 127.0.0.1:7000 \
//       --reset-every 3 --reset-after-bytes 512 --garbage-every 9
#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "net/event_loop.hpp"

using namespace hlock;

namespace {

struct Options {
  std::uint16_t listen_port{0};
  std::string target_host{"127.0.0.1"};
  std::uint16_t target_port{0};
  std::uint32_t refuse_first{0};
  std::uint32_t reset_every{0};
  std::uint64_t reset_after_bytes{1024};
  std::uint32_t truncate_every{0};
  std::uint64_t truncate_after_bytes{4096};
  std::uint32_t garbage_every{0};
  std::uint32_t garbage_bytes{64};
};

[[noreturn]] void usage_fail(const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: chaos_proxy --listen PORT --target HOST:PORT\n"
            << "  [--refuse-first N] [--reset-every N]"
            << " [--reset-after-bytes K]\n"
            << "  [--truncate-every N] [--truncate-after-bytes K]\n"
            << "  [--garbage-every N] [--garbage-bytes K]\n";
  std::exit(2);
}

std::uint64_t num_or_die(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u64(text);
  if (!v) usage_fail(flag + " expects an unsigned integer, got '" + text + "'");
  return *v;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage_fail("missing value for " + arg);
      return argv[i];
    };
    if (arg == "--listen") {
      opt.listen_port = static_cast<std::uint16_t>(num_or_die(arg, next()));
    } else if (arg == "--target") {
      const std::string spec = next();
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos) usage_fail("--target expects host:port");
      opt.target_host = spec.substr(0, colon);
      opt.target_port =
          static_cast<std::uint16_t>(num_or_die(arg, spec.substr(colon + 1)));
    } else if (arg == "--refuse-first") {
      opt.refuse_first = static_cast<std::uint32_t>(num_or_die(arg, next()));
    } else if (arg == "--reset-every") {
      opt.reset_every = static_cast<std::uint32_t>(num_or_die(arg, next()));
    } else if (arg == "--reset-after-bytes") {
      opt.reset_after_bytes = num_or_die(arg, next());
    } else if (arg == "--truncate-every") {
      opt.truncate_every = static_cast<std::uint32_t>(num_or_die(arg, next()));
    } else if (arg == "--truncate-after-bytes") {
      opt.truncate_after_bytes = num_or_die(arg, next());
    } else if (arg == "--garbage-every") {
      opt.garbage_every = static_cast<std::uint32_t>(num_or_die(arg, next()));
    } else if (arg == "--garbage-bytes") {
      opt.garbage_bytes = static_cast<std::uint32_t>(num_or_die(arg, next()));
    } else {
      usage_fail("unknown argument: " + arg);
    }
  }
  if (opt.listen_port == 0) usage_fail("--listen is required");
  if (opt.target_port == 0) usage_fail("--target is required");
  return opt;
}

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

/// Close with an RST instead of a FIN.
void rst_close(int fd) {
  const linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd);
}

class ChaosProxy {
 public:
  ChaosProxy(Options opt) : opt_(std::move(opt)) {}

  int run() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return die("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.listen_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      return die("bind");
    if (::listen(listen_fd_, 128) != 0) return die("listen");
    set_nonblocking(listen_fd_);
    loop_.watch(listen_fd_, POLLIN, [this](std::uint32_t) { on_accept(); });
    std::cerr << "[chaos] listening on 127.0.0.1:" << opt_.listen_port
              << " -> " << opt_.target_host << ":" << opt_.target_port << "\n";
    loop_.run();
    std::cerr << "[chaos] accepted=" << accepted_ << " refused=" << refused_
              << " resets=" << resets_ << " truncations=" << truncations_
              << " garbage_injections=" << garbage_ << "\n";
    return 0;
  }

  hlock::net::EventLoop& loop() { return loop_; }

 private:
  /// One relayed connection: client (the dialing node) on one side, the
  /// real listener on the other. Bytes buffer through the proxy so each
  /// side can stall independently.
  struct Relay {
    int client_fd{-1};
    int target_fd{-1};
    bool target_connecting{true};
    std::uint64_t client_to_target{0};  ///< relayed byte count (fault arm)
    bool reset_armed{false};
    bool truncate_armed{false};
    bool truncating{false};  ///< past the truncation point: discard input
    std::vector<std::uint8_t> to_target;
    std::size_t to_target_pos{0};
    std::vector<std::uint8_t> to_client;
    std::size_t to_client_pos{0};
  };

  int die(const char* what) {
    std::cerr << "[chaos] fatal: " << what << ": " << std::strerror(errno)
              << "\n";
    return 1;
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      ++accepted_;
      if (refused_ < opt_.refuse_first) {
        ++refused_;
        std::cerr << "[chaos] conn " << accepted_ << ": refused\n";
        rst_close(fd);
        continue;
      }
      start_relay(fd);
    }
  }

  void start_relay(int client_fd) {
    set_nonblocking(client_fd);
    auto relay = std::make_shared<Relay>();
    relay->client_fd = client_fd;
    const std::uint32_t idx = relayed_++;
    relay->reset_armed =
        opt_.reset_every != 0 && (idx + 1) % opt_.reset_every == 0;
    relay->truncate_armed = !relay->reset_armed && opt_.truncate_every != 0 &&
                            (idx + 1) % opt_.truncate_every == 0;
    // Faults are mutually exclusive per connection (reset > truncate >
    // garbage): injected garbage kills the link via a decode error long
    // before a byte-count fault could trigger, which would mask it.
    const bool garbage = !relay->reset_armed && !relay->truncate_armed &&
                         opt_.garbage_every != 0 &&
                         (idx + 1) % opt_.garbage_every == 0;

    const int tfd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tfd < 0) {
      rst_close(client_fd);
      return;
    }
    set_nonblocking(tfd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.target_port);
    if (::inet_pton(AF_INET, opt_.target_host.c_str(), &addr.sin_addr) != 1) {
      ::close(tfd);
      rst_close(client_fd);
      return;
    }
    const int rc =
        ::connect(tfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(tfd);
      rst_close(client_fd);  // target down: looks like a refusal upstream
      return;
    }
    relay->target_fd = tfd;
    relay->target_connecting = rc != 0;
    if (garbage) {
      ++garbage_;
      std::cerr << "[chaos] conn " << accepted_ << ": injecting "
                << opt_.garbage_bytes << " garbage bytes\n";
      // 0xFF..FF decodes as an oversized length prefix: instant, contained
      // DecodeError on the receiving node.
      relay->to_target.assign(opt_.garbage_bytes, 0xFF);
    }
    relays_[client_fd] = relay;
    relays_[tfd] = relay;
    loop_.watch(client_fd, POLLIN, [this, relay](std::uint32_t re) {
      on_client_event(relay, re);
    });
    loop_.watch(tfd, relay->target_connecting ? POLLOUT : (POLLIN | POLLOUT),
                [this, relay](std::uint32_t re) { on_target_event(relay, re); });
  }

  void drop(const std::shared_ptr<Relay>& r, bool reset) {
    if (r->client_fd < 0) return;  // already dropped
    loop_.unwatch(r->client_fd);
    loop_.unwatch(r->target_fd);
    relays_.erase(r->client_fd);
    relays_.erase(r->target_fd);
    if (reset) {
      rst_close(r->client_fd);
      rst_close(r->target_fd);
    } else {
      ::close(r->client_fd);
      ::close(r->target_fd);
    }
    r->client_fd = r->target_fd = -1;
  }

  /// Read from `from`, append to `buf`; returns false when the connection
  /// is finished (EOF or error).
  static bool pump_in(int from, std::vector<std::uint8_t>& buf) {
    std::uint8_t tmp[65536];
    for (;;) {
      const ssize_t n = ::recv(from, tmp, sizeof tmp, 0);
      if (n > 0) {
        buf.insert(buf.end(), tmp, tmp + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

  /// Write buffered bytes; returns false on a dead connection.
  static bool pump_out(int to, std::vector<std::uint8_t>& buf,
                       std::size_t& pos) {
    while (pos < buf.size()) {
      const ssize_t n = ::send(to, buf.data() + pos, buf.size() - pos,
                               MSG_NOSIGNAL);
      if (n > 0) {
        pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf.clear();
    pos = 0;
    return true;
  }

  void rewatch(const std::shared_ptr<Relay>& r) {
    if (r->client_fd < 0) return;
    short client_ev = POLLIN;
    if (r->to_client_pos < r->to_client.size()) client_ev |= POLLOUT;
    loop_.watch(r->client_fd, client_ev, [this, r](std::uint32_t re) {
      on_client_event(r, re);
    });
    short target_ev = r->target_connecting ? POLLOUT : POLLIN;
    if (!r->target_connecting && r->to_target_pos < r->to_target.size())
      target_ev |= POLLOUT;
    loop_.watch(r->target_fd, target_ev, [this, r](std::uint32_t re) {
      on_target_event(r, re);
    });
  }

  void on_client_event(const std::shared_ptr<Relay>& r, std::uint32_t re) {
    if (r->client_fd < 0) return;
    if (re & (POLLERR | POLLHUP | POLLNVAL)) {
      drop(r, /*reset=*/false);
      return;
    }
    if (re & POLLIN) {
      std::vector<std::uint8_t> fresh;
      if (!pump_in(r->client_fd, fresh)) {
        // Flush what we already owe the target, then close both ends.
        pump_out(r->target_fd, r->to_target, r->to_target_pos);
        drop(r, /*reset=*/false);
        return;
      }
      if (!apply_faults(r, fresh)) return;  // connection was reset/truncated
    }
    if (re & POLLOUT) {
      if (!pump_out(r->client_fd, r->to_client, r->to_client_pos)) {
        drop(r, /*reset=*/false);
        return;
      }
    }
    if (!r->target_connecting &&
        !pump_out(r->target_fd, r->to_target, r->to_target_pos)) {
      drop(r, /*reset=*/false);
      return;
    }
    rewatch(r);
  }

  void on_target_event(const std::shared_ptr<Relay>& r, std::uint32_t re) {
    if (r->client_fd < 0) return;
    if (r->target_connecting) {
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(r->target_fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0 || (re & (POLLERR | POLLNVAL)) != 0) {
        drop(r, /*reset=*/true);  // upstream sees a refused connection
        return;
      }
      r->target_connecting = false;
    }
    if (re & (POLLERR | POLLHUP | POLLNVAL)) {
      drop(r, /*reset=*/false);
      return;
    }
    if (re & POLLIN) {
      if (!pump_in(r->target_fd, r->to_client)) {
        pump_out(r->client_fd, r->to_client, r->to_client_pos);
        drop(r, /*reset=*/false);
        return;
      }
    }
    if (!pump_out(r->target_fd, r->to_target, r->to_target_pos) ||
        !pump_out(r->client_fd, r->to_client, r->to_client_pos)) {
      drop(r, /*reset=*/false);
      return;
    }
    rewatch(r);
  }

  /// Append `fresh` client bytes to the target buffer, honouring the
  /// armed fault. Returns false when the relay was torn down.
  bool apply_faults(const std::shared_ptr<Relay>& r,
                    const std::vector<std::uint8_t>& fresh) {
    if (r->truncating) return true;  // silently discard the tail
    std::size_t take = fresh.size();
    if (r->truncate_armed &&
        r->client_to_target + take >= opt_.truncate_after_bytes) {
      take = static_cast<std::size_t>(opt_.truncate_after_bytes -
                                      r->client_to_target);
      r->truncating = true;
      ++truncations_;
      std::cerr << "[chaos] truncating client->target after "
                << opt_.truncate_after_bytes << " bytes\n";
    }
    r->to_target.insert(r->to_target.end(), fresh.begin(),
                        fresh.begin() + static_cast<std::ptrdiff_t>(take));
    r->client_to_target += take;
    if (r->reset_armed && r->client_to_target >= opt_.reset_after_bytes) {
      ++resets_;
      std::cerr << "[chaos] reset after " << r->client_to_target
                << " client->target bytes\n";
      drop(r, /*reset=*/true);
      return false;
    }
    if (r->truncating) {
      // Deliver the kept prefix, then FIN both sides.
      pump_out(r->target_fd, r->to_target, r->to_target_pos);
      drop(r, /*reset=*/false);
      return false;
    }
    return true;
  }

  Options opt_;
  hlock::net::EventLoop loop_;
  int listen_fd_{-1};
  std::map<int, std::shared_ptr<Relay>> relays_;
  std::uint64_t accepted_{0};
  std::uint64_t refused_{0};
  std::uint64_t resets_{0};
  std::uint64_t truncations_{0};
  std::uint64_t garbage_{0};
  std::uint32_t relayed_{0};
};

ChaosProxy* g_proxy = nullptr;

void on_signal(int) {
  if (g_proxy != nullptr) g_proxy->loop().stop();
}

}  // namespace

int main(int argc, char** argv) {
  ChaosProxy proxy(parse_args(argc, argv));
  g_proxy = &proxy;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  return proxy.run();
}
