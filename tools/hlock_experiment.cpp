// hlock_experiment — run any single experiment configuration from the
// command line, printing a summary table and optionally machine-readable
// JSON. The scripting companion to the fixed-figure bench binaries.
//
//   ./hlock_experiment --protocol hls --nodes 64 --ops 100 --seed 7
//   ./hlock_experiment --protocol naimi-pure --nodes 120 --json
//   ./hlock_experiment --sweep --protocol hls --json   # node-count sweep
//
// Options:
//   --protocol hls|naimi-pure|naimi-same-work   (default hls)
//   --nodes N          (default 24)           --ops N      (default 60)
//   --seed N           (default 0x5eed)       --loss P     (default 0)
//   --cs MS / --idle MS / --latency MS        workload timings
//   --mix a,b,c,d,e    entry_read,table_read,upgrade,entry_write,table_write
//   --home-bias P      entry-op locality      --entries N  rows per node
//   --no-child-grants --no-local-queues --no-freezing --eager-releases
//   --priorities       enable priority arbitration
//   --sweep            run the standard node-count sweep instead of one n
//   --threads N        sweep worker threads (0 = hardware concurrency)
//   --cache-dir D      persist results across invocations (ResultStore);
//                      HLOCK_CACHE_DIR=D works too (empty = .hlock-cache)
//   --no-disk-cache    ignore --cache-dir / HLOCK_CACHE_DIR
//   --json             emit JSON instead of the ASCII table
//
// Numeric values are validated strictly; `--nodes abc` is a usage error
// (exit 2), not a silently defaulted run.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

using namespace hlock;
using namespace hlock::harness;

namespace {

struct Options {
  Protocol protocol = Protocol::kHls;
  std::size_t nodes = 24;
  workload::WorkloadSpec spec;
  core::EngineOptions engine;
  double loss = 0.0;
  bool sweep = false;
  bool json = false;
  std::size_t threads = 0;
  std::string cache_dir;
  bool disk_cache = true;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "error: " << what << " (see the header of this tool's "
            << "source for options)\n";
  std::exit(2);
}

// Strict parses: the whole token must be a number, or it's a usage error
// — std::stoul would throw uncaught on garbage and terminate, and
// silently accept trailing junk ("12x" -> 12).
std::size_t parse_size(const std::string& flag, const std::string& text) {
  const auto v = try_parse_size(text);
  if (!v)
    usage_error(flag + " expects an unsigned integer, got '" + text + "'");
  return *v;
}

std::uint32_t parse_u32(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u32(text);
  if (!v)
    usage_error(flag + " expects an unsigned 32-bit integer, got '" + text +
                "'");
  return *v;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text,
                        int base = 10) {
  const auto v = try_parse_u64(text, base);
  if (!v)
    usage_error(flag + " expects an unsigned integer, got '" + text + "'");
  return *v;
}

double parse_double(const std::string& flag, const std::string& text) {
  const auto v = try_parse_double(text);
  if (!v) usage_error(flag + " expects a number, got '" + text + "'");
  return *v;
}

Options parse(int argc, char** argv) {
  Options opt;
  opt.spec.ops_per_node = 60;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (++i >= argc) usage_error("missing value for " + arg);
      return argv[i];
    };
    if (arg == "--protocol") {
      const std::string p = value();
      if (p == "hls") opt.protocol = Protocol::kHls;
      else if (p == "naimi-pure") opt.protocol = Protocol::kNaimiPure;
      else if (p == "naimi-same-work")
        opt.protocol = Protocol::kNaimiSameWork;
      else usage_error("unknown protocol " + p);
    } else if (arg == "--nodes") {
      opt.nodes = parse_size(arg, value());
    } else if (arg == "--ops") {
      opt.spec.ops_per_node = parse_u32(arg, value());
    } else if (arg == "--seed") {
      opt.spec.seed = parse_u64(arg, value(), 0);
    } else if (arg == "--loss") {
      opt.loss = parse_double(arg, value());
    } else if (arg == "--cs") {
      opt.spec.cs_mean = msec(static_cast<std::int64_t>(
          parse_u64(arg, value())));
    } else if (arg == "--idle") {
      opt.spec.idle_mean = msec(static_cast<std::int64_t>(
          parse_u64(arg, value())));
    } else if (arg == "--latency") {
      opt.spec.net_latency_mean = msec(static_cast<std::int64_t>(
          parse_u64(arg, value())));
    } else if (arg == "--home-bias") {
      opt.spec.home_bias = parse_double(arg, value());
    } else if (arg == "--entries") {
      opt.spec.entries_per_node = parse_u32(arg, value());
    } else if (arg == "--mix") {
      std::istringstream in(value());
      std::string part;
      std::vector<double> parts;
      while (std::getline(in, part, ','))
        parts.push_back(parse_double("--mix", part));
      if (parts.size() != 5) usage_error("--mix expects 5 comma values");
      opt.spec.p_entry_read = parts[0];
      opt.spec.p_table_read = parts[1];
      opt.spec.p_upgrade = parts[2];
      opt.spec.p_entry_write = parts[3];
      opt.spec.p_table_write = parts[4];
    } else if (arg == "--no-child-grants") {
      opt.engine.allow_child_grants = false;
    } else if (arg == "--no-local-queues") {
      opt.engine.allow_local_queues = false;
    } else if (arg == "--no-freezing") {
      opt.engine.enable_freezing = false;
    } else if (arg == "--eager-releases") {
      opt.engine.lazy_release = false;
    } else if (arg == "--priorities") {
      opt.engine.enable_priorities = true;
    } else if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--threads") {
      opt.threads = parse_size(arg, value());
    } else if (arg == "--cache-dir") {
      opt.cache_dir = value();
      if (opt.cache_dir.empty()) usage_error("--cache-dir expects a directory");
    } else if (arg == "--no-disk-cache") {
      opt.disk_cache = false;
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      usage_error("unknown argument " + arg);
    }
  }
  if (opt.cache_dir.empty()) {
    if (const char* env = std::getenv("HLOCK_CACHE_DIR"))
      opt.cache_dir = *env != '\0' ? env : ".hlock-cache";
  }
  if (!opt.disk_cache) opt.cache_dir.clear();
  opt.spec.validate();
  return opt;
}

SweepPoint point_for(const Options& opt, std::size_t nodes) {
  SweepPoint p;
  p.protocol = opt.protocol;
  p.config.nodes = nodes;
  p.config.spec = opt.spec;
  p.config.engine_opts = opt.engine;
  p.config.loss_rate = opt.loss;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::vector<SweepPoint> points;
  if (opt.sweep) {
    for (const std::size_t n : sweep_node_counts())
      points.push_back(point_for(opt, n));
  } else {
    points.push_back(point_for(opt, opt.nodes));
  }
  SweepOptions sweep_opts;
  sweep_opts.threads = opt.threads;
  sweep_opts.cache_dir = opt.cache_dir;
  SweepRunner runner(sweep_opts);
  const std::vector<ExperimentResult> results = runner.run(points);

  if (opt.json) {
    write_json_array(std::cout, results);
    return 0;
  }
  TablePrinter table({"nodes", "ops", "lock reqs", "messages", "msgs/req",
                      "latency factor", "p95"});
  for (const auto& r : results) {
    table.row({std::to_string(r.nodes), std::to_string(r.app_ops),
               std::to_string(r.lock_requests), std::to_string(r.messages),
               TablePrinter::num(r.msgs_per_lock_request()),
               TablePrinter::num(r.latency_factor.mean(), 1),
               TablePrinter::num(r.latency_factor.percentile(0.95), 1)});
  }
  std::cout << to_string(opt.protocol) << ", seed " << opt.spec.seed
            << (opt.loss > 0 ? ", loss " + std::to_string(opt.loss) : "")
            << "\n\n";
  table.print(std::cout);
  return 0;
}
