#!/usr/bin/env bash
# Live-cluster chaos smoke: a 4-process hlock_node mesh where every link
# runs through a fault-injecting chaos_proxy (periodic RSTs mid-stream,
# garbage bytes toward the listener) and one peer starts 2 seconds late.
#
# Asserts that every node's lock/unlock workload completes, every process
# exits cleanly, and the transport actually reconnected (reconnects > 0 in
# at least one [tcp-stats] exit line) — i.e. the fault tolerance was
# exercised, not bypassed.
#
# Usage: tools/chaos_smoke.sh [build-dir]   (default: build)
set -u

BUILD="${1:-build}"
NODE_BIN="$BUILD/tools/hlock_node"
PROXY_BIN="$BUILD/tools/chaos_proxy"
for bin in "$NODE_BIN" "$PROXY_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "chaos_smoke: missing binary $bin (build the 'hlock_node' and 'chaos_proxy' targets first)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2> /dev/null
  wait 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

# Distinct port block per run so parallel CI jobs don't collide.
BASE=$((21000 + ($$ % 18000)))
NODES=4
declare -a NODE_PORT PROXY_PORT
for i in $(seq 0 $((NODES - 1))); do
  NODE_PORT[i]=$((BASE + i))
  PROXY_PORT[i]=$((BASE + 100 + i))
done

# One proxy in front of every node. Every 3rd relayed connection is
# RST-closed after 64 bytes (mid-frame reset); every 7th gets 64 garbage
# bytes injected toward the listener (malformed frames). 7 is coprime
# with 3 so both faults actually fire (faults are mutually exclusive per
# connection, reset winning — a multiple-of-3 period would shadow all
# garbage candidates).
for i in $(seq 0 $((NODES - 1))); do
  "$PROXY_BIN" --listen "${PROXY_PORT[i]}" \
    --target "127.0.0.1:${NODE_PORT[i]}" \
    --reset-every 3 --reset-after-bytes 64 \
    --garbage-every 7 --garbage-bytes 64 \
    > "$WORK/proxy$i.log" 2>&1 &
done

peer_flags() { # peer_flags <self-id>
  local self="$1" flags="" j
  for j in $(seq 0 $((NODES - 1))); do
    [ "$j" = "$self" ] && continue
    flags="$flags --peer $j=127.0.0.1:${PROXY_PORT[j]}"
  done
  echo "$flags"
}

# Node i acquires lock (i+1) mod 4 in W. Lock l is rooted at node l mod 4,
# so every acquisition crosses the (chaos-proxied) network. Long tail
# sleeps keep every node alive until all peers finished their ops.
start_node() { # start_node <id> <pre-lock-sleep>
  local id="$1" pre="$2"
  local lock=$(((id + 1) % NODES))
  # shellcheck disable=SC2046
  {
    sleep "$pre"
    echo "lock $lock W"
    sleep 3
    echo "unlock 1"
    echo "status"
    sleep 6
    echo "quit"
  } | timeout 90 "$NODE_BIN" --id "$id" --port "${NODE_PORT[id]}" \
    $(peer_flags "$id") --locks "$NODES" \
    --reconnect-min-ms 20 --reconnect-max-ms 200 \
    --heartbeat-ms 200 --idle-timeout-ms 2000 \
    > "$WORK/node$id.log" 2>&1 &
  eval "NODE_PID_$id=$!"
}

# Nodes 1..3 start now; node 0 starts 2 seconds late, so its peers' first
# dials bounce off a dead listener and must retry.
start_node 1 5
start_node 2 5
start_node 3 5
sleep 2
start_node 0 3

fail=0
for i in $(seq 0 $((NODES - 1))); do
  eval "pid=\$NODE_PID_$i"
  if ! wait "$pid"; then
    echo "chaos_smoke: node $i exited non-zero (crashed or timed out)" >&2
    fail=1
  fi
done

for i in $(seq 0 $((NODES - 1))); do
  lock=$(((i + 1) % NODES))
  if ! grep -q "granted W on lock $lock" "$WORK/node$i.log"; then
    echo "chaos_smoke: node $i never acquired lock $lock" >&2
    fail=1
  fi
  if ! grep -q "released" "$WORK/node$i.log"; then
    echo "chaos_smoke: node $i never released its lock" >&2
    fail=1
  fi
done

echo "--- [tcp-stats] exit lines ---"
grep -h '\[tcp-stats\]' "$WORK"/node*.log || true
if ! grep -h '\[tcp-stats\]' "$WORK"/node*.log \
  | grep -Eq 'reconnects=[1-9]'; then
  echo "chaos_smoke: no node ever reconnected — chaos was not exercised" >&2
  fail=1
fi

# Stop the proxies gracefully so they print their fault summaries.
# shellcheck disable=SC2046
kill -TERM $(jobs -p) 2> /dev/null
sleep 0.3
echo "--- proxy fault summaries ---"
grep -h '\[chaos\]' "$WORK"/proxy*.log || true

if [ "$fail" -ne 0 ]; then
  echo "=== chaos_smoke FAILED; node logs follow ===" >&2
  for i in $(seq 0 $((NODES - 1))); do
    echo "--- node $i ---" >&2
    cat "$WORK/node$i.log" >&2
  done
  exit 1
fi
echo "chaos_smoke: PASS (4-node mesh survived late start, resets, garbage)"
