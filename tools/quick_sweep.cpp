// Quick smoke sweep: the three protocols at a few node counts, one line
// per point. Runs on the shared SweepRunner (--threads N parallelism).
#include <iostream>

#include "bench/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep_runner.hpp"

using namespace hlock;
using namespace hlock::harness;

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(
      argc, argv,
      "usage: quick_sweep [--ops N] [--seed S] [--threads N] [--repeat N]\n"
      "         [--no-memo]\n");
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  bench::apply(cli, spec);

  const std::size_t node_counts[] = {10, 40, 120};
  const Protocol protocols[] = {Protocol::kHls, Protocol::kNaimiPure,
                                Protocol::kNaimiSameWork};
  std::vector<SweepPoint> points;
  for (const std::size_t n : node_counts)
    for (const Protocol p : protocols)
      points.push_back(make_point(p, n, spec));

  SweepRunner runner(bench::sweep_options(cli));
  const auto results = runner.run(points);

  std::size_t i = 0;
  for (const std::size_t n : node_counts) {
    for (const Protocol p : protocols) {
      const auto& r = results[i++];
      std::cout << to_string(p) << " n=" << n
                << " msgs/req=" << r.msgs_per_lock_request()
                << " msgs/op=" << r.msgs_per_op()
                << " latfactor=" << r.latency_factor.mean()
                << " vend=" << r.virtual_end / 1000000.0 << "s\n";
    }
  }
  return 0;
}
