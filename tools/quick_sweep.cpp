#include <iostream>
#include "harness/experiment.hpp"
using namespace hlock;
using namespace hlock::harness;
int main() {
  workload::WorkloadSpec spec;
  spec.ops_per_node = 60;
  for (size_t n : {10ul, 40ul, 120ul}) {
    for (auto p : {Protocol::kHls, Protocol::kNaimiPure, Protocol::kNaimiSameWork}) {
      auto r = run_experiment(p, n, spec);
      std::cout << to_string(p) << " n=" << n
                << " msgs/req=" << r.msgs_per_lock_request()
                << " msgs/op=" << r.msgs_per_op()
                << " latfactor=" << r.latency_factor.mean()
                << " vend=" << r.virtual_end/1000000.0 << "s\n";
    }
  }
}
