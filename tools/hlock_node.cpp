// hlock_node — a standalone protocol node over real TCP, driven by a tiny
// command REPL on stdin. Lets you run a genuine multi-PROCESS cluster:
//
//   terminal 1:  ./hlock_node --id 0 --port 7000 \
//                    --peer 1=127.0.0.1:7001 --peer 2=127.0.0.1:7002 \
//                    --locks 3
//   terminal 2:  ./hlock_node --id 1 --port 7001 --peer 0=127.0.0.1:7000 \
//                    --peer 2=127.0.0.1:7002 --locks 3
//   ...
//
// Commands (stdin):
//   lock <lockid> <IR|R|U|IW|W>    blocking acquire, prints a handle id
//   try <lockid> <mode>            non-blocking attempt
//   unlock <handle>                release
//   upgrade <handle>               U -> W
//   downgrade <handle> <mode>      safe weakening
//   status                         node overview
//   quit
//
// Lock `i` starts rooted at node (i mod peers+1) — identical on every
// node, so no coordination is needed at startup.
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "corba/concurrency.hpp"
#include "net/tcp_node.hpp"
#include "net/view_service.hpp"

using namespace hlock;

namespace {

// Strict flag parses: std::stoul would throw an unhelpful
// std::invalid_argument on garbage and silently accept trailing junk
// ("70x0" -> 70); these reject anything that isn't entirely a number.
std::uint32_t parse_u32(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u32(text);
  if (!v)
    throw std::invalid_argument(flag + " expects an unsigned integer, got '" +
                                text + "'");
  return *v;
}

std::uint16_t parse_u16(const std::string& flag, const std::string& text) {
  const auto v = try_parse_u16(text);
  if (!v)
    throw std::invalid_argument(flag + " expects a port number, got '" +
                                text + "'");
  return *v;
}

Mode parse_mode(const std::string& s) {
  if (s == "IR") return Mode::kIR;
  if (s == "R") return Mode::kR;
  if (s == "U") return Mode::kU;
  if (s == "IW") return Mode::kIW;
  if (s == "W") return Mode::kW;
  throw std::invalid_argument("mode must be IR|R|U|IW|W");
}

struct Options {
  std::uint32_t id{0};
  std::uint16_t port{0};
  std::map<NodeId, net::PeerAddress> peers;
  std::uint32_t locks{1};
  net::TcpConfig tcp{};
  std::uint32_t view_retry_ms{50};
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[i];
    };
    if (arg == "--id") {
      opt.id = parse_u32(arg, next());
    } else if (arg == "--port") {
      opt.port = parse_u16(arg, next());
    } else if (arg == "--locks") {
      opt.locks = parse_u32(arg, next());
    } else if (arg == "--reconnect-min-ms") {
      opt.tcp.reconnect_min = msec(parse_u32(arg, next()));
    } else if (arg == "--reconnect-max-ms") {
      opt.tcp.reconnect_max = msec(parse_u32(arg, next()));
    } else if (arg == "--heartbeat-ms") {
      opt.tcp.heartbeat_interval = msec(parse_u32(arg, next()));
    } else if (arg == "--idle-timeout-ms") {
      opt.tcp.idle_timeout = msec(parse_u32(arg, next()));
    } else if (arg == "--suspect-timeout-ms") {
      // Failure detection + automatic view changes: suspect a silent peer
      // after this long and let the lowest surviving id coordinate a
      // recovery view. 0 (default) = crashes are not handled.
      opt.tcp.suspect_timeout = msec(parse_u32(arg, next()));
    } else if (arg == "--view-retry-ms") {
      opt.view_retry_ms = parse_u32(arg, next());
    } else if (arg == "--max-batch-bytes") {
      // Frame-coalescing cap per writev batch; 0 = one frame per syscall.
      opt.tcp.max_batch_bytes = parse_u32(arg, next());
    } else if (arg == "--piggyback-ms") {
      // Ack piggyback window; 0 (default) = standalone acks only.
      opt.tcp.ack_piggyback_window = msec(parse_u32(arg, next()));
    } else if (arg == "--send-window") {
      // Per-peer cap on unacked sends; 0 (default) = unbounded. Protocol
      // messages past the cap are dropped (sends_rejected), so only use
      // with workloads that tolerate loss.
      opt.tcp.send_window_limit = parse_u32(arg, next());
    } else if (arg == "--peer") {
      const std::string spec = next();  // id=host:port
      const auto eq = spec.find('=');
      const auto colon = spec.find(':', eq);
      if (eq == std::string::npos || colon == std::string::npos)
        throw std::invalid_argument("--peer expects id=host:port");
      const NodeId pid{parse_u32("--peer id", spec.substr(0, eq))};
      opt.peers[pid] = net::PeerAddress{
          spec.substr(eq + 1, colon - eq - 1),
          parse_u16("--peer port", spec.substr(colon + 1))};
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  net::TcpNode node(NodeId{opt.id}, opt.port, opt.tcp);
  std::cout << "node " << opt.id << " listening on 127.0.0.1:"
            << node.listen_port() << "\n";
  node.set_peers(opt.peers);
  std::thread loop([&] { node.loop().run(); });

  corba::ConcurrencyService service(node);
  const std::uint32_t cluster_size =
      static_cast<std::uint32_t>(opt.peers.size()) + 1;
  for (std::uint32_t l = 0; l < opt.locks; ++l) {
    service.create_lock_set(LockId{l}, NodeId{l % cluster_size});
  }

  // Crash recovery: with a suspect timeout configured, a dead peer
  // triggers an automatic view change that regenerates every lock's
  // token at the new root (the lowest surviving id).
  std::unique_ptr<net::ViewService> views;
  if (opt.tcp.suspect_timeout > 0) {
    std::set<NodeId> members;
    members.insert(NodeId{opt.id});
    for (const auto& [pid, addr] : opt.peers) members.insert(pid);
    views = std::make_unique<net::ViewService>(
        node, std::move(members), net::ViewConfig{msec(opt.view_retry_ms)});
    views->set_on_view([&](std::uint32_t view, NodeId root,
                           const std::set<NodeId>& survivors) {
      service.recover_all(view, root, survivors);
      std::cerr << "[view] node=" << opt.id << " view=" << view << " root="
                << root << " survivors=" << survivors.size() << "\n";
    });
    views->start();
  }

  std::map<std::uint64_t, corba::LockHandle> handles;
  std::uint64_t next_handle = 1;
  std::string line;
  std::cout << "ready (" << opt.locks << " locks, " << cluster_size
            << " nodes). commands: lock/try/unlock/upgrade/downgrade/"
               "status/quit\n> "
            << std::flush;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "lock" || cmd == "try") {
        std::uint32_t lock;
        std::string mode;
        in >> lock >> mode;
        corba::LockSet set = service.lock_set(LockId{lock});
        const corba::LockMode lm = corba::from_core(parse_mode(mode));
        if (cmd == "lock") {
          const auto h = set.lock(lm);
          handles[next_handle] = h;
          std::cout << "granted " << mode << " on lock " << lock
                    << ", handle " << next_handle++ << "\n";
        } else {
          const auto h = set.try_lock(lm);
          if (h) {
            handles[next_handle] = *h;
            std::cout << "granted locally, handle " << next_handle++ << "\n";
          } else {
            std::cout << "would need messages; not granted\n";
          }
        }
      } else if (cmd == "unlock") {
        std::uint64_t h;
        in >> h;
        const auto it = handles.find(h);
        if (it == handles.end()) throw std::invalid_argument("no such handle");
        service.lock_set(it->second.lock).unlock(it->second);
        handles.erase(it);
        std::cout << "released\n";
      } else if (cmd == "upgrade" || cmd == "downgrade") {
        std::uint64_t h;
        in >> h;
        const auto it = handles.find(h);
        if (it == handles.end()) throw std::invalid_argument("no such handle");
        corba::LockMode target = corba::LockMode::kWrite;
        if (cmd == "downgrade") {
          std::string mode;
          in >> mode;
          target = corba::from_core(parse_mode(mode));
        }
        it->second =
            service.lock_set(it->second.lock).change_mode(it->second, target);
        std::cout << "now holding " << to_string(it->second.mode) << "\n";
      } else if (cmd == "status") {
        std::cout << "node " << opt.id << ", " << handles.size()
                  << " live handles, " << node.delivered()
                  << " messages delivered, " << node.connected_peers()
                  << " peers connected\n"
                  << "  " << to_string(node.stats()) << "\n";
        for (const auto& [h, handle] : handles) {
          std::cout << "  handle " << h << ": lock " << handle.lock << " in "
                    << to_string(handle.mode) << "\n";
        }
      } else if (!cmd.empty()) {
        std::cout << "unknown command\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
    std::cout << "> " << std::flush;
  }

  node.loop().stop();
  loop.join();
  // Machine-greppable transport summary (docs/NETWORKING.md documents the
  // format; the CI chaos smoke asserts on it).
  std::cerr << "[tcp-stats] node=" << opt.id << " delivered="
            << node.delivered() << " " << to_string(node.stats());
  if (views) {
    std::cerr << " views_committed=" << views->views_committed()
              << " view_frames=" << views->view_frames_sent();
  }
  std::cerr << "\n";
  return 0;
}
