#include "harness/result_store.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>
#include <utility>

#include "harness/json.hpp"
#include "harness/sweep_runner.hpp"

namespace hlock::harness {

namespace {

constexpr const char* kFileName = "results.jsonl";
constexpr const char* kFormatName = "hlock-result-cache";

/// Minimal JSON string escape — canonical keys are plain ASCII by
/// construction, but the store never trusts that.
void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_summary_exact(std::ostringstream& os, const Summary& s) {
  os << "{\"sum\":" << json_double(s.sum())
     << ",\"sum_sq\":" << json_double(s.sum_sq())
     << ",\"sorted\":" << (s.sealed() ? "true" : "false") << ",\"samples\":[";
  bool first = true;
  for (const double v : s.samples()) {
    if (!first) os << ",";
    os << json_double(v);
    first = false;
  }
  os << "]}";
}

std::optional<Summary> summary_from_json(const JsonValue& v) {
  const JsonValue* sum = v.find("sum");
  const JsonValue* sum_sq = v.find("sum_sq");
  const JsonValue* sorted = v.find("sorted");
  const JsonValue* samples = v.find("samples");
  if (!sum || !sum_sq || !sorted || !samples ||
      samples->kind != JsonValue::Kind::kArray)
    return std::nullopt;
  const auto sum_v = sum->as_double();
  const auto sum_sq_v = sum_sq->as_double();
  const auto sorted_v = sorted->as_bool();
  if (!sum_v || !sum_sq_v || !sorted_v) return std::nullopt;
  std::vector<double> values;
  values.reserve(samples->elements.size());
  for (const JsonValue& e : samples->elements) {
    const auto d = e.as_double();
    if (!d) return std::nullopt;  // includes non-finite-written-as-null
    values.push_back(*d);
  }
  return Summary::restore(std::move(values), *sorted_v, *sum_v, *sum_sq_v);
}

}  // namespace

// The canonical key must cover EVERY field of the point identity; these
// fire when a field is added to one of the structs without this file
// being updated (sizes are stable across gcc/clang on the x86-64 Itanium
// ABI this project targets).
static_assert(sizeof(core::EngineOptions) == 7,
              "EngineOptions changed — update canonical_point_key()");
static_assert(sizeof(workload::WorkloadSpec) == 104,
              "WorkloadSpec changed — update canonical_point_key()");
static_assert(sizeof(ClusterConfig) == 176,
              "ClusterConfig changed — update canonical_point_key()");

std::string canonical_point_key(const SweepPoint& p) {
  const ClusterConfig& c = p.config;
  const workload::WorkloadSpec& s = c.spec;
  const core::EngineOptions& e = c.engine_opts;
  std::ostringstream os;
  os << "v1|proto=" << static_cast<int>(p.protocol) << "|nodes=" << c.nodes
     << "|lat=" << static_cast<int>(c.latency)
     << "|loss=" << json_double(c.loss_rate) << "|cs=" << s.cs_mean
     << "|idle=" << s.idle_mean << "|net=" << s.net_latency_mean
     << "|per=" << json_double(s.p_entry_read)
     << "|ptr=" << json_double(s.p_table_read)
     << "|pu=" << json_double(s.p_upgrade)
     << "|pew=" << json_double(s.p_entry_write)
     << "|ptw=" << json_double(s.p_table_write)
     << "|entries=" << s.entries_per_node
     << "|home=" << json_double(s.home_bias) << "|ops=" << s.ops_per_node
     << "|seed=" << s.seed << "|cg=" << e.allow_child_grants
     << "|lq=" << e.allow_local_queues << "|fz=" << e.enable_freezing
     << "|lr=" << e.lazy_release << "|pr=" << e.enable_priorities
     << "|shards=" << c.shards << "|lc=" << s.lock_count
     << "|zipf=" << json_double(s.zipf_theta) << "|lb=" << e.locality_bias
     << "|fc=" << static_cast<unsigned>(e.locality_fairness_cap)
     << "|cl=" << c.clusters << "|pl=" << static_cast<int>(c.placement)
     << "|intra=" << c.intra_latency_mean
     << "|inter=" << c.inter_latency_mean;
  return os.str();
}

std::string result_to_cache_json(const ExperimentResult& r) {
  std::ostringstream os;
  os << "{\"nodes\":" << r.nodes << ",\"app_ops\":" << r.app_ops
     << ",\"lock_requests\":" << r.lock_requests
     << ",\"messages\":" << r.messages << ",\"wire_bytes\":" << r.wire_bytes
     << ",\"messages_dropped\":" << r.messages_dropped
     << ",\"intra_cluster_messages\":" << r.intra_cluster_messages
     << ",\"cross_cluster_messages\":" << r.cross_cluster_messages
     << ",\"intra_cluster_bytes\":" << r.intra_cluster_bytes
     << ",\"cross_cluster_bytes\":" << r.cross_cluster_bytes
     << ",\"virtual_end\":" << r.virtual_end << ",\"messages_by_kind\":{";
  bool first = true;
  for (const auto& [kind, count] : r.messages_by_kind.all()) {
    if (!first) os << ",";
    append_escaped(os, kind);
    os << ":" << count;
    first = false;
  }
  os << "},\"latency_factor\":";
  append_summary_exact(os, r.latency_factor);
  os << ",\"latency_by_kind\":{";
  first = true;
  for (const auto& [kind, summary] : r.latency_by_kind) {
    if (!first) os << ",";
    append_escaped(os, kind);
    os << ":";
    append_summary_exact(os, summary);
    first = false;
  }
  os << "}}";
  return os.str();
}

namespace {

std::optional<ExperimentResult> result_from_json(const JsonValue& doc) {
  if (doc.kind != JsonValue::Kind::kObject) return std::nullopt;

  ExperimentResult r;
  const auto u64_field = [&](const char* name,
                             std::uint64_t& out) -> bool {
    const JsonValue* v = doc.find(name);
    if (!v) return false;
    const auto parsed = v->as_u64();
    if (!parsed) return false;
    out = *parsed;
    return true;
  };
  std::uint64_t nodes = 0;
  if (!u64_field("nodes", nodes)) return std::nullopt;
  r.nodes = static_cast<std::size_t>(nodes);
  if (!u64_field("app_ops", r.app_ops)) return std::nullopt;
  if (!u64_field("lock_requests", r.lock_requests)) return std::nullopt;
  if (!u64_field("messages", r.messages)) return std::nullopt;
  if (!u64_field("wire_bytes", r.wire_bytes)) return std::nullopt;
  if (!u64_field("messages_dropped", r.messages_dropped)) return std::nullopt;
  if (!u64_field("intra_cluster_messages", r.intra_cluster_messages))
    return std::nullopt;
  if (!u64_field("cross_cluster_messages", r.cross_cluster_messages))
    return std::nullopt;
  if (!u64_field("intra_cluster_bytes", r.intra_cluster_bytes))
    return std::nullopt;
  if (!u64_field("cross_cluster_bytes", r.cross_cluster_bytes))
    return std::nullopt;

  const JsonValue* vend = doc.find("virtual_end");
  if (!vend) return std::nullopt;
  const auto vend_v = vend->as_i64();
  if (!vend_v) return std::nullopt;
  r.virtual_end = *vend_v;

  const JsonValue* kinds = doc.find("messages_by_kind");
  if (!kinds || kinds->kind != JsonValue::Kind::kObject) return std::nullopt;
  for (const auto& [kind, count] : kinds->members) {
    const auto parsed = count.as_u64();
    if (!parsed) return std::nullopt;
    r.messages_by_kind.inc(kind, *parsed);
  }

  const JsonValue* factor = doc.find("latency_factor");
  if (!factor) return std::nullopt;
  auto factor_summary = summary_from_json(*factor);
  if (!factor_summary) return std::nullopt;
  r.latency_factor = std::move(*factor_summary);

  const JsonValue* by_kind = doc.find("latency_by_kind");
  if (!by_kind || by_kind->kind != JsonValue::Kind::kObject)
    return std::nullopt;
  for (const auto& [kind, value] : by_kind->members) {
    auto summary = summary_from_json(value);
    if (!summary) return std::nullopt;
    r.latency_by_kind.emplace(kind, std::move(*summary));
  }
  return r;
}

}  // namespace

std::optional<ExperimentResult> result_from_cache_json(
    const std::string& json) {
  const std::optional<JsonValue> doc = parse_json(json);
  if (!doc) return std::nullopt;
  return result_from_json(*doc);
}

// --- ResultStore -----------------------------------------------------------

ResultStore::ResultStore(std::string dir, std::string build)
    : dir_(std::move(dir)), build_(std::move(build)) {}

ResultStore::~ResultStore() {
  const std::lock_guard<std::mutex> guard(mutex_);
  if (!loaded_) return;  // never touched: stay silent
  // One stderr line per invocation so scripted runs (and the CI reuse
  // smoke test) can assert hit/miss behavior without affecting the
  // byte-compared stdout.
  std::cerr << "[result-store] dir=" << dir_ << " hits=" << hits_
            << " misses=" << misses_ << " stored=" << stored_
            << " discarded=" << discarded_ << "\n";
}

std::string ResultStore::file_path() const {
  return (std::filesystem::path(dir_) / kFileName).string();
}

void ResultStore::load_locked() {
  if (loaded_) return;
  loaded_ = true;
  file_valid_ = false;
  std::ifstream in(file_path());
  if (!in.is_open()) return;  // nothing cached yet

  std::string line;
  if (!std::getline(in, line)) return;  // empty file
  const std::optional<JsonValue> header = parse_json(line);
  if (!header) {
    ++discarded_;
    return;
  }
  const JsonValue* format = header->find("format");
  const JsonValue* version = header->find("version");
  const JsonValue* build = header->find("build");
  if (!format || format->kind != JsonValue::Kind::kString ||
      format->text != kFormatName || !version ||
      version->as_u64() != std::optional<std::uint64_t>{kFormatVersion} ||
      !build || build->kind != JsonValue::Kind::kString ||
      build->text != build_) {
    // Different format/version or a different build of the simulator:
    // everything below is untrusted. Not an error — the next put()
    // rewrites the file for this build.
    ++discarded_;
    return;
  }
  file_valid_ = true;

  while (std::getline(in, line)) {
    const std::optional<JsonValue> entry = parse_json(line);
    if (!entry) {
      // Truncated tail or interleaved write: skip, keep what parsed.
      ++discarded_;
      continue;
    }
    const JsonValue* key = entry->find("key");
    const JsonValue* result = entry->find("result");
    if (!key || key->kind != JsonValue::Kind::kString || !result) {
      ++discarded_;
      continue;
    }
    std::optional<ExperimentResult> parsed = result_from_json(*result);
    if (!parsed) {
      ++discarded_;
      continue;
    }
    entries_.emplace(key->text, std::move(*parsed));
  }
}

bool ResultStore::open_for_append_locked() {
  if (out_.is_open()) return out_.good();
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
  if (!file_valid_) {
    // Fresh file (or stale build): truncate and stamp the header.
    out_.open(file_path(), std::ios::out | std::ios::trunc);
    if (!out_.is_open()) return false;
    std::ostringstream header;
    header << "{\"format\":\"" << kFormatName
           << "\",\"version\":" << kFormatVersion << ",\"build\":";
    append_escaped(header, build_);
    header << "}";
    out_ << header.str() << "\n";
    out_.flush();
    file_valid_ = out_.good();
    return file_valid_;
  }
  out_.open(file_path(), std::ios::out | std::ios::app);
  return out_.is_open();
}

std::optional<ExperimentResult> ResultStore::get(const SweepPoint& point) {
  const std::lock_guard<std::mutex> guard(mutex_);
  load_locked();
  const auto it = entries_.find(canonical_point_key(point));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ResultStore::put(const SweepPoint& point, const ExperimentResult& result) {
  const std::lock_guard<std::mutex> guard(mutex_);
  load_locked();
  const std::string key = canonical_point_key(point);
  if (entries_.contains(key)) return;  // deterministic: already identical
  entries_.emplace(key, result);
  if (!open_for_append_locked()) return;  // unwritable dir: cache in RAM only
  std::ostringstream line;
  line << "{\"key\":";
  append_escaped(line, key);
  line << ",\"result\":" << result_to_cache_json(result) << "}";
  out_ << line.str() << "\n";
  out_.flush();
  if (out_.good()) ++stored_;
}

std::size_t ResultStore::hits() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return hits_;
}
std::size_t ResultStore::misses() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return misses_;
}
std::size_t ResultStore::stored() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return stored_;
}
std::size_t ResultStore::discarded() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return discarded_;
}

}  // namespace hlock::harness
