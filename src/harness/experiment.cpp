#include "harness/experiment.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace hlock::harness {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kHls: return "our-protocol";
    case Protocol::kNaimiSameWork: return "naimi-same-work";
    case Protocol::kNaimiPure: return "naimi-pure";
  }
  return "?";
}

ExperimentResult run_experiment(Protocol protocol, std::size_t nodes,
                                const workload::WorkloadSpec& spec,
                                const core::EngineOptions& opts) {
  ClusterConfig config;
  config.nodes = nodes;
  config.spec = spec;
  config.engine_opts = opts;
  return run_experiment(protocol, config);
}

ExperimentResult run_experiment(Protocol protocol,
                                const ClusterConfig& config) {
  switch (protocol) {
    case Protocol::kHls: {
      HlsCluster cluster(config);
      cluster.run();
      return cluster.result();
    }
    case Protocol::kNaimiSameWork: {
      NaimiCluster cluster(config, /*pure=*/false);
      cluster.run();
      return cluster.result();
    }
    case Protocol::kNaimiPure: {
      NaimiCluster cluster(config, /*pure=*/true);
      cluster.run();
      return cluster.result();
    }
  }
  throw std::logic_error("bad protocol");
}

std::vector<std::size_t> sweep_node_counts(std::size_t max_nodes) {
  std::vector<std::size_t> out;
  for (const std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{10},
                              std::size_t{20}, std::size_t{40},
                              std::size_t{60}, std::size_t{80},
                              std::size_t{100}, std::size_t{120}}) {
    if (n <= max_nodes) out.push_back(n);
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2)
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (const std::size_t w : widths) rule += std::string(w + 2, '-');
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace hlock::harness
