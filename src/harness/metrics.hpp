// Aggregate results of one simulated experiment run.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace hlock::harness {

struct ExperimentResult {
  std::size_t nodes{0};
  std::uint64_t app_ops{0};         ///< application-level operations
  std::uint64_t lock_requests{0};   ///< protocol lock requests issued
  std::uint64_t messages{0};        ///< total protocol messages sent
  std::uint64_t wire_bytes{0};      ///< serialized bytes incl. framing
  std::uint64_t messages_dropped{0};  ///< network drops (lossy runs only)
  /// Topology split of `messages`/`wire_bytes`. Only clustered runs
  /// accumulate these; a flat run (no ClusterMap) leaves all four zero
  /// and the JSON emitters then omit the split entirely.
  std::uint64_t intra_cluster_messages{0};
  std::uint64_t cross_cluster_messages{0};
  std::uint64_t intra_cluster_bytes{0};
  std::uint64_t cross_cluster_bytes{0};
  CounterMap messages_by_kind;      ///< the Figure 7 breakdown
  /// Per-op acquisition latency divided by the mean point-to-point
  /// latency — the paper's Figure 6 "latency factor".
  Summary latency_factor;
  /// Figure 6 says the latency is "averaged over all types of requests";
  /// this is the per-type breakdown behind that average, keyed by op kind.
  std::map<std::string, Summary> latency_by_kind;
  TimePoint virtual_end{0};         ///< virtual time when the run drained

  /// Figure 5 y-axis: average messages per lock request.
  [[nodiscard]] double msgs_per_lock_request() const {
    return lock_requests == 0
               ? 0.0
               : static_cast<double>(messages) /
                     static_cast<double>(lock_requests);
  }
  [[nodiscard]] double msgs_per_op() const {
    return app_ops == 0 ? 0.0
                        : static_cast<double>(messages) /
                              static_cast<double>(app_ops);
  }
  /// Fraction of protocol messages that crossed a cluster boundary — the
  /// quantity locality-biased hand-off exists to shrink.
  [[nodiscard]] double cross_cluster_fraction() const {
    return messages == 0 ? 0.0
                         : static_cast<double>(cross_cluster_messages) /
                               static_cast<double>(messages);
  }
  /// Per-kind messages per lock request (Figure 7 y-axis).
  [[nodiscard]] double kind_per_request(const char* kind) const {
    return lock_requests == 0
               ? 0.0
               : static_cast<double>(messages_by_kind.get(kind)) /
                     static_cast<double>(lock_requests);
  }

  /// Exact field-wise equality, down to Summary internal state — the
  /// ResultStore round-trip contract (cache-hit rerun byte-identical to
  /// a cold run) is tested through this.
  bool operator==(const ExperimentResult&) const = default;
};

}  // namespace hlock::harness
