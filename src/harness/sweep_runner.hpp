// Parallel sweep execution.
//
// Every figure in the paper is a sweep of independent deterministic
// simulations; each point owns its whole world (Simulator, SimNetwork,
// RNG streams), so points can run on any thread in any order. SweepRunner
// is the shared execution layer for the bench binaries and tools: a
// work-queue thread pool that evaluates points concurrently and hands the
// results back in submission order, so tables and JSON output are
// byte-identical at any `--threads` value.
//
// On top of the pool sits an in-process memo cache keyed by the full
// point identity (protocol + every ClusterConfig field, compared
// field-wise — no hash-collision risk). Binaries that evaluate
// overlapping point sets (summary_claims' headline table vs its
// asymptote check, fig5 vs bandwidth-style re-runs) pay for each
// distinct run once; concurrent requests for the same point block on a
// shared future instead of computing twice.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace hlock::harness {

class ResultStore;

/// One independent simulation run: a protocol plus the full cluster
/// configuration (nodes, workload spec, engine options, latency model,
/// loss rate).
struct SweepPoint {
  Protocol protocol{Protocol::kHls};
  ClusterConfig config{};

  bool operator==(const SweepPoint&) const = default;
};

/// Convenience maker mirroring run_experiment()'s signature.
SweepPoint make_point(Protocol protocol, std::size_t nodes,
                      const workload::WorkloadSpec& spec,
                      const core::EngineOptions& opts = {});

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Reuse results for points already evaluated by this runner.
  bool memoize = true;
  /// Evaluate each point this many times (fresh cluster each time; the
  /// runs are bit-identical, so this only matters for wall-clock
  /// timing). repeat > 1 disables the memo cache — a cache hit would
  /// defeat the purpose of re-running.
  int repeat = 1;
  /// Non-empty: persist results across invocations in a ResultStore
  /// under this directory (see result_store.hpp). Consulted on memo
  /// misses and written through after each computed point; inactive when
  /// memoization is off or repeat > 1 (same reasoning as the memo
  /// cache).
  std::string cache_dir;
  /// Override the build hash the store is keyed by; empty = the
  /// compiled-in stamp. Tests use this to prove stale-build invalidation.
  std::string cache_build_hash;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();

  /// Evaluate all points and return their results in submission order,
  /// regardless of the order the pool finishes them in.
  std::vector<ExperimentResult> run(const std::vector<SweepPoint>& points);

  /// Generic parallel map for benches with custom rigs (path_length,
  /// churn, recovery...): calls fn(i) for every i in [0, count) on the
  /// pool. fn must be self-contained per index — it builds its own
  /// simulator/rig and writes only to index-i slots of caller-owned
  /// storage. Never memoized.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] std::size_t memo_hits() const { return memo_hits_; }
  [[nodiscard]] std::size_t memo_misses() const { return memo_misses_; }

  /// Simulations actually executed (one per repeat). A fully warm disk
  /// cache leaves this at 0 — the acceptance proof that a cache-hit
  /// rerun performs zero simulations.
  [[nodiscard]] std::size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Disk-cache telemetry; all 0 when no cache_dir was configured.
  [[nodiscard]] std::size_t disk_hits() const;
  [[nodiscard]] std::size_t disk_misses() const;
  [[nodiscard]] std::size_t disk_stored() const;
  [[nodiscard]] bool disk_cache_enabled() const { return store_ != nullptr; }

 private:
  [[nodiscard]] ExperimentResult evaluate(const SweepPoint& point) const;
  [[nodiscard]] ExperimentResult memoized(const SweepPoint& point);

  SweepOptions options_;
  std::size_t threads_;

  std::mutex memo_mutex_;
  struct PointHash {
    std::size_t operator()(const SweepPoint& p) const;
  };
  /// First requester installs a promise-backed future and computes;
  /// later requesters (same or other threads) wait on the future. The
  /// computing task is always already running when a waiter blocks, so
  /// a fixed-size pool cannot deadlock on it.
  std::unordered_map<SweepPoint, std::shared_future<ExperimentResult>,
                     PointHash>
      memo_;
  std::size_t memo_hits_{0};
  std::size_t memo_misses_{0};

  /// Cross-invocation disk cache; null unless options.cache_dir is set
  /// (and memoize/repeat allow caching at all).
  std::unique_ptr<ResultStore> store_;
  mutable std::atomic<std::size_t> evaluations_{0};
};

}  // namespace hlock::harness
