// Durable cross-invocation cache for sweep results.
//
// Every figure in the paper is a sweep of independent deterministic
// simulations, so a (protocol, full ClusterConfig) point computed by one
// process invocation is bit-identical in the next — as long as the binary
// itself didn't change. ResultStore persists ExperimentResults across
// invocations in a versioned JSON-lines file:
//
//   <cache-dir>/results.jsonl
//     {"format":"hlock-result-cache","version":1,"build":"<hash>"}
//     {"key":"<canonical point key>","result":{...exact fields...}}
//     ...
//
// * The key is the full field-wise SweepPoint identity serialized
//   canonically (protocol + every ClusterConfig / WorkloadSpec /
//   EngineOptions field, doubles in round-trip-exact form) — two points
//   share an entry only when every parameter of the run is identical.
// * The build hash (git HEAD + dirty flag + compiler id, stamped at
//   CMake configure time) invalidates the whole file: results from a
//   different build are never served.
// * Values round-trip exactly: per-kind message counts and full Summary
//   internal state (samples + running sums) are stored, so a cache-hit
//   rerun of a figure binary is byte-identical to the cold run.
// * Robustness over errors: a corrupt, truncated, version-mismatched or
//   stale-build file degrades to cache misses (and is rewritten on the
//   next put) — it never throws out of load.
//
// Thread safety: all public methods are mutex-serialized; concurrent
// sweep workers may get/put freely. Cross-process appends go through a
// single flushed write per entry in O_APPEND mode, so parallel
// invocations sharing a directory at worst interleave whole lines.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace hlock::harness {

struct SweepPoint;

/// Compiled-in build identity: "<git-head>[-dirty]-<compiler>-<version>",
/// stamped by the CMake configure step (see build_info.cpp.in). Reruns of
/// an unchanged build reuse cached results; any rebuild from different
/// sources gets a different hash and recomputes.
const char* build_hash();

/// Canonical serialization of the full point identity. Injective: every
/// field is emitted (doubles in shortest round-trip form), so distinct
/// configurations always produce distinct keys.
std::string canonical_point_key(const SweepPoint& point);

/// Exact JSON form of a result for the cache file (all fields, full
/// Summary state) and its inverse. parse returns nullopt on any
/// missing/ill-typed field.
std::string result_to_cache_json(const ExperimentResult& result);
std::optional<ExperimentResult> result_from_cache_json(const std::string& json);

class ResultStore {
 public:
  /// v2: topology counters (intra/cross cluster messages and bytes) became
  /// required fields of the cached result record.
  static constexpr int kFormatVersion = 2;

  /// Opens (creating lazily) the cache under `dir`. `build` defaults to
  /// the compiled-in build_hash(); tests and tools may pin their own.
  explicit ResultStore(std::string dir, std::string build = build_hash());
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Cached result for this exact point under the current build hash.
  std::optional<ExperimentResult> get(const SweepPoint& point);

  /// Write-through: remember in memory and append to the file. Overwrites
  /// nothing — the first stored result for a key wins (they are
  /// deterministic, so later ones are identical anyway).
  void put(const SweepPoint& point, const ExperimentResult& result);

  [[nodiscard]] const std::string& directory() const { return dir_; }
  [[nodiscard]] std::string file_path() const;

  // Lifetime counters (telemetry + tests).
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t stored() const;
  /// Entries discarded while loading (corrupt lines, wrong version or
  /// build hash).
  [[nodiscard]] std::size_t discarded() const;

 private:
  void load_locked();
  bool open_for_append_locked();

  mutable std::mutex mutex_;
  std::string dir_;
  std::string build_;
  bool loaded_{false};
  /// File content is valid for this build; false forces a header rewrite
  /// before the first append.
  bool file_valid_{false};
  std::ofstream out_;
  std::unordered_map<std::string, ExperimentResult> entries_;
  std::size_t hits_{0};
  std::size_t misses_{0};
  std::size_t stored_{0};
  std::size_t discarded_{0};
};

}  // namespace hlock::harness
