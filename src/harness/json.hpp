// Minimal JSON emission for experiment results (no external deps) — the
// machine-readable counterpart of the ASCII tables, for plotting
// pipelines.
#pragma once

#include <iosfwd>
#include <string>

#include "harness/metrics.hpp"

namespace hlock::harness {

/// Serialize one result as a JSON object (single line).
std::string to_json(const ExperimentResult& result);

/// Write an array of results (e.g. one per node-count of a sweep).
void write_json_array(std::ostream& os,
                      const std::vector<ExperimentResult>& results);

}  // namespace hlock::harness
