// Minimal JSON emission for experiment results (no external deps) — the
// machine-readable counterpart of the ASCII tables, for plotting
// pipelines.
#pragma once

#include <iosfwd>
#include <string>

#include "harness/metrics.hpp"

namespace hlock::harness {

/// Serialize one result as a JSON object (single line).
std::string to_json(const ExperimentResult& result);

/// Write an array of results (e.g. one per node-count of a sweep).
void write_json_array(std::ostream& os,
                      const std::vector<ExperimentResult>& results);

/// One wall-clock timing sample: how fast the simulator executed a
/// point, plus the (seed-invariant) virtual-behavior counts that let a
/// reader verify two runs simulated the same thing. Produced by
/// bench/throughput; any future bench needing per-repetition timing
/// output shares this writer instead of hand-rolling an emitter.
struct TimingSample {
  std::string protocol;
  std::size_t nodes{0};
  double wall_ms{0};       ///< best wall time across repetitions
  std::uint64_t events{0};  ///< simulator events in one run
  ExperimentResult result;

  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / (wall_ms / 1000.0);
  }
  [[nodiscard]] double acquires_per_sec() const {
    return static_cast<double>(result.lock_requests) / (wall_ms / 1000.0);
  }
};

/// Serialize one timing sample as a JSON object (single line); the format
/// of the `samples` entries in BENCH_throughput.json.
std::string to_json(const TimingSample& sample);

/// Write an array of timing samples (one per swept point).
void write_json_array(std::ostream& os,
                      const std::vector<TimingSample>& samples);

}  // namespace hlock::harness
