// Minimal JSON emission and parsing for experiment results (no external
// deps) — the machine-readable counterpart of the ASCII tables, for
// plotting pipelines and the on-disk result cache.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/metrics.hpp"

namespace hlock::harness {

/// Render a double as a JSON token: shortest round-trip-exact decimal
/// (std::to_chars — parsing it back yields the identical bits), and
/// `null` for NaN/inf, which bare stream output would print as invalid
/// JSON (`nan`/`inf`).
std::string json_double(double v);

/// Serialize one result as a JSON object (single line).
std::string to_json(const ExperimentResult& result);

/// Write an array of results (e.g. one per node-count of a sweep).
void write_json_array(std::ostream& os,
                      const std::vector<ExperimentResult>& results);

/// One wall-clock timing sample: how fast the simulator executed a
/// point, plus the (seed-invariant) virtual-behavior counts that let a
/// reader verify two runs simulated the same thing. Produced by
/// bench/throughput; any future bench needing per-repetition timing
/// output shares this writer instead of hand-rolling an emitter.
struct TimingSample {
  std::string protocol;
  std::size_t nodes{0};
  double wall_ms{0};       ///< best wall time across repetitions
  std::uint64_t events{0};  ///< simulator events in one run
  ExperimentResult result;

  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / (wall_ms / 1000.0);
  }
  [[nodiscard]] double acquires_per_sec() const {
    return static_cast<double>(result.lock_requests) / (wall_ms / 1000.0);
  }
};

/// Serialize one timing sample as a JSON object (single line); the format
/// of the `samples` entries in BENCH_throughput.json.
std::string to_json(const TimingSample& sample);

/// Write an array of timing samples (one per swept point).
void write_json_array(std::ostream& os,
                      const std::vector<TimingSample>& samples);

// --- parsing -------------------------------------------------------------
//
// A small recursive-descent JSON reader, just enough to read back what
// the writers above (and harness::ResultStore) emit. Numbers keep their
// raw source text so integer fields round-trip at full std::uint64_t
// width — going through a double would corrupt counters above 2^53.

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind{Kind::kNull};
  bool boolean{false};
  /// Raw number token for kNumber (e.g. "1.5e-3"), decoded text for
  /// kString.
  std::string text;
  /// Insertion-ordered members for kObject.
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> elements;  ///< kArray

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed accessors: nullopt unless the value is a number that parses
  /// exactly (whole token, in range) as the requested type.
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const;
  [[nodiscard]] std::optional<std::int64_t> as_i64() const;
  [[nodiscard]] std::optional<double> as_double() const;
  [[nodiscard]] std::optional<bool> as_bool() const;
};

/// Parse one JSON document; nullopt on any syntax error or trailing
/// garbage. Tolerates surrounding whitespace.
std::optional<JsonValue> parse_json(std::string_view json);

}  // namespace hlock::harness
