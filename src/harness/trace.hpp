// Protocol trace recording and rendering.
//
// Attaches to a cluster's simulated network and records every message
// send/drop/delivery plus application-op boundaries into a bounded
// buffer; renders a human-readable timeline. This is the debugging view
// the repo's own protocol bugs were found with (DESIGN.md §2 notes),
// packaged as a library feature.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness/cluster.hpp"

namespace hlock::harness {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,
    kDrop,
    kDeliver,
    kOpStart,  // reserved for driver integration
    kOpDone,
  };

  TimePoint at{0};
  Kind kind{Kind::kSend};
  NodeId from{};
  NodeId to{};
  LockId lock{};
  MsgKind msg{MsgKind::kRequest};
  /// Mode carried by the message (grant/release/token) or op summary.
  Mode mode{Mode::kNone};
  NodeId requester{};
  std::string note;
};

const char* to_string(TraceEvent::Kind k);

/// Bounded-memory recorder; keeps the most recent `capacity` events.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 100000)
      : capacity_(capacity) {}

  /// Install hooks on the cluster's network and op-completion path.
  /// Replaces any previously installed on_send/on_deliver/on_op_done
  /// observers.
  void attach(detail::ClusterBase& cluster);

  void record(TraceEvent event);
  void clear();

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }

  /// Events touching one lock, in order.
  [[nodiscard]] std::vector<TraceEvent> for_lock(LockId lock) const;
  /// Events touching one node (as sender, receiver or requester).
  [[nodiscard]] std::vector<TraceEvent> for_node(NodeId node) const;

  /// Render the last `max_lines` events as a timeline.
  void render(std::ostream& os, std::size_t max_lines = 100) const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_{0};
};

}  // namespace hlock::harness
