// Simulated clusters: N nodes, a shared SimNetwork, per-node protocol
// stacks and workload drivers. One class per protocol configuration.
//
// A cluster owns everything needed to reproduce one data point of the
// paper's evaluation: build -> run() -> result().
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/cluster_map.hpp"
#include "common/rng.hpp"
#include "core/hls_node.hpp"
#include "harness/metrics.hpp"
#include "harness/sim_executor.hpp"
#include "lockmgr/resource.hpp"
#include "lockmgr/session.hpp"
#include "naimi/naimi_node.hpp"
#include "sim/reliable.hpp"
#include "sim/simnet.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace hlock::harness {

/// Which latency distribution the simulated network uses.
enum class LatencyKind { kUniform, kConstant, kExponential };

struct ClusterConfig {
  std::size_t nodes{8};
  workload::WorkloadSpec spec{};
  core::EngineOptions engine_opts{};  ///< ignored by the Naimi clusters
  LatencyKind latency = LatencyKind::kUniform;
  /// > 0 switches the network to lossy-datagram mode and interposes the
  /// sim::ReliableTransport sublayer on every node.
  double loss_rate{0.0};

  /// Simulation shards for the many-lock harness (classic clusters are
  /// single-slab and ignore it). Part of the cache key: sharding is
  /// output-invariant by construction, but the key must cover every
  /// config field so a future violation cannot silently alias entries.
  std::size_t shards{1};

  /// Cluster topology. clusters > 1 switches the network to the
  /// ClusteredLatency model (intra_latency_mean inside a cluster,
  /// inter_latency_mean across the boundary, same LatencyKind shape for
  /// both), turns on intra/cross boundary accounting, and hands the
  /// ClusterMap to every HLS node so engine_opts.locality_bias can act.
  /// clusters == 1 is the flat topology and is bit-for-bit identical to
  /// the pre-topology harness (same latency model, same RNG stream).
  std::size_t clusters{1};
  ClusterPlacement placement = ClusterPlacement::kBlock;
  Duration intra_latency_mean = usec(50);
  Duration inter_latency_mean = msec(50);

  /// Field-wise equality (sweep-runner memo cache key).
  bool operator==(const ClusterConfig&) const = default;
};

namespace detail {
/// Pieces shared by both cluster types: simulator, network, executor,
/// workload bookkeeping and the per-node op driver loop.
class ClusterBase {
 public:
  explicit ClusterBase(const ClusterConfig& config);
  virtual ~ClusterBase() = default;

  /// Run every node's op stream to completion and drain the network.
  void run();

  [[nodiscard]] ExperimentResult result() const;
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::SimNetwork& network() { return *net_; }
  [[nodiscard]] std::size_t node_count() const { return config_.nodes; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t completed_ops() const { return completed_; }

  /// Observation hook called after every completed op (tests).
  std::function<void(NodeId, const lockmgr::OpStats&)> on_op_done;

 protected:
  [[nodiscard]] lockmgr::Session& session(std::size_t i) {
    return *sessions_[i];
  }
  /// Subclasses fill sessions_ (one per node) in their constructors.
  std::vector<std::unique_ptr<lockmgr::Session>> sessions_;

  ClusterConfig config_;
  sim::Simulator sim_;
  /// Topology ground truth (null when config.clusters <= 1). Declared
  /// before net_: the network's latency model borrows it.
  std::unique_ptr<ClusterMap> cluster_map_;
  std::unique_ptr<sim::SimNetwork> net_;
  SimExecutor exec_;
  lockmgr::ResourceLayout layout_;
  std::vector<std::unique_ptr<sim::SimTransport>> transports_;
  /// Present only when config.loss_rate > 0 (one per node).
  std::vector<std::unique_ptr<sim::ReliableTransport>> reliable_;
  std::vector<std::unique_ptr<workload::OpGenerator>> generators_;

  /// The transport node `i`'s engines should send through, and the
  /// registration of its inbound path (wraps the reliability sublayer when
  /// the network is lossy).
  Transport& transport_for(std::size_t i);
  void register_inbound(std::size_t i,
                        std::function<void(const Message&)> handler);

 private:
  void kick_node(std::size_t i);
  void run_one_op(std::size_t i);

  std::vector<std::uint32_t> remaining_;
  std::uint64_t completed_{0};
  std::uint64_t lock_requests_{0};
  Summary latency_factor_;
  std::map<std::string, Summary> latency_by_kind_;
};
}  // namespace detail

/// The paper's protocol over the two-level hierarchy.
class HlsCluster final : public detail::ClusterBase {
 public:
  explicit HlsCluster(const ClusterConfig& config);

  [[nodiscard]] core::HlsNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] const core::HlsNode& node(std::size_t i) const {
    return *nodes_[i];
  }
  [[nodiscard]] const lockmgr::ResourceLayout& layout() const {
    return layout_;
  }

 private:
  std::vector<std::unique_ptr<core::HlsNode>> nodes_;
};

/// Naimi baseline, "same work" (ordered entry-lock acquisition) or "pure"
/// (one global lock) per the flag.
class NaimiCluster final : public detail::ClusterBase {
 public:
  NaimiCluster(const ClusterConfig& config, bool pure);

  [[nodiscard]] naimi::NaimiNode& node(std::size_t i) { return *nodes_[i]; }

 private:
  std::vector<std::unique_ptr<naimi::NaimiNode>> nodes_;
};

}  // namespace hlock::harness
