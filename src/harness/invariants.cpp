#include "harness/invariants.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace hlock::harness {

namespace {

std::string check_lock(HlsCluster& cluster, LockId lock) {
  const std::size_t n = cluster.node_count();

  // I1: token uniqueness (0 allowed transiently: token in flight).
  std::size_t token_nodes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster.node(i).engine(lock).is_token_node()) ++token_nodes;
  }
  if (token_nodes > 1) {
    std::ostringstream os;
    os << "lock " << lock << ": " << token_nodes << " token nodes";
    return os.str();
  }

  // I2: pairwise compatibility of all holds.
  std::vector<std::pair<NodeId, Mode>> held;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& engine = cluster.node(i).engine(lock);
    for (const auto& [id, mode] : engine.holds()) {
      held.emplace_back(engine.self(), mode);
    }
  }
  for (std::size_t a = 0; a < held.size(); ++a) {
    for (std::size_t b = a + 1; b < held.size(); ++b) {
      if (!compatible(held[a].second, held[b].second)) {
        std::ostringstream os;
        os << "lock " << lock << ": incompatible holds " << held[a].second
           << "@" << held[a].first << " and " << held[b].second << "@"
           << held[b].first;
        return os.str();
      }
    }
  }

  // I3: parents over-approximate their children's owned modes. Two
  // transients are exempt, both tied to a token transfer in flight:
  //  - the child has a pending request (the transfer to it already
  //    unregistered it from the old root's copyset), or
  //  - the parent has a pending request (it is the transfer target; the
  //    child is the old root whose registration travels in the token's
  //    sender_owned field).
  for (std::size_t i = 0; i < n; ++i) {
    const auto& engine = cluster.node(i).engine(lock);
    if (engine.is_token_node()) continue;
    if (engine.has_pending()) continue;
    const Mode owned = engine.owned_mode();
    if (owned == Mode::kNone) continue;
    const NodeId parent = engine.parent();
    if (!parent.valid()) {
      std::ostringstream os;
      os << "lock " << lock << ": owner " << engine.self()
         << " has no parent";
      return os.str();
    }
    const auto& pengine = cluster.node(parent.value).engine(lock);
    if (pengine.has_pending()) continue;
    const auto it = pengine.children().find(engine.self());
    if (it == pengine.children().end()) {
      std::ostringstream os;
      os << "lock " << lock << ": owner " << engine.self() << " (owned "
         << owned << ") missing from parent " << parent << " copyset";
      return os.str();
    }
    if (strength(it->second) < strength(owned)) {
      std::ostringstream os;
      os << "lock " << lock << ": parent " << parent << " records child "
         << engine.self() << " as " << it->second
         << " weaker than actual owned " << owned;
      return os.str();
    }
  }
  return {};
}

}  // namespace

std::string check_safety(HlsCluster& cluster) {
  const std::uint32_t locks = cluster.layout().lock_count();
  for (std::uint32_t l = 0; l < locks; ++l) {
    std::string err = check_lock(cluster, LockId{l});
    if (!err.empty()) return err;
  }
  return {};
}

std::string check_quiescent(HlsCluster& cluster) {
  std::string err = check_safety(cluster);
  if (!err.empty()) return err;

  const std::size_t n = cluster.node_count();
  const std::uint32_t locks = cluster.layout().lock_count();
  for (std::uint32_t l = 0; l < locks; ++l) {
    const LockId lock{l};
    std::size_t token_nodes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& engine = cluster.node(i).engine(lock);
      if (engine.is_token_node()) ++token_nodes;
      std::ostringstream os;
      if (!engine.holds().empty()) {
        os << "lock " << lock << ": node " << i << " still holds";
      } else if (engine.has_pending()) {
        os << "lock " << lock << ": node " << i << " still pending";
      } else if (!engine.queue().empty()) {
        os << "lock " << lock << ": node " << i << " queue not empty";
      } else if (!engine.children().empty()) {
        os << "lock " << lock << ": node " << i << " copyset not empty";
      } else if (!engine.frozen().empty()) {
        os << "lock " << lock << ": node " << i << " still frozen "
           << engine.frozen().to_string();
      } else if (engine.backlog_size() != 0) {
        os << "lock " << lock << ": node " << i << " backlog not empty";
      }
      const std::string s = os.str();
      if (!s.empty()) return s;
    }
    if (token_nodes != 1) {
      std::ostringstream os;
      os << "lock " << lock << ": " << token_nodes
         << " token nodes at quiescence";
      return os.str();
    }
  }
  return {};
}

void install_safety_probe(HlsCluster& cluster) {
  cluster.simulator().post_event_hook = [&cluster] {
    const std::string err = check_safety(cluster);
    if (!err.empty()) throw std::logic_error("invariant violated: " + err);
  };
}

}  // namespace hlock::harness
