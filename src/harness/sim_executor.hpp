// Executor implementation over the discrete-event simulator.
#pragma once

#include "common/executor.hpp"
#include "sim/simulator.hpp"

namespace hlock::harness {

class SimExecutor final : public Executor {
 public:
  explicit SimExecutor(sim::Simulator& simulator) : sim_(simulator) {}
  void schedule(Duration delay, std::function<void()> fn) override {
    sim_.schedule_after(delay, std::move(fn));
  }
  [[nodiscard]] TimePoint now() const override { return sim_.now(); }

 private:
  sim::Simulator& sim_;
};

}  // namespace hlock::harness
