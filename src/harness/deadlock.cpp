#include "harness/deadlock.hpp"

#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace hlock::harness {

void add_wait_edges(lockmgr::WaitForGraph& graph,
                    const std::vector<const core::HlsNode*>& nodes,
                    const std::function<NodeId(NodeId)>& rename) {
  // Union of materialized lock ids across the nodes: under lazy
  // materialization each node instantiates only the engines it touched,
  // and a lock is interesting exactly when someone touched it.
  std::set<LockId> locks;
  for (const core::HlsNode* node : nodes) {
    node->for_each_engine(
        [&locks](LockId lock, const core::HlsEngine&) { locks.insert(lock); });
  }

  for (const LockId lock : locks) {
    // Current holders of this lock (node -> strongest held mode).
    std::map<NodeId, Mode> holders;
    for (const core::HlsNode* node : nodes) {
      const core::HlsEngine* engine = node->find(lock);
      if (engine == nullptr) continue;
      const Mode held = engine->held_mode();
      if (held != Mode::kNone) holders[engine->self()] = held;
    }

    // Waiters: pending local requests plus everything queued anywhere.
    std::vector<std::pair<NodeId, Mode>> waiters;
    for (const core::HlsNode* node : nodes) {
      const core::HlsEngine* engine = node->find(lock);
      if (engine == nullptr) continue;
      if (engine->has_pending()) {
        waiters.emplace_back(engine->self(), engine->pending_request_mode());
      }
      for (const QueuedRequest& q : engine->queue()) {
        if (q.requester != engine->self()) {
          waiters.emplace_back(q.requester, q.mode);
        }
      }
    }

    for (const auto& [waiter, mode] : waiters) {
      for (const auto& [holder, held] : holders) {
        if (holder == waiter) continue;
        if (!compatible(held, mode))
          graph.add_edge(rename(waiter), rename(holder));
      }
    }
  }
}

lockmgr::WaitForGraph build_wait_graph(HlsCluster& cluster) {
  lockmgr::WaitForGraph graph;
  std::vector<const core::HlsNode*> nodes;
  nodes.reserve(cluster.node_count());
  for (std::size_t i = 0; i < cluster.node_count(); ++i)
    nodes.push_back(&cluster.node(i));
  add_wait_edges(graph, nodes, [](NodeId n) { return n; });
  return graph;
}

std::string describe_deadlock(HlsCluster& cluster) {
  const auto cycle = build_wait_graph(cluster).find_cycle();
  if (!cycle) return {};
  std::ostringstream os;
  os << "deadlock cycle:";
  for (const NodeId node : *cycle) os << " " << node;
  return os.str();
}

}  // namespace hlock::harness
