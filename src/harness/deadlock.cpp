#include "harness/deadlock.hpp"

#include <map>
#include <sstream>

namespace hlock::harness {

lockmgr::WaitForGraph build_wait_graph(HlsCluster& cluster) {
  lockmgr::WaitForGraph graph;
  const std::size_t n = cluster.node_count();
  const std::uint32_t locks = cluster.layout().lock_count();

  for (std::uint32_t l = 0; l < locks; ++l) {
    const LockId lock{l};

    // Current holders of this lock (node -> strongest held mode).
    std::map<NodeId, Mode> holders;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& engine = cluster.node(i).engine(lock);
      const Mode held = engine.held_mode();
      if (held != Mode::kNone) holders[engine.self()] = held;
    }

    // Waiters: pending local requests plus everything queued anywhere.
    std::vector<std::pair<NodeId, Mode>> waiters;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& engine = cluster.node(i).engine(lock);
      if (engine.has_pending()) {
        waiters.emplace_back(engine.self(), engine.pending_request_mode());
      }
      for (const QueuedRequest& q : engine.queue()) {
        if (q.requester != engine.self()) {
          waiters.emplace_back(q.requester, q.mode);
        }
      }
    }

    for (const auto& [waiter, mode] : waiters) {
      for (const auto& [holder, held] : holders) {
        if (holder == waiter) continue;
        if (!compatible(held, mode)) graph.add_edge(waiter, holder);
      }
    }
  }
  return graph;
}

std::string describe_deadlock(HlsCluster& cluster) {
  const auto cycle = build_wait_graph(cluster).find_cycle();
  if (!cycle) return {};
  std::ostringstream os;
  os << "deadlock cycle:";
  for (const NodeId node : *cycle) os << " " << node;
  return os.str();
}

}  // namespace hlock::harness
