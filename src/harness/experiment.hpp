// One-call experiment runner for the paper's three protocol
// configurations, plus reporting helpers used by the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/hls_engine.hpp"
#include "harness/cluster.hpp"
#include "harness/metrics.hpp"
#include "workload/spec.hpp"

namespace hlock::harness {

/// The three curves of Figures 5 and 6.
enum class Protocol { kHls, kNaimiSameWork, kNaimiPure };

const char* to_string(Protocol p);

/// Build the matching cluster, run the full workload, return the metrics.
ExperimentResult run_experiment(Protocol protocol, std::size_t nodes,
                                const workload::WorkloadSpec& spec,
                                const core::EngineOptions& opts = {});

/// Full-config variant: honors every ClusterConfig field (latency
/// distribution, loss rate + reliability sublayer), not just the spec.
ExperimentResult run_experiment(Protocol protocol,
                                const ClusterConfig& config);

/// Node counts used for the scalability sweeps (the paper plots 0..120).
std::vector<std::size_t> sweep_node_counts(std::size_t max_nodes = 120);

/// Fixed-width ASCII table emitter for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void row(const std::vector<std::string>& cells);
  void print(std::ostream& os) const;

  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hlock::harness
