#include "harness/many_locks_cluster.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/cluster_map.hpp"
#include "common/rng.hpp"
#include "harness/deadlock.hpp"
#include "sim/latency.hpp"

namespace hlock::harness {

namespace {

/// SplitMix64-style stream derivation: deterministic, shard-invariant
/// per-(tree) and per-(tree, node) seeds. Rng::split() would serialize
/// the derivation order, which must not depend on construction order.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

workload::ForestLayout make_layout(const ManyLocksConfig& c) {
  if (c.trees == 0) throw std::invalid_argument("need >= 1 tree");
  if (c.spec.lock_count / c.trees < 8)
    throw std::invalid_argument("need >= 8 locks per tree (lock_count)");
  return workload::ForestLayout(c.spec.lock_count / c.trees, c.levels);
}

}  // namespace

struct ManyLocksCluster::TreeState {
  TreeState(sim::Simulator& simulator, std::uint32_t tree_index)
      : index(tree_index), sim(&simulator), exec(simulator) {}

  std::uint32_t index;
  sim::Simulator* sim;
  std::size_t shard{0};
  std::unique_ptr<ClusterMap> cmap;  ///< clustered topology, if any
  std::unique_ptr<sim::SimNetwork> net;
  SimExecutor exec;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsNode>> nodes;
  std::vector<std::unique_ptr<lockmgr::PlanSession>> sessions;
  std::vector<workload::ForestOpGen> gens;
  std::vector<std::uint32_t> remaining;

  // --- multi-tree transaction state (built only when coupling is on) ---
  /// Locks the gateway still holds for a remote transaction's leg.
  struct HeldLeg {
    std::vector<lockmgr::PlanStep> plan;
    std::vector<RequestId> held;
    std::uint32_t req_tree{0};
    std::size_t req_node{0};
  };
  /// Stream for cross-shard hop latencies and order keys; distinct from
  /// the net/gen streams so uncoupled runs stay byte-identical.
  Rng cross_rng{0};
  std::uint64_t cross_seq{0};
  std::uint64_t cross_completed{0};
  std::unique_ptr<sim::SimTransport> gw_transport;
  std::unique_ptr<core::HlsNode> gw_node;
  std::unique_ptr<lockmgr::PlanSession> gw_session;
  bool gw_busy{false};
  std::deque<std::shared_ptr<CrossFlight>> gw_queue;
  std::map<std::uint64_t, HeldLeg> gw_held;
  /// Per local node: partner tree index while a gateway leg of ours is
  /// outstanding (posted but not yet replied), else -1. Feeds the
  /// cross-tree wait edges.
  std::vector<std::int64_t> waiting_gateway;

  // Per-tree metrics, merged in tree-index order by result().
  std::uint64_t completed{0};
  std::uint64_t lock_requests{0};
  Summary latency;
  TimePoint last_done{0};
};

/// One in-flight multi-tree transaction. Phases alternate between the
/// home shard and the partner shard but never run concurrently (strict
/// hand-off via posted events), so plain members need no locking.
struct ManyLocksCluster::CrossFlight {
  TreeState* home{nullptr};
  std::size_t node{0};
  TreeState* remote{nullptr};
  std::vector<lockmgr::PlanStep> home_plan;
  std::vector<lockmgr::PlanStep> remote_plan;
  bool home_first{true};
  Duration cs{0};
  TimePoint started{0};
  Duration acquire_span{0};
  std::uint32_t lock_requests{0};
  std::uint64_t leg_id{0};
  std::function<void()> on_reply;
};

ManyLocksCluster::ManyLocksCluster(const ManyLocksConfig& config)
    : config_(config),
      layout_(make_layout(config)),
      zipf_(layout_.pages(), config.spec.zipf_theta),
      sharded_(config.shards) {
  if (config.nodes == 0) throw std::invalid_argument("need >= 1 node");
  if (config.cross_tree_pct < 0.0 || config.cross_tree_pct > 100.0)
    throw std::invalid_argument("cross_tree_pct must be in [0, 100]");
  if (config.cross_tree_pct > 0.0 && config.trees < 2)
    throw std::invalid_argument("cross-tree ops need >= 2 trees");
  config.spec.validate();
  coupling_ = config.cross_tree_pct > 0.0;
  const bool clustered = config.clusters > 1 && config.intra_latency_mean > 0;

  const std::uint64_t seed = config.spec.seed;
  const auto nodes = static_cast<std::uint32_t>(config.nodes);
  trees_.reserve(config.trees);
  for (std::uint32_t t = 0; t < config.trees; ++t) {
    const std::size_t shard =
        workload::ForestLayout::shard_of(t, config.shards);
    auto tree = std::make_unique<TreeState>(sharded_.shard(shard), t);
    tree->shard = shard;
    std::unique_ptr<sim::LatencyModel> lat;
    if (clustered) {
      tree->cmap = std::make_unique<ClusterMap>(ClusterMap::make(
          config.nodes, config.clusters, ClusterPlacement::kBlock));
      lat = std::make_unique<sim::ClusteredLatency>(
          tree->cmap.get(),
          std::make_unique<sim::UniformLatency>(config.intra_latency_mean),
          std::make_unique<sim::UniformLatency>(config.spec.net_latency_mean));
    } else {
      lat = std::make_unique<sim::UniformLatency>(config.spec.net_latency_mean);
    }
    tree->net = std::make_unique<sim::SimNetwork>(
        *tree->sim, std::move(lat), Rng(mix(seed ^ 0x6e65745f726e67ULL, t)));
    tree->transports.reserve(config.nodes);
    tree->nodes.reserve(config.nodes);
    tree->gens.reserve(config.nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const NodeId id{i};
      tree->transports.push_back(
          std::make_unique<sim::SimTransport>(*tree->net, id));
      auto node = std::make_unique<core::HlsNode>(
          id, *tree->transports.back(), config.engine_opts);
      // Engines materialize on first touch; an idle lock costs only its
      // dense dispatch slot. The holder mapping is pure id arithmetic,
      // identical on every node of the tree.
      node->set_lazy_holder(
          [nodes](LockId l) { return workload::ForestLayout::home_of(l, nodes); });
      node->reserve_dense(layout_.locks_per_tree());
      tree->net->register_node(
          id, [n = node.get()](const Message& m) { n->handle(m); });
      tree->nodes.push_back(std::move(node));
      tree->gens.emplace_back(config.spec, zipf_, Rng(mix(mix(seed, t), i)));
    }
    for (std::uint32_t i = 0; i < nodes; ++i) {
      tree->sessions.push_back(std::make_unique<lockmgr::PlanSession>(
          *tree->nodes[i], tree->exec));
    }
    if (coupling_) {
      // The gateway is an extra protocol participant with local id
      // `nodes`: it executes remote transactions' legs on this tree so a
      // cross-tree op needs no second session on any real node. It never
      // owns tokens initially (home_of maps onto 0..nodes-1) and, under a
      // clustered map, sits past the table — i.e. in cluster 0's rack.
      tree->cross_rng = Rng(mix(seed ^ 0x63726f73735f726eULL, t));
      tree->waiting_gateway.assign(config.nodes, -1);
      const NodeId gw_id{nodes};
      tree->gw_transport =
          std::make_unique<sim::SimTransport>(*tree->net, gw_id);
      auto gw = std::make_unique<core::HlsNode>(gw_id, *tree->gw_transport,
                                                config.engine_opts);
      gw->set_lazy_holder(
          [nodes](LockId l) { return workload::ForestLayout::home_of(l, nodes); });
      gw->reserve_dense(layout_.locks_per_tree());
      tree->net->register_node(
          gw_id, [n = gw.get()](const Message& m) { n->handle(m); });
      tree->gw_node = std::move(gw);
      tree->gw_session =
          std::make_unique<lockmgr::PlanSession>(*tree->gw_node, tree->exec);
    }
    tree->remaining.assign(config.nodes, config.spec.ops_per_node);
    trees_.push_back(std::move(tree));
  }
}

ManyLocksCluster::~ManyLocksCluster() = default;

void ManyLocksCluster::kick(TreeState& tree, std::size_t node) {
  if (tree.remaining[node] == 0) return;
  tree.sim->schedule_after(tree.gens[node].next_idle(),
                           [this, &tree, node] { run_one_op(tree, node); });
}

void ManyLocksCluster::run_one_op(TreeState& tree, std::size_t node) {
  const workload::ForestOp op = tree.gens[node].next();
  // The cross-tree coin is drawn only when the feature is on, so pct == 0
  // consumes the exact legacy RNG stream (byte-identical runs).
  if (coupling_ && tree.gens[node].draw_cross(config_.cross_tree_pct)) {
    start_cross_op(tree, node, op);
    return;
  }
  std::vector<lockmgr::PlanStep> plan;
  workload::ForestOpGen::plan_for(layout_, op, plan);
  tree.sessions[node]->run(
      std::move(plan), op.cs,
      [this, &tree, node](const lockmgr::PlanSession::Result& r) {
        ++tree.completed;
        --tree.remaining[node];
        tree.lock_requests += r.lock_requests;
        tree.latency.add(
            static_cast<double>(r.acquire_latency) /
            static_cast<double>(config_.spec.net_latency_mean));
        if (tree.sim->now() > tree.last_done) tree.last_done = tree.sim->now();
        kick(tree, node);
      });
}

// --- multi-tree transactions -----------------------------------------
//
// Flow (each arrow is a posted cross-shard event or a session callback):
//
//   home node: acquire first tree's plan
//     -> post leg to partner gateway (hop latency, keyed)
//     -> gateway serializes: acquires the leg's plan on the partner tree
//     -> post reply to home (hop latency, keyed)
//     -> home acquires the second plan if the leg went first
//     -> dwell cs on the home simulator
//     -> release: home session synchronously, gateway via a posted event
//     -> op complete; kick the node's next op
//
// Ordered mode acquires the lower tree id first (total order -> no
// cross-tree cycles; within a tree, plan lock ids ascend level-order).
// Unordered mode always acquires the home tree first: two transactions
// in opposite directions then hold-and-wait across trees and deadlock.

void ManyLocksCluster::start_cross_op(TreeState& tree, std::size_t node,
                                      const workload::ForestOp& op) {
  const std::uint32_t partner =
      tree.gens[node].pick_partner(tree.index, config_.trees);
  const workload::ForestOp partner_op = tree.gens[node].next_partner(op);

  auto fl = std::make_shared<CrossFlight>();
  fl->home = &tree;
  fl->node = node;
  fl->remote = trees_[partner].get();
  workload::ForestOpGen::plan_for(layout_, op, fl->home_plan);
  workload::ForestOpGen::plan_for(layout_, partner_op, fl->remote_plan);
  fl->home_first = config_.cross_tree_unordered || tree.index < partner;
  fl->cs = op.cs;
  fl->started = tree.sim->now();

  if (fl->home_first) {
    tree.sessions[node]->acquire(
        fl->home_plan, [this, fl](const lockmgr::PlanSession::Result& r) {
          fl->lock_requests += r.lock_requests;
          post_leg(fl, [this, fl] { begin_dwell(fl); });
        });
  } else {
    post_leg(fl, [this, fl] {
      fl->home->sessions[fl->node]->acquire(
          fl->home_plan, [this, fl](const lockmgr::PlanSession::Result& r) {
            fl->lock_requests += r.lock_requests;
            begin_dwell(fl);
          });
    });
  }
}

void ManyLocksCluster::post_leg(const std::shared_ptr<CrossFlight>& fl,
                                std::function<void()> on_reply) {
  TreeState& home = *fl->home;
  TreeState& remote = *fl->remote;
  fl->leg_id = make_key(home);
  fl->on_reply = std::move(on_reply);
  home.waiting_gateway[fl->node] = remote.index;
  sharded_.post(home.shard, remote.shard, home.sim->now() + sample_hop(home),
                fl->leg_id, [this, fl] {
                  fl->remote->gw_queue.push_back(fl);
                  gateway_pump(*fl->remote);
                });
}

void ManyLocksCluster::gateway_pump(TreeState& tree) {
  // One leg at a time, FIFO — and not before every previously acquired
  // leg has been released: concurrent legs always share at least the top
  // lock, and an engine cannot hold a lock twice. The gateway "waiting"
  // for a dwelling transaction is finite by itself; the genuine deadlock
  // risk (hold-and-wait ACROSS trees) lives in the requesters and is what
  // the wait-for graph tracks.
  if (tree.gw_busy || !tree.gw_held.empty() || tree.gw_queue.empty()) return;
  tree.gw_busy = true;
  std::shared_ptr<CrossFlight> fl = std::move(tree.gw_queue.front());
  tree.gw_queue.pop_front();
  tree.gw_session->acquire(
      fl->remote_plan, [this, fl](const lockmgr::PlanSession::Result& r) {
        TreeState& remote = *fl->remote;
        TreeState::HeldLeg leg;
        leg.plan = fl->remote_plan;
        leg.held = remote.gw_session->detach();
        leg.req_tree = fl->home->index;
        leg.req_node = fl->node;
        remote.gw_held.emplace(fl->leg_id, std::move(leg));
        fl->lock_requests += r.lock_requests;
        remote.gw_busy = false;
        // Reply: the requester resumes on its own shard, one hop later.
        sharded_.post(remote.shard, fl->home->shard,
                      remote.sim->now() + sample_hop(remote), make_key(remote),
                      [fl] {
                        fl->home->waiting_gateway[fl->node] = -1;
                        std::function<void()> reply = std::move(fl->on_reply);
                        fl->on_reply = nullptr;
                        reply();
                      });
      });
}

void ManyLocksCluster::gateway_release(TreeState& tree, std::uint64_t leg_id) {
  const auto it = tree.gw_held.find(leg_id);
  if (it == tree.gw_held.end())
    throw std::logic_error("release for an unknown cross-tree leg");
  const TreeState::HeldLeg& leg = it->second;
  for (std::size_t i = leg.plan.size(); i-- > 0;)
    tree.gw_node->engine(leg.plan[i].lock).unlock(leg.held[i]);
  tree.gw_held.erase(it);
  gateway_pump(tree);
}

void ManyLocksCluster::begin_dwell(const std::shared_ptr<CrossFlight>& fl) {
  TreeState& home = *fl->home;
  fl->acquire_span = home.sim->now() - fl->started;
  home.sim->schedule_after(fl->cs, [this, fl] { finish_cross_op(fl); });
}

void ManyLocksCluster::finish_cross_op(const std::shared_ptr<CrossFlight>& fl) {
  TreeState& home = *fl->home;
  TreeState& remote = *fl->remote;
  // Release both legs. The gateway's unlock is a posted event (it lands
  // one hop later in virtual time, like a real release message would);
  // the home session unlocks synchronously.
  sharded_.post(home.shard, remote.shard, home.sim->now() + sample_hop(home),
                make_key(home),
                [this, fl] { gateway_release(*fl->remote, fl->leg_id); });
  home.sessions[fl->node]->release();

  ++home.completed;
  ++home.cross_completed;
  --home.remaining[fl->node];
  home.lock_requests += fl->lock_requests;
  home.latency.add(static_cast<double>(fl->acquire_span) /
                   static_cast<double>(config_.spec.net_latency_mean));
  if (home.sim->now() > home.last_done) home.last_done = home.sim->now();
  kick(home, fl->node);
}

Duration ManyLocksCluster::sample_hop(TreeState& src) {
  // Cross-shard hops mirror the flat network's uniform distribution; its
  // floor (mean / 2) participates in the lookahead() derivation, which
  // is what makes every posted arrival land beyond the window it was
  // sent in.
  const Duration mean = config_.spec.net_latency_mean;
  return src.cross_rng.uniform(mean / 2, mean + mean / 2);
}

std::uint64_t ManyLocksCluster::make_key(TreeState& src) {
  // Deterministic cross-event order key: (source tree, per-tree counter)
  // — unique and shard-invariant, so the simulator's (t, key) order is
  // independent of whether the event crossed a shard boundary.
  return (static_cast<std::uint64_t>(src.index) << 32) | ++src.cross_seq;
}

Duration ManyLocksCluster::lookahead() const {
  Duration m = std::numeric_limits<Duration>::max();
  for (const auto& tree : trees_) m = std::min(m, tree->net->latency_min());
  if (coupling_) m = std::min(m, config_.spec.net_latency_mean / 2);
  // run_until() is inclusive of its horizon, so the safe window sits
  // STRICTLY below the minimum latency: an event sent inside (T, H] must
  // arrive after H.
  return m > 0 ? m - 1 : 0;
}

void ManyLocksCluster::run() {
  for (auto& tree : trees_) {
    for (std::size_t i = 0; i < config_.nodes; ++i) kick(*tree, i);
  }
  const std::size_t threads =
      config_.run_threads == 0 ? config_.shards : config_.run_threads;
  sharded_.run_all(lookahead(), threads);

  std::uint64_t completed = 0;
  for (const auto& tree : trees_) completed += tree->completed;
  const std::uint64_t expected = static_cast<std::uint64_t>(config_.trees) *
                                 config_.nodes * config_.spec.ops_per_node;
  if (completed == expected) return;
  // The forest drained with ops outstanding. Unordered cross-tree mode
  // can genuinely deadlock; tell that apart from a lost request by
  // inspecting the wait-for graph.
  deadlock_cycles_ = wait_graph().count_cycles();
  if (deadlock_cycles_ == 0) {
    throw std::runtime_error(
        "forest drained with incomplete ops (lost request): " +
        std::to_string(completed) + "/" + std::to_string(expected));
  }
}

lockmgr::WaitForGraph ManyLocksCluster::wait_graph() const {
  lockmgr::WaitForGraph graph;
  const auto stride = static_cast<std::uint32_t>(config_.nodes) + 1;
  for (const auto& tree : trees_) {
    std::vector<const core::HlsNode*> nodes;
    nodes.reserve(tree->nodes.size() + 1);
    for (const auto& n : tree->nodes) nodes.push_back(n.get());
    if (tree->gw_node) nodes.push_back(tree->gw_node.get());
    const std::uint32_t base = tree->index * stride;
    add_wait_edges(graph, nodes,
                   [base](NodeId n) { return NodeId{base + n.value}; });
  }
  if (!coupling_) return graph;
  // Harness-level cross-tree edges: a requester with an outstanding leg
  // waits for the partner tree's gateway (whether the leg is queued or
  // mid-acquisition); a gateway holding a leg's locks releases them only
  // when its requester finishes, so it waits for the requester.
  for (const auto& tree : trees_) {
    const std::uint32_t base = tree->index * stride;
    for (std::size_t n = 0; n < config_.nodes; ++n) {
      const std::int64_t partner = tree->waiting_gateway[n];
      if (partner < 0) continue;
      graph.add_edge(
          NodeId{base + static_cast<std::uint32_t>(n)},
          NodeId{static_cast<std::uint32_t>(partner) * stride +
                 static_cast<std::uint32_t>(config_.nodes)});
    }
    const NodeId gw{base + static_cast<std::uint32_t>(config_.nodes)};
    for (const auto& [leg_id, leg] : tree->gw_held) {
      graph.add_edge(gw, NodeId{leg.req_tree * stride +
                                static_cast<std::uint32_t>(leg.req_node)});
    }
  }
  return graph;
}

ManyLocksResult ManyLocksCluster::result() const {
  ManyLocksResult r;
  r.locks_total =
      static_cast<std::uint64_t>(layout_.locks_per_tree()) * config_.trees;
  // Merge strictly in tree-index order: Summary sums are floating-point
  // and order-dependent, and the tree partition (unlike the shard
  // partition) is invariant to --shards, so this order makes the merged
  // result bitwise-identical at any shard or thread count.
  for (const auto& tree : trees_) {
    r.ops += tree->completed;
    r.lock_requests += tree->lock_requests;
    r.messages += tree->net->messages_sent();
    r.wire_bytes += tree->net->bytes_sent();
    r.messages_by_kind.merge(tree->net->message_counts());
    for (const double v : tree->latency.samples()) r.latency_factor.add(v);
    for (const auto& node : tree->nodes)
      r.engines_materialized += node->lock_count();
    if (tree->gw_node) r.engines_materialized += tree->gw_node->lock_count();
    r.cross_tree_ops += tree->cross_completed;
    if (tree->last_done > r.virtual_end) r.virtual_end = tree->last_done;
  }
  r.events = sharded_.events_processed();
  r.deadlock_cycles = deadlock_cycles_;
  r.latency_factor.seal();
  return r;
}

}  // namespace hlock::harness
