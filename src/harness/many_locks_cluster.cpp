#include "harness/many_locks_cluster.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "sim/latency.hpp"

namespace hlock::harness {

namespace {

/// SplitMix64-style stream derivation: deterministic, shard-invariant
/// per-(tree) and per-(tree, node) seeds. Rng::split() would serialize
/// the derivation order, which must not depend on construction order.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

workload::ForestLayout make_layout(const ManyLocksConfig& c) {
  if (c.trees == 0) throw std::invalid_argument("need >= 1 tree");
  if (c.spec.lock_count / c.trees < 8)
    throw std::invalid_argument("need >= 8 locks per tree (lock_count)");
  return workload::ForestLayout(c.spec.lock_count / c.trees, c.levels);
}

}  // namespace

struct ManyLocksCluster::TreeState {
  TreeState(sim::Simulator& simulator, std::uint32_t tree_index)
      : index(tree_index), sim(&simulator), exec(simulator) {}

  std::uint32_t index;
  sim::Simulator* sim;
  std::unique_ptr<sim::SimNetwork> net;
  SimExecutor exec;
  std::vector<std::unique_ptr<sim::SimTransport>> transports;
  std::vector<std::unique_ptr<core::HlsNode>> nodes;
  std::vector<std::unique_ptr<lockmgr::PlanSession>> sessions;
  std::vector<workload::ForestOpGen> gens;
  std::vector<std::uint32_t> remaining;

  // Per-tree metrics, merged in tree-index order by result().
  std::uint64_t completed{0};
  std::uint64_t lock_requests{0};
  Summary latency;
  TimePoint last_done{0};
};

ManyLocksCluster::ManyLocksCluster(const ManyLocksConfig& config)
    : config_(config),
      layout_(make_layout(config)),
      zipf_(layout_.pages(), config.spec.zipf_theta),
      sharded_(config.shards) {
  if (config.nodes == 0) throw std::invalid_argument("need >= 1 node");
  config.spec.validate();

  const std::uint64_t seed = config.spec.seed;
  const auto nodes = static_cast<std::uint32_t>(config.nodes);
  trees_.reserve(config.trees);
  for (std::uint32_t t = 0; t < config.trees; ++t) {
    const std::size_t shard =
        workload::ForestLayout::shard_of(t, config.shards);
    auto tree = std::make_unique<TreeState>(sharded_.shard(shard), t);
    tree->net = std::make_unique<sim::SimNetwork>(
        *tree->sim,
        std::make_unique<sim::UniformLatency>(config.spec.net_latency_mean),
        Rng(mix(seed ^ 0x6e65745f726e67ULL, t)));
    tree->transports.reserve(config.nodes);
    tree->nodes.reserve(config.nodes);
    tree->gens.reserve(config.nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const NodeId id{i};
      tree->transports.push_back(
          std::make_unique<sim::SimTransport>(*tree->net, id));
      auto node = std::make_unique<core::HlsNode>(
          id, *tree->transports.back(), config.engine_opts);
      // Engines materialize on first touch; an idle lock costs only its
      // dense dispatch slot. The holder mapping is pure id arithmetic,
      // identical on every node of the tree.
      node->set_lazy_holder(
          [nodes](LockId l) { return workload::ForestLayout::home_of(l, nodes); });
      node->reserve_dense(layout_.locks_per_tree());
      tree->net->register_node(
          id, [n = node.get()](const Message& m) { n->handle(m); });
      tree->nodes.push_back(std::move(node));
      tree->gens.emplace_back(config.spec, zipf_, Rng(mix(mix(seed, t), i)));
    }
    for (std::uint32_t i = 0; i < nodes; ++i) {
      tree->sessions.push_back(std::make_unique<lockmgr::PlanSession>(
          *tree->nodes[i], tree->exec));
    }
    tree->remaining.assign(config.nodes, config.spec.ops_per_node);
    trees_.push_back(std::move(tree));
  }
}

ManyLocksCluster::~ManyLocksCluster() = default;

void ManyLocksCluster::kick(TreeState& tree, std::size_t node) {
  if (tree.remaining[node] == 0) return;
  tree.sim->schedule_after(tree.gens[node].next_idle(),
                           [this, &tree, node] { run_one_op(tree, node); });
}

void ManyLocksCluster::run_one_op(TreeState& tree, std::size_t node) {
  const workload::ForestOp op = tree.gens[node].next();
  std::vector<lockmgr::PlanStep> plan;
  workload::ForestOpGen::plan_for(layout_, op, plan);
  tree.sessions[node]->run(
      std::move(plan), op.cs,
      [this, &tree, node](const lockmgr::PlanSession::Result& r) {
        ++tree.completed;
        --tree.remaining[node];
        tree.lock_requests += r.lock_requests;
        tree.latency.add(
            static_cast<double>(r.acquire_latency) /
            static_cast<double>(config_.spec.net_latency_mean));
        if (tree.sim->now() > tree.last_done) tree.last_done = tree.sim->now();
        kick(tree, node);
      });
}

void ManyLocksCluster::run() {
  for (auto& tree : trees_) {
    for (std::size_t i = 0; i < config_.nodes; ++i) kick(*tree, i);
  }
  // Conservative lookahead: the minimum point-to-point latency. Uniform
  // latency samples [mean/2, 3*mean/2], so mean/2 is a safe window.
  const Duration lookahead = config_.spec.net_latency_mean / 2;
  const std::size_t threads =
      config_.run_threads == 0 ? config_.shards : config_.run_threads;
  sharded_.run_all(lookahead, threads);

  std::uint64_t completed = 0;
  for (const auto& tree : trees_) completed += tree->completed;
  const std::uint64_t expected = static_cast<std::uint64_t>(config_.trees) *
                                 config_.nodes * config_.spec.ops_per_node;
  if (completed != expected) {
    throw std::runtime_error(
        "forest drained with incomplete ops (deadlock or lost request): " +
        std::to_string(completed) + "/" + std::to_string(expected));
  }
}

ManyLocksResult ManyLocksCluster::result() const {
  ManyLocksResult r;
  r.locks_total =
      static_cast<std::uint64_t>(layout_.locks_per_tree()) * config_.trees;
  // Merge strictly in tree-index order: Summary sums are floating-point
  // and order-dependent, and the tree partition (unlike the shard
  // partition) is invariant to --shards, so this order makes the merged
  // result bitwise-identical at any shard or thread count.
  for (const auto& tree : trees_) {
    r.ops += tree->completed;
    r.lock_requests += tree->lock_requests;
    r.messages += tree->net->messages_sent();
    r.wire_bytes += tree->net->bytes_sent();
    r.messages_by_kind.merge(tree->net->message_counts());
    for (const double v : tree->latency.samples()) r.latency_factor.add(v);
    for (const auto& node : tree->nodes)
      r.engines_materialized += node->lock_count();
    if (tree->last_done > r.virtual_end) r.virtual_end = tree->last_done;
  }
  r.events = sharded_.events_processed();
  r.latency_factor.seal();
  return r;
}

}  // namespace hlock::harness
