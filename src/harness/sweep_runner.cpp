#include "harness/sweep_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "harness/result_store.hpp"

namespace hlock::harness {

namespace {

void hash_mix(std::size_t& h, std::size_t v) {
  // boost::hash_combine's mixer — good enough for bucket spreading; the
  // map compares full SweepPoints, so collisions only cost a probe.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

}  // namespace

std::size_t SweepRunner::PointHash::operator()(const SweepPoint& p) const {
  const workload::WorkloadSpec& s = p.config.spec;
  const core::EngineOptions& e = p.config.engine_opts;
  std::size_t h = static_cast<std::size_t>(p.protocol);
  hash_mix(h, p.config.nodes);
  hash_mix(h, static_cast<std::size_t>(p.config.latency));
  hash_mix(h, std::hash<double>{}(p.config.loss_rate));
  hash_mix(h, static_cast<std::size_t>(s.cs_mean));
  hash_mix(h, static_cast<std::size_t>(s.idle_mean));
  hash_mix(h, static_cast<std::size_t>(s.net_latency_mean));
  hash_mix(h, std::hash<double>{}(s.p_entry_read));
  hash_mix(h, std::hash<double>{}(s.p_table_read));
  hash_mix(h, std::hash<double>{}(s.p_upgrade));
  hash_mix(h, std::hash<double>{}(s.p_entry_write));
  hash_mix(h, std::hash<double>{}(s.p_table_write));
  hash_mix(h, s.entries_per_node);
  hash_mix(h, std::hash<double>{}(s.home_bias));
  hash_mix(h, s.ops_per_node);
  hash_mix(h, static_cast<std::size_t>(s.seed));
  hash_mix(h, (static_cast<std::size_t>(e.allow_child_grants) << 0) |
                  (static_cast<std::size_t>(e.allow_local_queues) << 1) |
                  (static_cast<std::size_t>(e.enable_freezing) << 2) |
                  (static_cast<std::size_t>(e.lazy_release) << 3) |
                  (static_cast<std::size_t>(e.enable_priorities) << 4) |
                  (static_cast<std::size_t>(e.locality_bias) << 5) |
                  (static_cast<std::size_t>(e.locality_fairness_cap) << 6));
  hash_mix(h, p.config.clusters);
  hash_mix(h, static_cast<std::size_t>(p.config.placement));
  hash_mix(h, static_cast<std::size_t>(p.config.intra_latency_mean));
  hash_mix(h, static_cast<std::size_t>(p.config.inter_latency_mean));
  return h;
}

SweepPoint make_point(Protocol protocol, std::size_t nodes,
                      const workload::WorkloadSpec& spec,
                      const core::EngineOptions& opts) {
  SweepPoint p;
  p.protocol = protocol;
  p.config.nodes = nodes;
  p.config.spec = spec;
  p.config.engine_opts = opts;
  return p;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  threads_ = options.threads != 0 ? options.threads
                                  : std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
  if (options_.repeat < 1) options_.repeat = 1;
  // The disk cache rides the memoized() path, so it is only meaningful
  // when that path runs (memo on, no timing repeats).
  if (!options_.cache_dir.empty() && options_.memoize &&
      options_.repeat == 1) {
    store_ = options_.cache_build_hash.empty()
                 ? std::make_unique<ResultStore>(options_.cache_dir)
                 : std::make_unique<ResultStore>(options_.cache_dir,
                                                 options_.cache_build_hash);
  }
}

SweepRunner::~SweepRunner() = default;

std::size_t SweepRunner::disk_hits() const {
  return store_ ? store_->hits() : 0;
}
std::size_t SweepRunner::disk_misses() const {
  return store_ ? store_->misses() : 0;
}
std::size_t SweepRunner::disk_stored() const {
  return store_ ? store_->stored() : 0;
}

ExperimentResult SweepRunner::evaluate(const SweepPoint& point) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  ExperimentResult result;
  for (int i = 0; i < options_.repeat; ++i)
    result = run_experiment(point.protocol, point.config);
  return result;
}

ExperimentResult SweepRunner::memoized(const SweepPoint& point) {
  std::promise<ExperimentResult> promise;
  {
    std::unique_lock<std::mutex> lock(memo_mutex_);
    const auto it = memo_.find(point);
    if (it != memo_.end()) {
      ++memo_hits_;
      const std::shared_future<ExperimentResult> future = it->second;
      // Wait outside the lock: the producing task is already running on
      // some worker, never stuck behind us in the queue.
      lock.unlock();
      return future.get();
    }
    ++memo_misses_;
    memo_.emplace(point, promise.get_future().share());
  }
  try {
    // Consult the cross-invocation store before paying for a simulation;
    // write through after computing so the next invocation hits.
    if (store_) {
      if (std::optional<ExperimentResult> cached = store_->get(point)) {
        promise.set_value(*cached);
        return *std::move(cached);
      }
    }
    ExperimentResult result = evaluate(point);
    if (store_) store_->put(point, result);
    promise.set_value(result);
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

void SweepRunner::for_each_index(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    // Serial fast path: --threads 1 must cost exactly what a plain loop
    // costs (no thread spawn, no atomics on the critical path).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> guard(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<SweepPoint>& points) {
  // repeat > 1 exists to measure wall clock; serving a repeat from the
  // cache would report a no-op's timing.
  const bool use_memo = options_.memoize && options_.repeat == 1;
  std::vector<ExperimentResult> results(points.size());
  for_each_index(points.size(), [&](std::size_t i) {
    results[i] = use_memo ? memoized(points[i]) : evaluate(points[i]);
  });
  return results;
}

}  // namespace hlock::harness
