// Global safety invariants over an HlsCluster, checkable after every
// simulation event (DESIGN.md §7):
//
//   I1  at most one token node per lock (exactly one when quiescent)
//   I2  all concurrently *held* modes of a lock are pairwise compatible
//       (Rule 1 — the fundamental mutual-exclusion property)
//   I3  every non-token owner is recorded by its parent with a mode at
//       least as strong as the child's actual owned mode (Def. 3/4)
//   I4  quiescent state is clean: no holds, no pending requests, empty
//       queues, empty copysets, empty frozen sets
#pragma once

#include <string>

#include "harness/cluster.hpp"

namespace hlock::harness {

/// Checks I1-I3. Returns an empty string if all hold, else a description
/// of the first violation. Safe to call between arbitrary events.
std::string check_safety(HlsCluster& cluster);

/// Checks I4 in addition to I1-I3; call only after run() completed.
std::string check_quiescent(HlsCluster& cluster);

/// Installs check_safety as the simulator's post-event hook; any violation
/// throws std::logic_error with the description (fails the test at the
/// exact event that broke the invariant).
void install_safety_probe(HlsCluster& cluster);

}  // namespace hlock::harness
