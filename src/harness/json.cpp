#include "harness/json.hpp"

#include <ostream>
#include <sstream>
#include <vector>

namespace hlock::harness {

namespace {
void append_summary(std::ostringstream& os, const Summary& s) {
  os << "{\"count\":" << s.count() << ",\"mean\":" << s.mean()
     << ",\"min\":" << s.min() << ",\"max\":" << s.max()
     << ",\"p50\":" << s.percentile(0.5) << ",\"p95\":" << s.percentile(0.95)
     << ",\"stddev\":" << s.stddev() << "}";
}

void append_counters(std::ostringstream& os, const CounterMap& counters) {
  os << "{";
  bool first = true;
  for (const auto& [kind, count] : counters.all()) {
    if (!first) os << ",";
    os << "\"" << kind << "\":" << count;
    first = false;
  }
  os << "}";
}
}  // namespace

std::string to_json(const ExperimentResult& r) {
  std::ostringstream os;
  os << "{\"nodes\":" << r.nodes << ",\"app_ops\":" << r.app_ops
     << ",\"lock_requests\":" << r.lock_requests
     << ",\"messages\":" << r.messages
     << ",\"wire_bytes\":" << r.wire_bytes
     << ",\"messages_dropped\":" << r.messages_dropped
     << ",\"msgs_per_lock_request\":" << r.msgs_per_lock_request()
     << ",\"msgs_per_op\":" << r.msgs_per_op()
     << ",\"virtual_end_us\":" << r.virtual_end;
  os << ",\"messages_by_kind\":";
  append_counters(os, r.messages_by_kind);
  os << ",\"latency_factor\":";
  append_summary(os, r.latency_factor);
  os << ",\"latency_by_kind\":{";
  bool first = true;
  for (const auto& [kind, summary] : r.latency_by_kind) {
    if (!first) os << ",";
    os << "\"" << kind << "\":";
    append_summary(os, summary);
    first = false;
  }
  os << "}}";
  return os.str();
}

void write_json_array(std::ostream& os,
                      const std::vector<ExperimentResult>& results) {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "  " << to_json(results[i]);
    if (i + 1 < results.size()) os << ",";
    os << "\n";
  }
  os << "]\n";
}

std::string to_json(const TimingSample& s) {
  std::ostringstream os;
  os << "{\"protocol\":\"" << s.protocol << "\",\"nodes\":" << s.nodes
     << ",\"wall_ms\":" << s.wall_ms << ",\"events\":" << s.events
     << ",\"events_per_sec\":" << static_cast<std::uint64_t>(s.events_per_sec())
     << ",\"acquires_per_sec\":"
     << static_cast<std::uint64_t>(s.acquires_per_sec())
     << ",\"lock_requests\":" << s.result.lock_requests
     << ",\"messages\":" << s.result.messages
     << ",\"wire_bytes\":" << s.result.wire_bytes
     << ",\"virtual_end_us\":" << s.result.virtual_end
     << ",\"messages_by_kind\":";
  append_counters(os, s.result.messages_by_kind);
  os << "}";
  return os.str();
}

void write_json_array(std::ostream& os,
                      const std::vector<TimingSample>& samples) {
  os << "[\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << "  " << to_json(samples[i]);
    if (i + 1 < samples.size()) os << ",";
    os << "\n";
  }
  os << "]\n";
}

}  // namespace hlock::harness
