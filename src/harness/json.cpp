#include "harness/json.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

namespace hlock::harness {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest representation that parses back to the identical double —
  // "0.1" stays "0.1", but nothing is rounded away (the old default
  // 6-significant-digit stream output silently truncated every metric).
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 32 bytes always fit the shortest double form
  return std::string(buf, ptr);
}

namespace {
void append_summary(std::ostringstream& os, const Summary& s) {
  os << "{\"count\":" << s.count() << ",\"mean\":" << json_double(s.mean())
     << ",\"min\":" << json_double(s.min())
     << ",\"max\":" << json_double(s.max())
     << ",\"p50\":" << json_double(s.percentile(0.5))
     << ",\"p95\":" << json_double(s.percentile(0.95))
     << ",\"stddev\":" << json_double(s.stddev()) << "}";
}

void append_counters(std::ostringstream& os, const CounterMap& counters) {
  os << "{";
  bool first = true;
  for (const auto& [kind, count] : counters.all()) {
    if (!first) os << ",";
    os << "\"" << kind << "\":" << count;
    first = false;
  }
  os << "}";
}
}  // namespace

std::string to_json(const ExperimentResult& r) {
  std::ostringstream os;
  os << "{\"nodes\":" << r.nodes << ",\"app_ops\":" << r.app_ops
     << ",\"lock_requests\":" << r.lock_requests
     << ",\"messages\":" << r.messages
     << ",\"wire_bytes\":" << r.wire_bytes
     << ",\"messages_dropped\":" << r.messages_dropped;
  // Topology split: present only for clustered runs (flat runs never
  // accumulate these, and omitting them keeps flat output byte-identical
  // to the pre-topology emitter).
  if (r.intra_cluster_messages != 0 || r.cross_cluster_messages != 0) {
    os << ",\"intra_cluster_messages\":" << r.intra_cluster_messages
       << ",\"cross_cluster_messages\":" << r.cross_cluster_messages
       << ",\"intra_cluster_bytes\":" << r.intra_cluster_bytes
       << ",\"cross_cluster_bytes\":" << r.cross_cluster_bytes
       << ",\"cross_cluster_fraction\":"
       << json_double(r.cross_cluster_fraction());
  }
  os << ",\"msgs_per_lock_request\":" << json_double(r.msgs_per_lock_request())
     << ",\"msgs_per_op\":" << json_double(r.msgs_per_op())
     << ",\"virtual_end_us\":" << r.virtual_end;
  os << ",\"messages_by_kind\":";
  append_counters(os, r.messages_by_kind);
  os << ",\"latency_factor\":";
  append_summary(os, r.latency_factor);
  os << ",\"latency_by_kind\":{";
  bool first = true;
  for (const auto& [kind, summary] : r.latency_by_kind) {
    if (!first) os << ",";
    os << "\"" << kind << "\":";
    append_summary(os, summary);
    first = false;
  }
  os << "}}";
  return os.str();
}

void write_json_array(std::ostream& os,
                      const std::vector<ExperimentResult>& results) {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "  " << to_json(results[i]);
    if (i + 1 < results.size()) os << ",";
    os << "\n";
  }
  os << "]\n";
}

std::string to_json(const TimingSample& s) {
  std::ostringstream os;
  os << "{\"protocol\":\"" << s.protocol << "\",\"nodes\":" << s.nodes
     << ",\"wall_ms\":" << json_double(s.wall_ms) << ",\"events\":" << s.events
     << ",\"events_per_sec\":" << static_cast<std::uint64_t>(s.events_per_sec())
     << ",\"acquires_per_sec\":"
     << static_cast<std::uint64_t>(s.acquires_per_sec())
     << ",\"lock_requests\":" << s.result.lock_requests
     << ",\"messages\":" << s.result.messages
     << ",\"wire_bytes\":" << s.result.wire_bytes
     << ",\"virtual_end_us\":" << s.result.virtual_end
     << ",\"messages_by_kind\":";
  append_counters(os, s.result.messages_by_kind);
  os << "}";
  return os.str();
}

void write_json_array(std::ostream& os,
                      const std::vector<TimingSample>& samples) {
  os << "[\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << "  " << to_json(samples[i]);
    if (i + 1 < samples.size()) os << ",";
    os << "\n";
  }
  os << "]\n";
}

// --- parsing ---------------------------------------------------------------

namespace {

/// Cursor over the input; every parse_* advances it past what it
/// consumed or returns false leaving the document invalid.
struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p != end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  [[nodiscard]] bool eat(char c) {
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }

  bool parse_value(JsonValue& out, int depth);
  bool parse_string(std::string& out);
  bool parse_number(JsonValue& out);
  bool parse_literal(const char* lit, std::size_t n);
};

bool Parser::parse_literal(const char* lit, std::size_t n) {
  if (static_cast<std::size_t>(end - p) < n) return false;
  for (std::size_t i = 0; i < n; ++i)
    if (p[i] != lit[i]) return false;
  p += n;
  return true;
}

bool Parser::parse_string(std::string& out) {
  if (!eat('"')) return false;
  out.clear();
  while (p != end) {
    const char c = *p++;
    if (c == '"') return true;
    if (c == '\\') {
      if (p == end) return false;
      const char esc = *p++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Decode \uXXXX to UTF-8; surrogate pairs are not needed by
          // anything we write, so a lone escape is enough.
          if (end - p < 4) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated
}

bool Parser::parse_number(JsonValue& out) {
  const char* start = p;
  if (p != end && *p == '-') ++p;
  if (p == end || *p < '0' || *p > '9') return false;
  while (p != end && *p >= '0' && *p <= '9') ++p;
  if (p != end && *p == '.') {
    ++p;
    if (p == end || *p < '0' || *p > '9') return false;
    while (p != end && *p >= '0' && *p <= '9') ++p;
  }
  if (p != end && (*p == 'e' || *p == 'E')) {
    ++p;
    if (p != end && (*p == '+' || *p == '-')) ++p;
    if (p == end || *p < '0' || *p > '9') return false;
    while (p != end && *p >= '0' && *p <= '9') ++p;
  }
  out.kind = JsonValue::Kind::kNumber;
  out.text.assign(start, p);
  return true;
}

bool Parser::parse_value(JsonValue& out, int depth) {
  if (depth > 64) return false;  // hostile nesting
  skip_ws();
  if (p == end) return false;
  switch (*p) {
    case '{': {
      ++p;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue member;
        if (!parse_value(member, depth + 1)) return false;
        out.members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    case '[': {
      ++p;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        JsonValue element;
        if (!parse_value(element, depth + 1)) return false;
        out.elements.push_back(std::move(element));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    case '"':
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.text);
    case 't':
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return parse_literal("true", 4);
    case 'f':
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return parse_literal("false", 5);
    case 'n':
      out.kind = JsonValue::Kind::kNull;
      return parse_literal("null", 4);
    default:
      return parse_number(out);
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return std::nullopt;
  std::uint64_t v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<std::int64_t> JsonValue::as_i64() const {
  if (kind != Kind::kNumber) return std::nullopt;
  std::int64_t v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> JsonValue::as_double() const {
  if (kind != Kind::kNumber) return std::nullopt;
  double v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<bool> JsonValue::as_bool() const {
  if (kind != Kind::kBool) return std::nullopt;
  return boolean;
}

std::optional<JsonValue> parse_json(std::string_view json) {
  Parser parser{json.data(), json.data() + json.size()};
  JsonValue value;
  if (!parser.parse_value(value, 0)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace hlock::harness
