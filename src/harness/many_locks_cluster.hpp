// Many-lock forest harness: a forest of `trees` independent lock
// hierarchies (workload::ForestLayout), each with its own SimNetwork and
// HLS protocol nodes, distributed over a sim::ShardedSimulator.
//
// The tree is the unit of shard assignment (tree % shards). Trees never
// exchange events, so per-tree behavior — and therefore every metric this
// harness reports — is invariant to the shard count AND the thread count:
// result() merges per-tree metrics in tree-index order, never per-shard.
// CI runs the same workload at --shards 1/2/8 and byte-compares the
// output; that only works because nothing shard-dependent (round counts,
// per-shard clocks) leaks into ManyLocksResult.
//
// Memory: nodes install a lazy engine factory instead of add_lock()-ing
// the whole id space, so an idle lock costs one dense dispatch slot per
// node (8 bytes) until first touch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hls_node.hpp"
#include "harness/metrics.hpp"
#include "harness/sim_executor.hpp"
#include "lockmgr/plan_session.hpp"
#include "sim/sharded.hpp"
#include "sim/simnet.hpp"
#include "workload/forest.hpp"
#include "workload/spec.hpp"
#include "workload/zipf.hpp"

namespace hlock::harness {

struct ManyLocksConfig {
  std::size_t nodes{4};      ///< protocol participants per tree
  std::uint32_t trees{16};   ///< independent hierarchies in the forest
  std::uint32_t levels{4};   ///< 3 = top/collection/page, 4 adds a db level
  std::size_t shards{1};     ///< event slabs; trees assigned tree % shards
  /// Worker threads for the sharded run; 0 = one per shard. <= 1 runs the
  /// serial oracle path.
  std::size_t run_threads{0};
  /// spec.lock_count = total locks across the forest (split evenly per
  /// tree, remainder dropped); spec.zipf_theta = page-selection skew;
  /// spec.ops_per_node counts per (tree, node).
  workload::WorkloadSpec spec{};
  core::EngineOptions engine_opts{};
};

/// Shard-count- and thread-count-invariant run results (see file header).
struct ManyLocksResult {
  std::uint64_t ops{0};
  std::uint64_t lock_requests{0};
  std::uint64_t messages{0};
  std::uint64_t wire_bytes{0};
  std::uint64_t events{0};
  std::uint64_t locks_total{0};           ///< trees * locks_per_tree
  std::uint64_t engines_materialized{0};  ///< engines actually built
  CounterMap messages_by_kind;
  Summary latency_factor;  ///< acquire latency / mean net latency
  TimePoint virtual_end{0};  ///< max over trees of last op completion

  [[nodiscard]] double msgs_per_lock_request() const {
    return lock_requests == 0 ? 0.0
                              : static_cast<double>(messages) /
                                    static_cast<double>(lock_requests);
  }

  /// Exact equality down to Summary internals — the determinism tests
  /// compare whole results across shard/thread counts through this.
  bool operator==(const ManyLocksResult&) const = default;
};

class ManyLocksCluster {
 public:
  explicit ManyLocksCluster(const ManyLocksConfig& config);
  ~ManyLocksCluster();

  /// Drive every (tree, node) op stream to completion; throws if the
  /// forest drains with ops outstanding (deadlock or lost request).
  void run();

  [[nodiscard]] ManyLocksResult result() const;
  [[nodiscard]] const workload::ForestLayout& layout() const {
    return layout_;
  }
  [[nodiscard]] sim::ShardedSimulator& sharded() { return sharded_; }
  [[nodiscard]] std::uint64_t rounds() const { return sharded_.rounds(); }

 private:
  struct TreeState;

  void kick(TreeState& tree, std::size_t node);
  void run_one_op(TreeState& tree, std::size_t node);

  ManyLocksConfig config_;
  workload::ForestLayout layout_;
  workload::ZipfTable zipf_;
  sim::ShardedSimulator sharded_;
  std::vector<std::unique_ptr<TreeState>> trees_;
};

}  // namespace hlock::harness
