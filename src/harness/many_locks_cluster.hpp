// Many-lock forest harness: a forest of `trees` independent lock
// hierarchies (workload::ForestLayout), each with its own SimNetwork and
// HLS protocol nodes, distributed over a sim::ShardedSimulator.
//
// The tree is the unit of shard assignment (tree % shards). Per-tree
// behavior — and therefore every metric this harness reports — is
// invariant to the shard count AND the thread count: result() merges
// per-tree metrics in tree-index order, never per-shard. CI runs the same
// workload at --shards 1/2/8 and byte-compares the output; that only
// works because nothing shard-dependent (round counts, per-shard clocks)
// leaks into ManyLocksResult.
//
// Multi-tree transactions (cross_tree_pct > 0) couple the shards: an op
// acquires its plan in TWO hierarchies, the second through the partner
// tree's *gateway* node. Gateway legs and replies travel as keyed
// cross-shard events (ShardedSimulator::post), so the invariance above
// now rests on the simulator's deterministic (t, key) event order rather
// than on disjointness. Ordered mode acquires trees in tree-id order
// (a total order — deadlock-free by construction); the opt-in unordered
// mode always acquires the home tree first and can genuinely deadlock,
// which run() detects via the forest-wide wait-for graph instead of
// reporting a protocol failure.
//
// Memory: nodes install a lazy engine factory instead of add_lock()-ing
// the whole id space, so an idle lock costs one dense dispatch slot per
// node (8 bytes) until first touch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hls_node.hpp"
#include "harness/metrics.hpp"
#include "harness/sim_executor.hpp"
#include "lockmgr/plan_session.hpp"
#include "lockmgr/waitgraph.hpp"
#include "sim/sharded.hpp"
#include "sim/simnet.hpp"
#include "workload/forest.hpp"
#include "workload/spec.hpp"
#include "workload/zipf.hpp"

namespace hlock::harness {

struct ManyLocksConfig {
  std::size_t nodes{4};      ///< protocol participants per tree
  std::uint32_t trees{16};   ///< independent hierarchies in the forest
  std::uint32_t levels{4};   ///< 3 = top/collection/page, 4 adds a db level
  std::size_t shards{1};     ///< event slabs; trees assigned tree % shards
  /// Worker threads for the sharded run; 0 = one per shard. <= 1 runs the
  /// serial oracle path.
  std::size_t run_threads{0};
  /// Percent of ops (0..100) that span two trees. 0 keeps the forest
  /// fully decoupled and byte-identical to pre-coupling builds.
  double cross_tree_pct{0.0};
  /// Acquire the home tree first regardless of tree order — provably
  /// deadlock-prone; exists to exercise cross-tree deadlock *detection*.
  bool cross_tree_unordered{false};
  /// Clustered per-tree topology: > 1 with intra_latency_mean > 0 wraps
  /// each tree's network in ClusteredLatency (block placement, intra
  /// uniform around intra_latency_mean, inter around net_latency_mean).
  /// The derived lookahead then shrinks to the intra floor — the bug the
  /// old hard-coded `net_latency_mean / 2` window got wrong.
  std::size_t clusters{0};
  Duration intra_latency_mean{0};
  /// spec.lock_count = total locks across the forest (split evenly per
  /// tree, remainder dropped); spec.zipf_theta = page-selection skew;
  /// spec.ops_per_node counts per (tree, node).
  workload::WorkloadSpec spec{};
  core::EngineOptions engine_opts{};
};

/// Shard-count- and thread-count-invariant run results (see file header).
struct ManyLocksResult {
  std::uint64_t ops{0};
  std::uint64_t lock_requests{0};
  std::uint64_t messages{0};
  std::uint64_t wire_bytes{0};
  std::uint64_t events{0};
  std::uint64_t locks_total{0};           ///< trees * locks_per_tree
  std::uint64_t engines_materialized{0};  ///< engines actually built
  std::uint64_t cross_tree_ops{0};        ///< ops that spanned two trees
  std::uint64_t deadlock_cycles{0};       ///< detected wait-for cycles
  CounterMap messages_by_kind;
  Summary latency_factor;  ///< acquire latency / mean net latency
  TimePoint virtual_end{0};  ///< max over trees of last op completion

  [[nodiscard]] double msgs_per_lock_request() const {
    return lock_requests == 0 ? 0.0
                              : static_cast<double>(messages) /
                                    static_cast<double>(lock_requests);
  }

  /// Exact equality down to Summary internals — the determinism tests
  /// compare whole results across shard/thread counts through this.
  bool operator==(const ManyLocksResult&) const = default;
};

class ManyLocksCluster {
 public:
  explicit ManyLocksCluster(const ManyLocksConfig& config);
  ~ManyLocksCluster();

  /// Drive every (tree, node) op stream to completion. If the forest
  /// drains with ops outstanding, the wait-for graph decides the verdict:
  /// cycles found -> genuine application deadlock, recorded in
  /// deadlock_cycles() and result(), and run() returns normally; no
  /// cycle -> lost request, a harness/protocol bug, and run() throws.
  void run();

  /// Conservative window derived from the *models*: min over every tree's
  /// network of min_latency(), min'd with the cross-tree hop floor when
  /// coupling is on, minus one (run_until is inclusive of its horizon, so
  /// the safe lookahead sits strictly below the minimum latency).
  [[nodiscard]] Duration lookahead() const;

  /// Instantaneous forest-wide wait-for graph: per-tree engine scans
  /// renamed into the global id space (tree * (nodes + 1) + local; the
  /// gateway is local id `nodes`), plus the harness's cross-tree edges —
  /// requester -> partner gateway while a leg is outstanding, and
  /// gateway -> requester for every leg whose locks it still holds.
  [[nodiscard]] lockmgr::WaitForGraph wait_graph() const;

  [[nodiscard]] std::uint64_t deadlock_cycles() const {
    return deadlock_cycles_;
  }

  [[nodiscard]] ManyLocksResult result() const;
  [[nodiscard]] const workload::ForestLayout& layout() const {
    return layout_;
  }
  [[nodiscard]] sim::ShardedSimulator& sharded() { return sharded_; }
  [[nodiscard]] const sim::ShardedSimulator& sharded() const {
    return sharded_;
  }
  [[nodiscard]] std::uint64_t rounds() const { return sharded_.rounds(); }

 private:
  struct TreeState;
  struct CrossFlight;

  void kick(TreeState& tree, std::size_t node);
  void run_one_op(TreeState& tree, std::size_t node);

  // Multi-tree transaction machinery (see .cpp flow comments).
  void start_cross_op(TreeState& tree, std::size_t node,
                      const workload::ForestOp& op);
  void post_leg(const std::shared_ptr<CrossFlight>& fl,
                std::function<void()> on_reply);
  void gateway_pump(TreeState& tree);
  void gateway_release(TreeState& tree, std::uint64_t leg_id);
  void begin_dwell(const std::shared_ptr<CrossFlight>& fl);
  void finish_cross_op(const std::shared_ptr<CrossFlight>& fl);
  [[nodiscard]] Duration sample_hop(TreeState& src);
  [[nodiscard]] std::uint64_t make_key(TreeState& src);

  ManyLocksConfig config_;
  workload::ForestLayout layout_;
  workload::ZipfTable zipf_;
  sim::ShardedSimulator sharded_;
  bool coupling_{false};
  std::uint64_t deadlock_cycles_{0};
  std::vector<std::unique_ptr<TreeState>> trees_;
};

}  // namespace hlock::harness
