#include "harness/cluster.hpp"

#include <stdexcept>

namespace hlock::harness {
namespace detail {

namespace {
std::unique_ptr<sim::LatencyModel> make_latency(LatencyKind kind,
                                                Duration mean) {
  switch (kind) {
    case LatencyKind::kUniform:
      return std::make_unique<sim::UniformLatency>(mean);
    case LatencyKind::kConstant:
      return std::make_unique<sim::ConstantLatency>(mean);
    case LatencyKind::kExponential:
      return std::make_unique<sim::ExponentialLatency>(mean, mean / 10);
  }
  throw std::logic_error("bad latency kind");
}

std::unique_ptr<ClusterMap> make_cluster_map(const ClusterConfig& c) {
  if (c.clusters <= 1) return nullptr;  // flat topology
  return std::make_unique<ClusterMap>(
      ClusterMap::make(c.nodes, c.clusters, c.placement));
}

/// Flat configs keep the exact pre-topology model (identical RNG stream,
/// byte-identical outputs); clustered configs wrap two of them — same
/// distribution shape, intra vs inter mean — in a ClusteredLatency.
std::unique_ptr<sim::LatencyModel> make_net_latency(const ClusterConfig& c,
                                                    const ClusterMap* map) {
  if (map == nullptr)
    return make_latency(c.latency, c.spec.net_latency_mean);
  return std::make_unique<sim::ClusteredLatency>(
      map, make_latency(c.latency, c.intra_latency_mean),
      make_latency(c.latency, c.inter_latency_mean));
}
}  // namespace

ClusterBase::ClusterBase(const ClusterConfig& config)
    : config_(config),
      cluster_map_(make_cluster_map(config)),
      net_(std::make_unique<sim::SimNetwork>(
          sim_, make_net_latency(config, cluster_map_.get()),
          Rng(config.spec.seed ^ 0x6e65745f726e67ULL))),
      exec_(sim_),
      layout_(static_cast<std::uint32_t>(config.nodes) *
              config.spec.entries_per_node) {
  if (config.nodes == 0) throw std::invalid_argument("need >= 1 node");
  config.spec.validate();
  if (config.intra_latency_mean <= 0 || config.inter_latency_mean <= 0)
    throw std::invalid_argument("cluster latency means must be positive");

  net_->set_topology(cluster_map_.get());
  if (config.loss_rate > 0.0) net_->set_lossy(config.loss_rate);

  Rng master(config.spec.seed);
  generators_.reserve(config.nodes);
  transports_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    generators_.push_back(std::make_unique<workload::OpGenerator>(
        config.spec, static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(config.nodes), master.split()));
    transports_.push_back(std::make_unique<sim::SimTransport>(*net_, id));
    if (config.loss_rate > 0.0) {
      reliable_.push_back(std::make_unique<sim::ReliableTransport>(
          id, *transports_.back(), exec_));
    }
  }
  remaining_.assign(config.nodes, config.spec.ops_per_node);
}

Transport& ClusterBase::transport_for(std::size_t i) {
  if (!reliable_.empty()) return *reliable_[i];
  return *transports_[i];
}

void ClusterBase::register_inbound(
    std::size_t i, std::function<void(const Message&)> handler) {
  const NodeId id{static_cast<std::uint32_t>(i)};
  if (reliable_.empty()) {
    net_->register_node(id, std::move(handler));
    return;
  }
  reliable_[i]->set_deliver(std::move(handler));
  sim::ReliableTransport* layer = reliable_[i].get();
  net_->register_node(id,
                      [layer](const Message& m) { layer->on_receive(m); });
}

void ClusterBase::run() {
  if (sessions_.size() != config_.nodes)
    throw std::logic_error("sessions not initialized");
  for (std::size_t i = 0; i < config_.nodes; ++i) kick_node(i);
  sim_.run_all();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(config_.nodes) * config_.spec.ops_per_node;
  if (completed_ != expected) {
    throw std::runtime_error(
        "cluster drained with incomplete ops (deadlock or lost request): " +
        std::to_string(completed_) + "/" + std::to_string(expected));
  }
}

void ClusterBase::kick_node(std::size_t i) {
  if (remaining_[i] == 0) return;
  sim_.schedule_after(generators_[i]->next_idle(),
                      [this, i] { run_one_op(i); });
}

void ClusterBase::run_one_op(std::size_t i) {
  const lockmgr::Op op = generators_[i]->next();
  sessions_[i]->start(op, [this, i](const lockmgr::OpStats& stats) {
    ++completed_;
    --remaining_[i];
    lock_requests_ += stats.lock_requests;
    // Clustered runs normalize by the expensive boundary hop — the latency
    // factor then reads "how many inter-cluster round trips did this op
    // cost". Flat runs keep the historical normalizer (identical output).
    const Duration norm = config_.clusters > 1 ? config_.inter_latency_mean
                                               : config_.spec.net_latency_mean;
    const double factor = static_cast<double>(stats.acquire_latency) /
                          static_cast<double>(norm);
    latency_factor_.add(factor);
    latency_by_kind_[lockmgr::to_string(stats.op.kind)].add(factor);
    if (on_op_done) on_op_done(NodeId{static_cast<std::uint32_t>(i)}, stats);
    kick_node(i);
  });
}

ExperimentResult ClusterBase::result() const {
  ExperimentResult r;
  r.nodes = config_.nodes;
  r.app_ops = completed_;
  r.lock_requests = lock_requests_;
  r.messages = net_->messages_sent();
  r.wire_bytes = net_->bytes_sent();
  r.messages_dropped = net_->messages_dropped();
  r.intra_cluster_messages = net_->intra_cluster_messages();
  r.cross_cluster_messages = net_->cross_cluster_messages();
  r.intra_cluster_bytes = net_->intra_cluster_bytes();
  r.cross_cluster_bytes = net_->cross_cluster_bytes();
  r.messages_by_kind = net_->message_counts();
  r.latency_factor = latency_factor_;
  r.latency_by_kind = latency_by_kind_;
  // Seal at collection end: results may be shared read-only across sweep
  // workers (memo cache), so no accessor may sort lazily afterwards.
  r.latency_factor.seal();
  for (auto& [kind, summary] : r.latency_by_kind) summary.seal();
  r.virtual_end = sim_.now();
  return r;
}

}  // namespace detail

// ---------------------------------------------------------------------------

HlsCluster::HlsCluster(const ClusterConfig& config)
    : detail::ClusterBase(config) {
  nodes_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    auto node = std::make_unique<core::HlsNode>(id, transport_for(i),
                                                config.engine_opts);
    node->set_cluster_map(cluster_map_.get());
    // Table lock rooted at node 0; each entry lock at its home node, the
    // airline that owns the row.
    node->add_lock(layout_.table_lock(), NodeId{0});
    for (std::uint32_t e = 0; e < layout_.entry_count(); ++e) {
      node->add_lock(layout_.entry_lock(e),
                     NodeId{e / config.spec.entries_per_node});
    }
    register_inbound(i,
                     [n = node.get()](const Message& m) { n->handle(m); });
    nodes_.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < config.nodes; ++i) {
    sessions_.push_back(
        std::make_unique<lockmgr::HierSession>(*nodes_[i], layout_, exec_));
  }
}

NaimiCluster::NaimiCluster(const ClusterConfig& config, bool pure)
    : detail::ClusterBase(config) {
  nodes_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    auto node = std::make_unique<naimi::NaimiNode>(id, transport_for(i));
    if (pure) {
      node->add_lock(LockId{0}, NodeId{0});
    } else {
      for (std::uint32_t e = 0; e < layout_.entry_count(); ++e) {
        node->add_lock(layout_.entry_lock(e),
                       NodeId{e / config.spec.entries_per_node});
      }
    }
    register_inbound(i,
                     [n = node.get()](const Message& m) { n->handle(m); });
    nodes_.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < config.nodes; ++i) {
    if (pure) {
      sessions_.push_back(std::make_unique<lockmgr::NaimiPureSession>(
          *nodes_[i], LockId{0}, exec_));
    } else {
      sessions_.push_back(std::make_unique<lockmgr::NaimiOrderedSession>(
          *nodes_[i], layout_, exec_));
    }
  }
}

}  // namespace hlock::harness
