// DeadlockMonitor — global-state observer building the wait-for graph of
// an HlsCluster across ALL its locks (DESIGN.md: diagnostic substrate for
// application-level lock-ordering bugs the protocol itself cannot
// prevent).
//
// A node WAITS if it has a pending request on some lock, or a request of
// its sits queued anywhere; it waits FOR every node currently holding an
// incompatible mode on that lock. A cycle in this graph is a genuine
// application deadlock (the protocol serves each single lock FIFO, so
// only cross-lock hold-and-wait can close a cycle).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "lockmgr/waitgraph.hpp"

namespace hlock::harness {

/// Build the instantaneous wait-for graph of the cluster.
lockmgr::WaitForGraph build_wait_graph(HlsCluster& cluster);

/// Convenience: detect and pretty-print a deadlock cycle, empty if none.
std::string describe_deadlock(HlsCluster& cluster);

}  // namespace hlock::harness
