// DeadlockMonitor — global-state observer building the wait-for graph of
// a cluster across ALL its locks (DESIGN.md: diagnostic substrate for
// application-level lock-ordering bugs the protocol itself cannot
// prevent).
//
// A node WAITS if it has a pending request on some lock, or a request of
// its sits queued anywhere; it waits FOR every node currently holding an
// incompatible mode on that lock. A cycle in this graph is a genuine
// application deadlock (the protocol serves each single lock FIFO, so
// only cross-lock hold-and-wait can close a cycle).
//
// The forest harness spans MANY disjoint lock trees, each with its own
// 0-based node-id space: add_wait_edges() therefore takes a rename
// function mapping tree-local ids into one global namespace, and the
// harness layers its own cross-tree edges (a transaction waiting on a
// remote tree's gateway) on top — see ManyLocksCluster::wait_graph().
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/hls_node.hpp"
#include "harness/cluster.hpp"
#include "lockmgr/waitgraph.hpp"

namespace hlock::harness {

/// Scan the *materialized* engines of `nodes` (one lock service: every
/// node of one tree or one classic cluster) and add a waiter -> holder
/// edge for every incompatible (pending-or-queued, held) pair, with both
/// endpoints passed through `rename` (identity for a single cluster,
/// tree-global ids for a forest).
void add_wait_edges(lockmgr::WaitForGraph& graph,
                    const std::vector<const core::HlsNode*>& nodes,
                    const std::function<NodeId(NodeId)>& rename);

/// Build the instantaneous wait-for graph of the cluster.
lockmgr::WaitForGraph build_wait_graph(HlsCluster& cluster);

/// Convenience: detect and pretty-print a deadlock cycle, empty if none.
std::string describe_deadlock(HlsCluster& cluster);

}  // namespace hlock::harness
