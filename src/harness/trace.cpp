#include "harness/trace.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "lockmgr/op.hpp"

namespace hlock::harness {

const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDrop: return "DROP";
    case TraceEvent::Kind::kDeliver: return "recv";
    case TraceEvent::Kind::kOpStart: return "op-start";
    case TraceEvent::Kind::kOpDone: return "op-done";
  }
  return "?";
}

void TraceRecorder::attach(detail::ClusterBase& cluster) {
  cluster.network().on_send = [this, &cluster](NodeId from, NodeId to,
                                               const Message& m,
                                               bool dropped) {
    TraceEvent ev;
    ev.at = cluster.simulator().now();
    ev.kind = dropped ? TraceEvent::Kind::kDrop : TraceEvent::Kind::kSend;
    ev.from = from;
    ev.to = to;
    ev.lock = m.lock;
    ev.msg = m.kind;
    ev.mode = m.mode != Mode::kNone ? m.mode : m.req.mode;
    ev.requester = m.req.requester;
    record(ev);
  };
  cluster.network().on_deliver = [this, &cluster](NodeId from, NodeId to,
                                                  const Message& m) {
    TraceEvent ev;
    ev.at = cluster.simulator().now();
    ev.kind = TraceEvent::Kind::kDeliver;
    ev.from = from;
    ev.to = to;
    ev.lock = m.lock;
    ev.msg = m.kind;
    ev.mode = m.mode != Mode::kNone ? m.mode : m.req.mode;
    ev.requester = m.req.requester;
    record(ev);
  };
  cluster.on_op_done = [this, &cluster](NodeId node,
                                        const lockmgr::OpStats& stats) {
    TraceEvent ev;
    ev.at = cluster.simulator().now();
    ev.kind = TraceEvent::Kind::kOpDone;
    ev.from = node;
    ev.note = lockmgr::to_string(stats.op.kind);
    record(ev);
  };
}

void TraceRecorder::record(TraceEvent event) {
  ++total_;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

void TraceRecorder::clear() {
  events_.clear();
  total_ = 0;
}

std::vector<TraceEvent> TraceRecorder::for_lock(LockId lock) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.lock == lock && ev.kind != TraceEvent::Kind::kOpDone)
      out.push_back(ev);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::for_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.from == node || ev.to == node || ev.requester == node)
      out.push_back(ev);
  }
  return out;
}

void TraceRecorder::render(std::ostream& os, std::size_t max_lines) const {
  const std::size_t start =
      events_.size() > max_lines ? events_.size() - max_lines : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    os << std::setw(12) << ev.at << "  " << std::setw(8)
       << to_string(ev.kind) << "  ";
    if (ev.kind == TraceEvent::Kind::kOpDone) {
      os << "node " << ev.from << " finished " << ev.note << '\n';
      continue;
    }
    os << ev.from << " -> " << ev.to << "  lock " << ev.lock << "  "
       << hlock::to_string(ev.msg);
    if (ev.msg == MsgKind::kRequest) {
      os << " {" << ev.requester << "," << ev.mode << "}";
    } else if (ev.mode != Mode::kNone) {
      os << " " << ev.mode;
    }
    if (!ev.note.empty()) os << "  (" << ev.note << ")";
    os << '\n';
  }
}

}  // namespace hlock::harness
