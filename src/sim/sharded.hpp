// Shard-parallel discrete-event simulation.
//
// One Simulator per shard, each with its own event slab, heap and queue
// pool (the PR 3 cache-lean core, unchanged). The harness assigns every
// lock tree — a whole hierarchy plus its SimNetwork and nodes — to one
// shard, so shards never exchange events; they interact only through the
// shared virtual clock. Shards advance concurrently in conservative
// windows (classic synchronous PDES):
//
//   round: T    = min over shards of next_event_time()
//          H    = T + lookahead        (lookahead = min network latency)
//          each shard with work <= H runs run_until(H), in parallel
//          barrier; repeat until every shard drains
//
// Within a round each shard is claimed by exactly one worker, so every
// Simulator stays single-threaded; the round barrier (mutex + condvar)
// provides the cross-round happens-before edge when a shard migrates
// between workers. Because co-scheduled trees never exchange events, the
// window boundaries cannot change any shard's event order — a sharded run
// is bit-identical to running every shard serially to completion, which
// is exactly the oracle the determinism CI step compares against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace hlock::sim {

class ShardedSimulator {
 public:
  /// Create `shards` independent simulators (>= 1).
  explicit ShardedSimulator(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Simulator& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Simulator& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Events executed across all shards.
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Conservative-window rounds executed by the last run_all() call.
  /// Depends on the shard count and lookahead — diagnostic only, never
  /// part of deterministic output.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Advance every shard until all queues drain. `lookahead` is the
  /// conservative window beyond the global minimum next-event time (use
  /// the minimum network latency; must be >= 0). `threads` caps the
  /// worker pool; <= 1 or a single shard runs the serial path — each
  /// shard advanced in shard-index order on the calling thread, the
  /// bit-identical oracle for any parallel configuration. Throws if more
  /// than `max_events` run in total (livelock guard, as Simulator::
  /// run_all).
  void run_all(Duration lookahead, std::size_t threads,
               std::uint64_t max_events = 2'000'000'000);

 private:
  void run_parallel(Duration lookahead, std::size_t workers,
                    std::uint64_t max_events);

  /// unique_ptr for stable addresses: engines and networks capture
  /// Simulator& at construction.
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::uint64_t rounds_{0};
};

}  // namespace hlock::sim
