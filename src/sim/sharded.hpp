// Shard-parallel discrete-event simulation with cross-shard channels.
//
// One Simulator per shard, each with its own event slab, heap and queue
// pool (the PR 3 cache-lean core, unchanged). The harness assigns every
// lock tree — a whole hierarchy plus its SimNetwork and nodes — to one
// shard. Shards advance concurrently in conservative windows (classic
// synchronous PDES):
//
//   round: drain cross-shard mailboxes into destination shards
//          T    = min over shards of next_event_time()
//          H    = T + lookahead        (lookahead < min event latency)
//          each shard with work <= H runs run_until(H), in parallel
//          barrier; repeat until every queue AND every mailbox drains
//
// Cross-shard traffic (multi-tree transactions) goes through post(): the
// source shard appends to its private mailbox row during the round, and
// the coordinator drains every row at the next round barrier — batched
// null messages, amortized to one drain per round. Each cross event
// carries a deterministic order key (source tree, per-source counter);
// Simulator orders keyed events by (t, key) independent of insertion
// time, so a run where source and destination share a shard (direct
// insertion at send time) is bit-identical to one where the event rides
// a mailbox (insertion at the barrier). That, plus the strict lookahead
// bound (`lookahead < minimum cross-event latency`, so every arrival
// lands strictly beyond the window it was sent in), keeps sharded runs
// byte-identical to the serial oracle — which is exactly what the CI
// determinism step compares, now with coupled traffic.
//
// Window revalidation: the drain re-checks every arrival against the
// destination's clock. An arrival at t <= last_executed() contradicts
// history — the run aborts (throws); the lookahead was unsafe. An
// arrival inside (last_executed(), now()] only means the previous window
// overshot an idle stretch: the destination clock rolls back, the round's
// T/H derivation starts over from scratch including the new event, and a
// revalidation counter records that the window was re-derived.
//
// Within a round each shard is claimed by exactly one worker, so every
// Simulator stays single-threaded; the round barrier (mutex + condvar)
// provides the cross-round happens-before edge when a shard migrates
// between workers (mailbox rows are written only by their source shard's
// worker and read only by the coordinator after the barrier).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace hlock::sim {

class ShardedSimulator {
 public:
  /// Create `shards` independent simulators (>= 1).
  explicit ShardedSimulator(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Simulator& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Simulator& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Events executed across all shards.
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Conservative-window rounds executed by the last run_all() call.
  /// Depends on the shard count and lookahead — diagnostic only, never
  /// part of deterministic output.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Post a cross-shard event: run `fn` on shard `dst` at time `t` with
  /// deterministic order `key` (> 0, globally unique — see
  /// Simulator::schedule_cross_at). Must be called from the thread
  /// currently advancing shard `src` (or outside run_all): same-shard
  /// posts insert directly, cross-shard posts ride `src`'s private
  /// mailbox row until the next round barrier. `t` must be strictly
  /// beyond the current window's horizon, which the caller guarantees by
  /// sampling the event latency >= lookahead + 1.
  void post(std::size_t src, std::size_t dst, TimePoint t,
            std::uint64_t key, Simulator::EventFn fn);

  /// Cross-shard posts that went through a mailbox (src != dst). Depends
  /// on the shard count — diagnostic only, stderr reporting.
  [[nodiscard]] std::uint64_t mailbox_events() const {
    return mailbox_events_;
  }
  /// All post() calls, including same-shard direct insertions.
  [[nodiscard]] std::uint64_t cross_posts() const;
  /// Rounds whose T/H had to be re-derived because an arrival landed
  /// inside an already-run (but idle) window stretch.
  [[nodiscard]] std::uint64_t window_revalidations() const {
    return window_revalidations_;
  }

  /// Advance every shard until all queues and mailboxes drain.
  /// `lookahead` is the conservative window beyond the global minimum
  /// next-event time; it must be *strictly below* the minimum latency of
  /// every cross-shard event (use min_latency() - 1; must be >= 0).
  /// `threads` caps the worker pool; <= 1 or a single shard runs the
  /// serial path — identical window/drain arithmetic, each shard
  /// advanced in shard-index order on the calling thread, the
  /// bit-identical oracle for any parallel configuration. Throws if more
  /// than `max_events` run in total; the remaining budget is plumbed
  /// into every per-shard run_until, so even a zero-lookahead livelock
  /// inside one window stops promptly instead of running away.
  void run_all(Duration lookahead, std::size_t threads,
               std::uint64_t max_events = 2'000'000'000);

 private:
  struct CrossEvent {
    std::size_t dst;
    TimePoint t;
    std::uint64_t key;
    Simulator::EventFn fn;
  };

  void run_parallel(Duration lookahead, std::size_t workers,
                    std::uint64_t max_events);
  /// Move every mailbox row into its destination shards, revalidating
  /// each arrival's timestamp. Returns true if any event was delivered.
  bool drain_mailboxes();

  /// unique_ptr for stable addresses: engines and networks capture
  /// Simulator& at construction.
  std::vector<std::unique_ptr<Simulator>> shards_;
  /// mail_[src]: events posted by shard src this round, drained by the
  /// coordinator at the next barrier. Single-writer per row, like the
  /// post counters (summed on demand, so post() needs no atomics).
  std::vector<std::vector<CrossEvent>> mail_;
  std::vector<std::uint64_t> posts_per_src_;
  std::uint64_t rounds_{0};
  std::uint64_t mailbox_events_{0};
  std::uint64_t window_revalidations_{0};
};

}  // namespace hlock::sim
