// Deterministic discrete-event simulator core.
//
// Substitute for the paper's physical cluster (see DESIGN.md §3): both
// protocols are pure message-passing state machines, so running them over
// a virtual-time event queue reproduces the reported metrics (messages per
// request, latency as a factor of point-to-point latency) while letting a
// single machine model 120 nodes deterministically.
//
// Hot-path design: message deliveries dominate the event mix, and a
// std::function closure capturing a Message always heap-allocates. Events
// therefore come in two shapes — a generic closure (timers, workload
// drivers, whose small captures fit std::function's inline storage) and a
// dedicated deliver variant (function pointer + context + inline Message)
// that never allocates.
//
// The queue itself is an *index heap over a slab*: the binary heap orders
// 24-byte (t, seq, slot) keys while the fat Event payloads (~200 bytes —
// a std::function plus a Message carrying a QueuedRequest vector) sit
// still in a free-list-recycled slab. Every push_heap/pop_heap sift moves
// a key, not a payload, so heap maintenance costs O(log n) × 24 bytes
// instead of O(log n) × 200. Slab slots and heap storage are recycled, so
// steady-state scheduling performs zero heap allocations per event
// (tests/test_event_slab.cpp counts them). Drained Message::queue vectors
// are returned to a per-simulator pool and handed back out through
// Transport::acquire_queue_buffer(), so token transfers stop churning the
// allocator too.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace hlock::sim {

/// Virtual-time event loop. Events at equal timestamps run in insertion
/// order, which makes every run bit-reproducible from the workload seed.
class Simulator {
 public:
  using EventFn = std::function<void()>;
  /// Deliver-event callback: plain function pointer + untyped context, so
  /// the dominant event shape (message delivery) never heap-allocates.
  using DeliverFn = void (*)(void* ctx, NodeId from, NodeId to, Message& m);

  Simulator() {
    heap_.reserve(kInitialHeapCapacity);
    slab_.reserve(kInitialHeapCapacity);
    free_.reserve(kInitialHeapCapacity);
    queue_pool_.reserve(kQueuePoolCapacity);
  }

  /// Schedule `fn` at absolute virtual time `t` (>= now()).
  void schedule_at(TimePoint t, EventFn fn);
  /// Schedule `fn` `d` after the current virtual time.
  void schedule_after(Duration d, EventFn fn) { schedule_at(now_ + d, std::move(fn)); }
  /// Schedule a *cross-shard* event with a deterministic order key
  /// (`key` > 0, unique per event — the sharded runner derives it from
  /// the source tree id and a per-source counter). Ordering is
  /// insertion-time-independent: at equal timestamps every keyed event
  /// runs after all local (key == 0) events and keyed events order among
  /// themselves by key, so a run where the event is inserted directly at
  /// send time (source and destination share a simulator) executes
  /// identically to one where it arrives later through a round-barrier
  /// mailbox drain. `t` may lie at or before now() when the conservative
  /// window overshot an idle stretch — the idle clock rolls back, which
  /// is sound because nothing after last_executed() has run; t at or
  /// before last_executed() is a genuine causality violation and throws.
  void schedule_cross_at(TimePoint t, std::uint64_t key, EventFn fn);
  /// Schedule a message delivery at `t`: `fn(ctx, from, to, msg)` runs as
  /// the event, with `msg` stored inline in the event (moved, not copied).
  void schedule_deliver_at(TimePoint t, DeliverFn fn, void* ctx, NodeId from,
                           NodeId to, Message msg);

  /// Pre-size the event heap for the expected number of *concurrently*
  /// outstanding events (not total events).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    slab_.reserve(n);
    free_.reserve(n);
  }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Timestamp of the last event actually executed (kNever before any).
  /// run_until() advances now() to its deadline even past the last event,
  /// so this — not now() — is the boundary a late cross-shard arrival
  /// must stay strictly after to be causally safe.
  static constexpr TimePoint kNever = std::numeric_limits<TimePoint>::min();
  [[nodiscard]] TimePoint last_executed() const { return last_executed_; }

  /// Timestamp of the earliest scheduled event, or kNoEvent when the queue
  /// is empty. The sharded runner's conservative window computation peeks
  /// this across shards to pick each round's horizon.
  static constexpr TimePoint kNoEvent =
      std::numeric_limits<TimePoint>::max();
  [[nodiscard]] TimePoint next_event_time() const {
    return heap_.empty() ? kNoEvent : heap_.front().t;
  }

  /// Run the single earliest event. Returns false if none remain.
  bool step();
  /// Run until the queue drains or virtual time would pass `deadline`.
  void run_until(TimePoint deadline);
  /// Budgeted variant: additionally stop after `max_events` events, even
  /// with work still due at or before `deadline` (the sharded runner
  /// plumbs its remaining global event budget through here so a
  /// livelock inside one window cannot run away unboundedly). Returns
  /// the number of events executed; now() advances to `deadline` only
  /// when the window actually drained.
  std::uint64_t run_until(TimePoint deadline, std::uint64_t max_events);
  /// Run until the queue drains (or the event cap trips, which indicates a
  /// livelock bug and throws).
  void run_all(std::uint64_t max_events = 500'000'000);

  /// Borrow an empty QueuedRequest buffer, reusing the capacity of a
  /// previously delivered Message::queue when one is pooled. Senders that
  /// ship queues (token transfers, handoffs) fill these instead of
  /// growing a fresh vector from zero every time.
  [[nodiscard]] std::vector<QueuedRequest> acquire_queue_buffer();

  /// Recycle hook: drained Message::queue storage returns here (called
  /// internally after each deliver event; exposed for tests and for
  /// callers that drain a shipped queue themselves).
  void recycle_queue_buffer(std::vector<QueuedRequest>&& q);

  /// Pooled queue buffers currently idle (tests).
  [[nodiscard]] std::size_t pooled_queue_buffers() const {
    return queue_pool_.size();
  }
  /// Slab slots currently on the free list (tests).
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }
  /// Total slab slots ever materialized = high-water mark of concurrently
  /// scheduled events (tests).
  [[nodiscard]] std::size_t slab_size() const { return slab_.size(); }

  /// Invoked after every event; the invariant probes in tests hang here.
  std::function<void()> post_event_hook;

 private:
  static constexpr std::size_t kInitialHeapCapacity = 1024;
  static constexpr std::size_t kQueuePoolCapacity = 64;

  /// Fat payload, parked in the slab while its key sifts through the heap.
  struct Event {
    EventFn fn;  ///< generic closure; empty for deliver events
    // Deliver-event payload (used when `deliver` is non-null).
    DeliverFn deliver{nullptr};
    void* ctx{nullptr};
    NodeId from{};
    NodeId to{};
    Message msg{};
  };
  /// What the binary heap actually sifts: 32 bytes, trivially copyable.
  /// `key` is 0 for local events (ordered by insertion seq, as always)
  /// and the deterministic cross-shard order key otherwise; at equal
  /// timestamps locals run before crosses and crosses order by key, so
  /// cross-event execution order never depends on insertion time.
  struct HeapKey {
    TimePoint t;
    std::uint64_t key;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  void push_event(TimePoint t, std::uint64_t key, Event ev);

  /// Binary min-heap of keys by (t, seq) via std::push_heap/std::pop_heap
  /// on a reserved vector (std::priority_queue exposes neither reserve()
  /// nor a non-const top() to move events out of).
  std::vector<HeapKey> heap_;
  /// Payload slab indexed by HeapKey::slot; grows to the high-water mark
  /// of outstanding events and is then recycled through free_ forever.
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_;
  /// Idle Message::queue storage (capacity retained, size zero).
  std::vector<std::vector<QueuedRequest>> queue_pool_;
  TimePoint now_{0};
  TimePoint last_executed_{kNever};
  std::uint64_t next_seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace hlock::sim
