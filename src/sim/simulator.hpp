// Deterministic discrete-event simulator core.
//
// Substitute for the paper's physical cluster (see DESIGN.md §3): both
// protocols are pure message-passing state machines, so running them over
// a virtual-time event queue reproduces the reported metrics (messages per
// request, latency as a factor of point-to-point latency) while letting a
// single machine model 120 nodes deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace hlock::sim {

/// Virtual-time event loop. Events at equal timestamps run in insertion
/// order, which makes every run bit-reproducible from the workload seed.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  /// Schedule `fn` at absolute virtual time `t` (>= now()).
  void schedule_at(TimePoint t, EventFn fn);
  /// Schedule `fn` `d` after the current virtual time.
  void schedule_after(Duration d, EventFn fn) { schedule_at(now_ + d, std::move(fn)); }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Run the single earliest event. Returns false if none remain.
  bool step();
  /// Run until the queue drains or virtual time would pass `deadline`.
  void run_until(TimePoint deadline);
  /// Run until the queue drains (or the event cap trips, which indicates a
  /// livelock bug and throws).
  void run_all(std::uint64_t max_events = 500'000'000);

  /// Invoked after every event; the invariant probes in tests hang here.
  std::function<void()> post_event_hook;

 private:
  struct Event {
    TimePoint t;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  TimePoint now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace hlock::sim
