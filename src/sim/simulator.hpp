// Deterministic discrete-event simulator core.
//
// Substitute for the paper's physical cluster (see DESIGN.md §3): both
// protocols are pure message-passing state machines, so running them over
// a virtual-time event queue reproduces the reported metrics (messages per
// request, latency as a factor of point-to-point latency) while letting a
// single machine model 120 nodes deterministically.
//
// Hot-path design: message deliveries dominate the event mix, and a
// std::function closure capturing a Message always heap-allocates. Events
// therefore come in two shapes — a generic closure (timers, workload
// drivers, whose small captures fit std::function's inline storage) and a
// dedicated deliver variant (function pointer + context + inline Message)
// that never allocates. The heap is an explicit binary heap over a
// reserved std::vector, so steady-state scheduling does not allocate
// either.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace hlock::sim {

/// Virtual-time event loop. Events at equal timestamps run in insertion
/// order, which makes every run bit-reproducible from the workload seed.
class Simulator {
 public:
  using EventFn = std::function<void()>;
  /// Deliver-event callback: plain function pointer + untyped context, so
  /// the dominant event shape (message delivery) never heap-allocates.
  using DeliverFn = void (*)(void* ctx, NodeId from, NodeId to, Message& m);

  Simulator() { heap_.reserve(kInitialHeapCapacity); }

  /// Schedule `fn` at absolute virtual time `t` (>= now()).
  void schedule_at(TimePoint t, EventFn fn);
  /// Schedule `fn` `d` after the current virtual time.
  void schedule_after(Duration d, EventFn fn) { schedule_at(now_ + d, std::move(fn)); }
  /// Schedule a message delivery at `t`: `fn(ctx, from, to, msg)` runs as
  /// the event, with `msg` stored inline in the event (moved, not copied).
  void schedule_deliver_at(TimePoint t, DeliverFn fn, void* ctx, NodeId from,
                           NodeId to, Message msg);

  /// Pre-size the event heap for the expected number of *concurrently*
  /// outstanding events (not total events).
  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Run the single earliest event. Returns false if none remain.
  bool step();
  /// Run until the queue drains or virtual time would pass `deadline`.
  void run_until(TimePoint deadline);
  /// Run until the queue drains (or the event cap trips, which indicates a
  /// livelock bug and throws).
  void run_all(std::uint64_t max_events = 500'000'000);

  /// Invoked after every event; the invariant probes in tests hang here.
  std::function<void()> post_event_hook;

 private:
  static constexpr std::size_t kInitialHeapCapacity = 1024;

  struct Event {
    TimePoint t;
    std::uint64_t seq;
    EventFn fn;  ///< generic closure; empty for deliver events
    // Deliver-event payload (used when `deliver` is non-null).
    DeliverFn deliver{nullptr};
    void* ctx{nullptr};
    NodeId from{};
    NodeId to{};
    Message msg{};
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void push_event(Event ev);

  /// Binary min-heap by (t, seq) via std::push_heap/std::pop_heap on a
  /// reserved vector (std::priority_queue exposes neither reserve() nor a
  /// non-const top() to move events out of).
  std::vector<Event> heap_;
  TimePoint now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace hlock::sim
