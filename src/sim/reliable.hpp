// Reliability sublayer for lossy networks.
//
// The protocol engines assume reliable per-channel FIFO delivery (the
// paper's testbed ran over TCP). To study the protocol over a lossy
// datagram substrate, ReliableTransport decorates a Transport with:
//   * per-(peer) sequence numbers on every outgoing message,
//   * positive acks (MsgKind::kAck) and timer-driven retransmission,
//   * duplicate suppression and in-order delivery at the receiver
//     (out-of-order arrivals are buffered until the gap closes), which
//     restores exactly the FIFO-channel property the engines rely on.
//
// Under the real TCP transport (src/net) this layer is unnecessary — the
// kernel provides the same guarantees.
#pragma once

#include <cstdint>
#include <functional>

#include "common/executor.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"

namespace hlock::sim {

class ReliableTransport final : public Transport {
 public:
  /// `lower` is the raw (lossy) transport; `timers` drives retransmission.
  ReliableTransport(NodeId self, Transport& lower, Executor& timers,
                    Duration retransmit_timeout = msec(400));

  /// Upward delivery path (after dedup/reordering).
  void set_deliver(std::function<void(const Message&)> deliver);

  /// Outgoing path: stamps a fresh sequence number and records the message
  /// for retransmission until acked.
  void send(NodeId to, Message m) override;

  /// Feed every raw message received from `lower`'s network here.
  void on_receive(const Message& m);

  /// Queue-buffer recycling passes through to the raw transport.
  std::vector<QueuedRequest> acquire_queue_buffer() override {
    return lower_.acquire_queue_buffer();
  }

  // ---- stats ----
  [[nodiscard]] std::uint64_t retransmissions() const { return retx_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return dups_; }
  [[nodiscard]] std::uint64_t buffered_out_of_order() const { return ooo_; }
  /// Messages still awaiting an ack (0 at quiescence).
  [[nodiscard]] std::size_t unacked() const;

 private:
  /// Send/receive windows are flat sorted vectors: sequence numbers are
  /// assigned monotonically so inserts land at the back, and the windows
  /// stay small (unacked in-flight traffic, a short reorder gap).
  struct PeerState {
    std::uint64_t next_out{1};                ///< next seq to assign
    FlatMap<std::uint64_t, Message> unacked;  ///< sent, not yet acked
    std::uint64_t expected_in{1};             ///< next seq to deliver
    FlatMap<std::uint64_t, Message> reorder;  ///< future seqs buffered
  };

  void arm_retransmit(NodeId to, std::uint64_t seq);
  void send_ack(NodeId to, std::uint64_t seq);

  NodeId self_;
  Transport& lower_;
  Executor& timers_;
  Duration rto_;
  std::function<void(const Message&)> deliver_;
  FlatMap<NodeId, PeerState> peers_;
  std::uint64_t retx_{0};
  std::uint64_t dups_{0};
  std::uint64_t ooo_{0};
};

}  // namespace hlock::sim
