#include "sim/simnet.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hlock::sim {

SimNetwork::SimNetwork(Simulator& simulator,
                       std::unique_ptr<LatencyModel> latency, Rng rng)
    : sim_(simulator), latency_(std::move(latency)), rng_(rng) {
  if (!latency_) throw std::invalid_argument("latency model required");
}

void SimNetwork::register_node(NodeId node,
                               std::function<void(const Message&)> handler) {
  if (!node.valid()) throw std::invalid_argument("invalid node id");
  const std::size_t idx = node.value;
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  if (handlers_[idx]) throw std::logic_error("node registered twice");
  handlers_[idx] = std::move(handler);
  if (idx >= stride_) grow_stride(idx + 1);
}

void SimNetwork::grow_stride(std::size_t n) {
  std::vector<TimePoint> fresh(n * n, TimePoint{0});
  for (std::size_t f = 0; f < stride_; ++f) {
    for (std::size_t t = 0; t < stride_; ++t) {
      fresh[f * n + t] = channel_clear_[f * stride_ + t];
    }
  }
  channel_clear_ = std::move(fresh);
  stride_ = n;
}

void SimNetwork::set_lossy(double rate) {
  if (rate < 0.0 || rate >= 1.0)
    throw std::invalid_argument("loss rate must be in [0, 1)");
  loss_rate_ = rate;
  fifo_channels_ = rate == 0.0;
}

CounterMap SimNetwork::message_counts() const {
  CounterMap out;
  for (std::size_t k = 0; k < kMsgKindCount; ++k) {
    if (counts_[k] != 0)
      out.inc(to_string(static_cast<MsgKind>(k)), counts_[k]);
  }
  return out;
}

void SimNetwork::send(NodeId from, NodeId to, Message m) {
  if (to.value >= handlers_.size() || !handlers_[to.value])
    throw std::logic_error("send to unregistered node");
  if (!from.valid()) throw std::invalid_argument("invalid sender id");
  const auto kind_idx = static_cast<std::size_t>(m.kind);
  if (kind_idx < kMsgKindCount) ++counts_[kind_idx];
  ++sent_;
  const std::uint64_t wire = encoded_size(m) + 4;  // + TCP framing prefix
  bytes_ += wire;
  if (topology_ != nullptr) {
    const std::size_t crossing = topology_->same_cluster(from, to) ? 0 : 1;
    ++boundary_counts_[crossing];
    boundary_bytes_[crossing] += wire;
  }

  const bool dropped =
      loss_rate_ > 0.0 && rng_.next_double() < loss_rate_;
  if (on_send) on_send(from, to, m, dropped);
  if (dropped) {
    ++dropped_;
    return;
  }

  const Duration flight = latency_->sample_pair(from, to, rng_);
  // The sharded runner's conservative window is derived from this bound;
  // a sample below it would silently corrupt cross-shard causality.
  assert(flight >= latency_->min_latency() &&
         "latency sample below the model's declared min_latency()");
  TimePoint arrive = sim_.now() + flight;
  if (fifo_channels_) {
    // Per-channel FIFO: a message may not overtake an earlier one on the
    // same (from, to) pair. Senders need not be registered receivers
    // (tests inject from outside ids), so grow on demand.
    if (from.value >= stride_) grow_stride(from.value + 1);
    TimePoint& clear_at = channel_clear_[from.value * stride_ + to.value];
    if (arrive < clear_at) arrive = clear_at;
    clear_at = arrive;
  }

  m.from = from;
  sim_.schedule_deliver_at(arrive, &SimNetwork::deliver_event, this, from, to,
                           std::move(m));
}

void SimNetwork::deliver_event(void* ctx, NodeId from, NodeId to, Message& m) {
  auto* net = static_cast<SimNetwork*>(ctx);
  if (net->on_deliver) net->on_deliver(from, to, m);
  net->handlers_[to.value](m);
}

}  // namespace hlock::sim
