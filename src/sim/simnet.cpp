#include "sim/simnet.hpp"

#include <stdexcept>
#include <utility>

namespace hlock::sim {

SimNetwork::SimNetwork(Simulator& simulator,
                       std::unique_ptr<LatencyModel> latency, Rng rng)
    : sim_(simulator), latency_(std::move(latency)), rng_(rng) {
  if (!latency_) throw std::invalid_argument("latency model required");
}

void SimNetwork::register_node(NodeId node,
                               std::function<void(const Message&)> handler) {
  if (!handlers_.emplace(node, std::move(handler)).second)
    throw std::logic_error("node registered twice");
}

void SimNetwork::set_lossy(double rate) {
  if (rate < 0.0 || rate >= 1.0)
    throw std::invalid_argument("loss rate must be in [0, 1)");
  loss_rate_ = rate;
  fifo_channels_ = rate == 0.0;
}

void SimNetwork::send(NodeId from, NodeId to, const Message& m) {
  if (handlers_.find(to) == handlers_.end())
    throw std::logic_error("send to unregistered node");
  counts_.inc(to_string(m.kind));
  ++sent_;
  bytes_ += encode(m).size() + 4;  // payload + the TCP framing prefix

  const bool dropped =
      loss_rate_ > 0.0 && rng_.next_double() < loss_rate_;
  if (on_send) on_send(from, to, m, dropped);
  if (dropped) {
    ++dropped_;
    return;
  }

  TimePoint arrive = sim_.now() + latency_->sample(rng_);
  if (fifo_channels_) {
    // Per-channel FIFO: a message may not overtake an earlier one on the
    // same (from, to) pair.
    auto& clear_at = channel_clear_[{from, to}];
    if (arrive < clear_at) arrive = clear_at;
    clear_at = arrive;
  }

  Message copy = m;
  copy.from = from;
  sim_.schedule_at(arrive, [this, from, to, msg = std::move(copy)]() {
    if (on_deliver) on_deliver(from, to, msg);
    handlers_.at(to)(msg);
  });
}

}  // namespace hlock::sim
