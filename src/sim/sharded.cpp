#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace hlock::sim {

ShardedSimulator::ShardedSimulator(std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("need >= 1 shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Simulator>());
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_processed();
  return total;
}

void ShardedSimulator::run_all(Duration lookahead, std::size_t threads,
                               std::uint64_t max_events) {
  if (lookahead < 0) throw std::invalid_argument("lookahead must be >= 0");
  rounds_ = 0;
  if (threads > 1 && shards_.size() > 1) {
    run_parallel(lookahead, std::min(threads, shards_.size()), max_events);
    return;
  }
  // Serial oracle: identical window arithmetic, shards advanced in index
  // order on this thread. (The windows themselves cannot change behavior —
  // shards are event-disjoint — so this also equals plain run_all() per
  // shard; the CI oracle step relies on that.)
  const std::uint64_t start = events_processed();
  for (;;) {
    TimePoint t_min = Simulator::kNoEvent;
    for (const auto& s : shards_)
      t_min = std::min(t_min, s->next_event_time());
    if (t_min == Simulator::kNoEvent) return;
    const TimePoint horizon = t_min + lookahead;
    ++rounds_;
    for (const auto& s : shards_) {
      if (s->next_event_time() <= horizon) s->run_until(horizon);
    }
    if (events_processed() - start > max_events)
      throw std::runtime_error("sharded simulator event cap (livelock?)");
  }
}

void ShardedSimulator::run_parallel(Duration lookahead, std::size_t workers,
                                    std::uint64_t max_events) {
  // Persistent pool; one generation per round. Workers claim active
  // shards through an atomic cursor, so a shard runs on exactly one
  // thread per round.
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  bool stop = false;
  std::size_t idle = 0;
  std::vector<Simulator*> active;
  TimePoint horizon = 0;
  std::atomic<std::size_t> cursor{0};

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock lk(mutex);
          ++idle;
          done_cv.notify_one();
          work_cv.wait(lk, [&] { return stop || generation != seen; });
          if (stop) return;
          seen = generation;
          --idle;
        }
        for (std::size_t i; (i = cursor.fetch_add(1)) < active.size();)
          active[i]->run_until(horizon);
      }
    });
  }

  const std::uint64_t start = events_processed();
  {
    std::unique_lock lk(mutex);
    done_cv.wait(lk, [&] { return idle == workers; });
  }
  for (;;) {
    TimePoint t_min = Simulator::kNoEvent;
    for (const auto& s : shards_)
      t_min = std::min(t_min, s->next_event_time());
    if (t_min == Simulator::kNoEvent) break;
    const TimePoint h = t_min + lookahead;
    active.clear();
    for (const auto& s : shards_)
      if (s->next_event_time() <= h) active.push_back(s.get());
    cursor.store(0);
    horizon = h;
    ++rounds_;
    {
      std::unique_lock lk(mutex);
      ++generation;
      work_cv.notify_all();
      done_cv.wait(lk, [&] {
        return idle == workers && cursor.load() >= active.size();
      });
    }
    if (events_processed() - start > max_events) break;  // joined below
  }
  {
    std::unique_lock lk(mutex);
    stop = true;
    work_cv.notify_all();
  }
  for (std::thread& t : pool) t.join();
  if (events_processed() - start > max_events)
    throw std::runtime_error("sharded simulator event cap (livelock?)");
}

}  // namespace hlock::sim
