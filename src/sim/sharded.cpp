#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace hlock::sim {

ShardedSimulator::ShardedSimulator(std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("need >= 1 shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Simulator>());
  mail_.resize(shards);
  posts_per_src_.assign(shards, 0);
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_processed();
  return total;
}

std::uint64_t ShardedSimulator::cross_posts() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : posts_per_src_) total += n;
  return total;
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, TimePoint t,
                            std::uint64_t key, Simulator::EventFn fn) {
  if (src >= shards_.size() || dst >= shards_.size())
    throw std::invalid_argument("post: shard index out of range");
  ++posts_per_src_[src];
  if (src == dst) {
    // Same shard: insert directly. The (t, key) heap ordering makes this
    // execute identically to the mailbox path.
    shards_[dst]->schedule_cross_at(t, key, std::move(fn));
    return;
  }
  mail_[src].push_back(CrossEvent{dst, t, key, std::move(fn)});
}

bool ShardedSimulator::drain_mailboxes() {
  bool any = false;
  for (auto& row : mail_) {
    for (CrossEvent& ev : row) {
      Simulator& dst = *shards_[ev.dst];
      if (ev.t <= dst.last_executed())
        throw std::runtime_error(
            "cross-shard event inside the executed horizon — lookahead "
            "exceeds the minimum event latency");
      // Landing at or before the destination's (idle) clock means the
      // previous window overshot: accept the event, let the clock roll
      // back, and re-derive T/H this round with it in the queue.
      if (ev.t <= dst.now()) ++window_revalidations_;
      dst.schedule_cross_at(ev.t, ev.key, std::move(ev.fn));
      ++mailbox_events_;
      any = true;
    }
    row.clear();
  }
  return any;
}

void ShardedSimulator::run_all(Duration lookahead, std::size_t threads,
                               std::uint64_t max_events) {
  if (lookahead < 0) throw std::invalid_argument("lookahead must be >= 0");
  rounds_ = 0;
  if (threads > 1 && shards_.size() > 1) {
    run_parallel(lookahead, std::min(threads, shards_.size()), max_events);
    return;
  }
  // Serial oracle: identical drain/window arithmetic, shards advanced in
  // index order on this thread. The windows partition each shard's pop
  // sequence without reordering it, and cross events order by (t, key)
  // regardless of when they are inserted, so this is the byte-identical
  // oracle for every parallel configuration.
  const std::uint64_t start = events_processed();
  for (;;) {
    drain_mailboxes();
    TimePoint t_min = Simulator::kNoEvent;
    for (const auto& s : shards_)
      t_min = std::min(t_min, s->next_event_time());
    if (t_min == Simulator::kNoEvent) return;  // mailboxes drained above
    const TimePoint horizon = t_min + lookahead;
    ++rounds_;
    const std::uint64_t done = events_processed() - start;
    const std::uint64_t budget = done > max_events ? 1 : max_events - done + 1;
    for (const auto& s : shards_) {
      if (s->next_event_time() <= horizon) s->run_until(horizon, budget);
    }
    if (events_processed() - start > max_events)
      throw std::runtime_error("sharded simulator event cap (livelock?)");
  }
}

void ShardedSimulator::run_parallel(Duration lookahead, std::size_t workers,
                                    std::uint64_t max_events) {
  // Persistent pool; one generation per round. Workers claim active
  // shards through an atomic cursor, so a shard runs on exactly one
  // thread per round — which also makes each mailbox row single-writer
  // within the round, and the barrier orders the rows before the
  // coordinator's drain.
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  bool stop = false;
  std::size_t idle = 0;
  std::vector<Simulator*> active;
  TimePoint horizon = 0;
  std::uint64_t budget = 0;
  std::atomic<std::size_t> cursor{0};

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock lk(mutex);
          ++idle;
          done_cv.notify_one();
          work_cv.wait(lk, [&] { return stop || generation != seen; });
          if (stop) return;
          seen = generation;
          --idle;
        }
        for (std::size_t i; (i = cursor.fetch_add(1)) < active.size();)
          active[i]->run_until(horizon, budget);
      }
    });
  }

  const std::uint64_t start = events_processed();
  {
    std::unique_lock lk(mutex);
    done_cv.wait(lk, [&] { return idle == workers; });
  }
  for (;;) {
    drain_mailboxes();
    TimePoint t_min = Simulator::kNoEvent;
    for (const auto& s : shards_)
      t_min = std::min(t_min, s->next_event_time());
    if (t_min == Simulator::kNoEvent) break;
    const TimePoint h = t_min + lookahead;
    active.clear();
    for (const auto& s : shards_)
      if (s->next_event_time() <= h) active.push_back(s.get());
    cursor.store(0);
    horizon = h;
    {
      const std::uint64_t done = events_processed() - start;
      budget = done > max_events ? 1 : max_events - done + 1;
    }
    ++rounds_;
    {
      std::unique_lock lk(mutex);
      ++generation;
      work_cv.notify_all();
      done_cv.wait(lk, [&] {
        return idle == workers && cursor.load() >= active.size();
      });
    }
    if (events_processed() - start > max_events) break;  // joined below
  }
  {
    std::unique_lock lk(mutex);
    stop = true;
    work_cv.notify_all();
  }
  for (std::thread& t : pool) t.join();
  if (events_processed() - start > max_events)
    throw std::runtime_error("sharded simulator event cap (livelock?)");
}

}  // namespace hlock::sim
