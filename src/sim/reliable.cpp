#include "sim/reliable.hpp"

namespace hlock::sim {

ReliableTransport::ReliableTransport(NodeId self, Transport& lower,
                                     Executor& timers,
                                     Duration retransmit_timeout)
    : self_(self), lower_(lower), timers_(timers), rto_(retransmit_timeout) {}

void ReliableTransport::set_deliver(
    std::function<void(const Message&)> deliver) {
  deliver_ = std::move(deliver);
}

void ReliableTransport::send(NodeId to, Message m) {
  PeerState& peer = peers_[to];
  m.rel_seq = peer.next_out++;
  const auto it = peer.unacked.emplace(m.rel_seq, std::move(m)).first;
  lower_.send(to, it->second);
  arm_retransmit(to, it->first);
}

void ReliableTransport::arm_retransmit(NodeId to, std::uint64_t seq) {
  timers_.schedule(rto_, [this, to, seq] {
    const auto pit = peers_.find(to);
    if (pit == peers_.end()) return;
    const auto mit = pit->second.unacked.find(seq);
    if (mit == pit->second.unacked.end()) return;  // acked meanwhile
    ++retx_;
    lower_.send(to, mit->second);
    arm_retransmit(to, seq);
  });
}

void ReliableTransport::send_ack(NodeId to, std::uint64_t seq) {
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.from = self_;
  ack.rel_seq = seq;
  lower_.send(to, ack);
}

void ReliableTransport::on_receive(const Message& m) {
  const NodeId from = m.from;
  {
    PeerState& peer = peers_[from];

    if (m.kind == MsgKind::kAck) {
      peer.unacked.erase(m.rel_seq);
      return;
    }
    if (m.rel_seq == 0) {
      // Unsequenced traffic (peer not running the sublayer): pass through.
      if (deliver_) deliver_(m);
      return;
    }

    if (m.rel_seq < peer.expected_in) {
      // Duplicate of something already delivered — its ack was lost.
      ++dups_;
      send_ack(from, m.rel_seq);
      return;
    }
    if (m.rel_seq > peer.expected_in) {
      // Future message: buffer until the gap closes, ack immediately so
      // the sender stops retransmitting it.
      if (peer.reorder.emplace(m.rel_seq, m).second) {
        ++ooo_;
      } else {
        ++dups_;
      }
      send_ack(from, m.rel_seq);
      return;
    }

    // In-order: ack first, then leave the scope — deliver_ may re-enter
    // send() and grow peers_, which invalidates flat-map references.
    send_ack(from, m.rel_seq);
    ++peer.expected_in;
  }
  if (deliver_) deliver_(m);
  // Drain buffered successors, re-finding the peer each round for the
  // same re-entrancy reason.
  for (;;) {
    PeerState& peer = peers_[from];
    const auto it = peer.reorder.find(peer.expected_in);
    if (it == peer.reorder.end()) break;
    const Message next = std::move(it->second);
    peer.reorder.erase(it);
    ++peer.expected_in;
    if (deliver_) deliver_(next);
  }
}

std::size_t ReliableTransport::unacked() const {
  std::size_t n = 0;
  for (const auto& [peer, state] : peers_) n += state.unacked.size();
  return n;
}

}  // namespace hlock::sim
