// Point-to-point message latency models for the simulated network.
//
// The paper randomizes network latency around a 150 ms mean (FastEther LAN
// plus injected delay); the exact distribution is unspecified, so the model
// is pluggable. The default is uniform over [mean/2, 3*mean/2], which has
// the stated mean and keeps latencies strictly positive.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hlock::sim {

/// Samples one message's in-flight time.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration sample(Rng& rng) = 0;
  /// The distribution mean; the harness normalizes latencies by this to
  /// report the paper's "latency factor".
  [[nodiscard]] virtual Duration mean() const = 0;
};

/// Every message takes exactly `mean`.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration m) : mean_(m) {}
  Duration sample(Rng&) override { return mean_; }
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  Duration mean_;
};

/// Uniform over [mean/2, 3*mean/2].
class UniformLatency final : public LatencyModel {
 public:
  explicit UniformLatency(Duration m) : mean_(m) {}
  Duration sample(Rng& rng) override {
    return rng.uniform(mean_ / 2, mean_ + mean_ / 2);
  }
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  Duration mean_;
};

/// Shifted exponential: min + Exp(mean - min); heavier tail than uniform.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(Duration m, Duration min_latency)
      : mean_(m), min_(min_latency) {}
  Duration sample(Rng& rng) override {
    const double extra = rng.exponential(static_cast<double>(mean_ - min_));
    return min_ + static_cast<Duration>(extra);
  }
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  Duration mean_;
  Duration min_;
};

}  // namespace hlock::sim
