// Point-to-point message latency models for the simulated network.
//
// The paper randomizes network latency around a 150 ms mean (FastEther LAN
// plus injected delay); the exact distribution is unspecified, so the model
// is pluggable. The default is uniform over [mean/2, 3*mean/2], which has
// the stated mean and keeps latencies strictly positive.
#pragma once

#include <memory>
#include <stdexcept>

#include "common/cluster_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hlock::sim {

/// Samples one message's in-flight time.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration sample(Rng& rng) = 0;
  /// The distribution mean; the harness normalizes latencies by this to
  /// report the paper's "latency factor".
  [[nodiscard]] virtual Duration mean() const = 0;
  /// Hard lower bound of the distribution's support: no sample() or
  /// sample_pair() draw may ever come back below this. The sharded
  /// simulator derives its conservative lookahead window from the
  /// minimum over every model in the forest, so an optimistic bound here
  /// is a correctness bug, not a tuning knob (SimNetwork debug-asserts
  /// every sample against it). Pure virtual on purpose: a model that
  /// cannot state its floor cannot be scheduled conservatively.
  [[nodiscard]] virtual Duration min_latency() const = 0;
  /// Endpoint-aware sampling; flat models ignore the pair and MUST keep
  /// delegating to sample() so topology-free runs consume the identical
  /// RNG stream they always did (byte-identical oracle outputs).
  virtual Duration sample_pair(NodeId /*from*/, NodeId /*to*/, Rng& rng) {
    return sample(rng);
  }
};

/// Every message takes exactly `mean`.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration m) : mean_(m) {}
  Duration sample(Rng&) override { return mean_; }
  [[nodiscard]] Duration mean() const override { return mean_; }
  [[nodiscard]] Duration min_latency() const override { return mean_; }

 private:
  Duration mean_;
};

/// Uniform over [mean/2, 3*mean/2].
class UniformLatency final : public LatencyModel {
 public:
  explicit UniformLatency(Duration m) : mean_(m) {}
  Duration sample(Rng& rng) override {
    return rng.uniform(mean_ / 2, mean_ + mean_ / 2);
  }
  [[nodiscard]] Duration mean() const override { return mean_; }
  [[nodiscard]] Duration min_latency() const override { return mean_ / 2; }

 private:
  Duration mean_;
};

/// Shifted exponential: min + Exp(mean - min); heavier tail than uniform.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(Duration m, Duration min_latency)
      : mean_(m), min_(min_latency) {}
  Duration sample(Rng& rng) override {
    const double extra = rng.exponential(static_cast<double>(mean_ - min_));
    return min_ + static_cast<Duration>(extra);
  }
  [[nodiscard]] Duration mean() const override { return mean_; }
  [[nodiscard]] Duration min_latency() const override { return min_; }

 private:
  Duration mean_;
  Duration min_;
};

/// Asymmetric clustered topology: a pair inside one cluster samples the
/// (cheap) intra-cluster model, a pair crossing a cluster boundary the
/// (expensive) inter-cluster model — e.g. 0.05 ms intra vs 1-150 ms inter.
/// mean() reports the INTER mean: the latency factor measures how many
/// expensive boundary hops an acquisition effectively costs, which is the
/// figure the locality-biased protocol is trying to shrink.
class ClusteredLatency final : public LatencyModel {
 public:
  /// `map` is borrowed (the harness owns it) and must outlive the model.
  ClusteredLatency(const ClusterMap* map, std::unique_ptr<LatencyModel> intra,
                   std::unique_ptr<LatencyModel> inter)
      : map_(map), intra_(std::move(intra)), inter_(std::move(inter)) {
    if (!map_ || !intra_ || !inter_)
      throw std::invalid_argument("clustered latency needs map + models");
  }

  /// Pairless calls have no locality information: charge the conservative
  /// inter-cluster cost.
  Duration sample(Rng& rng) override { return inter_->sample(rng); }
  Duration sample_pair(NodeId from, NodeId to, Rng& rng) override {
    return map_->same_cluster(from, to) ? intra_->sample(rng)
                                        : inter_->sample(rng);
  }
  [[nodiscard]] Duration mean() const override { return inter_->mean(); }
  /// Any pair may route to either component, so the only safe floor is
  /// the minimum of the two supports — with a cheap intra-cluster model
  /// this dips far below inter/2, which is precisely why a lookahead
  /// hard-coded from the flat mean is an unsafe window here.
  [[nodiscard]] Duration min_latency() const override {
    return intra_->min_latency() < inter_->min_latency()
               ? intra_->min_latency()
               : inter_->min_latency();
  }
  [[nodiscard]] Duration intra_mean() const { return intra_->mean(); }
  [[nodiscard]] const ClusterMap& map() const { return *map_; }

 private:
  const ClusterMap* map_;
  std::unique_ptr<LatencyModel> intra_;
  std::unique_ptr<LatencyModel> inter_;
};

}  // namespace hlock::sim
