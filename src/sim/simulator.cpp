#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hlock::sim {

void Simulator::push_event(Event ev) {
  if (ev.t < now_) throw std::logic_error("scheduling into the past");
  ev.seq = next_seq_++;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::schedule_at(TimePoint t, EventFn fn) {
  Event ev;
  ev.t = t;
  ev.fn = std::move(fn);
  push_event(std::move(ev));
}

void Simulator::schedule_deliver_at(TimePoint t, DeliverFn fn, void* ctx,
                                    NodeId from, NodeId to, Message msg) {
  Event ev;
  ev.t = t;
  ev.deliver = fn;
  ev.ctx = ctx;
  ev.from = from;
  ev.to = to;
  ev.msg = std::move(msg);
  push_event(std::move(ev));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.t;
  ++processed_;
  if (ev.deliver != nullptr) {
    ev.deliver(ev.ctx, ev.from, ev.to, ev.msg);
  } else {
    ev.fn();
  }
  if (post_event_hook) post_event_hook();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty() && heap_.front().t <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events)
      throw std::runtime_error("simulator event cap exceeded (livelock?)");
  }
}

}  // namespace hlock::sim
