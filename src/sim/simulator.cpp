#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace hlock::sim {

void Simulator::schedule_at(TimePoint t, EventFn fn) {
  if (t < now_) throw std::logic_error("scheduling into the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small struct members and pop before running.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ++processed_;
  ev.fn();
  if (post_event_hook) post_event_hook();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty() && heap_.top().t <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events)
      throw std::runtime_error("simulator event cap exceeded (livelock?)");
  }
}

}  // namespace hlock::sim
