#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hlock::sim {

void Simulator::push_event(TimePoint t, std::uint64_t key, Event ev) {
  if (t < now_) throw std::logic_error("scheduling into the past");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(ev);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(ev));
  }
  heap_.push_back(HeapKey{t, key, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::schedule_at(TimePoint t, EventFn fn) {
  Event ev;
  ev.fn = std::move(fn);
  push_event(t, /*key=*/0, std::move(ev));
}

void Simulator::schedule_cross_at(TimePoint t, std::uint64_t key,
                                  EventFn fn) {
  if (key == 0) throw std::logic_error("cross events need a nonzero key");
  if (t < now_) {
    // The conservative window ran this shard's clock past `t` while it
    // was idle. Nothing after last_executed_ has run, so accepting the
    // event and rolling the idle clock back is exact; at or before
    // last_executed_ the history already contradicts it.
    if (t <= last_executed_)
      throw std::logic_error(
          "cross event inside the executed horizon (lookahead unsafe)");
    now_ = t;
  }
  Event ev;
  ev.fn = std::move(fn);
  push_event(t, key, std::move(ev));
}

void Simulator::schedule_deliver_at(TimePoint t, DeliverFn fn, void* ctx,
                                    NodeId from, NodeId to, Message msg) {
  Event ev;
  ev.deliver = fn;
  ev.ctx = ctx;
  ev.from = from;
  ev.to = to;
  ev.msg = std::move(msg);
  push_event(t, /*key=*/0, std::move(ev));
}

std::vector<QueuedRequest> Simulator::acquire_queue_buffer() {
  if (queue_pool_.empty()) return {};
  std::vector<QueuedRequest> q = std::move(queue_pool_.back());
  queue_pool_.pop_back();
  return q;
}

void Simulator::recycle_queue_buffer(std::vector<QueuedRequest>&& q) {
  if (q.capacity() == 0 || queue_pool_.size() >= kQueuePoolCapacity) return;
  q.clear();
  queue_pool_.push_back(std::move(q));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapKey key = heap_.back();
  heap_.pop_back();
  // Move the payload out before running it: the handler may schedule new
  // events, and a slab reallocation must not invalidate what we are
  // executing (deliver handlers hold a reference to `ev.msg`). The slot is
  // freed immediately so a chain of schedule-one-run-one events reuses a
  // single slot forever.
  Event ev = std::move(slab_[key.slot]);
  free_.push_back(key.slot);
  now_ = key.t;
  last_executed_ = key.t;
  ++processed_;
  if (ev.deliver != nullptr) {
    ev.deliver(ev.ctx, ev.from, ev.to, ev.msg);
  } else {
    ev.fn();
  }
  // Recycle the drained queue storage; the rest of `ev` dies here, which
  // also releases any closure captures promptly.
  recycle_queue_buffer(std::move(ev.msg.queue));
  if (post_event_hook) post_event_hook();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty() && heap_.front().t <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

std::uint64_t Simulator::run_until(TimePoint deadline,
                                   std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().t <= deadline) {
    if (n >= max_events) return n;  // budget exhausted mid-window
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events)
      throw std::runtime_error("simulator event cap exceeded (livelock?)");
  }
}

}  // namespace hlock::sim
