// Simulated point-to-point network: full-duplex, switch with disjoint
// parallel paths (as in the paper's testbed), per-message random latency,
// per-(from,to) FIFO channel ordering.
//
// Hot-path design: node ids in a cluster are dense (0..n-1), so handler
// dispatch and the per-channel FIFO clock are flat vectors indexed by id
// instead of std::map lookups; per-kind message counts are a fixed array
// indexed by MsgKind; and wire bytes are accounted arithmetically via
// encoded_size() instead of serializing every message.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"

namespace hlock::sim {

/// Delivers Messages between registered node handlers through the event
/// queue, counting every send by message kind (the Figure 7 breakdown).
class SimNetwork {
 public:
  SimNetwork(Simulator& simulator, std::unique_ptr<LatencyModel> latency,
             Rng rng);

  /// Register the receive handler for `node`. Must be called once per node
  /// before any message is sent to it.
  void register_node(NodeId node,
                     std::function<void(const Message&)> handler);

  /// Send `m` from `from` to `to`; delivered after a sampled latency.
  /// Messages on the same (from, to) channel are never reordered, matching
  /// TCP semantics on the paper's testbed.
  void send(NodeId from, NodeId to, Message m);

  /// Switch to lossy-datagram mode: each message is dropped independently
  /// with probability `rate`, and per-channel FIFO ordering is no longer
  /// enforced (deliveries reorder freely under the latency jitter). Pair
  /// with sim::ReliableTransport on every node.
  void set_lossy(double rate);

  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

  /// Per-kind counts as a named CounterMap (built on demand from the
  /// internal array; kinds never sent are omitted, and get() on a missing
  /// key returns 0 as before).
  [[nodiscard]] CounterMap message_counts() const;
  /// O(1) per-kind count.
  [[nodiscard]] std::uint64_t message_count(MsgKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  /// Pass-through to the simulator's Message::queue buffer pool (see
  /// Simulator::acquire_queue_buffer).
  [[nodiscard]] std::vector<QueuedRequest> acquire_queue_buffer() {
    return sim_.acquire_queue_buffer();
  }
  /// Serialized size of everything sent (wire bytes, as the real codec
  /// would frame it), including dropped messages.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] Duration latency_mean() const { return latency_->mean(); }
  /// Support floor of the installed model — the input to the sharded
  /// runner's lookahead derivation (see LatencyModel::min_latency).
  [[nodiscard]] Duration latency_min() const {
    return latency_->min_latency();
  }

  /// Clustered-topology accounting: every send is classified as intra- or
  /// cross-cluster by `map` (borrowed; must outlive the network) and
  /// counted into the O(1) boundary counters below — the same fixed-array
  /// style as the per-kind counters. Without a map the counters stay zero
  /// (flat runs carry no topology split, keeping their output unchanged).
  void set_topology(const ClusterMap* map) { topology_ = map; }
  [[nodiscard]] const ClusterMap* topology() const { return topology_; }
  [[nodiscard]] std::uint64_t intra_cluster_messages() const {
    return boundary_counts_[0];
  }
  [[nodiscard]] std::uint64_t cross_cluster_messages() const {
    return boundary_counts_[1];
  }
  [[nodiscard]] std::uint64_t intra_cluster_bytes() const {
    return boundary_bytes_[0];
  }
  [[nodiscard]] std::uint64_t cross_cluster_bytes() const {
    return boundary_bytes_[1];
  }

  /// Observation hook invoked on every delivery (before the handler).
  std::function<void(NodeId from, NodeId to, const Message&)> on_deliver;
  /// Observation hook invoked on every send (after loss filtering the
  /// message may still be dropped; `dropped` says so).
  std::function<void(NodeId from, NodeId to, const Message&, bool dropped)>
      on_send;

 private:
  /// Simulator deliver-event trampoline (ctx is the SimNetwork).
  static void deliver_event(void* ctx, NodeId from, NodeId to, Message& m);
  /// Grow the channel-clock matrix to cover ids < n.
  void grow_stride(std::size_t n);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  /// Receive handlers, indexed by NodeId value (empty = unregistered).
  std::vector<std::function<void(const Message&)>> handlers_;
  /// Earliest time the next message on channel (from, to) may arrive
  /// (FIFO): a stride_ x stride_ row-major matrix indexed by id.
  std::vector<TimePoint> channel_clear_;
  std::size_t stride_{0};
  /// Per-kind send counts, indexed by MsgKind.
  std::array<std::uint64_t, kMsgKindCount> counts_{};
  std::uint64_t sent_{0};
  double loss_rate_{0.0};
  bool fifo_channels_{true};
  std::uint64_t dropped_{0};
  std::uint64_t bytes_{0};
  /// Boundary accounting, indexed [0]=intra-cluster, [1]=cross-cluster,
  /// live only when topology_ is set (like bytes_, dropped messages are
  /// included — they were sent).
  const ClusterMap* topology_{nullptr};
  std::array<std::uint64_t, 2> boundary_counts_{};
  std::array<std::uint64_t, 2> boundary_bytes_{};
};

/// Per-node Transport facade over SimNetwork.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, NodeId self) : net_(net), self_(self) {}
  void send(NodeId to, Message m) override {
    net_.send(self_, to, std::move(m));
  }
  std::vector<QueuedRequest> acquire_queue_buffer() override {
    return net_.acquire_queue_buffer();
  }

 private:
  SimNetwork& net_;
  NodeId self_;
};

}  // namespace hlock::sim
