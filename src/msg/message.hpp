// Wire messages for both protocols.
//
// The paper's protocol (src/core) uses five message types — REQUEST, GRANT
// (copy grant), TOKEN (token transfer), RELEASE and FREEZE — exactly the
// categories broken out in Figure 7. The Naimi/Trehel baseline (src/naimi)
// uses its own REQUEST/TOKEN pair. One flat struct carries every kind so
// the simulated and TCP transports can stay protocol-agnostic; the codec
// (encode/decode) only serializes the fields meaningful for each kind.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/lamport.hpp"
#include "common/types.hpp"
#include "core/mode.hpp"

namespace hlock {

enum class MsgKind : std::uint8_t {
  // --- hierarchical locking service (the paper's protocol) ---
  kRequest = 0,  ///< lock request, forwarded along parent chain
  kGrant = 1,    ///< copy grant: requester becomes child of granter
  kToken = 2,    ///< token transfer: requester becomes the new root
  kRelease = 3,  ///< child -> parent: owned mode weakened (Rule 5.2)
  kFreeze = 4,   ///< root/parent -> child: replacement frozen-mode set
  // --- Naimi/Trehel/Arnold baseline ---
  kNaimiRequest = 5,
  kNaimiToken = 6,
  // --- reliability sublayer (sim::ReliableTransport); never reaches the
  // protocol engines ---
  kAck = 7,
  // --- dynamic membership (HlsEngine::leave) ---
  kReparent = 8,  ///< leaver -> child: re-attach to req.requester
  kAttach = 9,    ///< child -> new parent: adopt me, I own `mode`
  kHandoff = 10,  ///< leaver -> successor: unsolicited token + queue
};

/// Number of distinct MsgKind values (array-counter dimension).
inline constexpr std::size_t kMsgKindCount = 11;

const char* to_string(MsgKind k);

/// A lock request waiting in some node's local queue. Requests carry
/// Lamport stamps so queues merged on token transfer preserve global FIFO.
struct QueuedRequest {
  NodeId requester{};
  Mode mode{Mode::kNone};
  LamportStamp stamp{};
  /// Rule 7: the requester already holds U and is upgrading to W; its own
  /// subtree's contribution to the owned mode must be discounted.
  bool upgrade{false};
  /// Priority arbitration (extension following Mueller [11,12], enabled by
  /// EngineOptions::enable_priorities): higher values are served first,
  /// FIFO by Lamport stamp within a priority level.
  std::uint8_t priority{0};

  friend bool operator==(const QueuedRequest&, const QueuedRequest&) = default;
};

/// Queue order under priority arbitration: priority desc, then stamp.
inline bool priority_before(const QueuedRequest& a, const QueuedRequest& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.stamp < b.stamp;
}

/// One protocol message. `lock` scopes the message to a single token tree;
/// a multi-lock node demultiplexes on it.
struct Message {
  MsgKind kind{MsgKind::kRequest};
  LockId lock{};
  NodeId from{};  ///< immediate sender (not the originator)

  // kRequest / queue entries
  QueuedRequest req{};

  /// kGrant: granted mode. kToken: mode granted to the new root.
  /// kRelease: the child's NEW owned mode (may be kNone).
  Mode mode{Mode::kNone};

  /// kFreeze and kGrant: the sender's current frozen set (full replacement).
  ModeSet frozen{};

  /// kToken: mode the old token node still owns after the transfer; if not
  /// kNone the old root becomes a child of the new root with this mode.
  Mode sender_owned{Mode::kNone};

  /// kToken: the old root's local queue, shipped with the token.
  std::vector<QueuedRequest> queue{};

  /// Reliability-sublayer sequence number (sim::ReliableTransport):
  /// 0 = unsequenced; kAck messages acknowledge this sequence number.
  std::uint64_t rel_seq{0};

  /// Recovery view (epoch): bumped by HlsEngine::begin_recovery after a
  /// crash; engines drop messages from other views (fencing — a stale
  /// pre-crash token must never resurface in the rebuilt tree).
  std::uint32_t view{0};

  /// Grant-sequence number for the (parent, child) relationship.
  /// kGrant: the parent's count of grants sent to this child (the child
  /// adopts it). kRelease: the child's count of grants received from this
  /// parent — the parent drops the release as stale if it has sent more
  /// grants than the child had seen, which is exactly the
  /// release-crosses-grant race. kToken/kHandoff (which never used this
  /// field) reuse it to carry the locality-bias bypass streak so the
  /// fairness cap (EngineOptions::locality_fairness_cap) bounds out-of-
  /// order services globally, across token transfers, with no wire-format
  /// change; it stays 0 when the bias is off.
  std::uint64_t grant_seq{0};

  friend bool operator==(const Message&, const Message&) = default;
};

/// Wire size of the fixed (non-queue) part of every encoded Message.
inline constexpr std::size_t kMessageFixedBytes = 55;
/// Wire size of one QueuedRequest entry.
inline constexpr std::size_t kQueuedRequestBytes = 19;

/// Exact value of encode(m).size(), computed arithmetically — the codec
/// is fixed-width except for the queue, so no serialization is needed to
/// account wire bytes. A fuzz test cross-checks this against encode().
inline std::size_t encoded_size(const Message& m) {
  return kMessageFixedBytes + kQueuedRequestBytes * m.queue.size();
}

/// Serialize to a self-contained frame (no outer length prefix).
std::vector<std::uint8_t> encode(const Message& m);
/// Append the encoding of `m` to `w` (exactly encoded_size(m) bytes); the
/// TCP framing layer uses this to build length-prefixed frames in one
/// buffer.
void encode_into(ByteWriter& w, const Message& m);
/// Parse a frame produced by encode(). Throws DecodeError on malformed
/// input (including trailing garbage).
Message decode(const std::uint8_t* data, std::size_t size);
inline Message decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

/// Abstract one-way message channel a protocol engine sends through.
/// Implementations: sim::SimTransport (virtual time) and net::TcpTransport.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Queue `m` for delivery to `to`. Must not re-enter the engine
  /// synchronously (delivery happens on a later event). Takes the message
  /// by value so senders can move it all the way into the delivery event.
  virtual void send(NodeId to, Message m) = 0;

  /// Borrow an empty buffer to build a Message::queue in. Transports that
  /// recycle delivered messages (the simulator) hand back a drained
  /// vector with its capacity intact, so shipping a queue allocates
  /// nothing in steady state; the default is a fresh vector.
  virtual std::vector<QueuedRequest> acquire_queue_buffer() { return {}; }
};

}  // namespace hlock
