#include "msg/message.hpp"

namespace hlock {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kRequest: return "request";
    case MsgKind::kGrant: return "grant";
    case MsgKind::kToken: return "token";
    case MsgKind::kRelease: return "release";
    case MsgKind::kFreeze: return "freeze";
    case MsgKind::kNaimiRequest: return "naimi_request";
    case MsgKind::kNaimiToken: return "naimi_token";
    case MsgKind::kAck: return "ack";
    case MsgKind::kReparent: return "reparent";
    case MsgKind::kAttach: return "attach";
    case MsgKind::kHandoff: return "handoff";
  }
  return "?";
}

namespace {

void put_queued(ByteWriter& w, const QueuedRequest& q) {
  w.u32(q.requester.value);
  w.u8(static_cast<std::uint8_t>(q.mode));
  w.u64(q.stamp.counter);
  w.u32(q.stamp.node.value);
  w.u8(q.upgrade ? 1 : 0);
  w.u8(q.priority);
}

QueuedRequest get_queued(ByteReader& r) {
  QueuedRequest q;
  q.requester = NodeId{r.u32()};
  q.mode = static_cast<Mode>(r.u8());
  q.stamp.counter = r.u64();
  q.stamp.node = NodeId{r.u32()};
  const auto upgrade = r.u8();
  if (upgrade > 1) throw DecodeError("bad upgrade flag");
  q.upgrade = upgrade != 0;
  q.priority = r.u8();
  if (static_cast<int>(q.mode) >= kModeCount)
    throw DecodeError("bad mode in queued request");
  return q;
}

}  // namespace

void encode_into(ByteWriter& w, const Message& m) {
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u32(m.lock.value);
  w.u32(m.from.value);
  put_queued(w, m.req);
  w.u8(static_cast<std::uint8_t>(m.mode));
  w.u8(m.frozen.raw());
  w.u8(static_cast<std::uint8_t>(m.sender_owned));
  w.u32(static_cast<std::uint32_t>(m.queue.size()));
  for (const auto& q : m.queue) put_queued(w, q);
  w.u64(m.grant_seq);
  w.u64(m.rel_seq);
  w.u32(m.view);
}

std::vector<std::uint8_t> encode(const Message& m) {
  ByteWriter w;
  w.reserve(encoded_size(m));
  encode_into(w, m);
  return w.take();
}

Message decode(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  Message m;
  const auto kind = r.u8();
  if (kind > static_cast<std::uint8_t>(MsgKind::kHandoff))
    throw DecodeError("bad message kind");
  m.kind = static_cast<MsgKind>(kind);
  m.lock = LockId{r.u32()};
  m.from = NodeId{r.u32()};
  m.req = get_queued(r);
  m.mode = static_cast<Mode>(r.u8());
  if (static_cast<int>(m.mode) >= kModeCount) throw DecodeError("bad mode");
  const auto frozen_raw = r.u8();
  if ((frozen_raw & ~0x3fu) != 0) throw DecodeError("bad frozen set");
  m.frozen = ModeSet::from_raw(frozen_raw);
  m.sender_owned = static_cast<Mode>(r.u8());
  if (static_cast<int>(m.sender_owned) >= kModeCount)
    throw DecodeError("bad sender_owned mode");
  const auto n = r.u32();
  // A queue can never exceed the node count; 1M is a generous sanity bound
  // that keeps a corrupt length prefix from allocating gigabytes.
  if (n > 1'000'000) throw DecodeError("unreasonable queue length");
  m.queue.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.queue.push_back(get_queued(r));
  m.grant_seq = r.u64();
  m.rel_seq = r.u64();
  m.view = r.u32();
  if (!r.done()) throw DecodeError("trailing bytes");
  return m;
}

}  // namespace hlock
