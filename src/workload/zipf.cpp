#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hlock::workload {

ZipfTable::ZipfTable(std::uint32_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("zipf needs >= 1 rank");
  if (!(theta >= 0.0)) throw std::invalid_argument("zipf theta must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    acc += theta == 0.0 ? 1.0
                        : std::pow(static_cast<double>(k) + 1.0, -theta);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (double& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;  // guard against accumulated rounding at the tail
}

std::uint32_t ZipfTable::sample(Rng& rng) const {
  const double u = rng.next_double();  // in [0, 1)
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it == cdf_.end()
                                        ? cdf_.size() - 1
                                        : it - cdf_.begin());
}

double ZipfTable::probability(std::uint32_t k) const {
  if (k >= cdf_.size()) return 0.0;
  const double mass =
      theta_ == 0.0 ? 1.0
                    : std::pow(static_cast<double>(k) + 1.0, -theta_);
  return mass / norm_;
}

}  // namespace hlock::workload
