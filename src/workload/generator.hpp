// Per-node operation stream drawing from the WorkloadSpec distributions.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "lockmgr/op.hpp"
#include "workload/spec.hpp"

namespace hlock::workload {

class OpGenerator {
 public:
  /// `node_index` in [0, nodes): selects this node's home rows.
  OpGenerator(const WorkloadSpec& spec, std::uint32_t node_index,
              std::uint32_t nodes, Rng rng);

  /// Draw the next operation.
  lockmgr::Op next();

  /// Draw the idle (think) time before the next operation.
  Duration next_idle();

  [[nodiscard]] std::uint32_t entry_count() const { return entry_count_; }

 private:
  std::uint32_t pick_entry();

  WorkloadSpec spec_;
  std::uint32_t node_index_;
  std::uint32_t entry_count_;
  Rng rng_;
};

}  // namespace hlock::workload
