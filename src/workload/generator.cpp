#include "workload/generator.hpp"

#include <algorithm>

namespace hlock::workload {

OpGenerator::OpGenerator(const WorkloadSpec& spec, std::uint32_t node_index,
                         std::uint32_t nodes, Rng rng)
    : spec_(spec),
      node_index_(node_index),
      entry_count_(nodes * spec.entries_per_node),
      rng_(rng) {
  spec.validate();
}

std::uint32_t OpGenerator::pick_entry() {
  if (rng_.next_double() < spec_.home_bias) {
    // One of this node's own rows.
    const std::uint32_t offset =
        static_cast<std::uint32_t>(rng_.next_below(spec_.entries_per_node));
    return node_index_ * spec_.entries_per_node + offset;
  }
  return static_cast<std::uint32_t>(rng_.next_below(entry_count_));
}

lockmgr::Op OpGenerator::next() {
  lockmgr::Op op;
  const double r = rng_.next_double();
  double acc = spec_.p_entry_read;
  if (r < acc) {
    op.kind = lockmgr::OpKind::kEntryRead;
  } else if (r < (acc += spec_.p_table_read)) {
    op.kind = lockmgr::OpKind::kTableRead;
  } else if (r < (acc += spec_.p_upgrade)) {
    op.kind = lockmgr::OpKind::kTableUpgrade;
  } else if (r < (acc += spec_.p_entry_write)) {
    op.kind = lockmgr::OpKind::kEntryWrite;
  } else {
    op.kind = lockmgr::OpKind::kTableWrite;
  }
  if (op.kind == lockmgr::OpKind::kEntryRead ||
      op.kind == lockmgr::OpKind::kEntryWrite) {
    op.entry = pick_entry();
  }
  // Exponential dwell, clamped away from zero so a CS is never free.
  op.cs = std::max<Duration>(
      usec(100),
      static_cast<Duration>(
          rng_.exponential(static_cast<double>(spec_.cs_mean))));
  return op;
}

Duration OpGenerator::next_idle() {
  return std::max<Duration>(
      usec(100),
      static_cast<Duration>(
          rng_.exponential(static_cast<double>(spec_.idle_mean))));
}

}  // namespace hlock::workload
