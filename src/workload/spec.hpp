// Workload specification — defaults are the paper's §4 parameters:
// critical section 15 ms mean, inter-request idle 150 ms mean, network
// latency 150 ms mean, mode mix IR/R/U/IW/W = 80/10/4/5/1 %.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace hlock::workload {

struct WorkloadSpec {
  // --- timing (means of randomized distributions) ---
  Duration cs_mean = msec(15);
  Duration idle_mean = msec(150);
  Duration net_latency_mean = msec(150);

  // --- the table-lock mode mix (must sum to 1) ---
  double p_entry_read = 0.80;   ///< IR + entry R
  double p_table_read = 0.10;   ///< R
  double p_upgrade = 0.04;      ///< U, then upgrade to W
  double p_entry_write = 0.05;  ///< IW + entry W
  double p_table_write = 0.01;  ///< W

  /// Table rows per node: one airline's fares live with its node, so the
  /// shared table grows with the system (E = nodes * entries_per_node).
  std::uint32_t entries_per_node = 1;

  /// Probability that an entry op targets one of the node's own rows
  /// (an airline mostly updating its own fares); the rest are uniform.
  double home_bias = 0.5;

  /// Ops issued per node before it stops.
  std::uint32_t ops_per_node = 100;

  /// Many-lock forest workloads only: total locks across the whole forest
  /// (0 = classic single-table layout) and the Zipf skew of page
  /// selection (0 = uniform). Both are part of the cache key.
  std::uint32_t lock_count = 0;
  double zipf_theta = 0.0;

  std::uint64_t seed = 0x5eed;

  /// Field-wise equality — the sweep runner's memo cache compares full
  /// specs (no hashing shortcut), so two points collide only when every
  /// parameter of the run is the same.
  bool operator==(const WorkloadSpec&) const = default;

  void validate() const {
    const double sum = p_entry_read + p_table_read + p_upgrade +
                       p_entry_write + p_table_write;
    if (sum < 0.999 || sum > 1.001)
      throw std::invalid_argument("mode mix must sum to 1");
    if (home_bias < 0 || home_bias > 1)
      throw std::invalid_argument("home_bias must be in [0,1]");
    if (cs_mean <= 0 || idle_mean <= 0 || net_latency_mean <= 0)
      throw std::invalid_argument("timing means must be positive");
    if (entries_per_node == 0)
      throw std::invalid_argument("entries_per_node must be >= 1");
    if (!(zipf_theta >= 0.0))
      throw std::invalid_argument("zipf_theta must be >= 0");
  }
};

}  // namespace hlock::workload
