// Many-lock forest workload: a forest of independent lock hierarchies
// ("trees"), each a 3- or 4-level top/db/collection/page hierarchy in the
// style of production hierarchical lock managers (MongoDB's top/db/page
// levels; ROADMAP "many-lock sharded engine").
//
// Every tree is self-contained: its own lock-id space (dense, 0-based, so
// HlsNode's O(1) dense dispatch applies and stays allocation-free), its
// own protocol nodes and its own simulated network. Tree t runs on shard
// t % shards — the tree is the unit of shard assignment, which makes
// results invariant to the shard count: per-tree behavior never depends
// on which other trees share its simulator (disjoint event sets), and the
// harness merges per-tree metrics in tree-index order.
//
// Within a tree, local lock ids are laid out level-order:
//   0                              top
//   1 .. D                         dbs            (4-level trees only)
//   D+1 .. D+C                     collections
//   D+C+1 .. D+C+P                 pages
// An op targets a Zipf-sampled page (or its collection, for the scan-type
// ops) and acquires the standard multi-granularity plan: intents on every
// ancestor, the access mode on the target.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/mode.hpp"
#include "lockmgr/hierarchy.hpp"
#include "workload/spec.hpp"
#include "workload/zipf.hpp"

namespace hlock::workload {

/// Per-tree lock-id arithmetic. All trees of a forest share one layout
/// (lock_count / trees locks each; the division remainder is dropped).
class ForestLayout {
 public:
  /// `locks_per_tree` >= 8; `levels` is 3 (top/collection/page) or 4
  /// (top/db/collection/page).
  ForestLayout(std::uint32_t locks_per_tree, std::uint32_t levels);

  [[nodiscard]] std::uint32_t levels() const { return levels_; }
  [[nodiscard]] std::uint32_t locks_per_tree() const { return total_; }
  [[nodiscard]] std::uint32_t dbs() const { return dbs_; }
  [[nodiscard]] std::uint32_t collections() const { return collections_; }
  [[nodiscard]] std::uint32_t pages() const { return pages_; }

  // Dense tree-local lock ids, level-order.
  [[nodiscard]] LockId top_lock() const { return LockId{0}; }
  [[nodiscard]] LockId db_lock(std::uint32_t d) const { return LockId{1 + d}; }
  [[nodiscard]] LockId collection_lock(std::uint32_t c) const {
    return LockId{1 + dbs_ + c};
  }
  [[nodiscard]] LockId page_lock(std::uint32_t p) const {
    return LockId{1 + dbs_ + collections_ + p};
  }

  [[nodiscard]] std::uint32_t collection_of(std::uint32_t page) const {
    return page % collections_;
  }
  [[nodiscard]] std::uint32_t db_of(std::uint32_t collection) const {
    return dbs_ == 0 ? 0 : collection % dbs_;
  }

  /// Deterministic shard assignment: the whole tree, one shard.
  [[nodiscard]] static std::size_t shard_of(std::uint32_t tree,
                                            std::size_t shards) {
    return tree % shards;
  }
  /// Deterministic initial token placement, identical on every node of a
  /// tree: home node of a tree-local lock id.
  [[nodiscard]] static NodeId home_of(LockId local, std::uint32_t nodes) {
    return NodeId{local.value % nodes};
  }

 private:
  std::uint32_t levels_;
  std::uint32_t dbs_;          ///< 0 for 3-level trees
  std::uint32_t collections_;
  std::uint32_t pages_;
  std::uint32_t total_;
};

/// One drawn operation against a tree.
struct ForestOp {
  bool collection_scope{false};  ///< target the collection, not a page
  std::uint32_t page{0};         ///< Zipf-sampled page rank
  Mode leaf_mode{Mode::kR};
  Duration cs{0};
};

/// Per-(tree, node) op stream: Zipf-skewed page selection plus the spec's
/// mode mix and timing distributions. The mix maps onto the hierarchy as
///   p_entry_read  -> page R        p_entry_write -> page W
///   p_table_read  -> collection R  p_table_write -> collection W
///   p_upgrade     -> page U (exclusive read)
class ForestOpGen {
 public:
  /// `zipf` must outlive the generator (one shared table per forest).
  ForestOpGen(const WorkloadSpec& spec, const ZipfTable& zipf, Rng rng);

  [[nodiscard]] ForestOp next();
  [[nodiscard]] Duration next_idle();

  // --- multi-tree transactions (coupled-shard workload) -------------
  // All three draws come from this generator's own stream, in a fixed
  // order (coin, partner, page), so the cross-tree mix is deterministic
  // and invariant to the shard count. Callers must not draw the coin at
  // all when the feature is off (pct == 0) — that keeps uncoupled runs
  // byte-identical to pre-coupling builds.

  /// True with probability `pct`/100 (pct in (0, 100]).
  [[nodiscard]] bool draw_cross(double pct);
  /// Uniformly pick another tree of `trees` total, never `self`.
  [[nodiscard]] std::uint32_t pick_partner(std::uint32_t self,
                                           std::uint32_t trees);
  /// The second hierarchy's leg of a cross-tree transaction: a fresh
  /// Zipf-sampled page in the partner tree, accessed in the primary op's
  /// leaf mode (U collapses to W — the upgrade protocol is a
  /// single-tree affair, and the cross leg wants the conflict, not the
  /// upgrade choreography).
  [[nodiscard]] ForestOp next_partner(const ForestOp& primary);

  /// Append the multi-granularity lock plan for `op` (intents on every
  /// ancestor, leaf mode on the target) to `out`, which is cleared first.
  static void plan_for(const ForestLayout& layout, const ForestOp& op,
                       std::vector<lockmgr::PlanStep>& out);

 private:
  WorkloadSpec spec_;
  const ZipfTable& zipf_;
  Rng rng_;
};

}  // namespace hlock::workload
