#include "workload/forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace hlock::workload {

ForestLayout::ForestLayout(std::uint32_t locks_per_tree, std::uint32_t levels)
    : levels_(levels) {
  if (levels != 3 && levels != 4)
    throw std::invalid_argument("forest levels must be 3 or 4");
  if (locks_per_tree < 8)
    throw std::invalid_argument("need >= 8 locks per tree");
  // Internal fanout ~8 pages per collection, ~8 collections per db. Two
  // fixed-point passes pin the split; everything left over is pages, so
  // almost the whole id space is leaves (as in a real page-lock table).
  const std::uint32_t below_top = locks_per_tree - 1;
  std::uint32_t pages = below_top;
  std::uint32_t collections = 1;
  std::uint32_t dbs = levels == 4 ? 1 : 0;
  for (int pass = 0; pass < 2; ++pass) {
    collections = std::max<std::uint32_t>(1, pages / 8);
    dbs = levels == 4 ? std::max<std::uint32_t>(1, collections / 8) : 0;
    if (below_top <= collections + dbs)
      throw std::invalid_argument("locks_per_tree too small for hierarchy");
    pages = below_top - collections - dbs;
  }
  dbs_ = dbs;
  collections_ = collections;
  pages_ = pages;
  total_ = 1 + dbs_ + collections_ + pages_;
}

ForestOpGen::ForestOpGen(const WorkloadSpec& spec, const ZipfTable& zipf,
                         Rng rng)
    : spec_(spec), zipf_(zipf), rng_(rng) {}

ForestOp ForestOpGen::next() {
  ForestOp op;
  const double r = rng_.next_double();
  double acc = spec_.p_entry_read;
  if (r < acc) {
    op.leaf_mode = Mode::kR;
  } else if (r < (acc += spec_.p_table_read)) {
    op.collection_scope = true;
    op.leaf_mode = Mode::kR;
  } else if (r < (acc += spec_.p_upgrade)) {
    op.leaf_mode = Mode::kU;
  } else if (r < (acc += spec_.p_entry_write)) {
    op.leaf_mode = Mode::kW;
  } else {
    op.collection_scope = true;
    op.leaf_mode = Mode::kW;
  }
  op.page = zipf_.sample(rng_);
  // Same dwell distribution as the classic workload.
  op.cs = std::max<Duration>(
      usec(100), static_cast<Duration>(
                     rng_.exponential(static_cast<double>(spec_.cs_mean))));
  return op;
}

bool ForestOpGen::draw_cross(double pct) {
  return rng_.next_double() * 100.0 < pct;
}

std::uint32_t ForestOpGen::pick_partner(std::uint32_t self,
                                        std::uint32_t trees) {
  if (trees < 2) throw std::invalid_argument("cross-tree ops need >= 2 trees");
  const auto r = static_cast<std::uint32_t>(rng_.next_below(trees - 1));
  return r >= self ? r + 1 : r;
}

ForestOp ForestOpGen::next_partner(const ForestOp& primary) {
  ForestOp op;
  op.collection_scope = false;
  op.page = zipf_.sample(rng_);
  op.leaf_mode = primary.leaf_mode == Mode::kU ? Mode::kW : primary.leaf_mode;
  op.cs = 0;  // the dwell happens once, on the primary tree
  return op;
}

Duration ForestOpGen::next_idle() {
  return std::max<Duration>(
      usec(100), static_cast<Duration>(rng_.exponential(
                     static_cast<double>(spec_.idle_mean))));
}

void ForestOpGen::plan_for(const ForestLayout& layout, const ForestOp& op,
                           std::vector<lockmgr::PlanStep>& out) {
  out.clear();
  const Mode intent = lockmgr::intent_for(op.leaf_mode);
  const std::uint32_t collection = layout.collection_of(op.page);
  out.push_back({layout.top_lock(), intent});
  if (layout.levels() == 4)
    out.push_back({layout.db_lock(layout.db_of(collection)), intent});
  if (op.collection_scope) {
    out.push_back({layout.collection_lock(collection), op.leaf_mode});
    return;
  }
  out.push_back({layout.collection_lock(collection), intent});
  out.push_back({layout.page_lock(op.page), op.leaf_mode});
}

}  // namespace hlock::workload
