// Zipf-distributed rank sampling for the many-lock workloads.
//
// P(rank k) ∝ 1 / (k+1)^theta over ranks 0..n-1; theta = 0 degenerates to
// uniform. Real lock services see exactly this shape — a few scorching
// tables and a long cold tail — and the protocol's message behavior under
// hotspot skew is what the many-lock benchmarks measure.
//
// Sampling inverts a precomputed CDF (one double per rank, built once and
// shared read-only by every generator), so a draw is one Rng call plus a
// binary search: deterministic from the seed, allocation-free after
// construction, and safe to share across shard threads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hlock::workload {

class ZipfTable {
 public:
  /// Build the CDF for `n` ranks (>= 1) with skew `theta` (>= 0).
  ZipfTable(std::uint32_t n, double theta);

  /// Draw one rank in [0, n) using the caller's Rng stream.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  [[nodiscard]] double theta() const { return theta_; }

  /// Analytic P(rank == k) — the reference the frequency tests check
  /// sampled histograms against.
  [[nodiscard]] double probability(std::uint32_t k) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k); cdf_.back() == 1
  double theta_;
  double norm_;  ///< generalized harmonic number H_{n,theta}
};

}  // namespace hlock::workload
