// Multi-airline reservation table — the paper's application (§4).
//
// One row per airline fare class: a price and a seat count. Rows are
// partitioned by home node (airline). The data structure itself is not
// thread-safe: correctness comes from the locking protocol above it, and
// the access guards let tests assert the lock discipline was respected
// (every access must be bracketed by the matching begin/end call, which
// records overlap violations).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hlock::workload {

class FareTable {
 public:
  FareTable(std::uint32_t entries, std::uint64_t seed);

  [[nodiscard]] std::uint32_t entries() const {
    return static_cast<std::uint32_t>(rows_.size());
  }

  // --- guarded access (simulation-time, single OS thread) ---
  // Readers/writers declare their access spans; overlapping writer spans,
  // or a writer overlapping readers, increment `violations()` — which a
  // correct locking protocol must keep at zero.
  void begin_read(std::uint32_t entry);
  void end_read(std::uint32_t entry);
  void begin_write(std::uint32_t entry);
  void end_write(std::uint32_t entry);

  // --- data ---
  [[nodiscard]] std::int64_t price(std::uint32_t entry) const;
  void set_price(std::uint32_t entry, std::int64_t cents);
  [[nodiscard]] std::uint32_t seats(std::uint32_t entry) const;
  /// Books one seat; returns false when sold out.
  bool book_seat(std::uint32_t entry);
  void release_seat(std::uint32_t entry);

  /// Total seats across all rows (conserved by book/release pairs).
  [[nodiscard]] std::uint64_t total_seats() const;
  /// Lock-discipline violations observed by the access guards.
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  struct Row {
    std::int64_t price_cents;
    std::uint32_t seats;
    std::uint32_t readers{0};
    std::uint32_t writers{0};
  };
  Row& row(std::uint32_t entry);
  const Row& row(std::uint32_t entry) const;

  std::vector<Row> rows_;
  std::uint64_t violations_{0};
};

}  // namespace hlock::workload
