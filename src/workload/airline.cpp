#include "workload/airline.hpp"

namespace hlock::workload {

FareTable::FareTable(std::uint32_t entries, std::uint64_t seed) {
  if (entries == 0) throw std::invalid_argument("need >= 1 entry");
  Rng rng(seed);
  rows_.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    Row r;
    r.price_cents = rng.uniform(5'000, 150'000);  // $50 .. $1500
    r.seats = static_cast<std::uint32_t>(rng.uniform(50, 300));
    rows_.push_back(r);
  }
}

FareTable::Row& FareTable::row(std::uint32_t entry) {
  if (entry >= rows_.size()) throw std::out_of_range("entry index");
  return rows_[entry];
}

const FareTable::Row& FareTable::row(std::uint32_t entry) const {
  if (entry >= rows_.size()) throw std::out_of_range("entry index");
  return rows_[entry];
}

void FareTable::begin_read(std::uint32_t entry) {
  Row& r = row(entry);
  if (r.writers > 0) ++violations_;
  ++r.readers;
}

void FareTable::end_read(std::uint32_t entry) {
  Row& r = row(entry);
  if (r.readers == 0) throw std::logic_error("unbalanced end_read");
  --r.readers;
}

void FareTable::begin_write(std::uint32_t entry) {
  Row& r = row(entry);
  if (r.writers > 0 || r.readers > 0) ++violations_;
  ++r.writers;
}

void FareTable::end_write(std::uint32_t entry) {
  Row& r = row(entry);
  if (r.writers == 0) throw std::logic_error("unbalanced end_write");
  --r.writers;
}

std::int64_t FareTable::price(std::uint32_t entry) const {
  return row(entry).price_cents;
}

void FareTable::set_price(std::uint32_t entry, std::int64_t cents) {
  row(entry).price_cents = cents;
}

std::uint32_t FareTable::seats(std::uint32_t entry) const {
  return row(entry).seats;
}

bool FareTable::book_seat(std::uint32_t entry) {
  Row& r = row(entry);
  if (r.seats == 0) return false;
  --r.seats;
  return true;
}

void FareTable::release_seat(std::uint32_t entry) { ++row(entry).seats; }

std::uint64_t FareTable::total_seats() const {
  std::uint64_t n = 0;
  for (const Row& r : rows_) n += r.seats;
  return n;
}

}  // namespace hlock::workload
