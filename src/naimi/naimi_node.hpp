// NaimiNode — per-participant multiplexer over one NaimiEngine per lock,
// mirroring core::HlsNode for the baseline protocol.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"
#include "naimi/naimi_engine.hpp"

namespace hlock::naimi {

class NaimiNode {
 public:
  using AcquiredFn = std::function<void(LockId, RequestId)>;

  NaimiNode(NodeId self, Transport& transport);

  NaimiEngine& add_lock(LockId lock, NodeId initial_holder);
  [[nodiscard]] NaimiEngine& engine(LockId lock);
  void handle(const Message& m);

  /// Many-lock mode (mirrors HlsNode): materialize engines on first touch
  /// from a deterministic lock -> initial-holder mapping.
  void set_lazy_holder(std::function<NodeId(LockId)> holder_of) {
    lazy_holder_ = std::move(holder_of);
  }
  /// Pre-size the dense dispatch table.
  void reserve_dense(std::uint32_t ids) {
    if (ids > kDenseLockLimit) ids = kDenseLockLimit;
    if (ids > dense_.size()) dense_.resize(ids, nullptr);
  }

  void set_on_acquired(AcquiredFn fn) { on_acquired_ = std::move(fn); }
  [[nodiscard]] NodeId self() const { return self_; }

 private:
  NodeId self_;
  Transport& transport_;
  AcquiredFn on_acquired_;
  std::function<NodeId(LockId)> lazy_holder_;
  FlatMap<LockId, std::unique_ptr<NaimiEngine>> engines_;
  /// O(1) dispatch cache for small (dense) lock ids, mirroring HlsNode:
  /// the per-message engine lookup must not chase a tree or even binary
  /// search in the common case.
  static constexpr std::uint32_t kDenseLockLimit = 1u << 20;
  std::vector<NaimiEngine*> dense_;
};

}  // namespace hlock::naimi
