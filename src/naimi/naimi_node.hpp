// NaimiNode — per-participant multiplexer over one NaimiEngine per lock,
// mirroring core::HlsNode for the baseline protocol.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "msg/message.hpp"
#include "naimi/naimi_engine.hpp"

namespace hlock::naimi {

class NaimiNode {
 public:
  using AcquiredFn = std::function<void(LockId, RequestId)>;

  NaimiNode(NodeId self, Transport& transport);

  NaimiEngine& add_lock(LockId lock, NodeId initial_holder);
  [[nodiscard]] NaimiEngine& engine(LockId lock);
  void handle(const Message& m);

  void set_on_acquired(AcquiredFn fn) { on_acquired_ = std::move(fn); }
  [[nodiscard]] NodeId self() const { return self_; }

 private:
  NodeId self_;
  Transport& transport_;
  AcquiredFn on_acquired_;
  std::map<LockId, std::unique_ptr<NaimiEngine>> engines_;
};

}  // namespace hlock::naimi
