#include "naimi/naimi_node.hpp"

#include <stdexcept>

namespace hlock::naimi {

NaimiNode::NaimiNode(NodeId self, Transport& transport)
    : self_(self), transport_(transport) {}

NaimiEngine& NaimiNode::add_lock(LockId lock, NodeId initial_holder) {
  NaimiCallbacks cbs;
  cbs.on_acquired = [this, lock](RequestId id) {
    if (on_acquired_) on_acquired_(lock, id);
  };
  auto engine = std::make_unique<NaimiEngine>(lock, self_, initial_holder,
                                              transport_, std::move(cbs));
  auto [it, inserted] = engines_.emplace(lock, std::move(engine));
  if (!inserted) throw std::logic_error("lock added twice");
  if (lock.value < kDenseLockLimit) {
    if (lock.value >= dense_.size()) dense_.resize(lock.value + 1, nullptr);
    dense_[lock.value] = it->second.get();
  }
  return *it->second;
}

NaimiEngine& NaimiNode::engine(LockId lock) {
  if (lock.value < dense_.size() && dense_[lock.value] != nullptr)
    return *dense_[lock.value];
  const auto it = engines_.find(lock);
  if (it != engines_.end()) return *it->second;
  if (lazy_holder_) return add_lock(lock, lazy_holder_(lock));
  throw std::logic_error("unknown lock");
}

void NaimiNode::handle(const Message& m) { engine(m.lock).handle(m); }

}  // namespace hlock::naimi
