#include "naimi/naimi_node.hpp"

#include <stdexcept>

namespace hlock::naimi {

NaimiNode::NaimiNode(NodeId self, Transport& transport)
    : self_(self), transport_(transport) {}

NaimiEngine& NaimiNode::add_lock(LockId lock, NodeId initial_holder) {
  NaimiCallbacks cbs;
  cbs.on_acquired = [this, lock](RequestId id) {
    if (on_acquired_) on_acquired_(lock, id);
  };
  auto engine = std::make_unique<NaimiEngine>(lock, self_, initial_holder,
                                              transport_, std::move(cbs));
  auto [it, inserted] = engines_.emplace(lock, std::move(engine));
  if (!inserted) throw std::logic_error("lock added twice");
  return *it->second;
}

NaimiEngine& NaimiNode::engine(LockId lock) {
  const auto it = engines_.find(lock);
  if (it == engines_.end()) throw std::logic_error("unknown lock");
  return *it->second;
}

void NaimiNode::handle(const Message& m) { engine(m.lock).handle(m); }

}  // namespace hlock::naimi
