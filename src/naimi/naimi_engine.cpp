#include "naimi/naimi_engine.hpp"

#include <stdexcept>
#include <utility>

namespace hlock::naimi {

NaimiEngine::NaimiEngine(LockId lock, NodeId self, NodeId initial_token_holder,
                         Transport& transport, NaimiCallbacks callbacks)
    : lock_(lock),
      self_(self),
      transport_(transport),
      callbacks_(std::move(callbacks)),
      father_(self == initial_token_holder ? NodeId::invalid()
                                           : initial_token_holder),
      has_token_(self == initial_token_holder) {
  if (!self.valid() || !initial_token_holder.valid())
    throw std::invalid_argument("invalid node id");
}

void NaimiEngine::send(NodeId to, Message m) {
  m.lock = lock_;
  m.from = self_;
  transport_.send(to, std::move(m));
}

RequestId NaimiEngine::request() {
  const RequestId id{(static_cast<std::uint64_t>(self_.value) << 32) |
                     next_request_++};
  if (requesting_ || waiting_) {
    backlog_.push_back(id);
  } else {
    start_request(id);
  }
  return id;
}

void NaimiEngine::start_request(RequestId id) {
  requesting_ = true;
  if (!father_.valid()) {
    // We are the root and idle: the token is already here.
    enter_cs(id);
    return;
  }
  waiting_ = id;
  Message m;
  m.kind = MsgKind::kNaimiRequest;
  m.req.requester = self_;
  send(father_, m);
  father_ = NodeId::invalid();  // we will be the root once served
}

void NaimiEngine::enter_cs(RequestId id) {
  current_ = id;
  waiting_.reset();
  if (callbacks_.on_acquired) callbacks_.on_acquired(id);
}

void NaimiEngine::release(RequestId id) {
  if (!current_ || *current_ != id)
    throw std::logic_error("release of a request not in the critical section");
  current_.reset();
  requesting_ = false;
  if (next_.valid()) {
    has_token_ = false;
    Message m;
    m.kind = MsgKind::kNaimiToken;
    send(next_, m);
    next_ = NodeId::invalid();
  }
  pump_backlog();
}

void NaimiEngine::pump_backlog() {
  if (requesting_ || waiting_ || backlog_.empty()) return;
  const RequestId id = backlog_.front();
  backlog_.pop_front();
  start_request(id);
}

void NaimiEngine::handle(const Message& m) {
  if (m.lock != lock_) throw std::logic_error("message for wrong lock");
  switch (m.kind) {
    case MsgKind::kNaimiRequest: {
      const NodeId j = m.req.requester;
      if (!father_.valid()) {
        if (requesting_) {
          // We are the queue tail: j becomes our successor.
          next_ = j;
        } else {
          // Idle root: hand the token over directly.
          has_token_ = false;
          Message t;
          t.kind = MsgKind::kNaimiToken;
          send(j, t);
        }
      } else {
        Message fwd;
        fwd.kind = MsgKind::kNaimiRequest;
        fwd.req.requester = j;
        send(father_, fwd);
      }
      father_ = j;  // path reversal
      return;
    }
    case MsgKind::kNaimiToken: {
      has_token_ = true;
      if (!waiting_) throw std::logic_error("token without a waiting request");
      enter_cs(*waiting_);
      return;
    }
    default:
      throw std::logic_error("unexpected message kind for NaimiEngine");
  }
}

}  // namespace hlock::naimi
