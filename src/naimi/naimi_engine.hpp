// Naimi/Trehel/Arnold path-reversal token algorithm [14] — the baseline
// the paper compares against (§4), one instance per (node, lock).
//
// Every node keeps a probable-owner pointer (`father`); requests chase the
// chain of probable owners toward the current root while reversing the
// path (each relay re-points its father at the requester). Waiters form a
// distributed FIFO queue through `next` pointers originating at the token
// holder. Average message complexity is O(log n) per request.
//
// The lock is exclusive-only; hierarchical modes do not exist here, which
// is exactly what the "Naimi same work" configuration has to compensate
// for by acquiring all entry locks in order.
//
// Threading contract matches HlsEngine: single-threaded, callbacks must
// not re-enter the engine.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace hlock::naimi {

struct NaimiCallbacks {
  /// The critical section may be entered (possibly synchronously from
  /// request() or handle()).
  std::function<void(RequestId)> on_acquired;
};

class NaimiEngine {
 public:
  NaimiEngine(LockId lock, NodeId self, NodeId initial_token_holder,
              Transport& transport, NaimiCallbacks callbacks = {});

  NaimiEngine(const NaimiEngine&) = delete;
  NaimiEngine& operator=(const NaimiEngine&) = delete;

  /// Request the (exclusive) lock. Multiple outstanding local requests are
  /// served in issue order.
  RequestId request();

  /// Leave the critical section entered for `id`.
  void release(RequestId id);

  /// Feed one incoming kNaimiRequest / kNaimiToken message.
  void handle(const Message& m);

  // ---- introspection ----
  [[nodiscard]] LockId lock() const { return lock_; }
  [[nodiscard]] bool has_token() const { return has_token_; }
  [[nodiscard]] bool in_cs() const { return current_.has_value(); }
  [[nodiscard]] bool requesting() const { return requesting_; }
  [[nodiscard]] NodeId father() const { return father_; }
  [[nodiscard]] NodeId next() const { return next_; }
  [[nodiscard]] std::size_t backlog_size() const { return backlog_.size(); }

 private:
  void start_request(RequestId id);
  void enter_cs(RequestId id);
  void pump_backlog();
  void send(NodeId to, Message m);

  const LockId lock_;
  const NodeId self_;
  Transport& transport_;
  NaimiCallbacks callbacks_;

  /// Probable owner; invalid means "I am the root / last requester".
  NodeId father_;
  /// Successor in the distributed waiting queue.
  NodeId next_{};
  bool has_token_;
  /// True from the moment a request leaves until the CS is released.
  bool requesting_{false};

  std::optional<RequestId> current_;   ///< hold currently in the CS
  std::optional<RequestId> waiting_;   ///< local request in the protocol
  std::deque<RequestId> backlog_;
  std::uint64_t next_request_{1};
};

}  // namespace hlock::naimi
