#include "corba/concurrency.hpp"

#include <chrono>
#include <stdexcept>

namespace hlock::corba {

Mode to_core(LockMode m) {
  switch (m) {
    case LockMode::kRead: return Mode::kR;
    case LockMode::kWrite: return Mode::kW;
    case LockMode::kUpgrade: return Mode::kU;
    case LockMode::kIntentionRead: return Mode::kIR;
    case LockMode::kIntentionWrite: return Mode::kIW;
  }
  throw std::invalid_argument("bad LockMode");
}

LockMode from_core(Mode m) {
  switch (m) {
    case Mode::kR: return LockMode::kRead;
    case Mode::kW: return LockMode::kWrite;
    case Mode::kU: return LockMode::kUpgrade;
    case Mode::kIR: return LockMode::kIntentionRead;
    case Mode::kIW: return LockMode::kIntentionWrite;
    case Mode::kNone: break;
  }
  throw std::invalid_argument("mode has no LockMode equivalent");
}

// ---------------------------------------------------------------------------
// LockSet forwarding
// ---------------------------------------------------------------------------

LockHandle LockSet::lock(LockMode mode, std::uint8_t priority) {
  return service_->lock_blocking(id_, to_core(mode), priority);
}

std::optional<LockHandle> LockSet::try_lock(LockMode mode) {
  return service_->try_lock_now(id_, to_core(mode));
}

std::optional<LockHandle> LockSet::try_lock_for(LockMode mode,
                                                Duration timeout) {
  return service_->lock_with_deadline(id_, to_core(mode), timeout);
}

void LockSet::unlock(const LockHandle& handle) {
  service_->unlock_blocking(handle);
}

LockHandle LockSet::change_mode(const LockHandle& handle, LockMode new_mode) {
  return service_->change_mode_blocking(handle, to_core(new_mode));
}

// ---------------------------------------------------------------------------
// ConcurrencyService
// ---------------------------------------------------------------------------

ConcurrencyService::ConcurrencyService(net::TcpNode& node,
                                       core::EngineOptions opts)
    : node_(node), hls_(node.self(), node.transport(), opts) {
  hls_.set_on_acquired([this](LockId lock, RequestId id, Mode mode) {
    on_acquired(lock, id, mode);
  });
  hls_.set_on_upgraded(
      [this](LockId lock, RequestId id) { on_upgraded(lock, id); });
  node_.set_handler([this](const Message& m) { hls_.handle(m); });
}

ConcurrencyService::~ConcurrencyService() {
  // Clear the handler from the loop thread so no delivery can be running
  // inside our engines when they are destroyed.
  try {
    if (node_.loop().running()) {
      run_on_loop([this] { node_.set_handler(nullptr); });
    } else {
      node_.set_handler(nullptr);
    }
  } catch (...) {
    // Destructor: nothing sensible to do; the loop is likely gone.
  }
}

void ConcurrencyService::run_on_loop(const std::function<void()>& fn) {
  auto w = std::make_shared<Waiter>();
  node_.loop().post([w, &fn] {
    try {
      fn();
    } catch (...) {
      w->error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> guard(w->mutex);
      w->done = true;
    }
    w->cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(w->mutex);
  w->cv.wait(lk, [&] { return w->done; });
  if (w->error) std::rethrow_exception(w->error);
}

LockSet ConcurrencyService::create_lock_set(LockId id, NodeId initial_holder) {
  run_on_loop([&] { hls_.add_lock(id, initial_holder); });
  return LockSet(*this, id);
}

LockSet ConcurrencyService::lock_set(LockId id) {
  run_on_loop([&] { (void)hls_.engine(id); });  // validates existence
  return LockSet(*this, id);
}

LockHandle ConcurrencyService::lock_blocking(LockId id, Mode mode,
                                             std::uint8_t priority) {
  auto w = std::make_shared<Waiter>();
  node_.loop().post([this, id, mode, priority, w] {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      slot_ = w;
    }
    RequestId rid{};
    std::exception_ptr error;
    try {
      rid = hls_.engine(id).request_lock(mode, priority);
    } catch (...) {
      error = std::current_exception();
    }
    bool fulfilled;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      slot_.reset();
      {
        const std::lock_guard<std::mutex> wg(w->mutex);
        fulfilled = w->done;
        if (!fulfilled && error) {
          w->error = error;
          w->done = true;
          fulfilled = true;
        }
      }
      if (!fulfilled) {
        w->request = rid;
        waiters_[rid] = w;
      }
    }
    if (fulfilled) w->cv.notify_all();
  });

  std::unique_lock<std::mutex> lk(w->mutex);
  w->cv.wait(lk, [&] { return w->done; });
  if (w->error) std::rethrow_exception(w->error);
  const LockHandle handle{id, w->request, w->mode};
  lk.unlock();
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    live_holds_.emplace(id, handle);
  }
  return handle;
}

std::optional<LockHandle> ConcurrencyService::try_lock_now(LockId id,
                                                           Mode mode) {
  std::optional<RequestId> rid;
  run_on_loop([&] { rid = hls_.engine(id).try_request_lock(mode); });
  if (!rid) return std::nullopt;
  const LockHandle handle{id, *rid, mode};
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    live_holds_.emplace(id, handle);
  }
  return handle;
}

std::optional<LockHandle> ConcurrencyService::lock_with_deadline(
    LockId id, Mode mode, Duration timeout) {
  auto w = std::make_shared<Waiter>();
  node_.loop().post([this, id, mode, w] {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      slot_ = w;
    }
    RequestId rid{};
    std::exception_ptr error;
    try {
      rid = hls_.engine(id).request_lock(mode);
    } catch (...) {
      error = std::current_exception();
    }
    bool fulfilled;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      slot_.reset();
      {
        const std::lock_guard<std::mutex> wg(w->mutex);
        fulfilled = w->done;
        if (!fulfilled && error) {
          w->error = error;
          w->done = true;
          fulfilled = true;
        }
        if (!fulfilled) w->request = rid;  // visible to the timeout path
      }
      if (!fulfilled) waiters_[rid] = w;
    }
    if (fulfilled) w->cv.notify_all();
  });

  std::unique_lock<std::mutex> lk(w->mutex);
  const bool granted = w->cv.wait_for(
      lk, std::chrono::microseconds(timeout), [&] { return w->done; });
  if (granted) {
    if (w->error) std::rethrow_exception(w->error);
    const LockHandle handle{id, w->request, w->mode};
    lk.unlock();
    const std::lock_guard<std::mutex> guard(mutex_);
    live_holds_.emplace(id, handle);
    return handle;
  }
  // Deadline expired: cancel on the loop thread. The grant may still race
  // us there; cancel() tells us which way it went.
  const RequestId rid = w->request;
  lk.unlock();
  auto outcome = std::make_shared<Waiter>();
  node_.loop().post([this, id, rid, w, outcome] {
    bool now_held = false;
    try {
      if (rid.valid()) now_held = !hls_.engine(id).cancel(rid);
    } catch (...) {
      outcome->error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      waiters_.erase(rid);
    }
    {
      const std::lock_guard<std::mutex> og(outcome->mutex);
      outcome->done = true;
      outcome->request = now_held ? rid : RequestId{};
    }
    outcome->cv.notify_all();
  });
  std::unique_lock<std::mutex> ol(outcome->mutex);
  outcome->cv.wait(ol, [&] { return outcome->done; });
  if (outcome->error) std::rethrow_exception(outcome->error);
  if (!outcome->request.valid()) return std::nullopt;  // cleanly cancelled
  // The grant won the race: we hold the lock after all.
  std::unique_lock<std::mutex> lk2(w->mutex);
  w->cv.wait(lk2, [&] { return w->done; });  // callback already fired
  const LockHandle handle{id, w->request, w->mode};
  lk2.unlock();
  const std::lock_guard<std::mutex> guard(mutex_);
  live_holds_.emplace(id, handle);
  return handle;
}

void ConcurrencyService::unlock_blocking(const LockHandle& handle) {
  if (!handle.valid()) throw std::invalid_argument("invalid handle");
  run_on_loop([&] { hls_.engine(handle.lock).unlock(handle.request); });
  const std::lock_guard<std::mutex> guard(mutex_);
  const auto [begin, end] = live_holds_.equal_range(handle.lock);
  for (auto it = begin; it != end; ++it) {
    if (it->second.request == handle.request) {
      live_holds_.erase(it);
      break;
    }
  }
}

LockHandle ConcurrencyService::change_mode_blocking(const LockHandle& handle,
                                                    Mode new_mode) {
  if (!handle.valid()) throw std::invalid_argument("invalid handle");
  if (handle.mode == Mode::kU && new_mode == Mode::kW) {
    // Rule 7 upgrade: may block until every other holder drains.
    auto w = std::make_shared<Waiter>();
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      waiters_[handle.request] = w;
    }
    node_.loop().post([this, handle, w] {
      try {
        hls_.engine(handle.lock).upgrade(handle.request);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> guard(mutex_);
          waiters_.erase(handle.request);
        }
        {
          const std::lock_guard<std::mutex> wg(w->mutex);
          w->error = std::current_exception();
          w->done = true;
        }
        w->cv.notify_all();
      }
    });
    std::unique_lock<std::mutex> lk(w->mutex);
    w->cv.wait(lk, [&] { return w->done; });
    if (w->error) std::rethrow_exception(w->error);
    return LockHandle{handle.lock, handle.request, Mode::kW};
  }
  if (safe_downgrade(handle.mode, new_mode)) {
    run_on_loop(
        [&] { hls_.engine(handle.lock).downgrade(handle.request, new_mode); });
    return LockHandle{handle.lock, handle.request, new_mode};
  }
  throw std::logic_error(
      "change_mode supports U->W upgrades and safe downgrades only");
}

void ConcurrencyService::leave(LockId id, NodeId successor_if_root) {
  run_on_loop([&] { hls_.engine(id).leave(successor_if_root); });
}

void ConcurrencyService::recover(LockId id, std::uint32_t view,
                                 NodeId new_root,
                                 const std::set<NodeId>& survivors) {
  run_on_loop(
      [&] { hls_.engine(id).begin_recovery(view, new_root, survivors); });
}

void ConcurrencyService::recover_all(std::uint32_t view, NodeId new_root,
                                     const std::set<NodeId>& survivors) {
  // The view service commits on the loop thread itself; run_on_loop
  // would deadlock there (post-and-wait against our own thread).
  if (node_.loop().on_loop_thread()) {
    hls_.begin_recovery(view, new_root, survivors);
    return;
  }
  run_on_loop([&] { hls_.begin_recovery(view, new_root, survivors); });
}

void ConcurrencyService::drop_locks(LockId id) {
  std::vector<LockHandle> holds;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    const auto [begin, end] = live_holds_.equal_range(id);
    for (auto it = begin; it != end; ++it) holds.push_back(it->second);
  }
  for (auto it = holds.rbegin(); it != holds.rend(); ++it)
    unlock_blocking(*it);
}

void ConcurrencyService::on_acquired(LockId /*lock*/, RequestId id,
                                     Mode mode) {
  std::shared_ptr<Waiter> w;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    const auto it = waiters_.find(id);
    if (it != waiters_.end()) {
      w = it->second;
      waiters_.erase(it);
    } else if (slot_) {
      // Synchronous grant inside request_lock, before the id was known.
      w = slot_;
      slot_.reset();
    }
  }
  if (!w) return;  // e.g. a try_lock admission
  {
    const std::lock_guard<std::mutex> guard(w->mutex);
    w->done = true;
    w->request = id;
    w->mode = mode;
  }
  w->cv.notify_all();
}

void ConcurrencyService::on_upgraded(LockId /*lock*/, RequestId id) {
  std::shared_ptr<Waiter> w;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    const auto it = waiters_.find(id);
    if (it != waiters_.end()) {
      w = it->second;
      waiters_.erase(it);
    }
  }
  if (!w) return;
  {
    const std::lock_guard<std::mutex> guard(w->mutex);
    w->done = true;
    w->request = id;
    w->mode = Mode::kW;
  }
  w->cv.notify_all();
}

}  // namespace hlock::corba

namespace hlock::corba {

// ---------------------------------------------------------------------------
// ScopedLock
// ---------------------------------------------------------------------------

ScopedLock::~ScopedLock() {
  if (handle_.valid()) set_.unlock(handle_);
}

void ScopedLock::upgrade() {
  handle_ = set_.change_mode(handle_, LockMode::kWrite);
}

void ScopedLock::downgrade(LockMode mode) {
  handle_ = set_.change_mode(handle_, mode);
}

void ScopedLock::release() {
  if (handle_.valid()) {
    set_.unlock(handle_);
    handle_ = LockHandle{};
  }
}

}  // namespace hlock::corba
