// CosConcurrency-shaped blocking facade (OMG Concurrency Service, the
// paper's reference model [6]) over the hierarchical locking engine and a
// real TCP node.
//
// The OMG service exposes LockSet objects with lock / try_lock / unlock /
// change_mode operations over the five modes. This facade keeps that
// surface while adapting it to a fully decentralized backend:
//
//  * lock() blocks the calling thread until the distributed protocol
//    grants the mode (any number of application threads may call
//    concurrently; a node's requests are served in issue order).
//  * try_lock() succeeds only when Rule 2 admits the mode with zero
//    messages — a deliberate deviation from a centralized service, where
//    try semantics would otherwise require a blocking round trip.
//  * change_mode() supports the two directions the protocol defines:
//    U -> W (Rule 7 upgrade) and safe downgrades (e.g. W -> R, R -> IR).
//  * drop_locks() releases everything a set still holds, mirroring
//    LockCoordinator::drop_locks for transaction teardown.
//
// All engine interaction is marshalled onto the node's event-loop thread;
// the facade is safe to call from any thread.
#pragma once

#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <cstdint>
#include <optional>
#include <set>

#include "core/hls_node.hpp"
#include "core/mode.hpp"
#include "net/tcp_node.hpp"

namespace hlock::corba {

/// OMG lock_mode names mapped onto core modes.
enum class LockMode {
  kRead,
  kWrite,
  kUpgrade,
  kIntentionRead,
  kIntentionWrite,
};

Mode to_core(LockMode m);
LockMode from_core(Mode m);

/// An acquired lock: returned by lock()/try_lock(), consumed by unlock()
/// and change_mode().
struct LockHandle {
  LockId lock{};
  RequestId request{};
  Mode mode{Mode::kNone};
  [[nodiscard]] bool valid() const { return request.valid(); }
};

class ConcurrencyService;

/// One lock object (e.g. a table or an entry). Value-semantic handle; the
/// service owns the state.
class LockSet {
 public:
  /// Block until the mode is granted. `priority` participates in queue
  /// arbitration when the service was built with
  /// EngineOptions::enable_priorities.
  LockHandle lock(LockMode mode, std::uint8_t priority = 0);
  /// Acquire only if possible without any message exchange.
  std::optional<LockHandle> try_lock(LockMode mode);
  /// Block up to `timeout`; on expiry the request is cancelled and
  /// nothing is held. If the grant races the deadline the handle is
  /// returned (never silently leaked).
  std::optional<LockHandle> try_lock_for(LockMode mode, Duration timeout);
  /// Release a handle obtained from this set.
  void unlock(const LockHandle& handle);
  /// U -> W upgrade (blocking) or safe downgrade (immediate). Returns the
  /// updated handle.
  LockHandle change_mode(const LockHandle& handle, LockMode new_mode);

  [[nodiscard]] LockId id() const { return id_; }

 private:
  friend class ConcurrencyService;
  LockSet(ConcurrencyService& service, LockId id)
      : service_(&service), id_(id) {}
  ConcurrencyService* service_;
  LockId id_;
};

class ConcurrencyService {
 public:
  /// Layers the service over a TcpNode. `opts` tunes the engine (defaults
  /// are the paper's protocol).
  ConcurrencyService(net::TcpNode& node, core::EngineOptions opts = {});

  /// Detaches from the node's event loop before the engines die, so a
  /// service may be destroyed while its TcpNode keeps running.
  ~ConcurrencyService();
  ConcurrencyService(const ConcurrencyService&) = delete;
  ConcurrencyService& operator=(const ConcurrencyService&) = delete;

  /// Register a lock set. Every node of the cluster must register the same
  /// (id, initial_holder) pairs before first use.
  LockSet create_lock_set(LockId id, NodeId initial_holder);
  [[nodiscard]] LockSet lock_set(LockId id);

  /// LockCoordinator::drop_locks: release every hold this service still
  /// has on the given set (transaction teardown).
  void drop_locks(LockId id);

  /// Dynamic membership: gracefully depart the given lock set's tree (all
  /// handles on it must be unlocked first). `successor_if_root` names the
  /// node to hand the token to when this node is the root.
  void leave(LockId id, NodeId successor_if_root = NodeId::invalid());

  /// Crash recovery: adopt the view decided by the membership service.
  /// Call on every survivor with identical arguments (see
  /// HlsEngine::begin_recovery).
  void recover(LockId id, std::uint32_t view, NodeId new_root,
               const std::set<NodeId>& survivors);

  /// Crash recovery across every registered lock set at once — the shape
  /// a live view change (net::ViewService) delivers. Safe from any
  /// thread, including the node's own loop thread (where the view-commit
  /// callback runs); threads blocked in lock() keep waiting and complete
  /// once the regenerated token serves their re-issued requests.
  void recover_all(std::uint32_t view, NodeId new_root,
                   const std::set<NodeId>& survivors);

  [[nodiscard]] NodeId self() const { return node_.self(); }

 private:
  friend class LockSet;

  struct Waiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done{false};
    RequestId request{};
    Mode mode{Mode::kNone};
    std::exception_ptr error;
  };

  LockHandle lock_blocking(LockId id, Mode mode, std::uint8_t priority = 0);
  std::optional<LockHandle> try_lock_now(LockId id, Mode mode);
  std::optional<LockHandle> lock_with_deadline(LockId id, Mode mode,
                                               Duration timeout);
  void unlock_blocking(const LockHandle& handle);
  LockHandle change_mode_blocking(const LockHandle& handle, Mode new_mode);

  /// Run `fn` on the loop thread and wait for it (exceptions rethrown).
  void run_on_loop(const std::function<void()>& fn);

  void on_acquired(LockId lock, RequestId id, Mode mode);
  void on_upgraded(LockId lock, RequestId id);

  net::TcpNode& node_;
  core::HlsNode hls_;

  std::mutex mutex_;
  /// Waiters keyed by request id; the slot covers the window inside
  /// request_lock() before the id is known (synchronous grants).
  std::map<RequestId, std::shared_ptr<Waiter>> waiters_;
  std::shared_ptr<Waiter> slot_;
  std::multimap<LockId, LockHandle> live_holds_;
};

/// RAII guard: acquires in the constructor, releases in the destructor.
/// Move-only; upgrade() converts a held U to W in place.
class ScopedLock {
 public:
  ScopedLock(LockSet set, LockMode mode) : set_(set), handle_(set_.lock(mode)) {}
  ~ScopedLock();
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;
  ScopedLock(ScopedLock&& other) noexcept
      : set_(other.set_), handle_(other.handle_) {
    other.handle_ = LockHandle{};
  }
  ScopedLock& operator=(ScopedLock&&) = delete;

  /// Rule 7: convert a held U to W (blocks until granted).
  void upgrade();
  /// Safe weakening (e.g. W -> R).
  void downgrade(LockMode mode);
  /// Release early (destructor becomes a no-op).
  void release();

  [[nodiscard]] const LockHandle& handle() const { return handle_; }
  [[nodiscard]] Mode mode() const { return handle_.mode; }

 private:
  LockSet set_;
  LockHandle handle_;
};

}  // namespace hlock::corba
