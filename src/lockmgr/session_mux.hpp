// SessionMux — many logical client sessions multiplexed over one node's
// engine stack.
//
// A production lock service does not run one client per process: one
// service node fronts many concurrent application sessions, all sharing
// that node's protocol engines (and therefore its single TCP connection
// per peer). SessionMux is that client session layer. Each logical
// session runs the same two-phase hierarchical state machine as
// HierSession (intent on the table, leaf mode on the entry, Rule 7
// upgrades), but N of them are in flight at once on one HlsNode.
//
// Demultiplexing: HlsNode exposes a single pair of acquisition callbacks
// tagged (LockId, RequestId, Mode). Request ids are only unique per
// engine — engines mint `(node << 32) | counter` independently — so
// grants are routed back to their session by the (lock, request) PAIR,
// never by request id alone. Grants may also fire synchronously from
// inside request_lock(), before the id could be recorded: the mux keeps
// an "issuing slot" naming the session whose request_lock call is on the
// stack, and a grant that matches no routed pair binds to that slot.
//
// Local upgrade gate: the engine runs ONE outstanding local request at a
// time; anything else backlogs behind it in FIFO order. A U-holder's
// upgrade() therefore queues behind any pending local request — and that
// request can be waiting, directly or transitively, on OUR unreleased U
// hold. The direct case is a local U/IW/W request; the sneaky case is a
// local R that Rule 6 froze because a REMOTE writer is queued at the
// token, parking our R in FIFO order behind a remote IW that itself
// waits for our U. Either way it is a queueing deadlock no protocol
// rule can break (Rule 7 only prioritizes upgrades once they reach a
// queue). The mux prevents it by admission control: an upgrade op is
// admitted only when NO other op is in flight on this node, and no op
// is admitted while an upgrade op is active — so engine.upgrade() always
// finds the local pending slot empty and fires immediately, where Rule 7
// takes over. At most one node can hold U at a time (U is
// self-incompatible), so this serialization is brief and global
// progress is preserved. Parked sessions wait in FIFO order, so
// upgrades cannot be starved by a stream of other ops.
//
// Threading contract: everything here runs on the engine's executor
// thread (the simulator, or a TcpNode's event loop). start() must be
// called from that thread — from a handler, a scheduled continuation, or
// loop().post(). Like the engines themselves, continuations are
// scheduled, never run re-entrantly.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/executor.hpp"
#include "common/types.hpp"
#include "core/hls_node.hpp"
#include "lockmgr/op.hpp"
#include "lockmgr/resource.hpp"
#include "lockmgr/session.hpp"

namespace hlock::lockmgr {

class SessionMux {
 public:
  /// Takes over `node`'s acquisition callbacks (like HierSession, which
  /// it replaces — do not install both). `sessions` logical clients,
  /// addressed 0..sessions-1.
  SessionMux(core::HlsNode& node, const ResourceLayout& layout,
             Executor& executor, std::uint32_t sessions);

  /// Begin executing `op` on logical session `session`; `done` fires
  /// (from executor context) after all its locks have been released.
  /// One op at a time per session; other sessions proceed concurrently.
  void start(std::uint32_t session, const Op& op, DoneFn done);

  [[nodiscard]] bool busy(std::uint32_t session) const {
    return clients_[session].phase != Phase::kIdle;
  }
  [[nodiscard]] std::uint32_t session_count() const {
    return static_cast<std::uint32_t>(clients_.size());
  }
  /// Sessions currently executing an op.
  [[nodiscard]] std::uint32_t active() const { return active_; }
  /// Ops completed across all sessions since construction.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 private:
  enum class Phase {
    kIdle,
    kGated,        ///< parked in the local upgrade gate, not yet issued
    kWaitTable,    ///< table-level mode requested
    kWaitEntry,    ///< intent held, entry leaf requested
    kInCs,         ///< dwelling in the (first) critical section
    kWaitUpgrade,  ///< U -> W upgrade in flight
    kInCs2,        ///< write phase of an upgrade op
  };

  /// One logical client: the HierSession state machine, minus the
  /// callbacks (owned centrally by the mux).
  struct Client {
    Phase phase{Phase::kIdle};
    Op op{};
    DoneFn done;
    TimePoint started{0};
    Duration acquire_latency{0};
    std::uint32_t lock_requests{0};
    RequestId table_rid{};
    RequestId entry_rid{};
  };

  /// (lock id, request id): the only per-node-unique grant address.
  using RouteKey = std::pair<std::uint32_t, std::uint64_t>;
  static RouteKey key(LockId lock, RequestId id) {
    return {lock.value, id.value};
  }

  void admit(std::uint32_t sid);
  void drain_gate();
  void issue(std::uint32_t sid, LockId lock, Mode mode);
  void on_acquired(LockId lock, RequestId id, Mode mode);
  void on_upgraded(LockId lock, RequestId id);
  void grant(std::uint32_t sid, LockId lock, RequestId id);
  void enter_cs(std::uint32_t sid);
  void leave_cs(std::uint32_t sid);
  void finish(std::uint32_t sid);

  core::HlsNode& node_;
  const ResourceLayout& layout_;
  Executor& exec_;
  std::vector<Client> clients_;
  /// Grant/upgrade routing; entries live from issue until unlock so
  /// upgrade completions (which reuse the original request id) route too.
  std::map<RouteKey, std::uint32_t> route_;
  /// Issuing slot: request_lock() may grant synchronously, before its
  /// return value exists anywhere; a grant matching no route binds here.
  bool issuing_{false};
  bool issuing_bound_{false};
  std::uint32_t issuing_sid_{0};
  LockId issuing_lock_{};
  /// Local upgrade gate (see file comment): sessions parked in start
  /// order, plus counts of admitted (issued, unfinished) and upgrade ops.
  std::deque<std::uint32_t> gate_queue_;
  std::uint32_t admitted_{0};
  std::uint32_t active_upgrades_{0};
  std::uint32_t active_{0};
  std::uint64_t completed_{0};
};

}  // namespace hlock::lockmgr
