// PlanSession — executes an arbitrary top-down lock plan (from
// lockmgr::lock_plan or hand-built) against an HlsNode: acquire each
// (lock, mode) step in order, dwell in the critical section, release in
// reverse. The general-depth sibling of HierSession's fixed two-level
// flow.
#pragma once

#include <functional>
#include <vector>

#include "common/executor.hpp"
#include "common/types.hpp"
#include "core/hls_node.hpp"
#include "lockmgr/hierarchy.hpp"

namespace hlock::lockmgr {

class PlanSession {
 public:
  struct Result {
    Duration acquire_latency{0};
    std::uint32_t lock_requests{0};
  };
  using PlanDoneFn = std::function<void(const Result&)>;

  /// Takes over the node's acquisition callback; one session per node.
  PlanSession(core::HlsNode& node, Executor& executor);

  /// Acquire every step of `plan` in order, hold for `cs`, release in
  /// reverse, then invoke `done` (from executor context). One at a time.
  void run(std::vector<PlanStep> plan, Duration cs, PlanDoneFn done);

  /// Split flow for callers that hold across external coordination (the
  /// multi-tree transactions of the forest harness): acquire every step
  /// of `plan` in order, then invoke `done` and KEEP holding — the
  /// session stays busy until release(). Result carries the acquisition
  /// latency and the plan's request count, exactly as run() reports.
  void acquire(std::vector<PlanStep> plan, PlanDoneFn done);

  /// Release everything the last acquire() obtained, in reverse order
  /// (synchronous engine unlocks), and free the session.
  void release();

  /// Free the session while KEEPING the holds: returns the held request
  /// ids (plan order) and retires the active plan. The caller becomes
  /// responsible for unlocking via the node's engines — this is how the
  /// forest gateway serves one transaction's leg while remembering the
  /// holds of earlier ones.
  [[nodiscard]] std::vector<RequestId> detach();

  /// Request ids held by the last completed acquire(), in plan order.
  /// A gateway serving several transactions copies these out before the
  /// next acquire() overwrites them, and releases them itself via the
  /// engines (the session may be busy with another plan by then).
  [[nodiscard]] const std::vector<RequestId>& held() const { return held_; }
  [[nodiscard]] const std::vector<PlanStep>& plan() const { return plan_; }

  [[nodiscard]] bool busy() const { return active_; }

 private:
  void acquire_next();
  void on_acquired(LockId lock, RequestId id, Mode mode);

  core::HlsNode& node_;
  Executor& exec_;
  bool active_{false};
  std::vector<PlanStep> plan_;
  std::vector<RequestId> held_;
  std::size_t next_{0};
  TimePoint started_{0};
  PlanDoneFn done_;
};

}  // namespace hlock::lockmgr
