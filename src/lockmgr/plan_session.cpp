#include "lockmgr/plan_session.hpp"

#include <stdexcept>

namespace hlock::lockmgr {

PlanSession::PlanSession(core::HlsNode& node, Executor& executor)
    : node_(node), exec_(executor) {
  node_.set_on_acquired([this](LockId lock, RequestId id, Mode mode) {
    on_acquired(lock, id, mode);
  });
}

void PlanSession::run(std::vector<PlanStep> plan, Duration cs,
                      PlanDoneFn done) {
  if (active_) throw std::logic_error("session already executing a plan");
  if (plan.empty()) throw std::invalid_argument("empty lock plan");
  active_ = true;
  plan_ = std::move(plan);
  held_.clear();
  next_ = 0;
  cs_ = cs;
  done_ = std::move(done);
  started_ = exec_.now();
  acquire_next();
}

void PlanSession::acquire_next() {
  (void)node_.engine(plan_[next_].lock).request_lock(plan_[next_].mode);
}

void PlanSession::on_acquired(LockId lock, RequestId id, Mode /*mode*/) {
  if (!active_ || next_ >= plan_.size() || lock != plan_[next_].lock)
    throw std::logic_error("unexpected acquisition callback");
  held_.push_back(id);
  ++next_;
  if (next_ < plan_.size()) {
    exec_.schedule(0, [this] { acquire_next(); });
    return;
  }
  const Duration latency = exec_.now() - started_;
  exec_.schedule(cs_, [this, latency] {
    for (std::size_t i = plan_.size(); i-- > 0;) {
      node_.engine(plan_[i].lock).unlock(held_[i]);
    }
    active_ = false;
    Result result;
    result.acquire_latency = latency;
    result.lock_requests = static_cast<std::uint32_t>(plan_.size());
    if (done_) {
      PlanDoneFn done = std::move(done_);
      done_ = nullptr;
      done(result);
    }
  });
}

}  // namespace hlock::lockmgr
