#include "lockmgr/plan_session.hpp"

#include <stdexcept>

namespace hlock::lockmgr {

PlanSession::PlanSession(core::HlsNode& node, Executor& executor)
    : node_(node), exec_(executor) {
  node_.set_on_acquired([this](LockId lock, RequestId id, Mode mode) {
    on_acquired(lock, id, mode);
  });
}

void PlanSession::run(std::vector<PlanStep> plan, Duration cs,
                      PlanDoneFn done) {
  // Acquire, dwell, release, report — the acquire() callback runs in the
  // same context the old monolithic flow scheduled its dwell from, so
  // the event sequence (and therefore every deterministic run) is
  // unchanged by the split.
  acquire(std::move(plan), [this, cs, done = std::move(done)](
                               const Result& result) {
    exec_.schedule(cs, [this, result, done = std::move(done)] {
      release();
      if (done) done(result);
    });
  });
}

void PlanSession::acquire(std::vector<PlanStep> plan, PlanDoneFn done) {
  if (active_) throw std::logic_error("session already executing a plan");
  if (plan.empty()) throw std::invalid_argument("empty lock plan");
  active_ = true;
  plan_ = std::move(plan);
  held_.clear();
  next_ = 0;
  done_ = std::move(done);
  started_ = exec_.now();
  acquire_next();
}

void PlanSession::release() {
  if (!active_) throw std::logic_error("release without an active plan");
  if (held_.size() != plan_.size())
    throw std::logic_error("release before the plan fully acquired");
  for (std::size_t i = plan_.size(); i-- > 0;) {
    node_.engine(plan_[i].lock).unlock(held_[i]);
  }
  active_ = false;
}

std::vector<RequestId> PlanSession::detach() {
  if (!active_) throw std::logic_error("detach without an active plan");
  if (held_.size() != plan_.size())
    throw std::logic_error("detach before the plan fully acquired");
  active_ = false;
  return std::move(held_);
}

void PlanSession::acquire_next() {
  (void)node_.engine(plan_[next_].lock).request_lock(plan_[next_].mode);
}

void PlanSession::on_acquired(LockId lock, RequestId id, Mode /*mode*/) {
  if (!active_ || next_ >= plan_.size() || lock != plan_[next_].lock)
    throw std::logic_error("unexpected acquisition callback");
  held_.push_back(id);
  ++next_;
  if (next_ < plan_.size()) {
    exec_.schedule(0, [this] { acquire_next(); });
    return;
  }
  Result result;
  result.acquire_latency = exec_.now() - started_;
  result.lock_requests = static_cast<std::uint32_t>(plan_.size());
  if (done_) {
    // Moved out first: the callback may release() and start a new plan.
    PlanDoneFn done = std::move(done_);
    done_ = nullptr;
    done(result);
  }
}

}  // namespace hlock::lockmgr
