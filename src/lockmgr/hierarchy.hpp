// Arbitrary-depth resource hierarchies.
//
// §3.1: "Hierarchical locking schemes enhance parallelism by
// distinguishing between lock modes on the structural data
// representation, e.g., when a database, multiple tables within the
// database and entries within tables are associated with distinct locks."
// ResourceLayout covers the paper's two-level evaluation; this module is
// the general form: a tree of named resources, one lock per resource, and
// lock-plan computation (intents on every ancestor, the requested mode on
// the target — top-down, the standard multi-granularity discipline of
// Gray et al. [5]).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/mode.hpp"

namespace hlock::lockmgr {

class Hierarchy {
 public:
  /// Creates the hierarchy with its root resource (e.g. "database").
  explicit Hierarchy(std::string root_name);

  /// Add a resource under `parent`; returns its id. Lock ids are assigned
  /// densely in creation order (root = 0), so every node of a cluster
  /// building the same hierarchy agrees on them.
  ResourceId add_child(ResourceId parent, std::string name);

  [[nodiscard]] ResourceId root() const { return ResourceId{0}; }
  [[nodiscard]] std::uint32_t resource_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] LockId lock_of(ResourceId r) const;
  [[nodiscard]] ResourceId parent_of(ResourceId r) const;
  [[nodiscard]] const std::string& name_of(ResourceId r) const;
  [[nodiscard]] std::uint32_t depth_of(ResourceId r) const;
  [[nodiscard]] std::vector<ResourceId> children_of(ResourceId r) const;

  /// Root-to-target resource path (inclusive).
  [[nodiscard]] std::vector<ResourceId> path_to(ResourceId target) const;

 private:
  struct Node {
    std::string name;
    ResourceId parent;  ///< invalid for the root
    std::uint32_t depth;
  };
  [[nodiscard]] const Node& node(ResourceId r) const;
  std::vector<Node> nodes_;
};

/// One step of a lock plan.
struct PlanStep {
  LockId lock{};
  Mode mode{Mode::kNone};

  friend bool operator==(const PlanStep&, const PlanStep&) = default;
};

/// The intent mode ancestors must carry for an access in `leaf_mode`:
/// IR for read-side modes (IR, R), IW for write-side modes (U, IW, W).
Mode intent_for(Mode leaf_mode);

/// Compute the top-down lock plan for accessing `target` in `mode`:
/// intents on every proper ancestor, then `mode` on the target itself.
std::vector<PlanStep> lock_plan(const Hierarchy& hierarchy, ResourceId target,
                                Mode mode);

}  // namespace hlock::lockmgr
