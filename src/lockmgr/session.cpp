#include "lockmgr/session.hpp"

#include <stdexcept>

#include "core/mode.hpp"

namespace hlock::lockmgr {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kEntryRead: return "entry_read";
    case OpKind::kTableRead: return "table_read";
    case OpKind::kTableUpgrade: return "table_upgrade";
    case OpKind::kEntryWrite: return "entry_write";
    case OpKind::kTableWrite: return "table_write";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// HierSession
// ---------------------------------------------------------------------------
// Acquisition callbacks may fire synchronously from inside request_lock(),
// i.e. before its return value could be stored. Sessions therefore never
// compare an incoming request id against a stored one for the request they
// are waiting on — they identify it by (phase, lock) and capture the id.

HierSession::HierSession(core::HlsNode& node, const ResourceLayout& layout,
                         Executor& executor)
    : node_(node), layout_(layout), exec_(executor) {
  node_.set_on_acquired([this](LockId lock, RequestId id, Mode mode) {
    on_acquired(lock, id, mode);
  });
  node_.set_on_upgraded(
      [this](LockId lock, RequestId id) { on_upgraded(lock, id); });
}

void HierSession::start(const Op& op, DoneFn done) {
  if (busy()) throw std::logic_error("session already executing an op");
  op_ = op;
  done_ = std::move(done);
  started_ = exec_.now();
  lock_requests_ = 0;
  phase_ = Phase::kWaitTable;

  Mode table_mode = Mode::kNone;
  switch (op.kind) {
    case OpKind::kEntryRead: table_mode = Mode::kIR; break;
    case OpKind::kTableRead: table_mode = Mode::kR; break;
    case OpKind::kTableUpgrade: table_mode = Mode::kU; break;
    case OpKind::kEntryWrite: table_mode = Mode::kIW; break;
    case OpKind::kTableWrite: table_mode = Mode::kW; break;
  }
  ++lock_requests_;
  (void)node_.engine(layout_.table_lock()).request_lock(table_mode);
}

void HierSession::on_acquired(LockId lock, RequestId id, Mode /*mode*/) {
  if (phase_ == Phase::kWaitTable && lock == layout_.table_lock()) {
    table_rid_ = id;
    if (op_.kind == OpKind::kEntryRead || op_.kind == OpKind::kEntryWrite) {
      // Intent acquired; take the leaf lock next. Scheduled to respect the
      // no-reentrancy contract (this callback may run inside request_lock).
      phase_ = Phase::kWaitEntry;
      const Mode leaf = op_.kind == OpKind::kEntryRead ? Mode::kR : Mode::kW;
      exec_.schedule(0, [this, leaf] {
        ++lock_requests_;
        (void)node_.engine(layout_.entry_lock(op_.entry)).request_lock(leaf);
      });
    } else {
      enter_cs();
    }
    return;
  }
  if (phase_ == Phase::kWaitEntry && lock == layout_.entry_lock(op_.entry)) {
    entry_rid_ = id;
    enter_cs();
    return;
  }
  throw std::logic_error("unexpected acquisition callback");
}

void HierSession::enter_cs() {
  phase_ = Phase::kInCs;
  acquire_latency_ = exec_.now() - started_;
  // Upgrade ops split the dwell: read under U, then write under W.
  const Duration dwell =
      op_.kind == OpKind::kTableUpgrade ? op_.cs / 2 : op_.cs;
  exec_.schedule(dwell, [this] { leave_cs(); });
}

void HierSession::leave_cs() {
  if (op_.kind == OpKind::kTableUpgrade && phase_ == Phase::kInCs) {
    phase_ = Phase::kWaitUpgrade;
    node_.engine(layout_.table_lock()).upgrade(table_rid_);
    return;
  }
  // Release leaf before intent (standard hierarchical order).
  if (op_.kind == OpKind::kEntryRead || op_.kind == OpKind::kEntryWrite) {
    node_.engine(layout_.entry_lock(op_.entry)).unlock(entry_rid_);
  }
  node_.engine(layout_.table_lock()).unlock(table_rid_);
  finish();
}

void HierSession::on_upgraded(LockId lock, RequestId id) {
  if (phase_ != Phase::kWaitUpgrade || lock != layout_.table_lock() ||
      id != table_rid_) {
    throw std::logic_error("unexpected upgrade callback");
  }
  phase_ = Phase::kInCs2;
  exec_.schedule(op_.cs - op_.cs / 2, [this] {
    node_.engine(layout_.table_lock()).unlock(table_rid_);
    finish();
  });
}

void HierSession::finish() {
  phase_ = Phase::kIdle;
  OpStats stats;
  stats.op = op_;
  stats.lock_requests = lock_requests_;
  stats.acquire_latency = acquire_latency_;
  if (done_) {
    DoneFn done = std::move(done_);
    done_ = nullptr;
    done(stats);
  }
}

// ---------------------------------------------------------------------------
// NaimiOrderedSession
// ---------------------------------------------------------------------------

NaimiOrderedSession::NaimiOrderedSession(naimi::NaimiNode& node,
                                         const ResourceLayout& layout,
                                         Executor& executor)
    : node_(node), layout_(layout), exec_(executor) {
  node_.set_on_acquired(
      [this](LockId lock, RequestId id) { on_acquired(lock, id); });
}

void NaimiOrderedSession::start(const Op& op, DoneFn done) {
  if (busy()) throw std::logic_error("session already executing an op");
  active_ = true;
  op_ = op;
  done_ = std::move(done);
  started_ = exec_.now();
  held_.clear();
  next_ = 0;

  switch (op.kind) {
    case OpKind::kEntryRead:
    case OpKind::kEntryWrite:
      plan_ = {layout_.entry_lock(op.entry)};
      break;
    case OpKind::kTableRead:
    case OpKind::kTableUpgrade:
    case OpKind::kTableWrite:
      // No shared or hierarchical modes: lock the whole table by taking
      // every entry lock, in ascending order to avoid deadlock (§4).
      plan_ = layout_.entry_locks_in_order();
      break;
  }
  acquire_next();
}

void NaimiOrderedSession::acquire_next() {
  (void)node_.engine(plan_[next_]).request();
}

void NaimiOrderedSession::on_acquired(LockId lock, RequestId id) {
  if (!active_ || next_ >= plan_.size() || lock != plan_[next_])
    throw std::logic_error("unexpected acquisition callback");
  held_.push_back(id);
  ++next_;
  if (next_ < plan_.size()) {
    exec_.schedule(0, [this] { acquire_next(); });
    return;
  }
  enter_cs();
}

void NaimiOrderedSession::enter_cs() {
  const Duration latency = exec_.now() - started_;
  exec_.schedule(op_.cs, [this, latency] {
    // Release in reverse acquisition order.
    for (std::size_t i = plan_.size(); i-- > 0;) {
      node_.engine(plan_[i]).release(held_[i]);
    }
    active_ = false;
    OpStats stats;
    stats.op = op_;
    stats.acquire_latency = latency;
    stats.lock_requests = static_cast<std::uint32_t>(plan_.size());
    if (done_) {
      DoneFn done = std::move(done_);
      done_ = nullptr;
      done(stats);
    }
  });
}

// ---------------------------------------------------------------------------
// NaimiPureSession
// ---------------------------------------------------------------------------

NaimiPureSession::NaimiPureSession(naimi::NaimiNode& node, LockId global_lock,
                                   Executor& executor)
    : node_(node), global_lock_(global_lock), exec_(executor) {
  node_.set_on_acquired(
      [this](LockId lock, RequestId id) { on_acquired(lock, id); });
}

void NaimiPureSession::start(const Op& op, DoneFn done) {
  if (busy()) throw std::logic_error("session already executing an op");
  active_ = true;
  op_ = op;
  done_ = std::move(done);
  started_ = exec_.now();
  (void)node_.engine(global_lock_).request();
}

void NaimiPureSession::on_acquired(LockId lock, RequestId id) {
  if (!active_ || lock != global_lock_)
    throw std::logic_error("unexpected acquisition callback");
  rid_ = id;
  const Duration latency = exec_.now() - started_;
  exec_.schedule(op_.cs, [this, latency] {
    node_.engine(global_lock_).release(rid_);
    active_ = false;
    OpStats stats;
    stats.op = op_;
    stats.acquire_latency = latency;
    stats.lock_requests = 1;
    if (done_) {
      DoneFn done = std::move(done_);
      done_ = nullptr;
      done(stats);
    }
  });
}

}  // namespace hlock::lockmgr
