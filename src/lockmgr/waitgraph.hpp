// Wait-for-graph deadlock detection.
//
// The paper's protocol is deadlock-free for single-lock usage (Rules 4+5
// give FIFO service) and offers U locks to avoid upgrade deadlocks [§3.4],
// but applications composing MULTIPLE locks can still deadlock themselves
// (e.g. two nodes taking two W locks in opposite orders). This module is
// the diagnostic substrate: a wait-for graph with incremental cycle
// detection, fed by the harness observer (DeadlockMonitor) from global
// simulation state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace hlock::lockmgr {

/// Directed graph "A waits for B"; detects cycles by DFS.
class WaitForGraph {
 public:
  void add_edge(NodeId waiter, NodeId holder);
  void clear();
  /// Drop a node and every edge touching it. Cycle *counting* peels one
  /// participant per detected cycle and re-searches.
  void remove_node(NodeId node);

  [[nodiscard]] std::size_t edge_count() const;

  /// Returns a cycle as a node sequence (first == last) if one exists.
  /// Iterative (explicit-stack) DFS: wait chains grow with the waiter
  /// population, and a 10^5-node chain must not overflow the call stack.
  [[nodiscard]] std::optional<std::vector<NodeId>> find_cycle() const;

  /// Number of disjoint cycles: repeatedly find a cycle and remove one of
  /// its participants, up to `cap` (distinct application deadlocks can
  /// share no victim once removed). Operates on a copy — `*this` is
  /// untouched.
  [[nodiscard]] std::size_t count_cycles(std::size_t cap = 64) const;

 private:
  std::map<NodeId, std::set<NodeId>> edges_;
};

}  // namespace hlock::lockmgr
