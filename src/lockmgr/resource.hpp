// Resource layout: the paper's two-level granularity hierarchy.
//
// One table lock guards the whole reservation table; one entry lock guards
// each row. Our protocol acquires {table: intent, entry: leaf} pairs or a
// single table-level lock; the Naimi baselines have no granularity and
// compensate as §4 describes (all entry locks in ascending order).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace hlock::lockmgr {

/// Deterministic lock-id layout shared by every node: lock 0 is the table
/// lock, locks 1..entry_count are the entry locks.
class ResourceLayout {
 public:
  explicit ResourceLayout(std::uint32_t entry_count)
      : entry_count_(entry_count) {
    if (entry_count == 0) throw std::invalid_argument("need >= 1 entry");
  }

  [[nodiscard]] LockId table_lock() const { return LockId{0}; }
  [[nodiscard]] LockId entry_lock(std::uint32_t entry) const {
    if (entry >= entry_count_) throw std::out_of_range("entry index");
    return LockId{entry + 1};
  }
  [[nodiscard]] std::uint32_t entry_count() const { return entry_count_; }
  /// Total number of lock objects (table + entries).
  [[nodiscard]] std::uint32_t lock_count() const { return entry_count_ + 1; }

  /// All entry locks in ascending id order — the deadlock-free acquisition
  /// order the Naimi same-work configuration must follow.
  [[nodiscard]] std::vector<LockId> entry_locks_in_order() const {
    std::vector<LockId> out;
    out.reserve(entry_count_);
    for (std::uint32_t e = 0; e < entry_count_; ++e)
      out.push_back(entry_lock(e));
    return out;
  }

 private:
  std::uint32_t entry_count_;
};

}  // namespace hlock::lockmgr
