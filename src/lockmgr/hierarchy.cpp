#include "lockmgr/hierarchy.hpp"

#include <algorithm>

namespace hlock::lockmgr {

Hierarchy::Hierarchy(std::string root_name) {
  nodes_.push_back(Node{std::move(root_name), ResourceId::invalid(), 0});
}

const Hierarchy::Node& Hierarchy::node(ResourceId r) const {
  if (!r.valid() || r.value >= nodes_.size())
    throw std::out_of_range("unknown resource");
  return nodes_[r.value];
}

ResourceId Hierarchy::add_child(ResourceId parent, std::string name) {
  const Node& p = node(parent);  // validates
  ResourceId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{std::move(name), parent, p.depth + 1});
  return id;
}

LockId Hierarchy::lock_of(ResourceId r) const {
  (void)node(r);  // validates
  return LockId{r.value};
}

ResourceId Hierarchy::parent_of(ResourceId r) const { return node(r).parent; }

const std::string& Hierarchy::name_of(ResourceId r) const {
  return node(r).name;
}

std::uint32_t Hierarchy::depth_of(ResourceId r) const { return node(r).depth; }

std::vector<ResourceId> Hierarchy::children_of(ResourceId r) const {
  (void)node(r);
  std::vector<ResourceId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == r) out.push_back(ResourceId{i});
  }
  return out;
}

std::vector<ResourceId> Hierarchy::path_to(ResourceId target) const {
  std::vector<ResourceId> path;
  ResourceId cursor = target;
  while (cursor.valid()) {
    path.push_back(cursor);
    cursor = node(cursor).parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Mode intent_for(Mode leaf_mode) {
  switch (leaf_mode) {
    case Mode::kIR:
    case Mode::kR:
      return Mode::kIR;
    case Mode::kU:
    case Mode::kIW:
    case Mode::kW:
      return Mode::kIW;
    case Mode::kNone:
      break;
  }
  throw std::invalid_argument("no intent mode for ∅");
}

std::vector<PlanStep> lock_plan(const Hierarchy& hierarchy, ResourceId target,
                                Mode mode) {
  if (mode == Mode::kNone) throw std::invalid_argument("cannot plan for ∅");
  const auto path = hierarchy.path_to(target);
  std::vector<PlanStep> plan;
  plan.reserve(path.size());
  const Mode intent = intent_for(mode);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    plan.push_back(PlanStep{hierarchy.lock_of(path[i]), intent});
  }
  plan.push_back(PlanStep{hierarchy.lock_of(target), mode});
  return plan;
}

}  // namespace hlock::lockmgr
