// Application-level operations on the two-level resource hierarchy.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace hlock::lockmgr {

/// The five operation classes of the paper's workload (§4). Each maps to
/// the table-lock mode mix IR/R/U/IW/W = 80/10/4/5/1 %.
enum class OpKind : std::uint8_t {
  kEntryRead,     ///< IR on the table, then R on one entry
  kTableRead,     ///< R on the table
  kTableUpgrade,  ///< U on the table, read, upgrade to W, write
  kEntryWrite,    ///< IW on the table, then W on one entry
  kTableWrite,    ///< W on the table
};

const char* to_string(OpKind k);

struct Op {
  OpKind kind{OpKind::kEntryRead};
  /// Target row for entry ops; ignored by table-level ops.
  std::uint32_t entry{0};
  /// Critical-section dwell time (total across both upgrade phases).
  Duration cs{0};
};

}  // namespace hlock::lockmgr
