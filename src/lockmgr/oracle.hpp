// Centralized reference lock manager — the correctness oracle.
//
// Property tests mirror every hold the distributed engines admit into this
// table; it throws the moment two incompatible holds coexist on one lock,
// independent of any engine bookkeeping. It is also usable standalone as a
// (trivially correct) single-node concurrency service for differential
// tests of the compatibility semantics.
#pragma once

#include <map>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "core/mode.hpp"

namespace hlock::lockmgr {

class IncompatibleHolds : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Multiset of (node, mode) holds for one lock with compatibility checking.
class OracleLock {
 public:
  /// True iff `m` is compatible with every current hold.
  [[nodiscard]] bool can_hold(Mode m) const {
    for (const auto& h : holds_)
      if (!compatible(h.mode, m)) return false;
    return true;
  }

  /// Record a hold; throws IncompatibleHolds if it conflicts.
  void add(NodeId node, Mode m) {
    if (!can_hold(m))
      throw IncompatibleHolds("oracle: incompatible concurrent holds");
    holds_.push_back({node, m});
  }

  /// Remove one instance of (node, m); throws if absent.
  void remove(NodeId node, Mode m) {
    for (auto it = holds_.begin(); it != holds_.end(); ++it) {
      if (it->node == node && it->mode == m) {
        holds_.erase(it);
        return;
      }
    }
    throw std::logic_error("oracle: removing a hold that was never added");
  }

  /// Atomically replace one hold's mode (Rule 7 upgrade); validates the
  /// new mode against every *other* hold.
  void replace(NodeId node, Mode from, Mode to) {
    remove(node, from);
    try {
      add(node, to);
    } catch (...) {
      holds_.push_back({node, from});  // restore for diagnosability
      throw;
    }
  }

  [[nodiscard]] std::size_t hold_count() const { return holds_.size(); }
  /// Strongest mode currently held (kNone when empty).
  [[nodiscard]] Mode strongest_hold() const {
    Mode m = Mode::kNone;
    for (const auto& h : holds_) m = strongest(m, h.mode);
    return m;
  }

 private:
  struct Hold {
    NodeId node;
    Mode mode;
  };
  std::vector<Hold> holds_;
};

/// Oracle across many locks.
class OracleLockManager {
 public:
  OracleLock& lock(LockId id) { return locks_[id]; }
  [[nodiscard]] std::size_t total_holds() const {
    std::size_t n = 0;
    for (const auto& [id, l] : locks_) n += l.hold_count();
    return n;
  }

 private:
  std::map<LockId, OracleLock> locks_;
};

}  // namespace hlock::lockmgr
