#include "lockmgr/waitgraph.hpp"

#include <algorithm>
#include <vector>

namespace hlock::lockmgr {

void WaitForGraph::add_edge(NodeId waiter, NodeId holder) {
  if (waiter == holder) return;  // self-waits are the app's own re-entrancy
  edges_[waiter].insert(holder);
}

void WaitForGraph::clear() { edges_.clear(); }

void WaitForGraph::remove_node(NodeId node) {
  edges_.erase(node);
  for (auto& [from, tos] : edges_) tos.erase(node);
}

std::size_t WaitForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [from, tos] : edges_) n += tos.size();
  return n;
}

std::optional<std::vector<NodeId>> WaitForGraph::find_cycle() const {
  // Explicit-stack DFS. The recursive formulation overflows the call
  // stack on long wait chains (a 10^5-deep chain is a few hundred MB of
  // frames); here the only per-depth state is one Frame plus the gray
  // path, both on the heap.
  enum class Color { kWhite, kGray, kBlack };
  using AdjIt = std::set<NodeId>::const_iterator;
  struct Frame {
    NodeId u;
    AdjIt next;  ///< next out-edge to explore
    AdjIt end;
    bool has_adj;
  };
  std::map<NodeId, Color> color;
  std::vector<Frame> frames;
  std::vector<NodeId> path;  ///< gray nodes, root to current

  const auto make_frame = [this](NodeId u) {
    Frame f{u, {}, {}, false};
    const auto it = edges_.find(u);
    if (it != edges_.end()) {
      f.next = it->second.begin();
      f.end = it->second.end();
      f.has_adj = true;
    }
    return f;
  };

  for (const auto& [root, tos] : edges_) {
    if (color.count(root) != 0) continue;
    color[root] = Color::kGray;
    frames.push_back(make_frame(root));
    path.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      bool descended = false;
      while (f.has_adj && f.next != f.end) {
        const NodeId v = *f.next++;
        const auto cit = color.find(v);
        const Color c = cit == color.end() ? Color::kWhite : cit->second;
        if (c == Color::kGray) {
          // Back edge: the cycle is the gray path from v onward.
          std::vector<NodeId> out;
          const auto start = std::find(path.begin(), path.end(), v);
          out.assign(start, path.end());
          out.push_back(v);
          return out;
        }
        if (c == Color::kWhite) {
          color[v] = Color::kGray;
          frames.push_back(make_frame(v));
          path.push_back(v);
          descended = true;
          break;  // f may be a dangling reference now; re-enter loop
        }
      }
      if (descended) continue;
      color[frames.back().u] = Color::kBlack;
      path.pop_back();
      frames.pop_back();
    }
  }
  return std::nullopt;
}

std::size_t WaitForGraph::count_cycles(std::size_t cap) const {
  WaitForGraph scratch = *this;
  std::size_t n = 0;
  while (n < cap) {
    const auto cycle = scratch.find_cycle();
    if (!cycle) break;
    ++n;
    scratch.remove_node(cycle->front());
  }
  return n;
}

}  // namespace hlock::lockmgr
