#include "lockmgr/waitgraph.hpp"

#include <algorithm>
#include <functional>

namespace hlock::lockmgr {

void WaitForGraph::add_edge(NodeId waiter, NodeId holder) {
  if (waiter == holder) return;  // self-waits are the app's own re-entrancy
  edges_[waiter].insert(holder);
}

void WaitForGraph::clear() { edges_.clear(); }

std::size_t WaitForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [from, tos] : edges_) n += tos.size();
  return n;
}

std::optional<std::vector<NodeId>> WaitForGraph::find_cycle() const {
  enum class Color { kWhite, kGray, kBlack };
  std::map<NodeId, Color> color;
  std::vector<NodeId> stack;
  std::optional<std::vector<NodeId>> cycle;

  std::function<bool(NodeId)> dfs = [&](NodeId u) -> bool {
    color[u] = Color::kGray;
    stack.push_back(u);
    const auto it = edges_.find(u);
    if (it != edges_.end()) {
      for (const NodeId v : it->second) {
        const auto cit = color.find(v);
        const Color c = cit == color.end() ? Color::kWhite : cit->second;
        if (c == Color::kGray) {
          // Found a back edge: extract the cycle from the stack.
          std::vector<NodeId> out;
          const auto start = std::find(stack.begin(), stack.end(), v);
          out.assign(start, stack.end());
          out.push_back(v);
          cycle = std::move(out);
          return true;
        }
        if (c == Color::kWhite && dfs(v)) return true;
      }
    }
    stack.pop_back();
    color[u] = Color::kBlack;
    return false;
  };

  for (const auto& [node, tos] : edges_) {
    const auto cit = color.find(node);
    if (cit == color.end() || cit->second == Color::kWhite) {
      if (dfs(node)) return cycle;
    }
  }
  return std::nullopt;
}

}  // namespace hlock::lockmgr
