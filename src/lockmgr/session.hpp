// Per-node application sessions: asynchronous state machines that execute
// one Op at a time against a protocol engine stack.
//
//   HierSession         — the paper's protocol over the two-level hierarchy
//                         (intent on the table, leaf mode on the entry)
//   NaimiOrderedSession — "Naimi same work": emulates table-level access by
//                         acquiring every entry lock in ascending order
//                         (deadlock avoidance), entry access directly
//   NaimiPureSession    — "Naimi pure": one global exclusive lock, the
//                         original workload of [14]
//
// Sessions obey the engines' threading contract: protocol callbacks only
// record state and schedule continuations on the Executor.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/executor.hpp"
#include "common/types.hpp"
#include "core/hls_node.hpp"
#include "lockmgr/op.hpp"
#include "lockmgr/resource.hpp"
#include "naimi/naimi_node.hpp"

namespace hlock::lockmgr {

/// Completion record for one executed Op.
struct OpStats {
  Op op{};
  /// Issue time -> all locks held (critical section entered).
  Duration acquire_latency{0};
  /// Lock requests issued to execute the op (ours: 1 or 2; same-work: 1 or
  /// entry_count; pure: 1).
  std::uint32_t lock_requests{0};
};

using DoneFn = std::function<void(const OpStats&)>;

/// Common surface so the workload driver can run any protocol stack.
class Session {
 public:
  virtual ~Session() = default;
  /// Begin executing `op`; `done` fires (from executor context) after all
  /// locks have been released. One op at a time.
  virtual void start(const Op& op, DoneFn done) = 0;
  [[nodiscard]] virtual bool busy() const = 0;
};

// ---------------------------------------------------------------------------

class HierSession final : public Session {
 public:
  /// Takes over the node's acquisition callbacks; one session per node.
  HierSession(core::HlsNode& node, const ResourceLayout& layout,
              Executor& executor);

  void start(const Op& op, DoneFn done) override;
  [[nodiscard]] bool busy() const override { return phase_ != Phase::kIdle; }

 private:
  enum class Phase {
    kIdle,
    kWaitTable,    ///< table-level mode requested
    kWaitEntry,    ///< intent held, entry leaf requested
    kInCs,         ///< dwelling in the (first) critical section
    kWaitUpgrade,  ///< U -> W upgrade in flight
    kInCs2,        ///< write phase of an upgrade op
  };

  void on_acquired(LockId lock, RequestId id, Mode mode);
  void on_upgraded(LockId lock, RequestId id);
  void enter_cs();
  void leave_cs();
  void finish();

  core::HlsNode& node_;
  const ResourceLayout& layout_;
  Executor& exec_;

  Phase phase_{Phase::kIdle};
  Op op_{};
  DoneFn done_;
  TimePoint started_{0};
  Duration acquire_latency_{0};
  std::uint32_t lock_requests_{0};
  RequestId table_rid_{};
  RequestId entry_rid_{};
};

// ---------------------------------------------------------------------------

class NaimiOrderedSession final : public Session {
 public:
  NaimiOrderedSession(naimi::NaimiNode& node, const ResourceLayout& layout,
                      Executor& executor);

  void start(const Op& op, DoneFn done) override;
  [[nodiscard]] bool busy() const override { return active_; }

 private:
  void on_acquired(LockId lock, RequestId id);
  void acquire_next();
  void enter_cs();
  void finish();

  naimi::NaimiNode& node_;
  const ResourceLayout& layout_;
  Executor& exec_;

  bool active_{false};
  Op op_{};
  DoneFn done_;
  TimePoint started_{0};
  std::vector<LockId> plan_;                ///< locks to take, in order
  std::vector<RequestId> held_;             ///< rids, parallel to plan_
  std::size_t next_{0};                     ///< index into plan_
};

// ---------------------------------------------------------------------------

class NaimiPureSession final : public Session {
 public:
  /// `global_lock` is the single system-wide lock (same id on every node).
  NaimiPureSession(naimi::NaimiNode& node, LockId global_lock,
                   Executor& executor);

  void start(const Op& op, DoneFn done) override;
  [[nodiscard]] bool busy() const override { return active_; }

 private:
  void on_acquired(LockId lock, RequestId id);

  naimi::NaimiNode& node_;
  LockId global_lock_;
  Executor& exec_;

  bool active_{false};
  Op op_{};
  DoneFn done_;
  TimePoint started_{0};
  RequestId rid_{};
};

}  // namespace hlock::lockmgr
