#include "lockmgr/session_mux.hpp"

#include <stdexcept>

#include "core/mode.hpp"

namespace hlock::lockmgr {

namespace {

/// The mode an op requests on the table lock.
Mode table_mode(const Op& op) {
  switch (op.kind) {
    case OpKind::kEntryRead: return Mode::kIR;
    case OpKind::kTableRead: return Mode::kR;
    case OpKind::kTableUpgrade: return Mode::kU;
    case OpKind::kEntryWrite: return Mode::kIW;
    case OpKind::kTableWrite: return Mode::kW;
  }
  return Mode::kNone;
}

}  // namespace

SessionMux::SessionMux(core::HlsNode& node, const ResourceLayout& layout,
                       Executor& executor, std::uint32_t sessions)
    : node_(node), layout_(layout), exec_(executor), clients_(sessions) {
  if (sessions == 0) throw std::invalid_argument("need >= 1 session");
  node_.set_on_acquired([this](LockId lock, RequestId id, Mode mode) {
    on_acquired(lock, id, mode);
  });
  node_.set_on_upgraded(
      [this](LockId lock, RequestId id) { on_upgraded(lock, id); });
}

void SessionMux::start(std::uint32_t session, const Op& op, DoneFn done) {
  Client& c = clients_.at(session);
  if (c.phase != Phase::kIdle)
    throw std::logic_error("session already executing an op");
  c.op = op;
  c.done = std::move(done);
  c.started = exec_.now();
  c.acquire_latency = 0;
  c.lock_requests = 0;
  ++active_;
  c.phase = Phase::kGated;
  gate_queue_.push_back(session);
  drain_gate();
}

void SessionMux::admit(std::uint32_t sid) {
  Client& c = clients_[sid];
  c.phase = Phase::kWaitTable;
  issue(sid, layout_.table_lock(), table_mode(c.op));
}

void SessionMux::drain_gate() {
  // FIFO with head-of-line blocking: an upgrade op at the head waits for
  // every admitted op to finish (and blocks everything behind it, so it
  // cannot be starved); any other op at the head only waits out an
  // active upgrade op. The result is that engine.upgrade() always runs
  // with an empty local pending slot — see the class comment.
  while (!gate_queue_.empty()) {
    const std::uint32_t sid = gate_queue_.front();
    const bool upgrade = clients_[sid].op.kind == OpKind::kTableUpgrade;
    if (upgrade ? admitted_ != 0 : active_upgrades_ != 0) return;
    gate_queue_.pop_front();
    ++admitted_;
    if (upgrade) ++active_upgrades_;
    admit(sid);
  }
}

void SessionMux::issue(std::uint32_t sid, LockId lock, Mode mode) {
  ++clients_[sid].lock_requests;
  issuing_ = true;
  issuing_bound_ = false;
  issuing_sid_ = sid;
  issuing_lock_ = lock;
  const RequestId rid = node_.engine(lock).request_lock(mode);
  issuing_ = false;
  // A synchronous grant already bound (and possibly advanced) this
  // request inside on_acquired; only a still-pending one needs routing.
  if (!issuing_bound_) route_[key(lock, rid)] = sid;
}

void SessionMux::on_acquired(LockId lock, RequestId id, Mode /*mode*/) {
  std::uint32_t sid;
  const auto it = route_.find(key(lock, id));
  if (it != route_.end()) {
    sid = it->second;
  } else if (issuing_ && lock == issuing_lock_ && !issuing_bound_) {
    // Synchronous grant for the request_lock call currently on the
    // stack: its id reaches us before issue() could learn it.
    sid = issuing_sid_;
    issuing_bound_ = true;
    route_[key(lock, id)] = sid;
  } else {
    throw std::logic_error("grant for an unrouted (lock, request) pair");
  }
  grant(sid, lock, id);
}

void SessionMux::grant(std::uint32_t sid, LockId lock, RequestId id) {
  Client& c = clients_[sid];
  if (c.phase == Phase::kWaitTable && lock == layout_.table_lock()) {
    c.table_rid = id;
    if (c.op.kind == OpKind::kEntryRead || c.op.kind == OpKind::kEntryWrite) {
      // Intent acquired; take the leaf lock next. Scheduled to respect
      // the no-reentrancy contract (we may be inside request_lock).
      c.phase = Phase::kWaitEntry;
      const Mode leaf = c.op.kind == OpKind::kEntryRead ? Mode::kR : Mode::kW;
      exec_.schedule(0, [this, sid, leaf] {
        issue(sid, layout_.entry_lock(clients_[sid].op.entry), leaf);
      });
    } else {
      enter_cs(sid);
    }
    return;
  }
  if (c.phase == Phase::kWaitEntry && lock == layout_.entry_lock(c.op.entry)) {
    c.entry_rid = id;
    enter_cs(sid);
    return;
  }
  throw std::logic_error("unexpected acquisition callback");
}

void SessionMux::enter_cs(std::uint32_t sid) {
  Client& c = clients_[sid];
  c.phase = Phase::kInCs;
  c.acquire_latency = exec_.now() - c.started;
  // Upgrade ops split the dwell: read under U, then write under W.
  const Duration dwell =
      c.op.kind == OpKind::kTableUpgrade ? c.op.cs / 2 : c.op.cs;
  exec_.schedule(dwell, [this, sid] { leave_cs(sid); });
}

void SessionMux::leave_cs(std::uint32_t sid) {
  Client& c = clients_[sid];
  if (c.op.kind == OpKind::kTableUpgrade && c.phase == Phase::kInCs) {
    // The upgrade completion reuses table_rid, whose route entry is
    // still live, so on_upgraded finds its way back here.
    c.phase = Phase::kWaitUpgrade;
    node_.engine(layout_.table_lock()).upgrade(c.table_rid);
    return;
  }
  // Release leaf before intent (standard hierarchical order).
  if (c.op.kind == OpKind::kEntryRead || c.op.kind == OpKind::kEntryWrite) {
    const LockId entry = layout_.entry_lock(c.op.entry);
    node_.engine(entry).unlock(c.entry_rid);
    route_.erase(key(entry, c.entry_rid));
  }
  node_.engine(layout_.table_lock()).unlock(c.table_rid);
  route_.erase(key(layout_.table_lock(), c.table_rid));
  finish(sid);
}

void SessionMux::on_upgraded(LockId lock, RequestId id) {
  const auto it = route_.find(key(lock, id));
  if (it == route_.end())
    throw std::logic_error("upgrade completion for an unrouted pair");
  const std::uint32_t sid = it->second;
  Client& c = clients_[sid];
  if (c.phase != Phase::kWaitUpgrade || lock != layout_.table_lock() ||
      id != c.table_rid) {
    throw std::logic_error("unexpected upgrade callback");
  }
  c.phase = Phase::kInCs2;
  exec_.schedule(c.op.cs - c.op.cs / 2, [this, sid] {
    Client& c2 = clients_[sid];
    node_.engine(layout_.table_lock()).unlock(c2.table_rid);
    route_.erase(key(layout_.table_lock(), c2.table_rid));
    finish(sid);
  });
}

void SessionMux::finish(std::uint32_t sid) {
  Client& c = clients_[sid];
  c.phase = Phase::kIdle;
  --active_;
  ++completed_;
  // Release the gate slot before the done callback: it may start a new
  // op on this session, which must see up-to-date admission counts.
  --admitted_;
  if (c.op.kind == OpKind::kTableUpgrade) --active_upgrades_;
  OpStats stats;
  stats.op = c.op;
  stats.lock_requests = c.lock_requests;
  stats.acquire_latency = c.acquire_latency;
  if (c.done) {
    DoneFn done = std::move(c.done);
    c.done = nullptr;
    done(stats);
  }
  drain_gate();
}

}  // namespace hlock::lockmgr
