// Flat binary serialization used by the wire message codecs (src/msg) and
// the TCP framing layer (src/net). Little-endian, length-prefixed strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace hlock {

/// Append-only byte sink.
class ByteWriter {
 public:
  /// Pre-size the buffer when the frame size is known (message codecs
  /// compute it arithmetically via encoded_size()).
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Thrown when a ByteReader runs past the end of its buffer or a length
/// prefix is inconsistent — i.e. the peer sent a malformed frame.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sequential byte source over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace hlock
