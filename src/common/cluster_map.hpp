// Node -> cluster assignment for topology-aware runs.
//
// Real deployments are clusters of clusters: intra-rack hops are orders of
// magnitude cheaper than inter-rack/WAN hops. A ClusterMap is the shared
// ground truth three layers consult — the simulated network (per-pair
// latency sampling and boundary-crossing counters), the HLS engines
// (locality-biased token hand-off) and the harness (placement policy).
// A null/empty map means a flat topology: everything is one cluster.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace hlock {

/// How the harness assigns dense node ids 0..n-1 to clusters.
enum class ClusterPlacement : std::uint8_t {
  kBlock = 0,   ///< contiguous runs: nodes [0, n/c) -> cluster 0, ...
  kStripe = 1,  ///< round-robin: node i -> cluster i % c
};

/// Dense node-id -> cluster-id table. Ids beyond the table (test-injected
/// senders, late joiners) fall into cluster 0, so lookups never throw on
/// the hot path.
class ClusterMap {
 public:
  ClusterMap() = default;
  explicit ClusterMap(std::vector<std::uint32_t> cluster_of_node)
      : table_(std::move(cluster_of_node)) {}

  /// Build the standard harness placement of `nodes` ids over `clusters`.
  static ClusterMap make(std::size_t nodes, std::size_t clusters,
                         ClusterPlacement placement) {
    if (clusters == 0) throw std::invalid_argument("need >= 1 cluster");
    std::vector<std::uint32_t> table(nodes);
    // Block placement: ceil(nodes / clusters) per cluster, so e.g. 4x8
    // stays 4 racks of 8 and a ragged tail shrinks the last cluster.
    const std::size_t per =
        clusters >= nodes ? 1 : (nodes + clusters - 1) / clusters;
    for (std::size_t i = 0; i < nodes; ++i) {
      table[i] = static_cast<std::uint32_t>(
          placement == ClusterPlacement::kStripe ? i % clusters : i / per);
    }
    return ClusterMap(std::move(table));
  }

  [[nodiscard]] std::uint32_t cluster_of(NodeId n) const {
    return n.valid() && n.value < table_.size() ? table_[n.value] : 0;
  }
  [[nodiscard]] bool same_cluster(NodeId a, NodeId b) const {
    return cluster_of(a) == cluster_of(b);
  }
  [[nodiscard]] std::size_t node_count() const { return table_.size(); }
  [[nodiscard]] std::uint32_t cluster_count() const {
    std::uint32_t max = 0;
    for (const std::uint32_t c : table_) max = c > max ? c : max;
    return table_.empty() ? 1 : max + 1;
  }

 private:
  std::vector<std::uint32_t> table_;
};

}  // namespace hlock
