#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hlock {

void Summary::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
  sum_ += v;
  sum_sq_ += v * v;
}

void Summary::seal() {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

Summary Summary::restore(std::vector<double> samples, bool sorted,
                         double sum, double sum_sq) {
  Summary s;
  s.samples_ = std::move(samples);
  s.sorted_ = sorted;
  s.sum_ = sum;
  s.sum_sq_ = sum_sq;
  return s;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.front();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  if (sorted_) return samples_[idx];
  // Unsealed: stay read-only by selecting on a local copy. Exact, just
  // slower — collection-end code paths seal() so this is the cold path.
  std::vector<double> copy(samples_);
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(idx),
                   copy.end());
  return copy[idx];
}

double Summary::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double m = mean();
  // E[x^2] - E[x]^2 suffers catastrophic cancellation for near-constant
  // samples and can come out a hair negative; unclamped, sqrt would turn
  // that into NaN (and NaN leaks into JSON as an invalid token).
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

void CounterMap::inc(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t CounterMap::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t CounterMap::total() const {
  std::uint64_t sum = 0;
  for (const auto& [name, v] : counters_) sum += v;
  return sum;
}

void CounterMap::merge(const CounterMap& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
}

}  // namespace hlock
