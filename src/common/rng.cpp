#include "common/rng.hpp"

#include <cmath>

namespace hlock {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Debiased modulo via rejection sampling on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace hlock
