#include "common/bytes.hpp"

namespace hlock {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) {
  if (size_ - pos_ < n) throw DecodeError("truncated buffer");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const auto lo = u16();
  const auto hi = u16();
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

std::uint64_t ByteReader::u64() {
  const auto lo = u32();
  const auto hi = u32();
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

std::string ByteReader::str() {
  const auto n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace hlock
