#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hlock {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kNone};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kNone: break;
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  const std::lock_guard<std::mutex> guard(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), line.c_str());
}
}  // namespace detail

}  // namespace hlock
