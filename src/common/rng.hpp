// Deterministic random number generation.
//
// All experiments must be reproducible from a single 64-bit seed, so the
// harness never touches std::random_device or global RNG state; each node
// derives its own stream with split().
#pragma once

#include <cstdint>

namespace hlock {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic
/// across platforms (unlike std::mt19937 + std:: distributions, whose
/// distribution implementations vary by standard library).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derive an independent child stream (e.g. one per node).
  Rng split();

 private:
  std::uint64_t state_;
};

}  // namespace hlock
