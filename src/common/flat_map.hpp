// Sorted-vector associative containers for the protocol hot paths.
//
// The engines' per-peer tables (copysets, grant counters, frozen-set
// mirrors, reliability windows) are tiny — a handful of entries — but the
// seed implementation kept them in std::map/std::set, so every message
// paid rb-tree pointer chases and a node allocation per insert. FlatMap
// and FlatSet store entries in one contiguous sorted vector: lookups are
// a binary search ending in a cache line the CPU already prefetched,
// iteration is linear memory, and steady-state mutation of an existing
// key allocates nothing.
//
// Interface subset: exactly the std::map/std::set operations the
// callers use (find/at/count/contains/try_emplace/insert_or_assign/
// operator[]/erase/clear and sorted iteration), with identical ordering
// semantics — code that iterated a std::map observes the same key order
// here, which is what keeps simulation runs bit-identical after the
// swap. Unlike std::map, insertion and erasure invalidate iterators and
// references (vector semantics); callers must not hold them across
// mutation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hlock {

/// std::map replacement over a sorted std::vector<std::pair<K, V>>.
/// Keys need only operator<. Best for small, read-mostly tables.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] iterator find(const K& key) {
    const iterator it = lower_bound(key);
    return it != entries_.end() && !(key < it->first) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    const const_iterator it = lower_bound(key);
    return it != entries_.end() && !(key < it->first) ? it : entries_.end();
  }

  [[nodiscard]] std::size_t count(const K& key) const {
    return find(key) == end() ? 0 : 1;
  }
  [[nodiscard]] bool contains(const K& key) const { return count(key) != 0; }

  [[nodiscard]] V& at(const K& key) {
    const iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const const_iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && !(key < it->first)) return {it, false};
    it = entries_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  template <typename M>
  std::pair<iterator, bool> insert_or_assign(const K& key, M&& value) {
    const auto [it, inserted] = try_emplace(key, std::forward<M>(value));
    if (!inserted) it->second = std::forward<M>(value);
    return {it, inserted};
  }

  /// std::map-style emplace for (key, mapped) pairs.
  template <typename M>
  std::pair<iterator, bool> emplace(const K& key, M&& value) {
    return try_emplace(key, std::forward<M>(value));
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  iterator erase(iterator pos) { return entries_.erase(pos); }
  std::size_t erase(const K& key) {
    const iterator it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  [[nodiscard]] iterator lower_bound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

/// std::set replacement over a sorted std::vector<K>.
template <typename K>
class FlatSet {
 public:
  using const_iterator = typename std::vector<K>::const_iterator;

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] const_iterator begin() const { return keys_.begin(); }
  [[nodiscard]] const_iterator end() const { return keys_.end(); }

  [[nodiscard]] std::size_t count(const K& key) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && !(key < *it) ? 1 : 0;
  }
  [[nodiscard]] bool contains(const K& key) const { return count(key) != 0; }

  std::pair<const_iterator, bool> insert(const K& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && !(key < *it)) return {it, false};
    return {keys_.insert(it, key), true};
  }

  template <typename InputIt>
  void insert(InputIt first, InputIt last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t erase(const K& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || key < *it) return 0;
    keys_.erase(it);
    return 1;
  }

  void clear() { keys_.clear(); }

 private:
  std::vector<K> keys_;
};

}  // namespace hlock
