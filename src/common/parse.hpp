// Strict numeric parsing for command-line values.
//
// The C conversion functions the tools used to call are the wrong shape
// for flag parsing: strtoul("abc") returns 0 with no error, "12x" is
// silently truncated to 12, and std::stoul throws std::invalid_argument
// out of main. Every helper here accepts a token only when the ENTIRE
// string is a valid number in range, and returns std::nullopt otherwise —
// the caller decides whether that is a usage error (exit 2) or an
// exception.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

namespace hlock {

/// Whole-string unsigned parse. `base` follows strtoull: 10 for plain
/// decimal, 0 to also accept 0x-prefixed hex (used by --seed). Rejects
/// empty strings, leading whitespace, sign characters, trailing garbage
/// and out-of-range values.
inline std::optional<std::uint64_t> try_parse_u64(const std::string& text,
                                                  int base = 10) {
  if (text.empty()) return std::nullopt;
  // strtoull skips whitespace and accepts "-1" (wrapping); forbid both so
  // the accepted language is exactly [0x]digits.
  const unsigned char first = static_cast<unsigned char>(text.front());
  if (std::isspace(first) || text.front() == '-' || text.front() == '+')
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, base);
  if (errno == ERANGE) return std::nullopt;
  if (end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

inline std::optional<std::uint32_t> try_parse_u32(const std::string& text,
                                                  int base = 10) {
  const auto v = try_parse_u64(text, base);
  if (!v || *v > std::numeric_limits<std::uint32_t>::max())
    return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

inline std::optional<std::uint16_t> try_parse_u16(const std::string& text) {
  const auto v = try_parse_u64(text);
  if (!v || *v > std::numeric_limits<std::uint16_t>::max())
    return std::nullopt;
  return static_cast<std::uint16_t>(*v);
}

inline std::optional<std::size_t> try_parse_size(const std::string& text) {
  const auto v = try_parse_u64(text);
  if (!v || *v > std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

/// Whole-string signed parse (--repeat and friends).
inline std::optional<int> try_parse_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  if (std::isspace(static_cast<unsigned char>(text.front())))
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != text.c_str() + text.size()) return std::nullopt;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    return std::nullopt;
  return static_cast<int>(v);
}

/// Whole-string floating-point parse. Accepts anything strtod does
/// (including exponents) as long as it consumes the entire token; rejects
/// "nan"/"inf" — no flag in this codebase means anything non-finite.
inline std::optional<double> try_parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  if (std::isspace(static_cast<unsigned char>(text.front())))
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE) return std::nullopt;
  if (end != text.c_str() + text.size()) return std::nullopt;
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity())
    return std::nullopt;
  return v;
}

}  // namespace hlock
