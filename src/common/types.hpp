// Fundamental identifier and time types shared by every module.
//
// All protocol code is written against *virtual* time expressed in
// microseconds so the same engines run unchanged under the discrete-event
// simulator (src/sim) and the real TCP transport (src/net).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hlock {

/// Strong integral id wrapper; `Tag` makes NodeId/LockId/... distinct types.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  Rep value{std::numeric_limits<Rep>::max()};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  /// A sentinel meaning "no id"; default-constructed ids are invalid.
  static constexpr StrongId invalid() { return StrongId{}; }
  [[nodiscard]] constexpr bool valid() const {
    return value != std::numeric_limits<Rep>::max();
  }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value < b.value;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) { return b < a; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return !(b < a); }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<none>";
    return os << id.value;
  }
};

struct NodeIdTag {};
struct LockIdTag {};
struct RequestIdTag {};
struct ResourceIdTag {};

/// Identifies one participant (process) in the distributed system.
using NodeId = StrongId<NodeIdTag>;
/// Identifies one lock object (one token-tree instance).
using LockId = StrongId<LockIdTag>;
/// Identifies one application-level lock request, unique per node.
using RequestId = StrongId<RequestIdTag, std::uint64_t>;
/// Identifies one application resource (database, table, or entry).
using ResourceId = StrongId<ResourceIdTag>;

/// Virtual time: microseconds since simulation start (or steady_clock epoch
/// under the real transport).
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration usec(std::int64_t v) { return v; }
constexpr Duration msec(std::int64_t v) { return v * 1000; }
constexpr Duration sec(std::int64_t v) { return v * 1'000'000; }

/// Duration -> floating point milliseconds, for reporting.
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }

}  // namespace hlock

namespace std {
template <typename Tag, typename Rep>
struct hash<hlock::StrongId<Tag, Rep>> {
  size_t operator()(hlock::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
