// Lamport logical clock.
//
// Lock requests carry (lamport, node) timestamps so local queues can be
// merged on token transfer while preserving the global FIFO order the
// paper inherits from Mueller's prioritized token protocol [11].
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace hlock {

/// Totally ordered logical timestamp: ties broken by node id.
struct LamportStamp {
  std::uint64_t counter{0};
  NodeId node{};

  friend constexpr bool operator==(const LamportStamp& a,
                                   const LamportStamp& b) {
    return a.counter == b.counter && a.node == b.node;
  }
  friend constexpr bool operator<(const LamportStamp& a,
                                  const LamportStamp& b) {
    if (a.counter != b.counter) return a.counter < b.counter;
    return a.node < b.node;
  }
  friend constexpr bool operator>(const LamportStamp& a,
                                  const LamportStamp& b) {
    return b < a;
  }
};

/// Per-node Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(NodeId self) : self_(self) {}

  /// Stamp a locally originated event.
  LamportStamp tick() { return LamportStamp{++counter_, self_}; }

  /// Fold in a timestamp observed on an incoming message.
  void observe(const LamportStamp& remote) {
    counter_ = std::max(counter_, remote.counter);
  }

  [[nodiscard]] std::uint64_t counter() const { return counter_; }

 private:
  NodeId self_;
  std::uint64_t counter_{0};
};

}  // namespace hlock
