// Minimal leveled logger.
//
// Protocol engines log through this so tests can raise verbosity for a
// single failing seed without recompiling. Logging is off (Level::kNone)
// by default and the hot path is a single branch.
#pragma once

#include <sstream>
#include <string>

namespace hlock {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

/// Global log level. Reads and writes are atomic (relaxed), so sweep
/// worker threads can run while a test raises verbosity; output lines
/// themselves are serialized by a mutex in log_line().
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Usage: HLOCK_LOG(kDebug, "node " << id << " granted " << mode);
#define HLOCK_LOG(level, expr)                                      \
  do {                                                              \
    if (::hlock::log_level() >= ::hlock::LogLevel::level) {         \
      std::ostringstream hlock_log_os_;                             \
      hlock_log_os_ << expr;                                        \
      ::hlock::detail::log_line(::hlock::LogLevel::level,           \
                                hlock_log_os_.str());               \
    }                                                               \
  } while (0)

}  // namespace hlock
