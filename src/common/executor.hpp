// Deferred-execution interface.
//
// Sessions and workload drivers never call engines re-entrantly from
// protocol callbacks (see HlsEngine's threading contract); instead they
// schedule continuations through this interface. The simulator implements
// it over virtual time, the TCP node runner over real timers.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace hlock {

class Executor {
 public:
  virtual ~Executor() = default;
  /// Run `fn` once, `delay` from now (0 = next loop iteration).
  virtual void schedule(Duration delay, std::function<void()> fn) = 0;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

}  // namespace hlock
