// Lightweight metric primitives used by the experiment harness:
// named counters and a streaming summary (count/mean/min/max/percentiles).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hlock {

/// Streaming numeric summary. Keeps all samples so exact percentiles are
/// available; experiment scales here are small enough (<1e7 samples).
///
/// Call seal() once at collection end: it sorts the sample vector in
/// place, after which every accessor is genuinely read-only — a sealed
/// Summary (e.g. inside a memoized ExperimentResult shared across
/// SweepRunner workers) is safe to read from any number of threads.
/// Accessors on an unsealed Summary still give exact answers, paying for
/// a sort of a local copy per percentile() call instead of mutating
/// shared state under a const method.
class Summary {
 public:
  void add(double v);

  /// Sort the samples; idempotent. add() after seal() un-seals.
  void seal();
  [[nodiscard]] bool sealed() const { return sorted_; }

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile, q in [0, 1]. Returns 0 for an empty summary.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double stddev() const;

  // --- exact serialization (harness::ResultStore) ---
  //
  // mean()/stddev() derive from the running sums, and floating-point
  // addition is order-dependent, so re-add()ing the (sealed, sorted)
  // samples would NOT reproduce the sums accumulated in arrival order.
  // Round-trip-exact persistence therefore captures and restores the
  // full internal state instead of replaying samples.
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double sum_sq() const { return sum_sq_; }
  /// Rebuild a Summary from serialized state, bit-for-bit.
  static Summary restore(std::vector<double> samples, bool sorted,
                         double sum, double sum_sq);

  /// Exact state equality (cache round-trip tests).
  bool operator==(const Summary&) const = default;

 private:
  std::vector<double> samples_;
  bool sorted_{true};
  double sum_{0};
  double sum_sq_{0};
};

/// Named monotonically increasing counters (message type counts etc.).
class CounterMap {
 public:
  void inc(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void merge(const CounterMap& other);

  bool operator==(const CounterMap&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace hlock
