// Stream framing for the TCP transport: each frame is a 4-byte little-
// endian prefix followed by a payload. The prefix's top bit selects the
// frame class:
//
//   bit 31 clear — protocol frame: payload is a u64 per-peer sequence
//     number followed by an encode()d Message; the low 31 bits are the
//     payload length (capped at kMaxFrameBytes). The sequence number lets
//     the receiver deduplicate retransmissions after a connection dies
//     (TCP alone cannot give exactly-once across an abortive close: an RST
//     discards both the sender's untransmitted sndbuf and the receiver's
//     unread rcvbuf).
//   bit 31 set — transport control frame: payload is a 1-byte ControlOp
//     plus an op-specific body (hello carries the sender's NodeId, ping is
//     empty, ack carries a cumulative sequence number). Control frames
//     never reach the protocol engines, so a handshake can never collide
//     with a real lock id.
//
// The decoder is incremental — feed it whatever recv() returned and
// collect complete frames.
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"

namespace hlock::net {

/// Hard cap on a single protocol frame; a TOKEN message carrying a full
/// queue for hundreds of nodes stays far below this.
inline constexpr std::uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Length-prefix bit marking a transport control frame.
inline constexpr std::uint32_t kControlFrameBit = 0x8000'0000u;

/// Control payloads are tiny; anything larger is a corrupt stream.
inline constexpr std::uint32_t kMaxControlBytes = 64;

/// Transport-level control opcodes (first payload byte of a control frame).
enum class ControlOp : std::uint8_t {
  kHello = 1,  ///< body: u32 sender NodeId — connection handshake
  kPing = 2,   ///< body: empty — heartbeat/keepalive
  kAck = 3,    ///< body: u64 — cumulative ack of delivered sequence numbers
};

/// Serialize one message into a ready-to-send protocol frame carrying the
/// per-peer sequence number `seq` (the receiver delivers each sequence
/// number at most once; 0 is fine for decoder-only uses).
std::vector<std::uint8_t> frame(const Message& m, std::uint64_t seq = 0);

/// Build the handshake control frame carrying `self`.
std::vector<std::uint8_t> hello_frame(NodeId self);

/// Build an empty heartbeat control frame.
std::vector<std::uint8_t> ping_frame();

/// Build a cumulative-ack control frame: every data frame with sequence
/// number <= `seq` has been delivered.
std::vector<std::uint8_t> ack_frame(std::uint64_t seq);

/// One decoded frame: either a protocol Message or a control frame.
struct DecodedFrame {
  bool control{false};
  Message msg{};                   ///< valid when !control
  std::uint64_t seq{0};            ///< valid when !control
  ControlOp op{ControlOp::kPing};  ///< valid when control
  NodeId hello_node{};             ///< valid when control && op == kHello
  std::uint64_t ack_seq{0};        ///< valid when control && op == kAck
};

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  /// Append raw bytes from the stream.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extract the next complete frame, if any. Throws DecodeError on a
  /// malformed frame (oversized length, unknown control op, bad payload) —
  /// the stream is unrecoverable past that point and the connection must
  /// be dropped.
  bool next_frame(DecodedFrame& out);

  /// Message-only convenience for streams that carry no control frames
  /// (codec tests); throws DecodeError if a control frame arrives.
  bool next(Message& out);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace hlock::net
