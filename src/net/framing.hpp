// Stream framing for the TCP transport: each frame is a 4-byte little-
// endian payload length followed by an encode()d Message. The decoder is
// incremental — feed it whatever recv() returned and collect complete
// frames.
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"

namespace hlock::net {

/// Hard cap on a single frame; a TOKEN message carrying a full queue for
/// hundreds of nodes stays far below this.
inline constexpr std::uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Serialize one message into a ready-to-send frame.
std::vector<std::uint8_t> frame(const Message& m);

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  /// Append raw bytes from the stream.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extract the next complete message, if any. Throws DecodeError on a
  /// malformed frame (oversized length or bad payload).
  bool next(Message& out);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace hlock::net
