// Stream framing for the TCP transport: each frame is a 4-byte little-
// endian prefix followed by a payload. The prefix's top bits select the
// frame class:
//
//   bit 31 clear — protocol frame: payload is a u64 per-peer sequence
//     number, an optional u64 piggybacked cumulative ack (bit 30 set —
//     the current encoder always emits it; ack value 0 means "no ack
//     information", since real sequence numbers start at 1), then an
//     encode()d Message; the low 30 bits are the payload length (capped
//     at kMaxFrameBytes). The sequence number lets the receiver
//     deduplicate retransmissions after a connection dies (TCP alone
//     cannot give exactly-once across an abortive close: an RST discards
//     both the sender's untransmitted sndbuf and the receiver's unread
//     rcvbuf). The piggybacked ack lets a node under bidirectional load
//     acknowledge delivery without spending a standalone kAck frame.
//   bit 31 set — transport control frame: payload is a 1-byte ControlOp
//     plus an op-specific body (hello carries the sender's NodeId and
//     boot epoch, ping is empty, ack carries a cumulative sequence
//     number). Control frames never reach the protocol engines, so a
//     handshake can never collide with a real lock id.
//
// The decoder accepts both wire versions: legacy data frames without the
// ack field (bit 30 clear) and legacy hellos without the epoch (4-byte
// body) decode exactly as they did before the version bump.
//
// The decoder is incremental — feed it whatever recv() returned and
// collect complete frames.
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"

namespace hlock::net {

/// Hard cap on a single protocol frame; a TOKEN message carrying a full
/// queue for hundreds of nodes stays far below this.
inline constexpr std::uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Length-prefix bit marking a transport control frame.
inline constexpr std::uint32_t kControlFrameBit = 0x8000'0000u;

/// Length-prefix bit marking a data frame that carries a piggybacked
/// cumulative ack (u64, after the sequence number). Wire version 2; the
/// decoder also accepts version-1 frames with the bit clear.
inline constexpr std::uint32_t kAckFlagBit = 0x4000'0000u;

/// The length field of a prefix (both flag bits masked off).
inline constexpr std::uint32_t kLengthMask =
    ~(kControlFrameBit | kAckFlagBit);

/// Byte offset of the piggybacked ack inside a v2 data frame (4-byte
/// prefix + 8-byte sequence number). TcpNode stamps the current
/// cumulative ack into already-encoded frames at this offset.
inline constexpr std::size_t kAckFieldOffset = 12;

/// Control payloads are small; anything larger is a corrupt stream. The
/// cap admits a view-change frame listing ~250 survivors (10 + 4·n bytes)
/// while still rejecting runaway lengths instantly.
inline constexpr std::uint32_t kMaxControlBytes = 1024;

/// Transport-level control opcodes (first payload byte of a control frame).
enum class ControlOp : std::uint8_t {
  kHello = 1,  ///< body: u32 sender NodeId [+ u64 epoch] — handshake
  kPing = 2,   ///< body: empty — heartbeat/keepalive
  kAck = 3,    ///< body: u64 — cumulative ack of delivered sequence numbers
  /// body: u8 phase (kViewPropose|kViewCommit), u32 view, u32 count,
  /// count × u32 survivor NodeIds — one phase of a view-change round,
  /// coordinator -> survivor.
  kViewChange = 4,
  /// body: u8 phase, u32 view — survivor -> coordinator acknowledgement
  /// of the matching kViewChange phase.
  kViewAck = 5,
};

/// kViewChange / kViewAck phase byte values.
inline constexpr std::uint8_t kViewPropose = 0;
inline constexpr std::uint8_t kViewCommit = 1;

/// Serialize one message into a ready-to-send protocol frame carrying the
/// per-peer sequence number `seq` (the receiver delivers each sequence
/// number at most once; 0 is fine for decoder-only uses) and the
/// piggybacked cumulative ack `ack` (0 = no ack information).
std::vector<std::uint8_t> frame(const Message& m, std::uint64_t seq = 0,
                                std::uint64_t ack = 0);

/// Build the handshake control frame carrying `self` and this process's
/// boot `epoch` (nonzero; lets the peer detect a restart and reset its
/// per-peer sequence/dedup state). epoch 0 emits the legacy 4-byte body.
std::vector<std::uint8_t> hello_frame(NodeId self, std::uint64_t epoch = 0);

/// Build an empty heartbeat control frame.
std::vector<std::uint8_t> ping_frame();

/// Build a cumulative-ack control frame: every data frame with sequence
/// number <= `seq` has been delivered.
std::vector<std::uint8_t> ack_frame(std::uint64_t seq);

/// Build one phase of a view-change round: the coordinator's proposal
/// (`phase` == kViewPropose) or commit (kViewCommit) of `view` with the
/// given survivor set. `survivors` must be sorted ascending (the first
/// entry doubles as the coordinator / new root on the receiving side).
std::vector<std::uint8_t> view_change_frame(std::uint8_t phase,
                                            std::uint32_t view,
                                            const std::vector<NodeId>& survivors);

/// Build a survivor's acknowledgement of a view-change phase.
std::vector<std::uint8_t> view_ack_frame(std::uint8_t phase,
                                         std::uint32_t view);

/// One decoded frame: either a protocol Message or a control frame.
struct DecodedFrame {
  bool control{false};
  Message msg{};                   ///< valid when !control
  std::uint64_t seq{0};            ///< valid when !control
  bool has_ack{false};             ///< data frame carried a piggybacked ack
  ControlOp op{ControlOp::kPing};  ///< valid when control
  NodeId hello_node{};             ///< valid when control && op == kHello
  std::uint64_t hello_epoch{0};    ///< 0 when the peer sent a legacy hello
  /// Cumulative ack: the kAck body, or the piggybacked value when
  /// has_ack (0 there means "no ack information").
  std::uint64_t ack_seq{0};
  /// View-change fields, valid when op is kViewChange or kViewAck.
  std::uint8_t view_phase{0};       ///< kViewPropose or kViewCommit
  std::uint32_t view_id{0};         ///< proposed/committed view number
  std::vector<NodeId> view_members; ///< survivor list (kViewChange only)
};

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  /// Append raw bytes from the stream.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extract the next complete frame, if any. Throws DecodeError on a
  /// malformed frame (oversized length, unknown control op, bad payload) —
  /// the stream is unrecoverable past that point and the connection must
  /// be dropped.
  bool next_frame(DecodedFrame& out);

  /// Message-only convenience for streams that carry no control frames
  /// (codec tests); throws DecodeError if a control frame arrives.
  bool next(Message& out);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace hlock::net
