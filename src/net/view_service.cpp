#include "net/view_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/logging.hpp"
#include "net/framing.hpp"

namespace hlock::net {

namespace {
constexpr auto kRelax = std::memory_order_relaxed;
}  // namespace

ViewService::ViewService(TcpNode& node, std::set<NodeId> members,
                         ViewConfig cfg)
    : node_(node), cfg_(cfg), members_(std::move(members)) {
  members_.insert(node_.self());
}

ViewService::~ViewService() {
  // The node may outlive this service; its hooks must not dangle. When
  // the loop is running, a posted clear could still race our own death,
  // so block until it has executed.
  if (!node_.loop().running()) {
    node_.set_on_peer_suspected(nullptr);
    node_.set_control_handler(nullptr);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  node_.loop().post([&] {
    node_.set_on_peer_suspected(nullptr);
    node_.set_control_handler(nullptr);
    round_active_ = false;
    if (retry_armed_) {
      node_.loop().cancel_timer(retry_timer_id_);
      retry_armed_ = false;
    }
    {
      const std::lock_guard<std::mutex> guard(mu);
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done; });
}

void ViewService::start() {
  node_.set_on_peer_suspected(
      [this](NodeId peer, bool suspected) { on_suspect(peer, suspected); });
  node_.set_control_handler(
      [this](NodeId from, const DecodedFrame& f) { on_control(from, f); });
}

void ViewService::on_suspect(NodeId peer, bool suspected) {
  if (members_.count(peer) == 0) return;  // already excluded by a commit
  if (suspected) {
    dead_.insert(peer);
  } else {
    // A false suspicion cleared before any commit excluded the peer: put
    // it back. An in-flight round built without it is abandoned (or
    // rebuilt) by maybe_start_round below.
    dead_.erase(peer);
  }
  maybe_start_round();
}

void ViewService::maybe_start_round() {
  std::vector<NodeId> survivors;
  for (const NodeId m : members_)
    if (dead_.count(m) == 0) survivors.push_back(m);
  if (dead_.empty() || survivors.empty() ||
      std::find(survivors.begin(), survivors.end(), node_.self()) ==
          survivors.end()) {
    // Nothing to exclude, or we are the excluded one (a partitioned
    // minority that suspects everyone must not elect itself root).
    round_active_ = false;
    return;
  }
  if (survivors.front() != node_.self()) {
    // Not the coordinator; a lower surviving id drives the round. Should
    // that id die too, its suspicion lands in dead_ and we re-evaluate.
    round_active_ = false;
    return;
  }
  if (round_active_ && round_survivors_ == survivors) return;  // in flight
  round_active_ = true;
  round_view_ = std::max(committed_view_, highest_seen_) + 1;
  highest_seen_ = round_view_;
  round_phase_ = kViewPropose;
  round_survivors_ = std::move(survivors);
  round_pending_.clear();
  for (const NodeId s : round_survivors_)
    if (s != node_.self()) round_pending_.insert(s);
  HLOCK_LOG(kInfo, "node " << node_.self() << ": coordinating view "
                           << round_view_ << " with "
                           << round_survivors_.size() << " survivors");
  if (round_pending_.empty()) {
    // Sole survivor: the view is decided by construction.
    do_commit(round_view_, round_survivors_);
    round_active_ = false;
    return;
  }
  send_phase();
  arm_retry();
}

void ViewService::send_phase() {
  for (const NodeId p : round_pending_) {
    node_.send_control(
        p, view_change_frame(round_phase_, round_view_, round_survivors_));
    frames_sent_.fetch_add(1, kRelax);
  }
}

void ViewService::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  retry_timer_id_ =
      node_.loop().schedule_cancellable(cfg_.retry_interval, [this] {
        retry_armed_ = false;
        if (!round_active_) return;
        send_phase();
        arm_retry();
      });
}

void ViewService::on_control(NodeId from, const DecodedFrame& f) {
  if (f.op == ControlOp::kViewAck) {
    advance_round(from, f);
    return;
  }
  if (f.op != ControlOp::kViewChange) return;
  highest_seen_ = std::max(highest_seen_, f.view_id);
  const bool self_in =
      std::find(f.view_members.begin(), f.view_members.end(), node_.self()) !=
      f.view_members.end();
  if (f.view_phase == kViewPropose) {
    // Valid proposals come from the lowest id of their own survivor set
    // and never regress the committed view. Ack is idempotent — a
    // retransmitted proposal (our ack was lost) is simply re-acked.
    if (!self_in || f.view_members.empty() || f.view_members.front() != from)
      return;
    if (f.view_id <= committed_view_) return;
    node_.send_control(from, view_ack_frame(kViewPropose, f.view_id));
    frames_sent_.fetch_add(1, kRelax);
    return;
  }
  // Commit: apply once (monotonic), re-ack every delivery so the
  // coordinator's round can terminate even when the first ack is lost.
  if (!self_in || f.view_members.empty() || f.view_members.front() != from)
    return;
  if (f.view_id > committed_view_) do_commit(f.view_id, f.view_members);
  node_.send_control(from, view_ack_frame(kViewCommit, f.view_id));
  frames_sent_.fetch_add(1, kRelax);
}

void ViewService::advance_round(NodeId from, const DecodedFrame& f) {
  if (!round_active_ || f.view_id != round_view_ ||
      f.view_phase != round_phase_)
    return;  // stale ack from an abandoned round or a finished phase
  if (round_pending_.erase(from) == 0 || !round_pending_.empty()) return;
  if (round_phase_ == kViewPropose) {
    // Every survivor accepted the proposal. Commit locally BEFORE telling
    // anyone: the commit triggers begin_recovery, and the root (us) must
    // be in the new view before the survivors' kAttach frames — stamped
    // with it — arrive, or the attach barrier could never complete.
    do_commit(round_view_, round_survivors_);
    round_phase_ = kViewCommit;
    for (const NodeId s : round_survivors_)
      if (s != node_.self()) round_pending_.insert(s);
    send_phase();
    arm_retry();
    return;
  }
  // Commit phase fully acked: the round is over.
  round_active_ = false;
}

void ViewService::do_commit(std::uint32_t view,
                            const std::vector<NodeId>& survivors) {
  committed_view_ = view;
  committed_view_atomic_.store(view, kRelax);
  views_committed_.fetch_add(1, kRelax);
  // Transport hygiene: members not in the new view are dead — stop
  // re-dialing them and let their send windows drain to zero.
  const std::set<NodeId> next(survivors.begin(), survivors.end());
  for (const NodeId m : members_)
    if (next.count(m) == 0 && m != node_.self()) node_.forget_peer(m);
  members_ = next;
  for (auto it = dead_.begin(); it != dead_.end();) {
    it = members_.count(*it) == 0 ? dead_.erase(it) : ++it;
  }
  HLOCK_LOG(kInfo, "node " << node_.self() << ": committed view " << view
                           << ", root " << survivors.front() << ", "
                           << survivors.size() << " survivors");
  if (on_view_) on_view_(view, survivors.front(), members_);
}

}  // namespace hlock::net
