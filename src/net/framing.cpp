#include "net/framing.hpp"

#include <cstring>

namespace hlock::net {

std::vector<std::uint8_t> frame(const Message& m, std::uint64_t seq,
                                std::uint64_t ack) {
  // encoded_size() is exact, so prefix, sequence number, ack slot, and
  // payload go into one buffer with a single allocation (ByteWriter::u32
  // is little-endian, matching the prefix FrameDecoder expects). Every
  // frame is emitted in the v2 layout: the ack slot is always present so
  // TcpNode can stamp a cumulative ack into a queued frame in place
  // (kAckFieldOffset) without re-encoding.
  const std::size_t payload = encoded_size(m);
  ByteWriter w;
  w.reserve(payload + 20);
  w.u32(static_cast<std::uint32_t>(payload + 16) | kAckFlagBit);
  w.u64(seq);
  w.u64(ack);
  encode_into(w, m);
  return w.take();
}

std::vector<std::uint8_t> hello_frame(NodeId self, std::uint64_t epoch) {
  ByteWriter w;
  if (epoch == 0) {  // legacy body, for peers (and tests) without epochs
    w.reserve(4 + 1 + 4);
    w.u32(kControlFrameBit | 5u);
    w.u8(static_cast<std::uint8_t>(ControlOp::kHello));
    w.u32(self.value);
    return w.take();
  }
  w.reserve(4 + 1 + 4 + 8);
  w.u32(kControlFrameBit | 13u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kHello));
  w.u32(self.value);
  w.u64(epoch);
  return w.take();
}

std::vector<std::uint8_t> ping_frame() {
  ByteWriter w;
  w.reserve(4 + 1);
  w.u32(kControlFrameBit | 1u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kPing));
  return w.take();
}

std::vector<std::uint8_t> ack_frame(std::uint64_t seq) {
  ByteWriter w;
  w.reserve(4 + 1 + 8);
  w.u32(kControlFrameBit | 9u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kAck));
  w.u64(seq);
  return w.take();
}

std::vector<std::uint8_t> view_change_frame(
    std::uint8_t phase, std::uint32_t view,
    const std::vector<NodeId>& survivors) {
  const std::uint32_t body =
      1 + 1 + 4 + 4 + 4 * static_cast<std::uint32_t>(survivors.size());
  ByteWriter w;
  w.reserve(4 + body);
  w.u32(kControlFrameBit | body);
  w.u8(static_cast<std::uint8_t>(ControlOp::kViewChange));
  w.u8(phase);
  w.u32(view);
  w.u32(static_cast<std::uint32_t>(survivors.size()));
  for (const NodeId n : survivors) w.u32(n.value);
  return w.take();
}

std::vector<std::uint8_t> view_ack_frame(std::uint8_t phase,
                                         std::uint32_t view) {
  ByteWriter w;
  w.reserve(4 + 1 + 1 + 4);
  w.u32(kControlFrameBit | 6u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kViewAck));
  w.u8(phase);
  w.u32(view);
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

bool FrameDecoder::next_frame(DecodedFrame& out) {
  if (buffered() < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t prefix = static_cast<std::uint32_t>(p[0]) |
                               (static_cast<std::uint32_t>(p[1]) << 8) |
                               (static_cast<std::uint32_t>(p[2]) << 16) |
                               (static_cast<std::uint32_t>(p[3]) << 24);
  const bool control = (prefix & kControlFrameBit) != 0;
  const std::uint32_t len = prefix & kLengthMask;
  if (control) {
    if ((prefix & kAckFlagBit) != 0)
      throw DecodeError("ack flag on control frame");
    if (len == 0 || len > kMaxControlBytes)
      throw DecodeError("bad control frame length");
  } else if (len > kMaxFrameBytes) {
    throw DecodeError("oversized frame");
  }
  if (buffered() < 4 + static_cast<std::size_t>(len)) return false;
  // `out` may be reused across next_frame calls; clear the optional
  // fields so a v1 frame cannot inherit a previous frame's values.
  out.has_ack = false;
  out.ack_seq = 0;
  out.hello_epoch = 0;
  out.view_phase = 0;
  out.view_id = 0;
  out.view_members.clear();
  if (control) {
    ByteReader r(p + 4, len);
    const auto op = r.u8();
    switch (static_cast<ControlOp>(op)) {
      case ControlOp::kHello:
        out.hello_node = NodeId{r.u32()};
        // v2 hellos append the sender's boot epoch; legacy hellos end
        // after the node id and decode with epoch 0 ("unknown").
        if (!r.done()) out.hello_epoch = r.u64();
        break;
      case ControlOp::kPing:
        break;
      case ControlOp::kAck:
        out.ack_seq = r.u64();
        break;
      case ControlOp::kViewChange: {
        out.view_phase = r.u8();
        if (out.view_phase > kViewCommit)
          throw DecodeError("bad view-change phase");
        out.view_id = r.u32();
        const std::uint32_t n = r.u32();
        // The length check already bounds n via kMaxControlBytes; this
        // guards against a count field that disagrees with the length.
        if (static_cast<std::size_t>(n) * 4 != r.remaining())
          throw DecodeError("view-change member count mismatch");
        out.view_members.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
          out.view_members.push_back(NodeId{r.u32()});
        break;
      }
      case ControlOp::kViewAck:
        out.view_phase = r.u8();
        if (out.view_phase > kViewCommit)
          throw DecodeError("bad view-ack phase");
        out.view_id = r.u32();
        break;
      default:
        throw DecodeError("unknown control op");
    }
    if (!r.done()) throw DecodeError("trailing bytes in control frame");
    out.control = true;
    out.op = static_cast<ControlOp>(op);
  } else {
    const bool has_ack = (prefix & kAckFlagBit) != 0;
    const std::uint32_t header = has_ack ? 16 : 8;
    if (len < header) throw DecodeError("data frame too short for header");
    ByteReader r(p + 4, header);
    out.seq = r.u64();
    if (has_ack) {
      out.ack_seq = r.u64();
      out.has_ack = true;
    }
    out.msg = decode(p + 4 + header, len - header);
    out.control = false;
  }
  pos_ += 4 + len;
  compact();
  return true;
}

bool FrameDecoder::next(Message& out) {
  DecodedFrame f;
  if (!next_frame(f)) return false;
  if (f.control) throw DecodeError("unexpected control frame");
  out = std::move(f.msg);
  return true;
}

}  // namespace hlock::net
