#include "net/framing.hpp"

#include <cstring>

namespace hlock::net {

std::vector<std::uint8_t> frame(const Message& m) {
  // encoded_size() is exact, so prefix and payload go into one buffer
  // with a single allocation (ByteWriter::u32 is little-endian, matching
  // the prefix FrameDecoder::next expects).
  const std::size_t payload = encoded_size(m);
  ByteWriter w;
  w.reserve(payload + 4);
  w.u32(static_cast<std::uint32_t>(payload));
  encode_into(w, m);
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

bool FrameDecoder::next(Message& out) {
  if (buffered() < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxFrameBytes) throw DecodeError("oversized frame");
  if (buffered() < 4 + static_cast<std::size_t>(len)) return false;
  out = decode(p + 4, len);
  pos_ += 4 + len;
  compact();
  return true;
}

}  // namespace hlock::net
