#include "net/framing.hpp"

#include <cstring>

namespace hlock::net {

std::vector<std::uint8_t> frame(const Message& m, std::uint64_t seq) {
  // encoded_size() is exact, so prefix, sequence number, and payload go
  // into one buffer with a single allocation (ByteWriter::u32 is
  // little-endian, matching the prefix FrameDecoder expects).
  const std::size_t payload = encoded_size(m);
  ByteWriter w;
  w.reserve(payload + 12);
  w.u32(static_cast<std::uint32_t>(payload + 8));
  w.u64(seq);
  encode_into(w, m);
  return w.take();
}

std::vector<std::uint8_t> hello_frame(NodeId self) {
  ByteWriter w;
  w.reserve(4 + 1 + 4);
  w.u32(kControlFrameBit | 5u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kHello));
  w.u32(self.value);
  return w.take();
}

std::vector<std::uint8_t> ping_frame() {
  ByteWriter w;
  w.reserve(4 + 1);
  w.u32(kControlFrameBit | 1u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kPing));
  return w.take();
}

std::vector<std::uint8_t> ack_frame(std::uint64_t seq) {
  ByteWriter w;
  w.reserve(4 + 1 + 8);
  w.u32(kControlFrameBit | 9u);
  w.u8(static_cast<std::uint8_t>(ControlOp::kAck));
  w.u64(seq);
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

bool FrameDecoder::next_frame(DecodedFrame& out) {
  if (buffered() < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t prefix = static_cast<std::uint32_t>(p[0]) |
                               (static_cast<std::uint32_t>(p[1]) << 8) |
                               (static_cast<std::uint32_t>(p[2]) << 16) |
                               (static_cast<std::uint32_t>(p[3]) << 24);
  const bool control = (prefix & kControlFrameBit) != 0;
  const std::uint32_t len = prefix & ~kControlFrameBit;
  if (control) {
    if (len == 0 || len > kMaxControlBytes)
      throw DecodeError("bad control frame length");
  } else if (len > kMaxFrameBytes) {
    throw DecodeError("oversized frame");
  }
  if (buffered() < 4 + static_cast<std::size_t>(len)) return false;
  if (control) {
    ByteReader r(p + 4, len);
    const auto op = r.u8();
    switch (static_cast<ControlOp>(op)) {
      case ControlOp::kHello:
        out.hello_node = NodeId{r.u32()};
        break;
      case ControlOp::kPing:
        break;
      case ControlOp::kAck:
        out.ack_seq = r.u64();
        break;
      default:
        throw DecodeError("unknown control op");
    }
    if (!r.done()) throw DecodeError("trailing bytes in control frame");
    out.control = true;
    out.op = static_cast<ControlOp>(op);
  } else {
    if (len < 8) throw DecodeError("data frame too short for sequence");
    out.seq = ByteReader(p + 4, 8).u64();
    out.msg = decode(p + 12, len - 8);
    out.control = false;
  }
  pos_ += 4 + len;
  compact();
  return true;
}

bool FrameDecoder::next(Message& out) {
  DecodedFrame f;
  if (!next_frame(f)) return false;
  if (f.control) throw DecodeError("unexpected control frame");
  out = std::move(f.msg);
  return true;
}

}  // namespace hlock::net
