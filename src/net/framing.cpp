#include "net/framing.hpp"

#include <cstring>

namespace hlock::net {

std::vector<std::uint8_t> frame(const Message& m) {
  const std::vector<std::uint8_t> payload = encode(m);
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

bool FrameDecoder::next(Message& out) {
  if (buffered() < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxFrameBytes) throw DecodeError("oversized frame");
  if (buffered() < 4 + static_cast<std::size_t>(len)) return false;
  out = decode(p + 4, len);
  pos_ += 4 + len;
  compact();
  return true;
}

}  // namespace hlock::net
