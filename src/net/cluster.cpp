#include "net/cluster.hpp"

#include <algorithm>
#include <map>

namespace hlock::net {

InProcessCluster::InProcessCluster(std::size_t nodes, TcpConfig cfg) {
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.push_back(std::make_unique<TcpNode>(
        NodeId{static_cast<std::uint32_t>(i)}, /*port=*/0, cfg));
  }
  std::map<NodeId, PeerAddress> book;
  for (std::size_t i = 0; i < nodes; ++i) {
    book[NodeId{static_cast<std::uint32_t>(i)}] =
        PeerAddress{"127.0.0.1", nodes_[i]->listen_port()};
  }
  for (auto& node : nodes_) {
    std::map<NodeId, PeerAddress> peers = book;
    peers.erase(node->self());
    node->set_peers(std::move(peers));
  }
  threads_.reserve(nodes);
  for (auto& node : nodes_) {
    threads_.emplace_back([n = node.get()] { n->loop().run(); });
  }
}

TcpStats InProcessCluster::total_stats() const {
  TcpStats total;
  for (const auto& node : nodes_) {
    const TcpStats s = node->stats();
    total.dials += s.dials;
    total.connect_failures += s.connect_failures;
    total.connects += s.connects;
    total.accepts += s.accepts;
    total.reconnects += s.reconnects;
    total.frames_out += s.frames_out;
    total.frames_in += s.frames_in;
    total.bytes_out += s.bytes_out;
    total.bytes_in += s.bytes_in;
    total.decode_errors += s.decode_errors;
    total.requeued_frames += s.requeued_frames;
    total.heartbeats_sent += s.heartbeats_sent;
    total.idle_closes += s.idle_closes;
    total.sends_rejected += s.sends_rejected;
    total.batches_written += s.batches_written;
    for (std::size_t b = 0; b < kBatchHistBuckets; ++b)
      total.frames_per_batch[b] += s.frames_per_batch[b];
    total.acks_piggybacked += s.acks_piggybacked;
    total.acks_standalone += s.acks_standalone;
    total.peer_restarts += s.peer_restarts;
    total.peers_suspected += s.peers_suspected;
    total.suspicions_cleared += s.suspicions_cleared;
    total.outbox_high_water =
        std::max(total.outbox_high_water, s.outbox_high_water);
    total.pending_high_water =
        std::max(total.pending_high_water, s.pending_high_water);
  }
  return total;
}

void InProcessCluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& node : nodes_) node->loop().stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

InProcessCluster::~InProcessCluster() { stop(); }

}  // namespace hlock::net
