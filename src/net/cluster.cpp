#include "net/cluster.hpp"

#include <map>

namespace hlock::net {

InProcessCluster::InProcessCluster(std::size_t nodes) {
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.push_back(
        std::make_unique<TcpNode>(NodeId{static_cast<std::uint32_t>(i)}));
  }
  std::map<NodeId, PeerAddress> book;
  for (std::size_t i = 0; i < nodes; ++i) {
    book[NodeId{static_cast<std::uint32_t>(i)}] =
        PeerAddress{"127.0.0.1", nodes_[i]->listen_port()};
  }
  for (auto& node : nodes_) {
    std::map<NodeId, PeerAddress> peers = book;
    peers.erase(node->self());
    node->set_peers(std::move(peers));
  }
  threads_.reserve(nodes);
  for (auto& node : nodes_) {
    threads_.emplace_back([n = node.get()] { n->loop().run(); });
  }
}

void InProcessCluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& node : nodes_) node->loop().stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

InProcessCluster::~InProcessCluster() { stop(); }

}  // namespace hlock::net
