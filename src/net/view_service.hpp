// ViewService — deterministic crash-recovery view changes over a TcpNode.
//
// Layered on the transport failure detector (TcpConfig::suspect_timeout):
// when a member falls silent, the lowest-id survivor coordinates a new
// view over kViewChange/kViewAck control frames (bit-31 frames; they never
// touch the protocol engines):
//
//   1. propose(view, survivors): the coordinator picks
//      view = max(committed, highest seen) + 1 and the survivor set
//      (current membership minus suspects), and sends the proposal to
//      every other survivor. Survivors validate that the sender is the
//      lowest id of the proposed set and ack.
//   2. commit(view, survivors): once every survivor acked the proposal,
//      the coordinator commits locally FIRST — the new root must be in
//      the new view before any survivor's re-attach traffic (stamped with
//      that view) can arrive, or the recovery barrier would never
//      complete — then sends the commit. Survivors commit idempotently
//      and ack; retransmitted commits are re-acked.
//
// Control frames are not covered by the transport send windows, so both
// phases are driven by a retry timer until every survivor has acked; a
// survivor dying mid-round restarts the round with a higher view number
// and a smaller survivor set. If the coordinator itself dies, the next
// lowest survivor's own failure detector starts a fresh round.
//
// The committed view maps directly onto HlsEngine::begin_recovery: the
// callback's (view, new_root = lowest survivor, survivors) arguments are
// identical on every survivor, and on commit the dead members are
// forgotten at the transport (windows dropped, re-dials cancelled).
//
// Everything runs on the node's loop thread; the accessors are safe from
// any thread. The service claims the node's on_peer_suspected and
// control-frame hooks for itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "net/tcp_node.hpp"

namespace hlock::net {

struct ViewConfig {
  /// Re-send cadence for unacked propose/commit frames. Also bounds how
  /// quickly a round restarts after a mid-round membership change.
  Duration retry_interval{msec(50)};
};

class ViewService {
 public:
  /// Fired on the loop thread when a view commits, exactly once per view,
  /// in increasing view order. `new_root` is the lowest surviving id.
  using ViewFn = std::function<void(std::uint32_t view, NodeId new_root,
                                    const std::set<NodeId>& survivors)>;

  /// `members` is the full initial cluster membership (self included) and
  /// must be identical on every node. The node's TcpConfig must have
  /// suspect_timeout > 0 or no round ever starts.
  ViewService(TcpNode& node, std::set<NodeId> members, ViewConfig cfg = {});

  /// Detaches from the node's hooks. Destroy before the node, on any
  /// thread; if the loop still runs this blocks until the hooks are clear.
  ~ViewService();
  ViewService(const ViewService&) = delete;
  ViewService& operator=(const ViewService&) = delete;

  /// Install the hooks and start watching. Call once, after set_peers.
  void start();

  void set_on_view(ViewFn fn) { on_view_ = std::move(fn); }

  /// Last committed view (0 = the initial, pre-crash view).
  [[nodiscard]] std::uint32_t view() const {
    return committed_view_atomic_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t views_committed() const {
    return views_committed_.load(std::memory_order_relaxed);
  }
  /// kViewChange/kViewAck frames this service queued (retries included) —
  /// the coordination share of a recovery's message cost.
  [[nodiscard]] std::uint64_t view_frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }

 private:
  void on_suspect(NodeId peer, bool suspected);
  void on_control(NodeId from, const DecodedFrame& f);
  void maybe_start_round();
  void send_phase();
  void advance_round(NodeId from, const DecodedFrame& f);
  void do_commit(std::uint32_t view, const std::vector<NodeId>& survivors);
  void arm_retry();

  TcpNode& node_;
  const ViewConfig cfg_;
  ViewFn on_view_;

  // Loop-confined state.
  std::set<NodeId> members_;     ///< current membership (shrinks on commit)
  std::set<NodeId> dead_;        ///< suspected members not yet excluded
  std::uint32_t committed_view_{0};
  std::uint32_t highest_seen_{0};  ///< floor for new proposals
  bool round_active_{false};
  std::uint32_t round_view_{0};
  std::uint8_t round_phase_{0};          ///< kViewPropose or kViewCommit
  std::vector<NodeId> round_survivors_;  ///< sorted ascending
  std::set<NodeId> round_pending_;       ///< survivors yet to ack the phase
  bool retry_armed_{false};
  std::uint64_t retry_timer_id_{0};

  std::atomic<std::uint32_t> committed_view_atomic_{0};
  std::atomic<std::uint64_t> views_committed_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
};

}  // namespace hlock::net
